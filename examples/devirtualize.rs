//! Devirtualization client: which virtual call sites can a compiler turn
//! into direct calls, under each analysis?
//!
//! Runs the paper's analyses over a synthetic DaCapo workload and reports
//! the devirtualization opportunities each finds — the paper's
//! "poly v-calls" metric seen from the optimizer's side. More precise
//! analyses prove more call sites monomorphic.
//!
//! Run with: `cargo run --release --example devirtualize [workload] [scale]`

use pta_clients::{mono_virtual_calls, poly_virtual_calls};
use pta_core::{Analysis, AnalysisSession};
use pta_workload::dacapo_workload;

fn main() {
    let workload = std::env::args().nth(1).unwrap_or_else(|| "pmd".to_owned());
    let scale: f64 = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0);
    let program = dacapo_workload(&workload, scale);
    println!(
        "workload {workload} (scale {scale}): {} methods, {} virtual call sites total\n",
        program.method_count(),
        program.invo_count()
    );

    println!(
        "{:>11} | {:>10} {:>12} {:>14}",
        "analysis", "reachable", "monomorphic", "polymorphic"
    );
    println!("{}", "-".repeat(54));
    let mut best: Option<(Analysis, usize)> = None;
    for analysis in [
        Analysis::Insens,
        Analysis::OneCall,
        Analysis::OneObj,
        Analysis::SBOneObj,
        Analysis::TwoObjH,
        Analysis::STwoObjH,
    ] {
        let result = AnalysisSession::open(program.clone())
            .policy(analysis)
            .solve();
        let mono = mono_virtual_calls(&program, &result);
        let (poly, reachable) = poly_virtual_calls(&program, &result);
        println!(
            "{:>11} | {:>10} {:>12} {:>14}",
            analysis.name(),
            reachable,
            mono.len(),
            poly.len()
        );
        if best.as_ref().is_none_or(|&(_, m)| mono.len() > m) {
            best = Some((analysis, mono.len()));
        }
    }

    let (best_analysis, _) = best.expect("at least one analysis ran");
    let result = AnalysisSession::open(program.clone())
        .policy(best_analysis)
        .solve();
    let mono = mono_virtual_calls(&program, &result);
    println!("\nSample devirtualization opportunities found by {best_analysis}:");
    for site in mono.iter().take(8) {
        println!(
            "  {} -> {}",
            program.invo_label(site.invo),
            program.method_qualified_name(site.targets[0])
        );
    }
    if mono.len() > 8 {
        println!("  ... and {} more", mono.len() - 8);
    }
}
