//! Exception-flow report: which exception objects can escape `main`
//! uncaught, and how context-sensitivity narrows the answer.
//!
//! Exceptions are the full-Doop extension beyond the paper's nine-rule
//! model: thrown objects bind to matching catch clauses or unwind across
//! call-graph edges. Because the escaping paths run through the same
//! context-qualified call graph as everything else, a more precise analysis
//! reports fewer (and more accurate) uncaught exceptions.
//!
//! Run with: `cargo run --release --example exception_report [workload]`

use pta_core::{Analysis, AnalysisSession};
use pta_lang::parse_program;
use pta_workload::dacapo_workload;

const DEMO: &str = r#"
    class Object {}
    class Err : Object {}
    class Timeout : Err {}
    class Corrupt : Err {}

    class Channel : Object {
        field mode;
        method arm(m) { this.mode = m; }
        method fire() {
            m = this.mode;
            throw m;
        }
    }

    class Main : Object {
        // Handles timeouts on the polling path.
        static poll(c) catch (Timeout t) {
            c.fire();
            return t;
        }
        // The hot path has no handler at all.
        static rush(c) {
            c.fire();
        }
        static main() {
            slow = new Channel;
            bad = new Channel;
            tmo = new Timeout;
            crp = new Corrupt;
            slow.arm(tmo);
            bad.arm(crp);
            h1 = Main.poll(slow);
            Main.rush(bad);
        }
    }
    entry Main.main;
"#;

fn main() {
    // Part 1: the hand-written demo, where precision changes the verdict.
    let p = parse_program(DEMO).expect("demo parses");
    println!("demo: two channels, one armed with a Timeout, one with a Corrupt\n");
    for analysis in [Analysis::Insens, Analysis::SBOneObj, Analysis::STwoObjH] {
        let r = AnalysisSession::open(p.clone()).policy(analysis).solve();
        let sites: Vec<&str> = r
            .uncaught_exceptions()
            .iter()
            .map(|&h| p.heap_label(h))
            .collect();
        println!(
            "  {analysis:>10}: {} uncaught at main: {{{}}}",
            sites.len(),
            sites.join(", ")
        );
    }
    println!();
    println!("  insens conflates the two channels' payloads, so the unhandled");
    println!("  rush() path appears to leak the Timeout as well (a false alarm);");
    println!("  the object-sensitive analyses keep the channels apart and report");
    println!("  exactly the real Corrupt escape.\n");

    // Part 2: a synthetic benchmark's exception surface across analyses.
    let workload = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "xalan".to_owned());
    let program = dacapo_workload(&workload, 1.0);
    println!(
        "workload {workload}: {} methods — uncaught exception sites per analysis",
        program.method_count()
    );
    for analysis in [
        Analysis::Insens,
        Analysis::OneCall,
        Analysis::OneObj,
        Analysis::TwoObjH,
        Analysis::STwoObjH,
    ] {
        let r = AnalysisSession::open(program.clone())
            .policy(analysis)
            .solve();
        println!(
            "  {analysis:>10}: {:>3} uncaught exception sites",
            r.uncaught_exceptions().len()
        );
    }
}
