//! Quickstart: the paper's §1 motivating example, end to end.
//!
//! Builds the `c1.foo(obj1); c2.foo(obj2)` program from the paper's
//! introduction (plus the static-call variant from §2.2 that motivates
//! hybrid context-sensitivity), runs a context-insensitive, an
//! object-sensitive, and a selective-hybrid analysis, and prints what each
//! one knows about `foo`'s parameter — including the per-context points-to
//! sets that show *why* context-sensitivity helps.
//!
//! Run with: `cargo run --example quickstart`

use pta_core::{Analysis, AnalysisSession};
use pta_lang::parse_program;

const SOURCE: &str = r#"
    class Object {}

    // The paper's Section 1 example: method foo called on two receivers.
    class C : Object {
        method foo(o) {
            kept = o;
            return kept;
        }
    }

    // A static identity helper: the language feature whose context
    // treatment (MergeStatic) distinguishes the paper's hybrid analyses.
    class Util : Object {
        static id(x) { return x; }
    }

    class Client : Object {
        static main() {
            c1 = new C;
            c2 = new C;
            obj1 = new Object;
            obj2 = new Object;

            // Virtual calls: object-sensitivity separates these by the
            // receiver's allocation site.
            r1 = c1.foo(obj1);
            r2 = c2.foo(obj2);

            // Static calls: 1obj copies the caller's context into both,
            // conflating obj1 and obj2; hybrids append the call site.
            s1 = Util.id(obj1);
            s2 = Util.id(obj2);
        }
    }

    entry Client.main;
"#;

fn main() {
    let program = parse_program(SOURCE).expect("quickstart program parses");
    println!(
        "program: {} classes, {} methods, {} allocation sites\n",
        program.type_count(),
        program.method_count(),
        program.heap_count()
    );

    let interesting: Vec<_> = program
        .vars()
        .filter(|&v| {
            let name = program.var_name(v);
            matches!(name, "o" | "r1" | "r2" | "s1" | "s2")
        })
        .collect();

    for analysis in [Analysis::Insens, Analysis::OneObj, Analysis::SAOneObj] {
        let result = AnalysisSession::open(program.clone())
            .policy(analysis)
            .keep_tuples(true)
            .solve();
        println!("=== {analysis} ===");
        for &var in &interesting {
            let meth = program.method_qualified_name(program.var_method(var));
            let pts: Vec<&str> = result
                .points_to(var)
                .iter()
                .map(|&h| program.heap_label(h))
                .collect();
            println!(
                "  {meth}::{:<4} -> {{{}}}",
                program.var_name(var),
                pts.join(", ")
            );
        }
        // Show the per-context view of foo's parameter `o`: this is what
        // context-sensitivity actually computes.
        if let Some(tuples) = result.context_sensitive_tuples() {
            let o = interesting
                .iter()
                .copied()
                .find(|&v| program.var_name(v) == "o")
                .expect("foo has a formal o");
            let mut per_ctx: Vec<String> = tuples
                .iter()
                .filter(|t| t.var == o)
                .map(|t| {
                    format!(
                        "    o under ctx {} -> {}",
                        result.display_ctx(t.ctx, &program),
                        program.heap_label(t.heap)
                    )
                })
                .collect();
            per_ctx.sort();
            println!("  per-context view of C.foo::o:");
            for line in per_ctx {
                println!("{line}");
            }
        }
        println!();
    }

    println!("Reading the output:");
    println!("- insens conflates everything: o, s1, s2 all see both objects.");
    println!("- 1obj separates the virtual calls (r1/r2 and o per receiver context)");
    println!("  but conflates the static Util.id calls (s1 and s2 both see both).");
    println!("- SA-1obj — a selective hybrid — uses the invocation site as context");
    println!("  for static calls, so s1 and s2 become precise too.");
}
