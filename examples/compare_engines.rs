//! The two evaluation back ends side by side: the specialized worklist
//! solver (the analogue of Doop's compiled LogicBlox program) and the
//! paper's Figure 2 rules run literally on the generic Datalog engine.
//!
//! Verifies on the spot that both produce identical results — points-to
//! sets, call graphs, reachable methods, and even the context-sensitive
//! tuple counts — and reports the performance gap between a compiled and an
//! interpreted evaluation strategy.
//!
//! Run with: `cargo run --release --example compare_engines [seed]`

use std::time::Instant;

use pta_core::{Analysis, AnalysisSession, Backend};
use pta_workload::{generate, WorkloadConfig};

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(42);
    let program = generate(&WorkloadConfig::tiny(seed));
    println!(
        "program: {} methods, {} vars, {} allocation sites (tiny workload, seed {seed})\n",
        program.method_count(),
        program.var_count(),
        program.heap_count()
    );

    for analysis in [
        Analysis::Insens,
        Analysis::OneCall,
        Analysis::OneObj,
        Analysis::TwoObjH,
        Analysis::STwoObjH,
    ] {
        let t0 = Instant::now();
        let fast = AnalysisSession::open(program.clone())
            .policy(analysis)
            .solve();
        let fast_time = t0.elapsed();

        let t1 = Instant::now();
        let slow = AnalysisSession::open(program.clone())
            .policy(analysis)
            .backend(Backend::Datalog)
            .solve();
        let slow_time = t1.elapsed();

        // Cross-validate everything observable.
        let mut mismatches = 0usize;
        for var in program.vars() {
            if fast.points_to(var) != slow.points_to(var) {
                mismatches += 1;
            }
        }
        assert_eq!(mismatches, 0, "{analysis}: {mismatches} vars differ");
        assert_eq!(fast.call_graph_edge_count(), slow.call_graph_edge_count());
        assert_eq!(fast.reachable_method_count(), slow.reachable_method_count());
        assert_eq!(
            fast.ctx_var_points_to_count(),
            slow.ctx_var_points_to_count()
        );

        println!(
            "{:>9}: identical results ({} vpt tuples, {} cg edges) | solver {:>8.2?} vs datalog {:>8.2?} ({:.0}x) | {} fixpoint rounds, {} strata",
            analysis.name(),
            fast.ctx_var_points_to_count(),
            fast.call_graph_edge_count(),
            fast_time,
            slow_time,
            slow_time.as_secs_f64() / fast_time.as_secs_f64().max(1e-9),
            slow.solver_stats().engine_rounds,
            slow.solver_stats().engine_strata,
        );
    }

    println!("\nThe specialized solver and the literal Figure 2 rule set agree exactly —");
    println!("the same check runs over every workload in the integration test suite.");
}
