//! Client-precision tour: runs the `pta check` suite (taint, escape,
//! nullness) over a workload with injected taint fixtures under every
//! policy, showing where hybrid context-sensitivity pays off at the
//! *client* level.
//!
//! Each fixture group routes a tainted and a clean value through one
//! shared static identity helper. Policies that merge static calls into
//! the caller context (`1obj`, `2obj+H`, `2type+H`, …) conflate the two
//! and raise false alarms in all three clients; the hybrids and the
//! call-site-sensitive analyses keep them apart.
//!
//! ```text
//! cargo run --release --example check_clients
//! ```

use pta_clients::{client_metrics, run_check, CheckSpec, ClientBackend};
use pta_core::{Analysis, AnalysisSession};

fn main() {
    let mut cfg = pta_workload::dacapo_config("luindex", 0.1);
    cfg.taint_groups = 3;
    let program = pta_workload::generate(&cfg);
    let spec = CheckSpec::parse(pta_workload::TAINT_SPEC).unwrap();
    println!(
        "{:12} {:>6} {:>7} {:>9}",
        "analysis", "taint", "escape", "nullness"
    );
    for analysis in Analysis::ALL {
        let result = AnalysisSession::open(program.clone())
            .policy(analysis)
            .solve();
        let report = run_check(&program, &result, &spec, ClientBackend::CrossValidated);
        let m = client_metrics(&report);
        println!(
            "{:12} {:>6} {:>7} {:>9}",
            analysis.to_string(),
            m.taint_findings,
            m.escape_findings,
            m.nullness_findings
        );
    }
}
