//! Implementing the paper's §6 "future work" with the `ContextPolicy`
//! trait: a context that *adapts its shape more aggressively*.
//!
//! The paper closes by suggesting that `MergeStatic` "could examine the
//! context passed to [it] and create different kinds of contexts in
//! return — for instance, the context of a statically called method could
//! have a different form (e.g., more elements) for a call made inside
//! another statically called method vs. a call made in a virtual method."
//!
//! `AdaptiveTwoObj` below does exactly that, on top of S-2obj+H's shape:
//!
//! - static call from a *virtual* method: behave like S-2obj+H,
//!   `triple(first(ctx), invo, second(ctx))`;
//! - static call from a *statically called* method (detected by the
//!   invocation site already in slot 1): spend the whole context on call
//!   sites, `triple(invo, second(ctx), first(ctx))`-style rotation keeping
//!   the two most recent sites *and* the object anchor.
//!
//! The example runs it against 2obj+H and S-2obj+H over a DaCapo workload
//! and prints the precision/cost comparison — the experiment the paper
//! proposes but does not run.
//!
//! Run with: `cargo run --release --example custom_policy [workload]`

use pta_clients::precision_metrics;
use pta_core::{
    ctx3, hctx1, Analysis, AnalysisSession, ContextPolicy, Ctx, CtxElem, CtxElemKind, HeapCtx,
};
use pta_ir::{HeapId, InvoId, Program};
use pta_workload::dacapo_workload;

/// S-2obj+H with the paper's proposed aggressive adaptation for
/// static-within-static calls.
#[derive(Debug, Clone, Copy)]
struct AdaptiveTwoObj;

impl ContextPolicy for AdaptiveTwoObj {
    fn name(&self) -> &str {
        "adaptive-2obj+H"
    }

    fn record(&self, _heap: HeapId, ctx: Ctx, _program: &Program) -> HeapCtx {
        // Same heap context as 2obj+H: the receiver of the allocating
        // method (its most significant context element).
        hctx1(ctx[0])
    }

    fn merge(&self, heap: HeapId, hctx: HeapCtx, _invo: InvoId, _ctx: Ctx, _p: &Program) -> Ctx {
        // Virtual calls: exactly 2obj+H / S-2obj+H.
        ctx3(CtxElem::heap(heap), hctx[0], CtxElem::STAR)
    }

    fn merge_static(&self, invo: InvoId, ctx: Ctx, _program: &Program) -> Ctx {
        let caller_was_static = matches!(ctx[1].kind(), CtxElemKind::Invo(_));
        if caller_was_static {
            // Static inside static: keep the object anchor, the new site,
            // and the *oldest* retained element rather than the nearest
            // one — long-range discrimination along static call chains,
            // where S-2obj+H only remembers the immediately enclosing site.
            ctx3(ctx[0], CtxElem::invo(invo), ctx[2])
        } else {
            // First static call from a virtual method: S-2obj+H's shape.
            ctx3(ctx[0], CtxElem::invo(invo), ctx[1])
        }
    }
}

/// A second adaptation: *shallower* contexts for static-in-static (drop the
/// object anchor entirely, keeping only call sites), to show the trait also
/// expresses cost-saving adaptations.
#[derive(Debug, Clone, Copy)]
struct CallSiteTailTwoObj;

impl ContextPolicy for CallSiteTailTwoObj {
    fn name(&self) -> &str {
        "callsite-tail-2obj+H"
    }

    fn record(&self, _heap: HeapId, ctx: Ctx, _program: &Program) -> HeapCtx {
        hctx1(ctx[0])
    }

    fn merge(&self, heap: HeapId, hctx: HeapCtx, _invo: InvoId, _ctx: Ctx, _p: &Program) -> Ctx {
        ctx3(CtxElem::heap(heap), hctx[0], CtxElem::STAR)
    }

    fn merge_static(&self, invo: InvoId, ctx: Ctx, _program: &Program) -> Ctx {
        if matches!(ctx[1].kind(), CtxElemKind::Invo(_)) {
            // Deep static chain: call sites only (cheaper, coarser anchor).
            ctx3(CtxElem::invo(invo), ctx[1], CtxElem::STAR)
        } else {
            ctx3(ctx[0], CtxElem::invo(invo), ctx[1])
        }
    }
}

fn report<P: ContextPolicy + Clone + 'static>(program: &Program, policy: &P) {
    let start = std::time::Instant::now();
    let result = AnalysisSession::open(program.clone())
        .policy(policy.clone())
        .solve();
    let elapsed = start.elapsed().as_secs_f64();
    let m = precision_metrics(program, &result);
    println!(
        "{:>22} | {:>8.3}s  vpt {:>9}  edges {:>6}  poly {:>5}  casts {:>5}/{:<5}  ctxs {:>6}",
        policy.name(),
        elapsed,
        m.ctx_var_points_to,
        m.call_graph_edges,
        m.poly_virtual_calls,
        m.may_fail_casts,
        m.reachable_casts,
        m.contexts
    );
}

fn main() {
    let workload = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "jython".to_owned());
    let program = dacapo_workload(&workload, 1.0);
    println!(
        "workload {workload}: {} methods — exploring the paper's §6 design space\n",
        program.method_count()
    );
    report(&program, &Analysis::TwoObjH);
    report(&program, &Analysis::STwoObjH);
    report(&program, &AdaptiveTwoObj);
    report(&program, &CallSiteTailTwoObj);
    println!("\nBoth adaptive policies are ~30 lines each: the ContextPolicy trait is");
    println!("the paper's 'convenient implementation to explore the space' (§6).");
}
