//! Cast-safety checker: a deserialization-style program whose downcasts can
//! only be proven safe with the right kind of context.
//!
//! The program wraps typed messages in shared envelope containers through a
//! static helper and casts them back after retrieval — the idiom behind the
//! paper's may-fail-casts metric. Watch the warnings disappear as context
//! grows richer: `insens` fails everything, `1obj` proves the per-receiver
//! casts, `2obj+H` additionally proves the wrapper casts (heap context),
//! and the selective hybrid `S-2obj+H` also proves the static-helper casts.
//!
//! Run with: `cargo run --example cast_checker`

use pta_clients::may_fail_casts;
use pta_core::{Analysis, AnalysisSession};
use pta_lang::parse_program;

const SOURCE: &str = r#"
    class Object {}
    class Request : Object {}
    class Response : Object {}

    class Envelope : Object {
        field payload;
        method put(x) { this.payload = x; }
        method take() { r = this.payload; return r; }
    }

    class Wire : Object {
        // Shared wrapper: one envelope allocation site for the whole
        // program. Only a context-sensitive heap keeps different callers'
        // envelopes apart.
        static seal(x) {
            e = new Envelope;
            e.put(x);
            return e;
        }
        // Shared identity conversion: only an invocation-site-aware
        // MergeStatic keeps different call sites apart.
        static convert(x) { return x; }
    }

    class Client : Object {
        // Instance method: under object-sensitive analyses its context is
        // the client's allocation site, which becomes the envelope's heap
        // context inside `seal`.
        method send(x) {
            e = Wire.seal(x);
            r = e.take();
            return r;
        }
    }

    class Main : Object {
        static main() {
            req = new Request;
            resp = new Response;

            // Heap-context casts: each client seals its own value through
            // the same shared Envelope allocation site.
            cl1 = new Client;
            cl2 = new Client;
            rq = cl1.send(req);
            rp = cl2.send(resp);
            c1 = (Request) rq;
            c2 = (Response) rp;

            // Static-call casts: two conversions from one method.
            k1 = Wire.convert(req);
            k2 = Wire.convert(resp);
            c3 = (Request) k1;
            c4 = (Response) k2;
        }
    }

    entry Main.main;
"#;

fn main() {
    let program = parse_program(SOURCE).expect("cast_checker program parses");
    println!("checking {} casts under each analysis:\n", 4);

    for analysis in [
        Analysis::Insens,
        Analysis::OneCall,
        Analysis::OneObj,
        Analysis::TwoObjH,
        Analysis::STwoObjH,
        Analysis::UTwoObjH,
    ] {
        let result = AnalysisSession::open(program.clone())
            .policy(analysis)
            .solve();
        let (failing, total) = may_fail_casts(&program, &result);
        println!(
            "=== {analysis}: {} of {total} casts may fail",
            failing.len()
        );
        for cast in &failing {
            println!(
                "  warning: cast to {} in {} (instruction {}) may fail: {} incompatible object(s) reach `{}`",
                program.type_name(cast.target_type),
                program.method_qualified_name(cast.method),
                cast.instr_index,
                cast.incompatible_objects,
                program.var_name(cast.from),
            );
        }
        println!();
    }

    println!("Shape to notice (the paper's Table 1, in miniature):");
    println!("- insens:   all 4 fail.");
    println!("- 1call:    the convert casts pass (call-site context), seal casts fail.");
    println!("- 1obj:     everything still fails: no heap context, static calls copy ctx.");
    println!("- 2obj+H:   the seal casts pass (context-sensitive heap).");
    println!("- S-2obj+H: all 4 pass — heap context plus call-site-aware static calls.");
}
