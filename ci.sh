#!/usr/bin/env bash
# Local CI gate: formatting, lints, and the tier-1 suite.
# Usage: ./ci.sh
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> tier-1: cargo build --release"
cargo build --release

echo "==> tier-1: cargo test"
cargo test -q

# Non-gating smoke-perf: run the table1 matrix on the two smallest
# workloads, dump JSON, and re-parse it with the harness's own checker
# (12 analyses x 2 workloads = 24 cells). Failures warn but never block —
# this catches harness bit-rot, not performance regressions.
echo "==> smoke-perf (non-gating)"
if ./target/release/table1 --workloads luindex,lusearch --reps 1 \
      --json /tmp/bench.json >/dev/null 2>&1 \
   && ./target/release/table1 --check /tmp/bench.json --expect-cells 24; then
  echo "    smoke-perf OK"
else
  echo "    WARNING: smoke-perf failed (non-gating); re-run manually:"
  echo "    ./target/release/table1 --workloads luindex,lusearch --reps 1 --json /tmp/bench.json"
fi

echo "==> CI green"
