#!/usr/bin/env bash
# Local CI gate: formatting, lints, and the tier-1 suite.
# Usage: ./ci.sh
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> tier-1: cargo build --release"
cargo build --release

echo "==> tier-1: cargo test"
cargo test -q

# Gating: the fault-injection / governance suite (all four Termination
# variants, budget determinism, mid-run demotion soundness).
echo "==> tier-1: governance + fault-injection suite"
cargo test -q -p pta-core --test governance

# Gating: starved-budget smoke. A deliberately exhausted step budget
# under --degrade must still exit 0 and report its demotions (W007).
echo "==> tier-1: starved-budget smoke (--max-steps 1000 --degrade)"
./target/release/pta workload luindex --scale 0.3 --print > /tmp/ci-starved.jir
./target/release/pta analyze /tmp/ci-starved.jir --analysis 2obj+H \
  --max-steps 1000 --degrade > /tmp/ci-starved.out
grep -q 'W007' /tmp/ci-starved.out
grep -q 'degraded:' /tmp/ci-starved.out
echo "    starved smoke OK: degraded run completed with demotions reported"

# Non-gating smoke-perf: run the table1 matrix on the two smallest
# workloads, dump JSON, and re-parse it with the harness's own checker
# (12 analyses x 2 workloads = 24 cells). Failures warn but never block —
# this catches harness bit-rot, not performance regressions.
echo "==> smoke-perf (non-gating)"
if cargo build --release -q -p pta-bench \
   && ./target/release/table1 --workloads luindex,lusearch --reps 1 \
      --cell-timeout 300 --json /tmp/bench.json >/dev/null 2>&1 \
   && ./target/release/table1 --check /tmp/bench.json --expect-cells 24; then
  echo "    smoke-perf OK"
else
  echo "    WARNING: smoke-perf failed (non-gating); re-run manually:"
  echo "    ./target/release/table1 --workloads luindex,lusearch --reps 1 --json /tmp/bench.json"
fi

echo "==> CI green"
