#!/usr/bin/env bash
# Local CI gate: formatting, lints, and the tier-1 suite.
# Usage: ./ci.sh
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> tier-1: cargo build --release"
cargo build --release

echo "==> tier-1: cargo test"
cargo test -q

# Gating: the fault-injection / governance suite (all four Termination
# variants, budget determinism, mid-run demotion soundness).
echo "==> tier-1: governance + fault-injection suite"
cargo test -q -p pta-core --test governance

# Gating: starved-budget smoke. A deliberately exhausted step budget
# under --degrade must still exit 0 and report its demotions (W007).
echo "==> tier-1: starved-budget smoke (--max-steps 1000 --degrade)"
./target/release/pta workload luindex --scale 0.3 --print > /tmp/ci-starved.jir
./target/release/pta analyze /tmp/ci-starved.jir --analysis 2obj+H \
  --max-steps 1000 --degrade > /tmp/ci-starved.out
grep -q 'W007' /tmp/ci-starved.out
grep -q 'degraded:' /tmp/ci-starved.out
echo "    starved smoke OK: degraded run completed with demotions reported"

# Gating: parallel cross-validation. The sharded solver must produce
# byte-identical JSON reports at --threads 4 and --threads 1 (wall-clock
# and the reported worker count are the only legitimate diffs, so both
# are stripped before comparing). The in-process equivalence suite
# (every policy x every DaCapo config) gates alongside it.
echo "==> tier-1: parallel equivalence (--threads 4 vs --threads 1)"
cargo test -q -p pta-core --test session_equivalence
./target/release/pta workload luindex --scale 0.3 --print > /tmp/ci-par.jir
./target/release/pta analyze /tmp/ci-par.jir --analysis 2obj+H --threads 1 \
  --format json | sed -E 's/"time_secs":[0-9.eE+-]+/"time_secs":0/; s/"threads":[0-9]+/"threads":0/' \
  > /tmp/ci-par-t1.json
./target/release/pta analyze /tmp/ci-par.jir --analysis 2obj+H --threads 4 \
  --format json | sed -E 's/"time_secs":[0-9.eE+-]+/"time_secs":0/; s/"threads":[0-9]+/"threads":0/' \
  > /tmp/ci-par-t4.json
cmp /tmp/ci-par-t1.json /tmp/ci-par-t4.json
echo "    parallel equivalence OK: --threads 4 JSON is byte-identical to --threads 1"

# Gating: observability smoke. A traced parallel run on a DaCapo config
# must produce a Chrome trace-event timeline carrying the session solve
# span and per-shard BSP spans (full JSON validation of trace files
# lives in tests/observability.rs, which gates via `cargo test` above),
# and `pta explain` must print a derivation chain on the motivating
# example.
echo "==> tier-1: observability smoke (--trace + pta explain)"
./target/release/pta workload luindex --scale 0.3 --print > /tmp/ci-obs.jir
./target/release/pta analyze /tmp/ci-obs.jir --analysis S-2obj+H --threads 4 \
  --trace /tmp/ci-obs.trace.json > /dev/null
grep -q '"traceEvents"' /tmp/ci-obs.trace.json
grep -q '"name":"solve"' /tmp/ci-obs.trace.json
grep -q '"name":"drain"' /tmp/ci-obs.trace.json
grep -q 'shard-0' /tmp/ci-obs.trace.json
./target/release/pta explain examples/programs/motivating.jir r1 'Object#' \
  > /tmp/ci-obs-explain.out
grep -q 'allocation site' /tmp/ci-obs-explain.out
echo "    observability smoke OK: trace has session/shard spans; explain printed a chain"

# Gating: hash-consed sharing memory smoke. At scale 64, 2obj+H must
# complete within a fixed --max-memory budget that the unshared
# representation (--no-share) cannot fit: the budget sits between the
# two deterministic memory-model peaks, so the default run finishes
# `complete` while --no-share trips `memory_cap`. Both runs must also
# report byte-identical points-to facts (sharing is representation-only).
echo "==> tier-1: sharing memory smoke (scale 64, --max-memory 19600K)"
./target/release/pta workload luindex --scale 64 --print > /tmp/ci-share.jir
./target/release/pta analyze /tmp/ci-share.jir --analysis 2obj+H \
  --max-memory 19600K --format json --stats > /tmp/ci-share-on.json
# A tripped budget is a partial run, which `pta analyze` reports with
# exit code 3 — expected here, anything else is a real failure.
rc=0
./target/release/pta analyze /tmp/ci-share.jir --analysis 2obj+H \
  --max-memory 19600K --no-share --format json > /tmp/ci-share-off.json || rc=$?
test "$rc" -eq 3
grep -q '"termination":"complete"' /tmp/ci-share-on.json
grep -q '"termination":"memory_cap"' /tmp/ci-share-off.json
if grep -q '"sets_shared":0[,}]' /tmp/ci-share-on.json; then
  echo "    ERROR: the budgeted run never shared a set; the smoke is vacuous"
  exit 1
fi
./target/release/pta analyze /tmp/ci-share.jir --analysis 2obj+H --metrics \
  --format json | sed -E 's/"time_secs":[0-9.eE+-]+/"time_secs":0/' \
  > /tmp/ci-share-full-on.json
./target/release/pta analyze /tmp/ci-share.jir --analysis 2obj+H --metrics \
  --no-share --format json | sed -E 's/"time_secs":[0-9.eE+-]+/"time_secs":0/' \
  > /tmp/ci-share-full-off.json
cmp /tmp/ci-share-full-on.json /tmp/ci-share-full-off.json
echo "    sharing smoke OK: shared rep fits the budget, unshared trips it, results identical"

# Gating: incremental-equivalence smoke. Replay a deterministic 5-edit
# stream over the motivating example through a retained AnalysisSession
# and byte-compare every incremental fixpoint against a from-scratch
# solve (`pta update` exits non-zero on any divergence or fallback).
echo "==> tier-1: incremental-equivalence smoke (pta update, 5 edits)"
./target/release/pta update examples/programs/motivating.jir --edits 5 \
  > /tmp/ci-incr.out
grep -q 'identical to scratch' /tmp/ci-incr.out
echo "    incremental smoke OK: 5 applies byte-identical to scratch solves"

# Non-gating incremental-maintenance tier: regenerate the
# BENCH_incremental.json experiment (single-method edits at scale 64
# under 2obj+H) and flag drift against the checked-in artifact.
# Wall-clock and the resulting speedup are host-dependent, so this
# warns instead of gating; the final fact counts are what the artifact
# exists to pin. Refresh with:
#   ./target/release/incrbench --edits 20 --reps 3 --json BENCH_incremental.json
echo "==> incremental tier (non-gating)"
if cargo build --release -q -p pta-bench \
   && ./target/release/incrbench --edits 20 --reps 1 --min-speedup 10 \
        --json /tmp/bench-incr.json >/dev/null 2>&1; then
  if [ "$(grep -o '"final_ctx_tuples":[0-9]*' /tmp/bench-incr.json)" \
     = "$(grep -o '"final_ctx_tuples":[0-9]*' BENCH_incremental.json)" ]; then
    echo "    incremental tier OK: matches BENCH_incremental.json"
  else
    echo "    WARNING: incremental results drifted from BENCH_incremental.json (non-gating);"
    echo "    regenerate it with the incrbench command above and commit the diff."
  fi
else
  echo "    WARNING: incremental tier failed or speedup under 10x (non-gating);"
  echo "    re-run manually: ./target/release/incrbench --edits 20 --reps 1 --min-speedup 10"
fi

# Non-gating scale-256 tier: regenerate the BENCH_scale.json experiment
# (share on/off under the fixed 100M model budget) and flag drift against
# the checked-in artifact. Wall-clock and peak RSS are host-dependent, so
# this warns instead of gating; the status/sets_shared expectations are
# what the artifact exists to record. Refresh with:
#   ./target/release/table1 --workloads luindex --analyses 2obj+H \
#     --scale 256 --reps 1 --jobs 1 --share on,off --max-memory 100M \
#     --json BENCH_scale.json
echo "==> scale-256 tier (non-gating)"
if ./target/release/table1 --workloads luindex --analyses 2obj+H \
     --scale 256 --reps 1 --jobs 1 --share on,off --max-memory 100M \
     --json /tmp/bench-scale.json >/dev/null 2>&1 \
   && ./target/release/table1 --check /tmp/bench-scale.json --expect-cells 2 \
   && grep -q '"status":"ok"' /tmp/bench-scale.json \
   && grep -q '"status":"memory_cap"' /tmp/bench-scale.json; then
  if [ "$(grep -o '"sensitive_var_points_to":[0-9]*' /tmp/bench-scale.json | head -1)" \
     = "$(grep -o '"sensitive_var_points_to":[0-9]*' BENCH_scale.json | head -1)" ]; then
    echo "    scale-256 tier OK: matches BENCH_scale.json"
  else
    echo "    WARNING: scale-256 results drifted from BENCH_scale.json (non-gating);"
    echo "    regenerate it with the table1 command above and commit the diff."
  fi
else
  echo "    WARNING: scale-256 tier failed (non-gating); re-run manually with the table1 command above."
fi

# Non-gating smoke-perf: run the table1 matrix on the two smallest
# workloads, dump JSON, and re-parse it with the harness's own checker
# (12 analyses x 2 workloads = 24 cells). Failures warn but never block —
# this catches harness bit-rot, not performance regressions.
echo "==> smoke-perf (non-gating)"
if cargo build --release -q -p pta-bench \
   && ./target/release/table1 --workloads luindex,lusearch --reps 1 \
      --cell-timeout 300 --json /tmp/bench.json >/dev/null 2>&1 \
   && ./target/release/table1 --check /tmp/bench.json --expect-cells 24; then
  echo "    smoke-perf OK"
else
  echo "    WARNING: smoke-perf failed (non-gating); re-run manually:"
  echo "    ./target/release/table1 --workloads luindex,lusearch --reps 1 --json /tmp/bench.json"
fi

# Non-gating parallel speedup row: one 2obj+H cell at --threads 1 vs 4,
# validated with the same checker. Correctness (identical results across
# thread counts) gates above; wall-clock never does — speedup depends on
# the host's core count (a single-core runner legitimately shows <1x).
echo "==> parallel speedup row (non-gating)"
if ./target/release/table1 --workloads chart --analyses 2obj+H --scale 6 \
     --reps 1 --threads 1,4 --cell-timeout 300 --json /tmp/bench-par.json \
     >/dev/null 2>&1 \
   && ./target/release/table1 --check /tmp/bench-par.json --expect-cells 2; then
  echo "    parallel speedup row OK (see /tmp/bench-par.json; nproc=$(nproc))"
else
  echo "    WARNING: parallel speedup row failed (non-gating); re-run manually:"
  echo "    ./target/release/table1 --workloads chart --analyses 2obj+H --scale 6 --threads 1,4 --json /tmp/bench-par.json"
fi

# Gating rule-profile drift check: re-run the profiled config behind
# BENCH_profile.json and diff per-rule fire counts with profdiff. The
# solver is deterministic, so the 5% tolerance only absorbs deliberate
# small rule-mix shifts; real drift fails the build. When a change to
# rule behaviour is *intended*, refresh the baseline in the same commit:
#   ./target/release/table1 --workloads luindex,lusearch \
#     --analyses insens,1obj,S-2obj+H --reps 1 --jobs 1 --profile \
#     --json BENCH_profile.json
# then re-run ./ci.sh and review the BENCH_profile.json diff alongside
# the code change (see DESIGN.md §11 for the profile format).
echo "==> rule-profile drift gate (profdiff --tolerance 5)"
./target/release/table1 --workloads luindex,lusearch \
  --analyses insens,1obj,S-2obj+H --reps 1 --jobs 1 --profile \
  --json /tmp/bench-profile.json >/dev/null
if ./target/release/profdiff BENCH_profile.json /tmp/bench-profile.json --tolerance 5; then
  echo "    rule-profile gate OK: fire counts within 5% of the checked-in baseline"
else
  echo "    ERROR: rule profiles drifted from BENCH_profile.json."
  echo "    If the change is intended, regenerate the baseline and commit it:"
  echo "    ./target/release/table1 --workloads luindex,lusearch --analyses insens,1obj,S-2obj+H --reps 1 --jobs 1 --profile --json BENCH_profile.json"
  exit 1
fi

# Gating: `pta check` client-suite smoke on the motivating example. The
# spec marks Client.main a source and C.foo's argument a sink; exactly
# the two conflation-visible findings must appear (W020 x2), the JSON
# must be byte-stable, and the Datalog client back end must agree with
# the direct fixpoints byte-for-byte.
echo "==> tier-1: pta check smoke (motivating example, direct vs datalog)"
./target/release/pta check examples/programs/motivating.jir \
  --spec examples/specs/motivating.spec --format json \
  --client-backend direct > /tmp/ci-check-direct.json
./target/release/pta check examples/programs/motivating.jir \
  --spec examples/specs/motivating.spec --format json \
  --client-backend datalog > /tmp/ci-check-datalog.json
cmp /tmp/ci-check-direct.json /tmp/ci-check-datalog.json
test "$(grep -o '"code":"W020"' /tmp/ci-check-direct.json | wc -l)" -eq 2
test "$(grep -o '"code":"' /tmp/ci-check-direct.json | wc -l)" -eq 2  # and nothing else
echo "    pta check smoke OK: 2 taint findings, client back ends byte-identical"

# Gating: serve smoke. Start the resident daemon over stdio, exercise all
# four query kinds plus health, request shutdown, and require a graceful
# drain (the pipeline fails unless `pta serve` exits 0). The cast site is
# a fixed property of the deterministic luindex generator (visible via
# `pta analyze --casts`).
echo "==> tier-1: serve smoke (daemon lifecycle over stdio)"
./target/release/pta workload luindex --scale 0.2 --print > /tmp/ci-serve.jir
printf '%s\n' \
  '{"id":1,"op":"points_to","var":"r"}' \
  '{"id":2,"op":"devirt","invo":0}' \
  '{"id":3,"op":"cast_check","method":"Service0.step0","instr":2}' \
  '{"id":4,"op":"findings","var":"r"}' \
  '{"id":5,"op":"health"}' \
  '{"id":6,"op":"shutdown"}' \
  | ./target/release/pta serve /tmp/ci-serve.jir --policy S-2obj+H > /tmp/ci-serve.out
for pat in '"op":"points_to"' '"op":"devirt"' '"may_fail":true' \
           '"op":"findings"' '"status":"ok"' '"stopping":true'; do
  grep -q "$pat" /tmp/ci-serve.out
done
test "$(grep -c '"ok":true' /tmp/ci-serve.out)" -eq 6
echo "    serve smoke OK: four query kinds answered, graceful drain exited 0"

# Gating: telemetry smoke. Exercise three query ops plus the `metrics`
# op over stdio and assert exact counter values in both renderings
# (the JSON registry dump and the escaped Prometheus text), then probe
# the HTTP exposition endpoint of a TCP-only daemon with a raw GET over
# /dev/tcp and require a well-formed scrape. Counter values are exact:
# per-op request counts are deterministic functions of the request
# stream.
echo "==> tier-1: telemetry smoke (metrics op + Prometheus endpoint)"
printf '%s\n' \
  '{"id":1,"op":"points_to","var":"r"}' \
  '{"id":2,"op":"points_to","var":"r"}' \
  '{"id":3,"op":"devirt","invo":0}' \
  '{"id":4,"op":"metrics"}' \
  '{"id":5,"op":"shutdown"}' \
  | ./target/release/pta serve /tmp/ci-serve.jir --policy S-2obj+H \
      --events /tmp/ci-serve-events.jsonl > /tmp/ci-serve-metrics.out
grep -q '"name":"pta_requests_total","labels":{"op":"points_to"},"value":2' /tmp/ci-serve-metrics.out
grep -q '"name":"pta_requests_total","labels":{"op":"devirt"},"value":1' /tmp/ci-serve-metrics.out
grep -q '"name":"pta_solve_total","labels":{},"value":1' /tmp/ci-serve-metrics.out
grep -q 'pta_requests_total{op=\\"points_to\\"} 2' /tmp/ci-serve-metrics.out
grep -q '"event":"daemon_start"' /tmp/ci-serve-events.jsonl
grep -q '"event":"request","id":1,"op":"points_to","status":"ok"' /tmp/ci-serve-events.jsonl
grep -q '"event":"shutdown","forced":false' /tmp/ci-serve-events.jsonl
rm -f /tmp/ci-metrics-port /tmp/ci-serve-port
./target/release/pta serve /tmp/ci-serve.jir --no-stdin \
  --port 0 --port-file /tmp/ci-serve-port \
  --metrics-addr 127.0.0.1:0 --metrics-port-file /tmp/ci-metrics-port \
  2>/dev/null & SERVE_PID=$!
for _ in $(seq 1 100); do
  [ -s /tmp/ci-metrics-port ] && [ -s /tmp/ci-serve-port ] && break
  sleep 0.1
done
# One answered query, *then* the scrape: the worker records the latency
# observation before the response line is written, so by the time the
# client has the answer the histogram deterministically holds 1 sample.
exec 4<>"/dev/tcp/127.0.0.1/$(cat /tmp/ci-serve-port)"
printf '{"id":8,"op":"points_to","var":"r"}\n' >&4
read -r answer_line <&4
echo "$answer_line" | grep -q '"ok":true'
exec 3<>"/dev/tcp/127.0.0.1/$(cat /tmp/ci-metrics-port)"
printf 'GET /metrics HTTP/1.1\r\nHost: localhost\r\n\r\n' >&3
SCRAPE=$(cat <&3)
exec 3<&- 3>&-
echo "$SCRAPE" | head -n 1 | grep -q '200 OK'
echo "$SCRAPE" | grep -q '# TYPE pta_request_latency_us histogram'
echo "$SCRAPE" | grep -q '^pta_request_latency_us_count{op="points_to"} 1$'
echo "$SCRAPE" | grep -q '# TYPE pta_solver_vpt_inserted_total counter'
echo "$SCRAPE" | grep -q '^pta_solve_total 1$'
printf '{"id":9,"op":"shutdown"}\n' >&4
read -r _ack <&4 || true
exec 4<&- 4>&-
wait "$SERVE_PID"
echo "    telemetry smoke OK: exact counters in both renderings, endpoint scraped"

# Non-gating: 500-request fault-injection soak. Replays a seeded mixed
# query stream (2% injected faults: delays, forced cancellations, budget
# exhaustion, garbled responses) from 4 concurrent connections against
# the in-process daemon and byte-compares every response with a fresh
# batch oracle; also asserts zero hangs, bounded cancellation latency,
# and a clean drain. Deterministic, but timing-sensitive on loaded
# runners, so it warns instead of gating.
echo "==> serve fault-injection soak (non-gating)"
if ./target/release/soak --requests 500 --seed 42 --fault-rate 0.02 \
     > /tmp/ci-soak.out 2>&1; then
  tail -n 3 /tmp/ci-soak.out | sed 's/^/    /'
else
  echo "    WARNING: serve soak failed (non-gating); re-run manually:"
  echo "    ./target/release/soak --requests 500 --seed 42 --fault-rate 0.02"
  tail -n 5 /tmp/ci-soak.out | sed 's/^/    /'
fi

# Non-gating: serve telemetry drift. Reruns the soak single-threaded
# (the deterministic configuration BENCH_serve.json pins) and compares
# the counter digest of the daemon's Prometheus exposition against the
# checked-in baseline. The digest covers counters only — deterministic
# sums of per-request increments decided by (seed, id) — so any
# mismatch means the telemetry or the request lifecycle changed
# observably, not that the machine is slower.
echo "==> serve telemetry drift vs BENCH_serve.json (non-gating)"
if ./target/release/soak --requests 500 --seed 42 --fault-rate 0.02 \
     --threads 1 --json /tmp/bench-serve.json > /tmp/ci-soak-drift.out 2>&1; then
  WANT=$(grep -o '"metrics_digest":"[0-9a-f]*"' BENCH_serve.json)
  GOT=$(grep -o '"metrics_digest":"[0-9a-f]*"' /tmp/bench-serve.json)
  if [ "$WANT" = "$GOT" ]; then
    echo "    telemetry drift OK: counter digest matches the baseline ($GOT)"
  else
    echo "    WARNING: telemetry counter digest drifted (non-gating):"
    echo "    baseline $WANT, current $GOT"
    echo "    If the change is intended, regenerate the baseline and commit it:"
    echo "    ./target/release/soak --requests 500 --seed 42 --fault-rate 0.02 --threads 1 --json BENCH_serve.json"
  fi
else
  echo "    WARNING: telemetry drift soak failed (non-gating)"
  tail -n 5 /tmp/ci-soak-drift.out | sed 's/^/    /'
fi

echo "==> CI green"
