//! Machine-readable reports for `pta analyze`.
//!
//! `pta analyze --format json` emits one JSON object per analysis run (an
//! array when several `--analysis` flags are given) so scripts can consume
//! results without scraping the human-oriented text output. The solver's
//! always-on counters ride along under the `"stats"` key when `--stats` is
//! passed (with a `"governance"` outcome object — budget consumed,
//! demotions applied — nested after any `"shard_stats"`), and the per-rule
//! evaluation profile under `"profile"` when `--profile` is. Every report carries the run's `"termination"` status
//! (`complete`, `deadline_exceeded`, `step_limit`, `memory_cap`); runs that
//! gracefully degraded also list the demoted methods under
//! `"demoted_sites"`. Every object opens with a `"schema_version"` field
//! ([`SCHEMA_VERSION`]) so consumers can detect format changes; v1 payloads
//! (before the version, `threads` and `shard_stats` fields existed) carry
//! no version field at all. Hand-rolled JSON: the toolchain runs fully
//! offline, so there is no serde; the shape is locked down by
//! `tests/cli_report.rs`.

use pta_clients::ExperimentMetrics;
use pta_core::PointsToResult;

/// Version of the per-run JSON object emitted by [`AnalysisReport::to_json`].
///
/// History: v1 (unversioned) predates `schema_version`, `threads` and
/// `shard_stats`; v2 added all three.
pub const SCHEMA_VERSION: u32 = 2;

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Everything one `pta analyze` run wants to report. `time_secs` is passed
/// in (not measured here) so tests can pin it and compare golden output.
pub struct AnalysisReport<'a> {
    /// Paper-style analysis name (e.g. `S-2obj+H`).
    pub analysis: &'a str,
    /// `"specialized"` or `"datalog"`.
    pub backend: &'a str,
    /// Wall-clock solve time.
    pub time_secs: f64,
    /// Dense-solver worker count the run was configured with (`1` =
    /// sequential; the Datalog back end always reports `1`).
    pub threads: usize,
    /// The solved result.
    pub result: &'a PointsToResult,
    /// Table 1 metric set, when `--metrics` was passed.
    pub metrics: Option<&'a ExperimentMetrics>,
    /// Include the solver counters under `"stats"` (`--stats`).
    pub include_stats: bool,
    /// Include the per-rule evaluation profile under `"profile"`
    /// (`--profile`); silently absent when the result carries none.
    pub include_profile: bool,
    /// Methods demoted to the context-insensitive constructor by graceful
    /// degradation, as `(qualified name, context fan-out at demotion)`.
    /// Empty for runs that never degraded.
    pub demoted: &'a [(String, u32)],
    /// Peak heap bytes measured by the binary's counting allocator
    /// ([`pta_govern::memtrack`]); `None` outside `--stats` runs so the
    /// default report stays byte-reproducible across machines.
    pub peak_rss_bytes: Option<u64>,
}

impl AnalysisReport<'_> {
    /// Renders the report as a single JSON object.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\"schema_version\":{},\"analysis\":\"{}\",\"backend\":\"{}\",\
             \"threads\":{},\"time_secs\":{},\
             \"reachable_methods\":{},\"call_graph_edges\":{},\"termination\":\"{}\"",
            SCHEMA_VERSION,
            esc(self.analysis),
            esc(self.backend),
            self.threads,
            if self.time_secs.is_finite() {
                format!("{}", self.time_secs)
            } else {
                "null".to_owned()
            },
            self.result.reachable_method_count(),
            self.result.call_graph_edge_count(),
            self.result.termination().as_str(),
        );
        if !self.demoted.is_empty() {
            let sites: Vec<String> = self
                .demoted
                .iter()
                .map(|(name, fanout)| {
                    format!("{{\"method\":\"{}\",\"fanout\":{fanout}}}", esc(name))
                })
                .collect();
            out.push_str(&format!(",\"demoted_sites\":[{}]", sites.join(",")));
        }
        if let Some(m) = self.metrics {
            out.push_str(&format!(
                ",\"metrics\":{{\"avg_objs_per_var\":{},\"poly_v_calls\":{},\
                 \"reachable_v_calls\":{},\"may_fail_casts\":{},\"reachable_casts\":{},\
                 \"sensitive_var_points_to\":{},\"contexts\":{},\"heap_contexts\":{},\
                 \"uncaught_exception_sites\":{}}}",
                m.avg_var_points_to,
                m.poly_virtual_calls,
                m.reachable_virtual_calls,
                m.may_fail_casts,
                m.reachable_casts,
                m.ctx_var_points_to,
                m.contexts,
                m.heap_contexts,
                m.uncaught_exception_sites,
            ));
        }
        if self.include_stats {
            out.push_str(&format!(
                ",\"stats\":{}",
                self.result.solver_stats().to_json()
            ));
            // Parallel runs also expose the per-shard breakdown, in shard
            // order, so imbalance is visible without rerunning.
            if !self.result.shard_stats().is_empty() {
                let shards: Vec<String> = self
                    .result
                    .shard_stats()
                    .iter()
                    .map(pta_core::SolverStats::to_json)
                    .collect();
                out.push_str(&format!(",\"shard_stats\":[{}]", shards.join(",")));
            }
            // Governance outcome: how much of the budget the run consumed
            // and whether graceful degradation fired. Still schema v2 —
            // consumers treat unknown keys inside the stats block as
            // optional.
            out.push_str(&format!(
                ",\"governance\":{{\"steps_consumed\":{},\"demotions_applied\":{}}}",
                self.result.solver_stats().steps,
                self.result.solver_stats().demoted_methods,
            ));
            // Host-measured, so confined to --stats runs (still schema
            // v2: unknown keys are optional for consumers).
            if let Some(peak) = self.peak_rss_bytes {
                out.push_str(&format!(",\"peak_rss_bytes\":{peak}"));
            }
        }
        if self.include_profile {
            if let Some(p) = self.result.profile() {
                out.push_str(&format!(",\"profile\":{}", p.to_json()));
            }
        }
        out.push('}');
        out
    }
}

/// Renders several per-analysis reports as a JSON array (the `--format
/// json` top level, even for a single analysis — a stable shape is easier
/// to consume than object-or-array).
#[must_use]
pub fn reports_to_json(reports: &[AnalysisReport<'_>]) -> String {
    let body: Vec<String> = reports.iter().map(AnalysisReport::to_json).collect();
    format!("[{}]", body.join(","))
}
