//! Facade crate — re-exports the full hybrid points-to analysis stack.
//! See README.md for the architecture overview.
pub mod report;

pub use pta_clients as clients;
pub use pta_core as core;
// The one-stop entry point, hoisted to the facade root so downstream
// code can write `pta::AnalysisSession` / `hybrid_pta::AnalysisSession`.
pub use pta_core::{Analysis, AnalysisSession, Backend};
pub use pta_datalog as datalog;
pub use pta_ir as ir;
pub use pta_lang as lang;
pub use pta_workload as workload;
