//! `pta` — command-line driver for the hybrid points-to analysis.
//!
//! ```text
//! pta list                               list available analyses
//! pta analyze FILE.jir [options]         analyze a .jir program
//!     --analysis NAME      analysis to run (repeatable; default S-2obj+H)
//!     --metrics            print the full Table 1 metric set
//!     --points-to VAR      print the points-to set of every local named VAR
//!     --explain VAR        explain each object VAR may point to (derivation
//!                          chains back to the allocation)
//!     --casts              print may-fail cast warnings
//!     --devirt             print polymorphic virtual call sites
//!     --exceptions         print exception sites that may escape main
//!     --hot                print the context/tuple distribution and the
//!                          methods dominating analysis cost
//!     --stats              print the solver's internal counters (rule
//!                          firings, dedup traffic, worklist shape)
//!     --format text|json   output format (default text); json emits one
//!                          object per analysis with any --metrics under
//!                          "metrics" and any --stats under "stats"
//!     --datalog            evaluate on the Datalog back end instead
//!     --threads N          dense-solver worker count (default 1 =
//!                          sequential; 0 = all available cores); results
//!                          are identical for every N
//!     --timeout SECS       wall-clock budget (float); on expiry the run
//!                          stops cooperatively with a tagged partial result
//!     --max-steps N        fixpoint-step budget (engine rounds on --datalog)
//!     --max-memory BYTES   interned-key/tuple memory budget (K/M/G suffixes)
//!     --watermark N        per-method context fan-out watermark used by
//!                          --degrade (default 16)
//!     --degrade            on budget exhaustion, demote high-fan-out
//!                          methods to the context-insensitive constructor
//!                          and keep going instead of stopping (specialized
//!                          solver only); each demoted method is reported
//!                          as a W007 diagnostic
//!     --trace FILE         record a Chrome trace-event timeline (session
//!                          phases, per-rule spans, per-shard BSP rounds)
//!                          and write it to FILE; load in Perfetto or
//!                          chrome://tracing
//!     --profile            collect and print the per-rule evaluation
//!                          profile (fires, derived tuples, cumulative ms)
//!                          and the hottest variables by set size; rides
//!                          under "profile" with --format json
//!     --no-share           disable hash-consing of large points-to sets
//!                          (differential debugging; results are identical,
//!                          only memory and the sets_* counters change)
//! pta explain FILE.jir VAR OBJ [--analysis NAME]
//!                                        run one analysis with provenance
//!                                        tracking and print the derivation
//!                                        chain for why VAR may point to the
//!                                        allocation site labeled OBJ
//! pta workload NAME [--scale S] [--print]
//!                                        generate a synthetic DaCapo
//!                                        workload; --print emits it as .jir
//! pta update FILE.jir [options]          replay a deterministic edit stream
//!                                        against a long-lived session and
//!                                        byte-compare the incrementally
//!                                        maintained result with a
//!                                        from-scratch solve after every edit
//!     --workload NAME:SCALE edit a synthetic workload instead of a file
//!     --edits N            number of edits to replay (default 5)
//!     --seed S             edit-stream RNG seed (default 1)
//!     --analysis NAME      policy to maintain (repeatable; default S-2obj+H)
//!     --datalog            maintain on the Datalog back end instead
//!     --threads N          dense-solver worker count for both sides
//!                          (exit 0 when every step is identical, 1 on the
//!                          first divergence)
//! pta lint FILE.jir [options]            check a .jir program without
//!                                        running any analysis
//!     --format text|json   output format (default text)
//!     --deny-warnings      exit non-zero on warnings, not just errors
//!     --explain CODE       describe a diagnostic code (e.g. W003) and exit
//! pta serve [FILE.jir ...] [options]     resident analysis daemon: load the
//!                                        given programs, solve each --policy
//!                                        once, then answer line-delimited
//!                                        JSON queries on stdin/stdout (and
//!                                        --port) until shutdown (README
//!                                        "Serving" has the protocol grammar)
//!     --workload NAME:SCALE load a synthetic workload instead of (or along
//!                          with) .jir files (repeatable, as are files)
//!     --policy NAME        policy to solve at startup (repeatable; default
//!                          insens; queries name one of these)
//!     --threads N          solver threads for the startup solves
//!     --workers N          request worker pool size (default 2)
//!     --queue N            admission queue capacity (default 64); beyond
//!                          it requests are shed with an `overloaded` error
//!     --deadline-ms N      default per-request deadline (requests may
//!                          override with their own "deadline_ms")
//!     --drain-ms N         shutdown drain deadline (default 2000); if
//!                          in-flight work outlives it, exit 3 instead of 0
//!     --solve-timeout SECS / --solve-max-steps N / --solve-max-memory B
//!                          startup solve budget; a tripped policy answers
//!                          from the insens fallback with "partial": true
//!     --port N             also listen on 127.0.0.1:N (0 = OS-assigned)
//!     --port-file PATH     write the bound port to PATH once listening
//!     --no-stdin           TCP only; don't serve (or watch EOF on) stdin
//!     --inject-faults R,K  fault injection: rate R in [0,1] and `+`-joined
//!                          kinds from delay|cancel|exhaust|garble
//!     --fault-seed N       injection decision seed (default 0)
//!     --no-share           disable hash-consed sets in startup solves
//!     --trace FILE         Chrome trace of the request lifecycle
//!     --metrics-addr H:P   serve Prometheus text at http://H:P/metrics
//!                          (port 0 = OS-assigned); the `metrics` op
//!                          answers over the protocol regardless
//!     --metrics-port-file PATH  write the bound metrics port to PATH
//!     --events FILE        append one JSON line per lifecycle event
//!                          (start, solves, requests, sheds, shutdown)
//! pta check FILE.jir [options]           run the client-analysis suite
//!                                        (taint W020, escape W021,
//!                                        nullness W022) over one analysis
//!     --spec FILE          source/sink/sanitizer spec for the taint client
//!                          (see DESIGN.md §12; without it taint reports
//!                          nothing, escape and nullness still run)
//!     --analysis NAME      points-to policy to run under (default S-2obj+H)
//!     --format text|json   output format (default text); json emits the
//!                          findings through the lint diagnostic renderer,
//!                          byte-identical across back ends and threads
//!     --client-backend B   direct | datalog | both (default both: evaluate
//!                          the Rust fixpoints AND the Datalog client rules
//!                          and assert they agree finding-for-finding)
//!     --datalog            compute the points-to result on the Datalog
//!                          back end instead of the specialized solver
//!     --threads N          dense-solver worker count (identical findings
//!                          for every N)
//!     --deny-findings      exit 1 when any finding is reported
//!     --timeout/--max-steps/--max-memory/--watermark/--degrade
//!                          as for analyze; a partial result tags every
//!                          report with W023 and exits 3
//!
//! Exit codes (all subcommands; table also in the README):
//!   0  success — analysis ran to completion (including degraded-complete
//!      runs under --degrade), lint/check found nothing to report (or
//!      check found findings without --deny-findings)
//!   1  lint diagnostics reported (errors, or warnings under
//!      --deny-warnings); check spec errors (E020/E021) or findings under
//!      --deny-findings
//!   2  usage, I/O or parse error (bad flag, unreadable file, invalid .jir)
//!   3  partial analysis result — a budget tripped (or SIGINT landed) and
//!      the run stopped early with a sound under-approximation, tagged via
//!      "termination" (analyze) or a W023 diagnostic (check); for serve,
//!      shutdown had to force-cancel in-flight requests after the drain
//!      deadline (clean drains exit 0)
//!
//! The diagnostic code index lives in the README and in
//! `pta_lint::code_description`.
//! ```

use std::process::ExitCode;
use std::time::Duration;

use pta_clients::{
    context_stats, may_fail_casts, poly_virtual_calls, precision_metrics, run_check, CheckSpec,
    ClientBackend,
};
use pta_core::{Analysis, AnalysisSession, Backend, Budget, CancelToken, PointsToResult, Trace};
use pta_govern::parse_byte_size;
use pta_ir::Program;
use pta_lang::{parse_program, print_program};
use pta_serve::{FaultInjector, ProgramSource, ServeConfig};
use pta_workload::{dacapo_config, generate, EditStream, DACAPO_NAMES};

/// Count heap usage so `--stats` can report `peak_rss_bytes` exactly
/// (see `pta_govern::memtrack`); delegates to the system allocator.
#[global_allocator]
static ALLOC: pta_govern::memtrack::CountingAlloc = pta_govern::memtrack::CountingAlloc;

/// Exit code for usage, I/O and parse errors (see the module docs).
const EXIT_USAGE: u8 = 2;
/// Exit code for a budget-tripped (or cancelled) partial result.
const EXIT_PARTIAL: u8 = 3;

/// Report a usage problem (unknown flag, bad flag value, invalid flag
/// combination) as a structured `E030` diagnostic and return the usage
/// exit code. Every flag error in the driver funnels through here so even
/// CLI misuse is machine-parseable (`pta lint --explain E030`).
fn usage_error(message: impl Into<String>) -> ExitCode {
    eprintln!("{}", pta_lint::Diagnostic::error("E030", message));
    ExitCode::from(EXIT_USAGE)
}

/// Report an I/O problem (unreadable input, unwritable output) as a
/// structured `E031` diagnostic and return the usage exit code.
fn io_error(message: impl Into<String>) -> ExitCode {
    eprintln!("{}", pta_lint::Diagnostic::error("E031", message));
    ExitCode::from(EXIT_USAGE)
}

/// Report a `.jir` frontend error through the same E007/E008 diagnostics
/// `pta lint` emits, tagged with the offending path, and return the usage
/// exit code.
fn parse_error(path: &str, err: &pta_lang::LangError) -> ExitCode {
    eprintln!("{}", pta_lint::diagnose_lang_error(err).with_context(path));
    ExitCode::from(EXIT_USAGE)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("list") => {
            println!("available analyses (paper name — description):");
            for a in Analysis::ALL {
                println!("  {:>10} — {}", a.name(), describe(a));
            }
            ExitCode::SUCCESS
        }
        Some("analyze") => cmd_analyze(&args[1..]),
        Some("explain") => cmd_explain(&args[1..]),
        Some("workload") => cmd_workload(&args[1..]),
        Some("update") => cmd_update(&args[1..]),
        Some("lint") => cmd_lint(&args[1..]),
        Some("check") => cmd_check(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        _ => {
            eprintln!(
                "usage: pta <list|analyze|explain|workload|update|lint|check|serve> ...  (see --help in the README)"
            );
            ExitCode::from(EXIT_USAGE)
        }
    }
}

fn describe(a: Analysis) -> &'static str {
    match a {
        Analysis::Insens => "context-insensitive Andersen-style baseline",
        Analysis::OneCall => "1-call-site-sensitive (kCFA, k=1)",
        Analysis::OneCallH => "1call with a call-site-sensitive heap",
        Analysis::TwoCallH => "2-call-site-sensitive with 1-ctx heap (ablation)",
        Analysis::OneObj => "1-object-sensitive",
        Analysis::UOneObj => "uniform 1-object hybrid (receiver + call site)",
        Analysis::SAOneObj => "selective hybrid A: call site replaces ctx at static calls",
        Analysis::SBOneObj => "selective hybrid B: call site extends ctx at static calls",
        Analysis::OneObjH => "1obj with context-sensitive heap (paper: strictly inferior)",
        Analysis::TwoObjH => "2-object-sensitive with context-sensitive heap",
        Analysis::UTwoObjH => "uniform 2-object hybrid",
        Analysis::STwoObjH => "selective 2-object hybrid (the paper's sweet spot)",
        Analysis::TwoTypeH => "2-type-sensitive with context-sensitive heap",
        Analysis::UTwoTypeH => "uniform 2-type hybrid",
        Analysis::STwoTypeH => "selective 2-type hybrid",
        Analysis::TwoObj2H => "2-object with 2-deep heap context (extension)",
        Analysis::ThreeObj2H => "3-object with 2-deep heap context (extension)",
        Analysis::SThreeObj2H => "selective 3-object hybrid (extension)",
    }
}

fn cmd_analyze(args: &[String]) -> ExitCode {
    let Some(path) = args.first().filter(|a| !a.starts_with("--")) else {
        eprintln!("usage: pta analyze FILE.jir [--analysis NAME] [--metrics] [--points-to VAR] [--casts] [--devirt] [--datalog] [--timeout SECS] [--max-steps N] [--max-memory BYTES] [--degrade] [--trace FILE] [--profile] [--no-share]");
        return ExitCode::from(EXIT_USAGE);
    };

    let mut analyses: Vec<Analysis> = Vec::new();
    let mut metrics = false;
    let mut hot = false;
    let mut casts = false;
    let mut devirt = false;
    let mut exceptions = false;
    let mut datalog = false;
    let mut stats = false;
    let mut json = false;
    let mut points_to: Vec<String> = Vec::new();
    let mut explain: Vec<String> = Vec::new();
    let mut budget = Budget::unlimited();
    let mut degrade = false;
    let mut threads: usize = 1;
    let mut trace_path: Option<String> = None;
    let mut profile = false;
    let mut share = true;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--format" => {
                i += 1;
                match args.get(i).map(String::as_str) {
                    Some("text") => json = false,
                    Some("json") => json = true,
                    _ => {
                        return usage_error("--format needs `text` or `json`");
                    }
                }
            }
            "--analysis" => {
                i += 1;
                match args.get(i).map(|s| s.parse::<Analysis>()) {
                    Some(Ok(a)) => analyses.push(a),
                    _ => {
                        return usage_error("--analysis needs a known name (try `pta list`)");
                    }
                }
            }
            "--points-to" => {
                i += 1;
                match args.get(i) {
                    Some(v) => points_to.push(v.clone()),
                    None => {
                        return usage_error("--points-to needs a variable name");
                    }
                }
            }
            "--explain" => {
                i += 1;
                match args.get(i) {
                    Some(v) => explain.push(v.clone()),
                    None => {
                        return usage_error("--explain needs a variable name");
                    }
                }
            }
            "--timeout" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse::<f64>().ok()) {
                    Some(secs) if secs > 0.0 && secs.is_finite() && secs <= 1e9 => {
                        budget = budget.with_deadline(Duration::from_secs_f64(secs));
                    }
                    _ => {
                        return usage_error(
                            "--timeout needs a positive number of seconds (at most 1e9)",
                        );
                    }
                }
            }
            "--max-steps" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse::<u64>().ok()) {
                    Some(n) if n > 0 => budget = budget.with_max_steps(n),
                    _ => {
                        return usage_error("--max-steps needs a positive integer");
                    }
                }
            }
            "--max-memory" => {
                i += 1;
                match args.get(i).map(|s| parse_byte_size(s)) {
                    Some(Ok(bytes)) if bytes > 0 => budget = budget.with_max_memory(bytes),
                    Some(Err(e)) => {
                        return usage_error(format!("--max-memory: {e}"));
                    }
                    _ => {
                        return usage_error("--max-memory needs a byte size (e.g. 64M)");
                    }
                }
            }
            "--watermark" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse::<u32>().ok()) {
                    Some(n) if n > 0 => budget = budget.with_watermark(n),
                    _ => {
                        return usage_error("--watermark needs a positive integer");
                    }
                }
            }
            "--threads" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse::<usize>().ok()) {
                    Some(n) => threads = n,
                    None => {
                        return usage_error("--threads needs a worker count (0 = auto)");
                    }
                }
            }
            "--trace" => {
                i += 1;
                match args.get(i) {
                    Some(p) => trace_path = Some(p.clone()),
                    None => {
                        return usage_error("--trace needs an output file path");
                    }
                }
            }
            "--profile" => profile = true,
            "--no-share" => share = false,
            "--degrade" => degrade = true,
            "--metrics" => metrics = true,
            "--stats" => stats = true,
            "--hot" => hot = true,
            "--casts" => casts = true,
            "--devirt" => devirt = true,
            "--exceptions" => exceptions = true,
            "--datalog" => datalog = true,
            other => {
                return usage_error(format!("unknown flag {other}"));
            }
        }
        i += 1;
    }
    if analyses.is_empty() {
        analyses.push(Analysis::STwoObjH);
    }
    if degrade && datalog {
        return usage_error(
            "--degrade requires the specialized solver (drop --datalog); \
             the Datalog back end stops with a partial result instead",
        );
    }
    // The trace recorder exists before the file is read so session setup
    // (parse, IR construction) lands on the timeline too. A disabled
    // trace (no --trace flag) makes every recording call a no-op.
    let trace = if trace_path.is_some() {
        Trace::enabled()
    } else {
        Trace::disabled()
    };
    let mut ts = trace.scope_named(0, "main");
    let t_parse = ts.now_ns();
    let source = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            return io_error(format!("cannot read {path}: {e}"));
        }
    };
    let program = match parse_program(&source) {
        Ok(p) => p,
        Err(e) => {
            return parse_error(path, &e);
        }
    };
    if ts.is_enabled() {
        let t_end = ts.now_ns();
        ts.complete(
            "parse",
            "session",
            t_parse,
            t_end - t_parse,
            &[("bytes", source.len() as u64)],
        );
    }
    // Governed runs get cooperative ctrl-c: SIGINT flips the token and the
    // solver stops at the next batch boundary with a tagged partial result.
    // Ungoverned runs keep the zero-overhead path (and default SIGINT).
    let governed = !budget.is_unlimited() || degrade;
    let cancel = governed.then(CancelToken::linked_to_sigint);
    if json {
        // The flags below produce free-form text walks (derivations, cast
        // listings, …) with no JSON rendering; refuse rather than silently
        // drop them from the output.
        for (flag, used) in [
            ("--points-to", !points_to.is_empty()),
            ("--explain", !explain.is_empty()),
            ("--hot", hot),
            ("--casts", casts),
            ("--devirt", devirt),
            ("--exceptions", exceptions),
        ] {
            if used {
                return usage_error(format!(
                    "{flag} has no JSON rendering; drop it or use --format text"
                ));
            }
        }
    }

    // Keep each (analysis, result) alive until the end so JSON reports can
    // borrow them and print as one array.
    let mut runs: Vec<(Analysis, usize, f64, PointsToResult)> = Vec::new();
    let mut any_partial = false;
    if datalog && !explain.is_empty() {
        return usage_error("--explain requires the specialized solver (drop --datalog)");
    }
    for analysis in analyses {
        let start = std::time::Instant::now();
        let mut session = AnalysisSession::open(program.clone())
            .policy(analysis)
            .backend(if datalog {
                Backend::Datalog
            } else {
                Backend::Dense
            })
            .threads(threads)
            .budget(budget.clone())
            .degrade(degrade)
            .keep_tuples(hot)
            .track_provenance(!explain.is_empty())
            .trace(trace.clone())
            .profile(profile)
            .share(share);
        if let Some(token) = &cancel {
            session = session.cancel(token.clone());
        }
        let solved_threads = if datalog {
            1
        } else {
            session.effective_threads()
        };
        let t_run = ts.now_ns();
        let result: PointsToResult = session.solve();
        let elapsed = start.elapsed();
        if ts.is_enabled() {
            let t_end = ts.now_ns();
            ts.complete(
                &format!("analysis {analysis}"),
                "session",
                t_run,
                t_end - t_run,
                &[("threads", solved_threads as u64)],
            );
        }
        any_partial |= !result.termination().is_complete();
        if json {
            runs.push((analysis, solved_threads, elapsed.as_secs_f64(), result));
            continue;
        }
        println!(
            "== {analysis} ({}; {elapsed:.2?}): {} reachable methods, {} call-graph edges",
            if datalog {
                "datalog back end"
            } else {
                "specialized solver"
            },
            result.reachable_method_count(),
            result.call_graph_edge_count(),
        );
        if !result.termination().is_complete() {
            println!(
                "   PARTIAL RESULT: budget exhausted ({}); points-to sets are a sound prefix of the fixpoint",
                result.termination()
            );
        }
        if !result.demoted_sites().is_empty() {
            println!(
                "   degraded: {} method(s) demoted to context-insensitive:",
                result.demoted_sites().len()
            );
            for d in result.demoted_sites() {
                // Demotions surface as structured W007 diagnostics so text
                // consumers can grep them like any other toolchain finding.
                let diag = pta_lint::Diagnostic::warning(
                    "W007",
                    format!(
                        "demoted to context-insensitive: context fan-out {} crossed the watermark",
                        d.fanout
                    ),
                )
                .with_context(program.method_qualified_name(d.method));
                println!("     {diag}");
            }
        }
        if metrics {
            let m = precision_metrics(&program, &result);
            println!(
                "   avg objs/var {:.2} | poly v-calls {}/{} | may-fail casts {}/{} | sensitive vpt {} | ctxs {} | hctxs {}",
                m.avg_var_points_to,
                m.poly_virtual_calls,
                m.reachable_virtual_calls,
                m.may_fail_casts,
                m.reachable_casts,
                m.ctx_var_points_to,
                m.contexts,
                m.heap_contexts,
            );
        }
        if stats {
            println!("   solver counters:");
            println!("{}", result.solver_stats());
            println!(
                "  {:<20} {}",
                "peak_rss_bytes",
                pta_govern::memtrack::peak_bytes()
            );
        }
        if profile {
            match result.profile() {
                Some(p) => print!("{}", p.render_text(10)),
                None => println!("   (no profile recorded)"),
            }
        }
        for name in &points_to {
            print_points_to(&program, &result, name);
        }
        for name in &explain {
            explain_var(&program, &result, name);
        }
        if hot {
            if let Some(s) = context_stats(&program, &result, 8) {
                println!(
                    "   contexts/method: avg {:.1}, max {} | tuples/context: avg {:.1} | {} methods carry tuples",
                    s.avg_contexts_per_method,
                    s.max_contexts_per_method,
                    s.avg_tuples_per_context,
                    s.methods_with_tuples,
                );
                println!("   hottest methods:");
                for (m, n) in s.hottest_methods {
                    println!("     {:>6} tuples  {}", n, program.method_qualified_name(m));
                }
            }
        }
        if casts {
            let (failing, total) = may_fail_casts(&program, &result);
            println!("   may-fail casts: {} of {total}", failing.len());
            for c in failing {
                println!(
                    "     cast to {} in {} (instr {}) — {} incompatible object(s)",
                    program.type_name(c.target_type),
                    program.method_qualified_name(c.method),
                    c.instr_index,
                    c.incompatible_objects
                );
            }
        }
        if exceptions {
            let sites = result.uncaught_exceptions();
            println!("   uncaught exception sites: {}", sites.len());
            for &h in sites {
                println!(
                    "     {} ({})",
                    program.heap_label(h),
                    program.type_name(program.heap_type(h))
                );
            }
        }
        if devirt {
            let (poly, total) = poly_virtual_calls(&program, &result);
            println!("   polymorphic v-calls: {} of {total}", poly.len());
            for site in poly {
                let targets: Vec<String> = site
                    .targets
                    .iter()
                    .map(|&m| program.method_qualified_name(m))
                    .collect();
                println!(
                    "     {} -> {{{}}}",
                    program.invo_label(site.invo),
                    targets.join(", ")
                );
            }
        }
    }
    if json {
        let metric_sets: Vec<Option<pta_clients::ExperimentMetrics>> = runs
            .iter()
            .map(|(_, _, _, result)| metrics.then(|| precision_metrics(&program, result)))
            .collect();
        let demoted_sets: Vec<Vec<(String, u32)>> = runs
            .iter()
            .map(|(_, _, _, result)| {
                result
                    .demoted_sites()
                    .iter()
                    .map(|d| (program.method_qualified_name(d.method), d.fanout))
                    .collect()
            })
            .collect();
        let reports: Vec<hybrid_pta::report::AnalysisReport<'_>> = runs
            .iter()
            .zip(&metric_sets)
            .zip(&demoted_sets)
            .map(|(((analysis, threads, time_secs, result), m), demoted)| {
                hybrid_pta::report::AnalysisReport {
                    analysis: analysis.name(),
                    backend: if datalog { "datalog" } else { "specialized" },
                    threads: *threads,
                    time_secs: *time_secs,
                    result,
                    metrics: m.as_ref(),
                    include_stats: stats,
                    include_profile: profile,
                    demoted,
                    peak_rss_bytes: stats.then(pta_govern::memtrack::peak_bytes),
                }
            })
            .collect();
        println!("{}", hybrid_pta::report::reports_to_json(&reports));
    }
    if let Some(tp) = &trace_path {
        ts.flush();
        if let Err(e) = std::fs::write(tp, trace.to_chrome_json()) {
            return io_error(format!("cannot write trace {tp}: {e}"));
        }
    }
    if any_partial {
        ExitCode::from(EXIT_PARTIAL)
    } else {
        ExitCode::SUCCESS
    }
}

fn print_points_to(program: &Program, result: &PointsToResult, name: &str) {
    let mut found = false;
    for var in program.vars() {
        if program.var_name(var) != name {
            continue;
        }
        found = true;
        let labels: Vec<&str> = result
            .points_to(var)
            .iter()
            .map(|&h| program.heap_label(h))
            .collect();
        println!(
            "   {}::{} -> {{{}}}",
            program.method_qualified_name(program.var_method(var)),
            name,
            labels.join(", ")
        );
    }
    if !found {
        println!("   (no variable named {name})");
    }
}

fn explain_var(program: &Program, result: &PointsToResult, name: &str) {
    let mut found = false;
    for var in program.vars() {
        if program.var_name(var) != name {
            continue;
        }
        found = true;
        for &heap in result.points_to(var) {
            println!(
                "   why {}::{} -> {}:",
                program.method_qualified_name(program.var_method(var)),
                name,
                program.heap_label(heap)
            );
            match result.explain(program, var, heap) {
                Some(lines) => {
                    for line in lines {
                        println!("     {line}");
                    }
                }
                None => println!("     (no derivation recorded)"),
            }
        }
    }
    if !found {
        println!("   (no variable named {name})");
    }
}

const EXPLAIN_USAGE: &str = "usage: pta explain FILE.jir VAR OBJ [--analysis NAME]\n\
     VAR  variable name, optionally method-qualified (r1 or Client.main::r1)\n\
     OBJ  allocation-site label, exact or substring (Client.main/new Object#2)";

/// `pta explain FILE VAR OBJ`: runs one analysis with provenance tracking
/// and prints the recorded derivation chain for every `(VAR, OBJ)` pair
/// that matches — why may VAR point to OBJ, traced back to the allocation.
///
/// Exit codes follow the module table: 0 when at least one chain printed,
/// 1 when the fact does not hold (or nothing matched), 2 on usage errors.
fn cmd_explain(args: &[String]) -> ExitCode {
    let mut pos: Vec<&String> = Vec::new();
    let mut analysis = Analysis::STwoObjH;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--analysis" => {
                i += 1;
                match args.get(i).map(|s| s.parse::<Analysis>()) {
                    Some(Ok(a)) => analysis = a,
                    _ => {
                        return usage_error("--analysis needs a known name (try `pta list`)");
                    }
                }
            }
            flag if flag.starts_with("--") => {
                let exit = usage_error(format!("unknown flag {flag}"));
                eprintln!("{EXPLAIN_USAGE}");
                return exit;
            }
            _ => pos.push(&args[i]),
        }
        i += 1;
    }
    let [path, var_name, obj_label] = pos.as_slice() else {
        eprintln!("{EXPLAIN_USAGE}");
        return ExitCode::from(EXIT_USAGE);
    };
    let source = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            return io_error(format!("cannot read {path}: {e}"));
        }
    };
    let program = match parse_program(&source) {
        Ok(p) => p,
        Err(e) => {
            return parse_error(path, &e);
        }
    };

    // VAR matches by bare name or by the `Method::var` qualified form;
    // OBJ matches its allocation-site label exactly, falling back to
    // substring so `Object#2` finds `Client.main/new Object#2`.
    let vars: Vec<_> = program
        .vars()
        .filter(|&v| {
            let bare = program.var_name(v);
            bare == var_name.as_str()
                || format!(
                    "{}::{bare}",
                    program.method_qualified_name(program.var_method(v))
                ) == var_name.as_str()
        })
        .collect();
    if vars.is_empty() {
        return usage_error(format!("no variable named {var_name}"));
    }
    let mut heaps: Vec<_> = program
        .heaps()
        .filter(|&h| program.heap_label(h) == obj_label.as_str())
        .collect();
    if heaps.is_empty() {
        heaps = program
            .heaps()
            .filter(|&h| program.heap_label(h).contains(obj_label.as_str()))
            .collect();
    }
    if heaps.is_empty() {
        return usage_error(format!("no allocation site labeled {obj_label}"));
    }

    let result = AnalysisSession::open(program.clone())
        .policy(analysis)
        .track_provenance(true)
        .solve();
    let mut printed = false;
    for &var in &vars {
        for &heap in &heaps {
            let Some(lines) = result.explain(&program, var, heap) else {
                continue;
            };
            printed = true;
            println!(
                "why {}::{} -> {} under {analysis}:",
                program.method_qualified_name(program.var_method(var)),
                program.var_name(var),
                program.heap_label(heap),
            );
            for line in lines {
                println!("  {line}");
            }
        }
    }
    if printed {
        ExitCode::SUCCESS
    } else {
        println!(
            "{var_name} does not point to {obj_label} under {analysis} (no derivation exists)"
        );
        ExitCode::from(1)
    }
}

const LINT_USAGE: &str =
    "usage: pta lint FILE.jir [--format text|json] [--deny-warnings] | pta lint --explain CODE";

fn cmd_lint(args: &[String]) -> ExitCode {
    let mut path: Option<&String> = None;
    let mut json = false;
    let mut deny_warnings = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--format" => {
                i += 1;
                match args.get(i).map(String::as_str) {
                    Some("text") => json = false,
                    Some("json") => json = true,
                    _ => {
                        return usage_error("--format needs `text` or `json`");
                    }
                }
            }
            "--deny-warnings" => deny_warnings = true,
            "--explain" => {
                i += 1;
                let Some(code) = args.get(i) else {
                    return usage_error("--explain needs a diagnostic code (e.g. W003)");
                };
                return match pta_lint::code_description(code) {
                    Some(desc) => {
                        println!("{code}: {desc}");
                        ExitCode::SUCCESS
                    }
                    None => {
                        let exit = usage_error(format!("unknown diagnostic code {code}"));
                        eprintln!("known codes:");
                        for c in pta_lint::ALL_CODES {
                            eprintln!("  {c}: {}", pta_lint::code_description(c).unwrap());
                        }
                        exit
                    }
                };
            }
            flag if flag.starts_with("--") => {
                let exit = usage_error(format!("unknown flag {flag}"));
                eprintln!("{LINT_USAGE}");
                return exit;
            }
            _ => path = Some(&args[i]),
        }
        i += 1;
    }
    let Some(path) = path else {
        eprintln!("{LINT_USAGE}");
        return ExitCode::from(2);
    };
    let source = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            return io_error(format!("cannot read {path}: {e}"));
        }
    };
    let diags = pta_lint::lint_source(&source);
    if json {
        print!("{}", pta_lint::render_json(&diags));
    } else {
        print!("{}", pta_lint::render_text(&diags));
    }
    let has_errors = diags
        .iter()
        .any(|d| d.severity == pta_lint::Severity::Error);
    let has_warnings = diags
        .iter()
        .any(|d| d.severity == pta_lint::Severity::Warning);
    if has_errors || (deny_warnings && has_warnings) {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

const CHECK_USAGE: &str = "usage: pta check FILE.jir [--spec FILE] [--analysis NAME] \
[--format text|json] [--client-backend direct|datalog|both] [--datalog] [--threads N] \
[--deny-findings] [--timeout SECS] [--max-steps N] [--max-memory BYTES] [--watermark N] \
[--degrade]";

/// `pta check`: run the taint/escape/nullness client suite over one
/// points-to result and render the findings as W02x diagnostics. See the
/// module docs for flags and exit codes.
fn cmd_check(args: &[String]) -> ExitCode {
    let Some(path) = args.first().filter(|a| !a.starts_with("--")) else {
        eprintln!("{CHECK_USAGE}");
        return ExitCode::from(EXIT_USAGE);
    };
    let mut spec_path: Option<String> = None;
    let mut analysis = Analysis::STwoObjH;
    let mut json = false;
    let mut client_backend = ClientBackend::CrossValidated;
    let mut datalog = false;
    let mut threads: usize = 1;
    let mut deny_findings = false;
    let mut budget = Budget::unlimited();
    let mut degrade = false;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--spec" => {
                i += 1;
                match args.get(i) {
                    Some(p) => spec_path = Some(p.clone()),
                    None => {
                        return usage_error("--spec needs a file path");
                    }
                }
            }
            "--analysis" => {
                i += 1;
                match args.get(i).map(|s| s.parse::<Analysis>()) {
                    Some(Ok(a)) => analysis = a,
                    _ => {
                        return usage_error("--analysis needs a known name (try `pta list`)");
                    }
                }
            }
            "--format" => {
                i += 1;
                match args.get(i).map(String::as_str) {
                    Some("text") => json = false,
                    Some("json") => json = true,
                    _ => {
                        return usage_error("--format needs `text` or `json`");
                    }
                }
            }
            "--client-backend" => {
                i += 1;
                match args.get(i).map(String::as_str) {
                    Some("direct") => client_backend = ClientBackend::Direct,
                    Some("datalog") => client_backend = ClientBackend::Datalog,
                    Some("both") => client_backend = ClientBackend::CrossValidated,
                    _ => {
                        return usage_error("--client-backend needs direct, datalog or both");
                    }
                }
            }
            "--threads" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse::<usize>().ok()) {
                    Some(n) => threads = n,
                    None => {
                        return usage_error("--threads needs a worker count (0 = auto)");
                    }
                }
            }
            "--timeout" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse::<f64>().ok()) {
                    Some(secs) if secs > 0.0 && secs.is_finite() && secs <= 1e9 => {
                        budget = budget.with_deadline(Duration::from_secs_f64(secs));
                    }
                    _ => {
                        return usage_error(
                            "--timeout needs a positive number of seconds (at most 1e9)",
                        );
                    }
                }
            }
            "--max-steps" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse::<u64>().ok()) {
                    Some(n) if n > 0 => budget = budget.with_max_steps(n),
                    _ => {
                        return usage_error("--max-steps needs a positive integer");
                    }
                }
            }
            "--max-memory" => {
                i += 1;
                match args.get(i).map(|s| parse_byte_size(s)) {
                    Some(Ok(bytes)) if bytes > 0 => budget = budget.with_max_memory(bytes),
                    _ => {
                        return usage_error("--max-memory needs a byte size (e.g. 64M)");
                    }
                }
            }
            "--watermark" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse::<u32>().ok()) {
                    Some(n) if n > 0 => budget = budget.with_watermark(n),
                    _ => {
                        return usage_error("--watermark needs a positive integer");
                    }
                }
            }
            "--deny-findings" => deny_findings = true,
            "--degrade" => degrade = true,
            "--datalog" => datalog = true,
            other => {
                let exit = usage_error(format!("unknown flag {other}"));
                eprintln!("{CHECK_USAGE}");
                return exit;
            }
        }
        i += 1;
    }
    if degrade && datalog {
        return usage_error(
            "--degrade requires the specialized solver (drop --datalog); \
             the Datalog back end stops with a partial result instead",
        );
    }
    let source = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            return io_error(format!("cannot read {path}: {e}"));
        }
    };
    let program = match parse_program(&source) {
        Ok(p) => p,
        Err(e) => {
            return parse_error(path, &e);
        }
    };
    let spec = match &spec_path {
        None => CheckSpec::default(),
        Some(sp) => {
            let text = match std::fs::read_to_string(sp) {
                Ok(t) => t,
                Err(e) => {
                    return io_error(format!("cannot read spec {sp}: {e}"));
                }
            };
            match CheckSpec::parse(&text) {
                Ok(s) => s,
                Err(diags) => {
                    // Malformed spec lines are E020 diagnostics, rendered
                    // like lint errors (exit 1, not a usage error: the file
                    // parsed as a spec, its contents are wrong).
                    if json {
                        print!("{}", pta_lint::render_json(&diags));
                    } else {
                        print!("{}", pta_lint::render_text(&diags));
                    }
                    return ExitCode::from(1);
                }
            }
        }
    };
    let spec_errors = spec.validate(&program);
    if !spec_errors.is_empty() {
        if json {
            print!("{}", pta_lint::render_json(&spec_errors));
        } else {
            print!("{}", pta_lint::render_text(&spec_errors));
        }
        return ExitCode::from(1);
    }

    let governed = !budget.is_unlimited() || degrade;
    let cancel = governed.then(CancelToken::linked_to_sigint);
    let mut session = AnalysisSession::open(program.clone())
        .policy(analysis)
        .backend(if datalog {
            Backend::Datalog
        } else {
            Backend::Dense
        })
        .threads(threads)
        .budget(budget)
        .degrade(degrade);
    if let Some(token) = &cancel {
        session = session.cancel(token.clone());
    }
    let result = session.solve();
    let report = run_check(&program, &result, &spec, client_backend);
    let diags = report.to_diagnostics(&program);
    if json {
        print!("{}", pta_lint::render_json(&diags));
    } else {
        print!("{}", pta_lint::render_text(&diags));
        println!(
            "check: {analysis}: {} taint, {} escape, {} nullness finding(s){}",
            report.taint.len(),
            report.escape.len(),
            report.nullness.len(),
            if report.partial { " (partial)" } else { "" },
        );
    }
    if report.partial {
        ExitCode::from(EXIT_PARTIAL)
    } else if deny_findings && !report.is_clean() {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

fn cmd_workload(args: &[String]) -> ExitCode {
    let Some(name) = args.first().filter(|a| !a.starts_with("--")) else {
        eprintln!(
            "usage: pta workload NAME [--scale S] [--taint-groups N] [--print]; names: {DACAPO_NAMES:?}"
        );
        return ExitCode::from(EXIT_USAGE);
    };
    if !DACAPO_NAMES.contains(&name.as_str()) {
        return usage_error(format!("unknown workload {name}; names: {DACAPO_NAMES:?}"));
    }
    let mut scale = 1.0f64;
    let mut taint_groups = 0usize;
    let mut print = false;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                scale = match args.get(i).and_then(|s| s.parse::<f64>().ok()) {
                    Some(s) if s.is_finite() && s > 0.0 && s <= 1024.0 => s,
                    _ => {
                        return usage_error("--scale needs a finite number in (0, 1024]");
                    }
                };
            }
            "--taint-groups" => {
                i += 1;
                taint_groups = match args.get(i).and_then(|s| s.parse().ok()) {
                    Some(n) => n,
                    None => {
                        return usage_error("--taint-groups needs a count");
                    }
                };
            }
            "--print" => print = true,
            other => {
                return usage_error(format!("unknown flag {other}"));
            }
        }
        i += 1;
    }
    let mut cfg = dacapo_config(name, scale);
    cfg.taint_groups = taint_groups;
    let program = generate(&cfg);
    if print {
        print!("{}", print_program(&program));
    } else {
        println!("{name} @ {scale}: {}", pta_ir::ProgramStats::of(&program));
    }
    ExitCode::SUCCESS
}

const UPDATE_USAGE: &str = "usage: pta update FILE.jir [--workload NAME:SCALE] [--edits N] \
[--seed S] [--analysis NAME] [--datalog] [--threads N]";

/// A canonical rendering of everything a [`PointsToResult`] answers:
/// per-variable points-to sets, per-site call targets, the reachable
/// set, escaping exceptions, and the context-sensitive cardinalities
/// (raw context ids are interner-order dependent and not comparable
/// across runs, but the counts are canonical). Two results are
/// equivalent iff their fingerprints are byte-identical.
fn result_fingerprint(program: &Program, r: &PointsToResult) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for v in program.vars() {
        let mut pts: Vec<usize> = r.points_to(v).iter().map(|h| h.index()).collect();
        pts.sort_unstable();
        let _ = writeln!(out, "v{} {pts:?}", v.index());
    }
    for i in program.invos() {
        let mut targets: Vec<usize> = r.call_targets(i).iter().map(|m| m.index()).collect();
        targets.sort_unstable();
        let _ = writeln!(out, "i{} {targets:?}", i.index());
    }
    let mut reach: Vec<usize> = r.reachable_methods().map(|m| m.index()).collect();
    reach.sort_unstable();
    let _ = writeln!(out, "reach {reach:?}");
    let mut uncaught: Vec<usize> = r.uncaught_exceptions().iter().map(|h| h.index()).collect();
    uncaught.sort_unstable();
    let _ = writeln!(out, "uncaught {uncaught:?}");
    let _ = writeln!(
        out,
        "ctx {} {} {}",
        r.ctx_var_points_to_count(),
        r.ctx_call_graph_edge_count(),
        r.ctx_reachable_count()
    );
    out
}

/// `pta update`: replay a deterministic edit stream against a long-lived
/// [`AnalysisSession`] and compare the incrementally maintained result
/// with a from-scratch solve after every edit (the CI smoke for the
/// incremental engine). Exits 0 when every step is byte-identical, 1 on
/// the first divergence.
fn cmd_update(args: &[String]) -> ExitCode {
    let mut path: Option<String> = None;
    let mut workload: Option<String> = None;
    let mut analyses: Vec<Analysis> = Vec::new();
    let mut edits = 5usize;
    let mut seed = 1u64;
    let mut datalog = false;
    let mut threads = 1usize;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--workload" => {
                i += 1;
                match args.get(i) {
                    Some(spec) => workload = Some(spec.clone()),
                    None => return usage_error("--workload needs NAME:SCALE"),
                }
            }
            "--edits" => {
                i += 1;
                edits = match args.get(i).and_then(|s| s.parse().ok()) {
                    Some(n) if (1..=100_000).contains(&n) => n,
                    _ => return usage_error("--edits needs a count in [1, 100000]"),
                };
            }
            "--seed" => {
                i += 1;
                seed = match args.get(i).and_then(|s| s.parse().ok()) {
                    Some(s) => s,
                    None => return usage_error("--seed needs a non-negative integer"),
                };
            }
            "--analysis" => {
                i += 1;
                match args.get(i).map(|s| s.parse::<Analysis>()) {
                    Some(Ok(a)) => analyses.push(a),
                    _ => return usage_error("--analysis needs a known name (try `pta list`)"),
                }
            }
            "--datalog" => datalog = true,
            "--threads" => {
                i += 1;
                threads = match args.get(i).and_then(|s| s.parse().ok()) {
                    Some(n) => n,
                    None => return usage_error("--threads needs a worker count"),
                };
            }
            other if !other.starts_with("--") && path.is_none() => path = Some(other.to_owned()),
            other => return usage_error(format!("unknown flag {other} ({UPDATE_USAGE})")),
        }
        i += 1;
    }
    let base: Program = match (&path, &workload) {
        (Some(p), None) => {
            let source = match std::fs::read_to_string(p) {
                Ok(s) => s,
                Err(e) => return io_error(format!("cannot read {p}: {e}")),
            };
            match parse_program(&source) {
                Ok(prog) => prog,
                Err(e) => return parse_error(p, &e),
            }
        }
        (None, Some(spec)) => {
            let Some((name, scale)) = spec.split_once(':') else {
                return usage_error("--workload needs NAME:SCALE");
            };
            if !DACAPO_NAMES.contains(&name) {
                return usage_error(format!("unknown workload {name}; names: {DACAPO_NAMES:?}"));
            }
            match scale.parse::<f64>() {
                Ok(s) if s.is_finite() && s > 0.0 && s <= 1024.0 => {
                    generate(&dacapo_config(name, s))
                }
                _ => return usage_error("--workload scale must be a finite number in (0, 1024]"),
            }
        }
        _ => {
            eprintln!("{UPDATE_USAGE}");
            return ExitCode::from(EXIT_USAGE);
        }
    };
    if analyses.is_empty() {
        analyses.push(Analysis::STwoObjH);
    }
    let backend = if datalog {
        Backend::Datalog
    } else {
        Backend::Dense
    };
    let mut failed = false;
    for &analysis in &analyses {
        let mut stream = EditStream::new(base.clone(), seed);
        let mut session = AnalysisSession::open(base.clone())
            .policy(analysis)
            .backend(backend)
            .threads(threads)
            .incremental(true);
        session.solve();
        let mut incremental = 0usize;
        let mut diverged: Option<usize> = None;
        for step in 0..edits {
            let delta = stream.next_delta();
            let maintained = match session.apply(&delta) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("{}", pta_lint::Diagnostic::error("E031", e.to_string()));
                    return ExitCode::from(EXIT_USAGE);
                }
            };
            if session.last_apply_was_incremental() {
                incremental += 1;
            }
            let scratch_fp = {
                let mut scratch = AnalysisSession::open(stream.program().clone())
                    .policy(analysis)
                    .backend(backend)
                    .threads(threads);
                result_fingerprint(stream.program(), &scratch.solve())
            };
            if result_fingerprint(stream.program(), &maintained) != scratch_fp {
                diverged = Some(step + 1);
                break;
            }
        }
        match diverged {
            Some(step) => {
                failed = true;
                println!(
                    "{}: DIVERGED from scratch at edit {step}/{edits} (seed {seed})",
                    analysis.name()
                );
            }
            None => println!(
                "{}: {edits} edits, {incremental} incremental, identical to scratch",
                analysis.name()
            ),
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

const SERVE_USAGE: &str = "usage: pta serve [FILE.jir ...] [--workload NAME:SCALE] \
[--policy NAME] [--threads N] [--workers N] [--queue N] [--deadline-ms N] [--drain-ms N] \
[--solve-timeout SECS] [--solve-max-steps N] [--solve-max-memory BYTES] [--port N] \
[--port-file PATH] [--no-stdin] [--inject-faults RATE,KINDS] [--fault-seed N] \
[--no-share] [--trace FILE] [--metrics-addr HOST:PORT] [--metrics-port-file PATH] \
[--events FILE]";

/// `pta serve`: parse the daemon flags into a [`ServeConfig`] and hand off
/// to `pta_serve::run`, which owns the request lifecycle. Exit codes: 0 on
/// a clean drain, 2 on startup/usage errors, 3 when shutdown had to
/// force-cancel in-flight work.
fn cmd_serve(args: &[String]) -> ExitCode {
    let mut cfg = ServeConfig::default();
    let mut fault_spec: Option<String> = None;
    let mut fault_seed: u64 = 0;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--workload" => {
                i += 1;
                let Some(spec) = args.get(i) else {
                    return usage_error("--workload needs NAME:SCALE (e.g. antlr:0.5)");
                };
                match ProgramSource::parse_workload(spec) {
                    Ok(src) => cfg.sources.push(src),
                    Err(e) => return usage_error(format!("--workload: {e}")),
                }
            }
            "--policy" => {
                i += 1;
                match args.get(i).map(|s| s.parse::<Analysis>()) {
                    Some(Ok(a)) => cfg.policies.push(a.name().to_string()),
                    _ => {
                        return usage_error("--policy needs a known analysis name (try `pta list`)")
                    }
                }
            }
            "--threads" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse::<usize>().ok()) {
                    Some(n) => cfg.solve.threads = n,
                    None => return usage_error("--threads needs a worker count (0 = auto)"),
                }
            }
            "--workers" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse::<usize>().ok()) {
                    Some(n) if n > 0 && n <= 1024 => cfg.workers = n,
                    _ => return usage_error("--workers needs a count in [1, 1024]"),
                }
            }
            "--queue" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse::<usize>().ok()) {
                    Some(n) if n > 0 => cfg.queue_capacity = n,
                    _ => return usage_error("--queue needs a positive capacity"),
                }
            }
            "--deadline-ms" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse::<u64>().ok()) {
                    Some(n) => cfg.default_deadline_ms = Some(n),
                    None => return usage_error("--deadline-ms needs a millisecond count"),
                }
            }
            "--drain-ms" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse::<u64>().ok()) {
                    Some(n) => cfg.drain_ms = n,
                    None => return usage_error("--drain-ms needs a millisecond count"),
                }
            }
            "--solve-timeout" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse::<f64>().ok()) {
                    Some(secs) if secs > 0.0 && secs.is_finite() && secs <= 1e9 => {
                        cfg.solve.budget = cfg
                            .solve
                            .budget
                            .clone()
                            .with_deadline(Duration::from_secs_f64(secs));
                    }
                    _ => {
                        return usage_error(
                            "--solve-timeout needs a positive number of seconds (at most 1e9)",
                        )
                    }
                }
            }
            "--solve-max-steps" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse::<u64>().ok()) {
                    Some(n) if n > 0 => {
                        cfg.solve.budget = cfg.solve.budget.clone().with_max_steps(n);
                    }
                    _ => return usage_error("--solve-max-steps needs a positive integer"),
                }
            }
            "--solve-max-memory" => {
                i += 1;
                match args.get(i).map(|s| parse_byte_size(s)) {
                    Some(Ok(bytes)) if bytes > 0 => {
                        cfg.solve.budget = cfg.solve.budget.clone().with_max_memory(bytes);
                    }
                    Some(Err(e)) => return usage_error(format!("--solve-max-memory: {e}")),
                    _ => return usage_error("--solve-max-memory needs a byte size (e.g. 64M)"),
                }
            }
            "--port" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse::<u16>().ok()) {
                    Some(n) => cfg.port = Some(n),
                    None => return usage_error("--port needs a TCP port (0 = OS-assigned)"),
                }
            }
            "--port-file" => {
                i += 1;
                match args.get(i) {
                    Some(p) => cfg.port_file = Some(p.clone()),
                    None => return usage_error("--port-file needs an output file path"),
                }
            }
            "--inject-faults" => {
                i += 1;
                match args.get(i) {
                    Some(s) => fault_spec = Some(s.clone()),
                    None => {
                        return usage_error(
                            "--inject-faults needs RATE,KINDS (e.g. 0.05,delay+cancel)",
                        )
                    }
                }
            }
            "--fault-seed" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse::<u64>().ok()) {
                    Some(n) => fault_seed = n,
                    None => return usage_error("--fault-seed needs an integer seed"),
                }
            }
            "--trace" => {
                i += 1;
                match args.get(i) {
                    Some(p) => cfg.trace_path = Some(p.clone()),
                    None => return usage_error("--trace needs an output file path"),
                }
            }
            "--metrics-addr" => {
                i += 1;
                match args.get(i) {
                    Some(a) if a.contains(':') => cfg.metrics_addr = Some(a.clone()),
                    _ => {
                        return usage_error(
                            "--metrics-addr needs HOST:PORT (e.g. 127.0.0.1:9464; port 0 = OS-assigned)",
                        )
                    }
                }
            }
            "--metrics-port-file" => {
                i += 1;
                match args.get(i) {
                    Some(p) => cfg.metrics_port_file = Some(p.clone()),
                    None => return usage_error("--metrics-port-file needs an output file path"),
                }
            }
            "--events" => {
                i += 1;
                match args.get(i) {
                    Some(p) => cfg.events_path = Some(p.clone()),
                    None => return usage_error("--events needs an output file path"),
                }
            }
            "--no-stdin" => cfg.use_stdin = false,
            "--no-share" => cfg.solve.share = false,
            flag if flag.starts_with("--") => {
                let exit = usage_error(format!("unknown flag {flag}"));
                eprintln!("{SERVE_USAGE}");
                return exit;
            }
            file => cfg.sources.push(ProgramSource::File(file.to_string())),
        }
        i += 1;
    }
    if cfg.sources.is_empty() {
        eprintln!("{SERVE_USAGE}");
        return usage_error("serve needs at least one program (a FILE.jir or --workload)");
    }
    if !cfg.use_stdin && cfg.port.is_none() {
        return usage_error("--no-stdin needs --port, or the daemon would be unreachable");
    }
    if let Some(spec) = &fault_spec {
        match FaultInjector::parse(spec, fault_seed) {
            Ok(inj) => cfg.faults = Some(inj),
            Err(e) => return usage_error(format!("--inject-faults: {e}")),
        }
    }
    match pta_serve::run(cfg) {
        // Startup errors are pre-flight: unreadable inputs are E031, bad
        // specs (unknown policy, duplicate program names, parse failures)
        // are E030. Both exit 2 like every other pre-flight error.
        Err(msg) if msg.starts_with("cannot read") || msg.starts_with("cannot write") => {
            io_error(msg)
        }
        Err(msg) => usage_error(msg),
        Ok(code) => ExitCode::from(u8::try_from(code).unwrap_or(EXIT_USAGE)),
    }
}
