//! Resource governance for the analysis back ends.
//!
//! Context-sensitive points-to analysis can blow up unpredictably: the
//! paper's own evaluation reports multi-hour timeouts on hsqldb and
//! jython-class configurations. This crate is the small, dependency-free
//! vocabulary both back ends (the specialized solver and the Datalog
//! engine) share to keep such runs governed:
//!
//! * [`Budget`] — declarative limits: a wall-clock deadline, a fixpoint
//!   step limit, a memory cap over interned keys and tuples, and a
//!   context fan-out watermark used by graceful degradation.
//! * [`CancelToken`] — a cloneable cooperative cancellation flag
//!   (optionally following the process-wide SIGINT latch) so a CLI
//!   ctrl-c or a bench driver can stop an in-flight solve.
//! * [`BudgetMeter`] — the cheap cooperative checker the fixpoint loops
//!   consult once per batch/round; wall-clock reads are strided so the
//!   hot loop never pays a syscall per step.
//! * [`Termination`] — the structured status every governed run returns
//!   instead of aborting: `Complete`, `DeadlineExceeded`, `StepLimit` or
//!   `MemoryCap`.
//!
//! External cancellation (ctrl-c, a bench cell deadline firing from
//! outside) is reported as [`Termination::DeadlineExceeded`]: from the
//! caller's point of view both mean "time was called on this run", and
//! keeping the status space at exactly four variants keeps every
//! downstream `match` total.

pub mod memtrack;

use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How a governed run ended.
///
/// `Complete` means the fixpoint was reached (possibly after graceful
/// degradation — a degraded run is coarser but still a fixpoint). The
/// other three variants tag a *partial* result: a sound prefix of the
/// fixpoint, safe to inspect but not to treat as the full answer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Termination {
    /// The fixpoint was reached; the result is the full answer.
    #[default]
    Complete,
    /// The wall-clock deadline passed, or the run was cancelled from
    /// outside (ctrl-c, bench cell deadline).
    DeadlineExceeded,
    /// The fixpoint step limit was exhausted.
    StepLimit,
    /// The interned-key/tuple memory estimate crossed the cap.
    MemoryCap,
}

impl Termination {
    /// Stable machine-readable name, used verbatim in JSON reports.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Termination::Complete => "complete",
            Termination::DeadlineExceeded => "deadline_exceeded",
            Termination::StepLimit => "step_limit",
            Termination::MemoryCap => "memory_cap",
        }
    }

    /// Whether the run reached its fixpoint.
    #[must_use]
    pub fn is_complete(self) -> bool {
        matches!(self, Termination::Complete)
    }
}

impl fmt::Display for Termination {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Declarative resource limits for one solve. `Default` is unlimited.
///
/// All limits are optional and independent; the first one to trip
/// decides the [`Termination`] status. The `watermark` is not a hard
/// limit by itself — it is the per-method context fan-out threshold the
/// solver's graceful-degradation mode uses to pick demotion victims.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Budget {
    /// Wall-clock deadline, measured from [`BudgetMeter::new`].
    pub deadline: Option<Duration>,
    /// Maximum number of fixpoint steps (worklist pops / engine rounds).
    pub max_steps: Option<u64>,
    /// Cap on the solver's coarse interned-key/tuple byte estimate.
    pub max_memory_bytes: Option<u64>,
    /// Context fan-out watermark for graceful degradation.
    pub watermark: Option<u32>,
}

impl Budget {
    /// An unlimited budget (same as `Budget::default()`).
    #[must_use]
    pub fn unlimited() -> Self {
        Budget::default()
    }

    /// Sets the wall-clock deadline.
    #[must_use]
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Sets the fixpoint step limit.
    #[must_use]
    pub fn with_max_steps(mut self, steps: u64) -> Self {
        self.max_steps = Some(steps);
        self
    }

    /// Sets the memory-estimate cap in bytes.
    #[must_use]
    pub fn with_max_memory(mut self, bytes: u64) -> Self {
        self.max_memory_bytes = Some(bytes);
        self
    }

    /// Sets the context fan-out watermark.
    #[must_use]
    pub fn with_watermark(mut self, watermark: u32) -> Self {
        self.watermark = Some(watermark);
        self
    }

    /// Whether no limit is set at all (the meter can skip every check).
    #[must_use]
    pub fn is_unlimited(&self) -> bool {
        self.deadline.is_none() && self.max_steps.is_none() && self.max_memory_bytes.is_none()
    }
}

/// Process-wide SIGINT latch; see [`CancelToken::linked_to_sigint`].
static SIGINT_HIT: AtomicBool = AtomicBool::new(false);
/// Process-wide SIGTERM latch; see [`CancelToken::linked_to_sigterm`].
static SIGTERM_HIT: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
fn install_signal_handler(signum: i32, latch: &'static AtomicBool) {
    // One handler per latch; the latch is selected by signal number so
    // the handler body stays a single async-signal-safe atomic store.
    extern "C" fn on_signal(signum: i32) {
        let latch = if signum == SIGTERM {
            &SIGTERM_HIT
        } else {
            &SIGINT_HIT
        };
        latch.store(true, Ordering::SeqCst);
    }
    let _ = latch;
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    // SAFETY: `signal` is the C standard library's handler installer
    // (std already links libc on unix); the handler performs only an
    // atomic store, which is async-signal-safe.
    unsafe {
        signal(signum, on_signal as *const () as usize);
    }
}

const SIGINT: i32 = 2;
const SIGTERM: i32 = 15;

#[cfg(unix)]
fn install_sigint_handler() {
    install_signal_handler(SIGINT, &SIGINT_HIT);
}

#[cfg(unix)]
fn install_sigterm_handler() {
    install_signal_handler(SIGTERM, &SIGTERM_HIT);
}

#[cfg(not(unix))]
fn install_sigint_handler() {}

#[cfg(not(unix))]
fn install_sigterm_handler() {}

/// Cooperative cancellation flag shared between a driver and the solve
/// it started. Cloning yields a handle to the *same* flag.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
    follow_sigint: bool,
    follow_sigterm: bool,
}

impl CancelToken {
    /// A fresh, uncancelled token.
    #[must_use]
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// A fresh token that also trips when the process receives SIGINT.
    ///
    /// Installs the (idempotent) SIGINT handler on unix; elsewhere the
    /// token behaves exactly like [`CancelToken::new`].
    #[must_use]
    pub fn linked_to_sigint() -> Self {
        install_sigint_handler();
        CancelToken {
            flag: Arc::new(AtomicBool::new(false)),
            follow_sigint: true,
            follow_sigterm: false,
        }
    }

    /// A fresh token that also trips when the process receives SIGTERM —
    /// the shutdown signal a service manager sends a resident daemon.
    ///
    /// Installs the (idempotent) SIGTERM handler on unix; elsewhere the
    /// token behaves exactly like [`CancelToken::new`]. The latch is
    /// process-wide: every linked token trips together, which is the
    /// desired semantics for "stop the daemon".
    #[must_use]
    pub fn linked_to_sigterm() -> Self {
        install_sigterm_handler();
        CancelToken {
            flag: Arc::new(AtomicBool::new(false)),
            follow_sigint: false,
            follow_sigterm: true,
        }
    }

    /// Requests cancellation; every clone observes it.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::SeqCst);
    }

    /// Whether cancellation was requested (directly or, for linked
    /// tokens, via SIGINT).
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
            || (self.follow_sigint && SIGINT_HIT.load(Ordering::Relaxed))
            || (self.follow_sigterm && SIGTERM_HIT.load(Ordering::Relaxed))
    }
}

/// How many `check` calls pass between wall-clock reads. Steps are tiny
/// (one worklist pop / one engine round), so even a coarse stride keeps
/// deadline overshoot far below the contractual 10%.
const TIME_CHECK_STRIDE: u32 = 64;

/// The runtime side of a [`Budget`]: captures the start instant and
/// answers "has anything tripped?" cheaply from inside a fixpoint loop.
///
/// Step and memory comparisons happen on every call; wall-clock reads
/// are strided ([`TIME_CHECK_STRIDE`]) because `Instant::now` is the
/// only costly probe. The limits are mutable (`extend_*`) so graceful
/// degradation can demote contexts and then grant itself headroom to
/// finish the coarser run.
#[derive(Debug)]
pub struct BudgetMeter {
    start: Instant,
    deadline: Option<Instant>,
    max_steps: Option<u64>,
    max_memory_bytes: Option<u64>,
    until_time_check: u32,
}

impl BudgetMeter {
    /// Starts the clock on `budget`.
    #[must_use]
    pub fn new(budget: &Budget) -> Self {
        let start = Instant::now();
        BudgetMeter {
            start,
            deadline: budget.deadline.map(|d| start + d),
            max_steps: budget.max_steps,
            max_memory_bytes: budget.max_memory_bytes,
            until_time_check: 0,
        }
    }

    /// Time elapsed since the meter was created.
    #[must_use]
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// The cooperative check. Returns the first tripped limit, or
    /// `None` while the run is still within budget. `steps` and
    /// `memory_bytes` are the caller's running totals; `cancel` is
    /// consulted on every call (one relaxed atomic load).
    pub fn check(
        &mut self,
        steps: u64,
        memory_bytes: u64,
        cancel: Option<&CancelToken>,
    ) -> Option<Termination> {
        if let Some(token) = cancel {
            if token.is_cancelled() {
                return Some(Termination::DeadlineExceeded);
            }
        }
        if let Some(max) = self.max_steps {
            if steps >= max {
                return Some(Termination::StepLimit);
            }
        }
        if let Some(cap) = self.max_memory_bytes {
            if memory_bytes > cap {
                return Some(Termination::MemoryCap);
            }
        }
        if let Some(deadline) = self.deadline {
            if self.until_time_check == 0 {
                self.until_time_check = TIME_CHECK_STRIDE;
                if Instant::now() >= deadline {
                    return Some(Termination::DeadlineExceeded);
                }
            }
            self.until_time_check -= 1;
        }
        None
    }

    /// Raises the step limit by `extra` (no-op when unlimited).
    pub fn extend_steps(&mut self, extra: u64) {
        if let Some(max) = self.max_steps.as_mut() {
            *max = max.saturating_add(extra);
        }
    }

    /// Raises the memory cap by `extra` bytes (no-op when unlimited).
    pub fn extend_memory(&mut self, extra: u64) {
        if let Some(cap) = self.max_memory_bytes.as_mut() {
            *cap = cap.saturating_add(extra);
        }
    }

    /// Pushes the deadline back by `extra` and forces the next `check`
    /// to re-read the clock (no-op when no deadline is set).
    pub fn extend_deadline(&mut self, extra: Duration) {
        if let Some(deadline) = self.deadline.as_mut() {
            *deadline += extra;
            self.until_time_check = 0;
        }
    }
}

/// Parses a human-friendly byte size: a plain integer, or one with a
/// `K`/`M`/`G` suffix (case-insensitive, powers of 1024). Used by the
/// CLI's `--max-memory` flag.
pub fn parse_byte_size(s: &str) -> Result<u64, String> {
    let s = s.trim();
    if s.is_empty() {
        return Err("empty byte size".to_owned());
    }
    let (digits, multiplier) = match s.as_bytes()[s.len() - 1] {
        b'k' | b'K' => (&s[..s.len() - 1], 1u64 << 10),
        b'm' | b'M' => (&s[..s.len() - 1], 1u64 << 20),
        b'g' | b'G' => (&s[..s.len() - 1], 1u64 << 30),
        _ => (s, 1),
    };
    let value: u64 = digits
        .trim()
        .parse()
        .map_err(|_| format!("invalid byte size `{s}` (expected N, NK, NM or NG)"))?;
    value
        .checked_mul(multiplier)
        .ok_or_else(|| format!("byte size `{s}` overflows u64"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_budget_is_unlimited_and_never_trips() {
        let budget = Budget::default();
        assert!(budget.is_unlimited());
        let mut meter = BudgetMeter::new(&budget);
        for step in 0..10_000 {
            assert_eq!(meter.check(step, u64::MAX, None), None);
        }
    }

    #[test]
    fn step_limit_trips_at_the_limit() {
        let mut meter = BudgetMeter::new(&Budget::default().with_max_steps(5));
        assert_eq!(meter.check(4, 0, None), None);
        assert_eq!(meter.check(5, 0, None), Some(Termination::StepLimit));
    }

    #[test]
    fn memory_cap_trips_past_the_cap() {
        let mut meter = BudgetMeter::new(&Budget::default().with_max_memory(1024));
        assert_eq!(meter.check(0, 1024, None), None);
        assert_eq!(meter.check(0, 1025, None), Some(Termination::MemoryCap));
    }

    #[test]
    fn deadline_trips_within_the_stride() {
        let mut meter = BudgetMeter::new(&Budget::default().with_deadline(Duration::ZERO));
        let mut tripped = false;
        for step in 0..=u64::from(TIME_CHECK_STRIDE) {
            if meter.check(step, 0, None) == Some(Termination::DeadlineExceeded) {
                tripped = true;
                break;
            }
        }
        assert!(tripped, "zero deadline must trip within one stride");
    }

    #[test]
    fn cancellation_is_shared_across_clones_and_maps_to_deadline() {
        let token = CancelToken::new();
        let clone = token.clone();
        assert!(!clone.is_cancelled());
        token.cancel();
        assert!(clone.is_cancelled());
        let mut meter = BudgetMeter::new(&Budget::default());
        assert_eq!(
            meter.check(0, 0, Some(&clone)),
            Some(Termination::DeadlineExceeded)
        );
    }

    #[test]
    fn extensions_raise_tripped_limits() {
        let mut meter = BudgetMeter::new(&Budget::default().with_max_steps(2).with_max_memory(10));
        assert_eq!(meter.check(2, 0, None), Some(Termination::StepLimit));
        meter.extend_steps(10);
        assert_eq!(meter.check(2, 0, None), None);
        assert_eq!(meter.check(0, 11, None), Some(Termination::MemoryCap));
        meter.extend_memory(100);
        assert_eq!(meter.check(0, 11, None), None);
    }

    #[test]
    fn termination_strings_are_stable() {
        assert_eq!(Termination::Complete.as_str(), "complete");
        assert_eq!(Termination::DeadlineExceeded.as_str(), "deadline_exceeded");
        assert_eq!(Termination::StepLimit.as_str(), "step_limit");
        assert_eq!(Termination::MemoryCap.as_str(), "memory_cap");
        assert!(Termination::Complete.is_complete());
        assert!(!Termination::StepLimit.is_complete());
    }

    #[cfg(unix)]
    #[test]
    fn sigterm_linked_token_trips_on_the_signal() {
        // Install the handler first, then raise SIGTERM at ourselves;
        // the handler only latches an atomic, so the test binary
        // survives and every linked token observes the cancellation.
        let token = CancelToken::linked_to_sigterm();
        let unlinked = CancelToken::new();
        assert!(!token.is_cancelled());
        extern "C" {
            fn raise(signum: i32) -> i32;
        }
        // SAFETY: the handler installed by `linked_to_sigterm` replaces
        // the default terminate disposition with an atomic store.
        unsafe {
            raise(SIGTERM);
        }
        assert!(token.is_cancelled());
        assert!(!unlinked.is_cancelled());
    }

    #[test]
    fn byte_sizes_parse_with_suffixes() {
        assert_eq!(parse_byte_size("1024"), Ok(1024));
        assert_eq!(parse_byte_size("4K"), Ok(4096));
        assert_eq!(parse_byte_size("2m"), Ok(2 << 20));
        assert_eq!(parse_byte_size("1G"), Ok(1 << 30));
        assert!(parse_byte_size("").is_err());
        assert!(parse_byte_size("12Q").is_err());
        assert!(parse_byte_size("nope").is_err());
    }
}
