//! Process-wide allocation accounting for peak-memory reporting.
//!
//! The bench harness and the CLI report a `peak_rss_bytes` figure per
//! run. `/proc` polling is racy (a sampler thread misses short spikes)
//! and `getrusage` RSS is distorted by allocator caching and page
//! reuse, so instead the binaries install [`CountingAlloc`] — a thin
//! wrapper over the system allocator that maintains two process-wide
//! atomics: the bytes currently live and the high-water mark. The
//! counters cost two relaxed atomic ops per allocation and are exact
//! for heap usage (stacks and code pages are excluded, which is what a
//! set-representation experiment wants anyway).
//!
//! The driver calls [`reset_peak`] before a cell and [`peak_bytes`]
//! after it, so per-cell peaks are not inflated by earlier cells'
//! high-water marks (live carry-over such as the interned program stays
//! counted, as it should be).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// Bytes currently allocated through [`CountingAlloc`].
static CURRENT: AtomicU64 = AtomicU64::new(0);
/// High-water mark of [`CURRENT`] since process start / last reset.
static PEAK: AtomicU64 = AtomicU64::new(0);

#[inline]
fn grow(bytes: u64) {
    let now = CURRENT.fetch_add(bytes, Ordering::Relaxed) + bytes;
    PEAK.fetch_max(now, Ordering::Relaxed);
}

#[inline]
fn shrink(bytes: u64) {
    CURRENT.fetch_sub(bytes, Ordering::Relaxed);
}

/// A `#[global_allocator]` wrapper over [`System`] that tracks live and
/// peak heap bytes. Install it in a binary with:
///
/// ```ignore
/// #[global_allocator]
/// static ALLOC: pta_govern::memtrack::CountingAlloc = CountingAlloc;
/// ```
pub struct CountingAlloc;

// SAFETY: delegates every operation to `System` unchanged; the counter
// updates are lock-free atomics and never allocate.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = unsafe { System.alloc(layout) };
        if !p.is_null() {
            grow(layout.size() as u64);
        }
        p
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let p = unsafe { System.alloc_zeroed(layout) };
        if !p.is_null() {
            grow(layout.size() as u64);
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) };
        shrink(layout.size() as u64);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = unsafe { System.realloc(ptr, layout, new_size) };
        if !p.is_null() {
            // Model as shrink-then-grow so PEAK sees the larger of the
            // two sizes, matching what the heap actually held.
            if new_size >= layout.size() {
                grow((new_size - layout.size()) as u64);
            } else {
                shrink((layout.size() - new_size) as u64);
            }
        }
        p
    }
}

/// Bytes currently live. Zero when no [`CountingAlloc`] is installed.
#[must_use]
pub fn current_bytes() -> u64 {
    CURRENT.load(Ordering::Relaxed)
}

/// Peak live bytes since process start or the last [`reset_peak`].
/// Zero when no [`CountingAlloc`] is installed.
#[must_use]
pub fn peak_bytes() -> u64 {
    PEAK.load(Ordering::Relaxed)
}

/// Restarts the high-water mark at the current live figure (call
/// between bench cells so each reports its own peak).
pub fn reset_peak() {
    PEAK.store(CURRENT.load(Ordering::Relaxed), Ordering::Relaxed);
}
