//! Process-wide allocation accounting for peak-memory reporting.
//!
//! The bench harness and the CLI report a `peak_rss_bytes` figure per
//! run. `/proc` polling is racy (a sampler thread misses short spikes)
//! and `getrusage` RSS is distorted by allocator caching and page
//! reuse, so instead the binaries install [`CountingAlloc`] — a thin
//! wrapper over the system allocator that maintains two process-wide
//! atomics: the bytes currently live and the high-water mark. The
//! counters cost two relaxed atomic ops per allocation and are exact
//! for heap usage (stacks and code pages are excluded, which is what a
//! set-representation experiment wants anyway).
//!
//! The driver calls [`reset_peak`] before a cell and [`peak_bytes`]
//! after it, so per-cell peaks are not inflated by earlier cells'
//! high-water marks (live carry-over such as the interned program stays
//! counted, as it should be).
//!
//! # Per-thread scoped peaks
//!
//! The process-wide high-water mark is the right figure for a batch run
//! but meaningless for one request inside a resident daemon: every
//! request would report the daemon's lifetime peak. [`ScopedPeak`]
//! tracks a *thread-local* allocation high-water mark instead — each
//! thread carries its own live-delta and peak counters (updated with two
//! `Cell` operations per allocation, no atomics), and a scope measures
//! the peak growth attributable to the allocations **this thread**
//! performed while the scope was live. Scopes on different threads never
//! interfere, which is exactly the attribution a per-request worker
//! wants. Frees of memory allocated on another thread are accounted to
//! the freeing thread (the live-delta is signed), which only ever
//! *lowers* a scope's figure — the reported peak is the high-water mark
//! of the thread's own net allocation curve.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

/// Bytes currently allocated through [`CountingAlloc`].
static CURRENT: AtomicU64 = AtomicU64::new(0);
/// High-water mark of [`CURRENT`] since process start / last reset.
static PEAK: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// Net bytes this thread has allocated minus bytes it has freed.
    /// Signed: a thread that frees buffers allocated elsewhere goes
    /// negative. `const`-initialized so the allocator never recurses
    /// through lazy TLS setup.
    static T_CURRENT: Cell<i64> = const { Cell::new(0) };
    /// High-water mark of [`T_CURRENT`] since thread start or the last
    /// [`ScopedPeak::begin`] / [`reset_thread_peak`] on this thread.
    static T_PEAK: Cell<i64> = const { Cell::new(i64::MIN) };
}

#[inline]
fn grow(bytes: u64) {
    let now = CURRENT.fetch_add(bytes, Ordering::Relaxed) + bytes;
    PEAK.fetch_max(now, Ordering::Relaxed);
    // `try_with`: TLS may already be torn down during thread exit; the
    // allocator must keep working, so those late allocations simply go
    // untracked per-thread.
    let _ = T_CURRENT.try_with(|c| {
        let now = c.get() + bytes as i64;
        c.set(now);
        let _ = T_PEAK.try_with(|p| {
            if now > p.get() {
                p.set(now);
            }
        });
    });
}

#[inline]
fn shrink(bytes: u64) {
    CURRENT.fetch_sub(bytes, Ordering::Relaxed);
    let _ = T_CURRENT.try_with(|c| c.set(c.get() - bytes as i64));
}

/// A `#[global_allocator]` wrapper over [`System`] that tracks live and
/// peak heap bytes. Install it in a binary with:
///
/// ```ignore
/// #[global_allocator]
/// static ALLOC: pta_govern::memtrack::CountingAlloc = CountingAlloc;
/// ```
pub struct CountingAlloc;

// SAFETY: delegates every operation to `System` unchanged; the counter
// updates are lock-free atomics and never allocate.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = unsafe { System.alloc(layout) };
        if !p.is_null() {
            grow(layout.size() as u64);
        }
        p
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let p = unsafe { System.alloc_zeroed(layout) };
        if !p.is_null() {
            grow(layout.size() as u64);
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) };
        shrink(layout.size() as u64);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = unsafe { System.realloc(ptr, layout, new_size) };
        if !p.is_null() {
            // Model as shrink-then-grow so PEAK sees the larger of the
            // two sizes, matching what the heap actually held.
            if new_size >= layout.size() {
                grow((new_size - layout.size()) as u64);
            } else {
                shrink((layout.size() - new_size) as u64);
            }
        }
        p
    }
}

/// Bytes currently live. Zero when no [`CountingAlloc`] is installed.
#[must_use]
pub fn current_bytes() -> u64 {
    CURRENT.load(Ordering::Relaxed)
}

/// Peak live bytes since process start or the last [`reset_peak`].
/// Zero when no [`CountingAlloc`] is installed.
#[must_use]
pub fn peak_bytes() -> u64 {
    PEAK.load(Ordering::Relaxed)
}

/// Restarts the high-water mark at the current live figure (call
/// between bench cells so each reports its own peak).
pub fn reset_peak() {
    PEAK.store(CURRENT.load(Ordering::Relaxed), Ordering::Relaxed);
}

/// Restarts *this thread's* high-water mark at its current net
/// allocation figure. Prefer [`ScopedPeak`], which pairs the reset with
/// the measurement.
pub fn reset_thread_peak() {
    let _ = T_CURRENT.try_with(|c| {
        let now = c.get();
        let _ = T_PEAK.try_with(|p| p.set(now));
    });
}

/// This thread's net allocated bytes (allocations minus frees performed
/// by this thread; negative when it mostly frees other threads' memory).
/// Zero when no [`CountingAlloc`] is installed.
#[must_use]
pub fn thread_current_bytes() -> i64 {
    T_CURRENT.try_with(Cell::get).unwrap_or(0)
}

/// A scoped, resettable high-water mark over **this thread's** net
/// allocations: [`ScopedPeak::begin`] resets the thread-local peak to
/// the current figure, [`ScopedPeak::peak_bytes`] reports how far above
/// that baseline the thread's net allocation curve climbed while the
/// scope was live.
///
/// Scopes are per-thread and must not be nested on one thread (`begin`
/// resets the shared thread-local mark, so an outer scope would lose
/// sight of a peak that occurred inside an inner one). One scope per
/// worker-thread request — the `pta serve` usage — is the intended
/// shape. Concurrent scopes on *different* threads are fully
/// independent.
#[derive(Debug)]
pub struct ScopedPeak {
    baseline: i64,
}

impl ScopedPeak {
    /// Starts a scope: resets this thread's peak to its current net
    /// allocation figure and remembers it as the baseline.
    #[must_use]
    pub fn begin() -> ScopedPeak {
        reset_thread_peak();
        ScopedPeak {
            baseline: thread_current_bytes(),
        }
    }

    /// Peak net bytes this thread allocated above the scope baseline so
    /// far. Monotone while the scope is live; zero when nothing was
    /// allocated (or no [`CountingAlloc`] is installed).
    #[must_use]
    pub fn peak_bytes(&self) -> u64 {
        let peak = T_PEAK.try_with(Cell::get).unwrap_or(i64::MIN);
        if peak == i64::MIN {
            return 0;
        }
        (peak - self.baseline).max(0) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // These tests exercise the thread-local bookkeeping only; without a
    // `#[global_allocator] CountingAlloc` in the test binary the numbers
    // would all be zero, so drive `grow`/`shrink` directly.

    #[test]
    fn scoped_peak_tracks_growth_and_resets() {
        let scope = ScopedPeak::begin();
        assert_eq!(scope.peak_bytes(), 0);
        grow(1000);
        grow(500);
        shrink(1500);
        assert_eq!(scope.peak_bytes(), 1500);
        // A later scope starts fresh: the old peak is not carried over.
        let scope2 = ScopedPeak::begin();
        assert_eq!(scope2.peak_bytes(), 0);
        grow(10);
        shrink(10);
        assert_eq!(scope2.peak_bytes(), 10);
    }

    #[test]
    fn scoped_peak_clamps_net_frees_to_zero() {
        // Freeing memory allocated elsewhere drives the thread negative;
        // the scope reports zero, not a wrapped huge number. Pre-grow so
        // the process-wide counter never underflows its u64.
        grow(4096);
        let scope = ScopedPeak::begin();
        shrink(4096);
        assert_eq!(scope.peak_bytes(), 0);
        grow(100);
        // Still net-negative relative to baseline: peak stays clamped.
        assert_eq!(scope.peak_bytes(), 0);
        grow(5000);
        assert_eq!(scope.peak_bytes(), 5000 + 100 - 4096);
    }

    #[test]
    fn scopes_on_different_threads_are_independent() {
        let scope = ScopedPeak::begin();
        grow(64);
        let other = std::thread::spawn(|| {
            let inner = ScopedPeak::begin();
            grow(1 << 20);
            shrink(1 << 20);
            inner.peak_bytes()
        })
        .join()
        .unwrap();
        assert_eq!(other, 1 << 20);
        // The other thread's megabyte spike is invisible here.
        assert_eq!(scope.peak_bytes(), 64);
        shrink(64);
    }
}
