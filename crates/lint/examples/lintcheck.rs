//! Lints every DaCapo workload configuration and prints per-code counts.
//!
//! Usage: `cargo run -p pta-lint --example lintcheck [scale]`
//!
//! All rows should print `{}` — the generator is expected to produce
//! lint-clean programs (see `crates/lint/tests/dacapo_clean.rs`).

use std::collections::BTreeMap;

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.3);
    for name in pta_workload::DACAPO_NAMES {
        let program = pta_workload::dacapo_workload(name, scale);
        let diags = pta_lint::lint_program(&program);
        let mut counts: BTreeMap<&str, usize> = BTreeMap::new();
        for d in &diags {
            *counts.entry(d.code).or_insert(0) += 1;
        }
        println!("{name}: {counts:?}");
        for d in diags.iter().take(4) {
            println!("   {d}");
        }
    }
}
