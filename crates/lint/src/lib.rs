//! # pta-lint — structured diagnostics and static lint passes
//!
//! The analysis toolchain has three places where things can be wrong
//! before any points-to analysis runs:
//!
//! 1. a `.jir` source can fail to lex, parse, or lower ([`pta_lang`]);
//! 2. a lowered [`Program`](pta_ir::Program) can be well-formed yet contain
//!    code that is provably inert or buggy — unreachable methods, doomed
//!    casts, write-only fields;
//! 3. a Datalog rule program handed to the engine can be unsafe or
//!    partially dead ([`pta_datalog::Engine::verify`]).
//!
//! This crate unifies all three under one [`Diagnostic`] model: stable
//! `E0xx`/`W0xx` codes, a severity, a message, and an optional source span
//! threaded from the frontend. See [`diag`] for the full code index, and
//! the `pta lint` CLI subcommand for the operator entry point.
//!
//! ```
//! let diags = pta_lint::lint_source(r"
//!     class Object {}
//!     class Main : Object {
//!         static main() { dead = new Object; }
//!     }
//!     entry Main.main;
//! ");
//! assert_eq!(diags.len(), 1);
//! assert_eq!(diags[0].code, "W006"); // allocation never used
//! ```

pub mod convert;
pub mod diag;
pub mod passes;
pub mod reach;

pub use convert::{diagnose_lang_error, diagnose_validate_error, diagnose_verify_report};
pub use diag::{code_description, render_json, render_text, Diagnostic, Severity, ALL_CODES};
pub use passes::{lint_program, lint_source};
pub use reach::cha_reachable;
