//! A cheap CHA-style reachability prepass.
//!
//! Class Hierarchy Analysis resolves every virtual call to *all* methods
//! the signature can dispatch to anywhere in the hierarchy — the coarsest
//! sound call graph, computable without any points-to information. The
//! lint passes use it as the "could this ever run?" baseline: anything CHA
//! cannot reach from the entry points is dead for every analysis in this
//! repository, since all of them compute subsets of the CHA call graph.

use pta_ir::program::Instr;
use pta_ir::{MethodId, Program, SigId};

/// Methods reachable from the entry points under CHA, as a dense
/// `MethodId`-indexed bitmap.
#[must_use]
pub fn cha_reachable(program: &Program) -> Vec<bool> {
    // A virtual call dispatches through its signature: collect, per
    // signature, every instance method any type dispatches to. Walking
    // `lookup` over all (type, sig) pairs folds subtype inheritance in.
    let mut sig_targets: Vec<Vec<MethodId>> = vec![Vec::new(); program.sig_count()];
    for (s, targets) in sig_targets.iter_mut().enumerate() {
        let sig = SigId::from_index(s);
        for ty in program.types() {
            if let Some(m) = program.lookup(ty, sig) {
                if !targets.contains(&m) {
                    targets.push(m);
                }
            }
        }
    }

    let mut reachable = vec![false; program.method_count()];
    let mut worklist: Vec<MethodId> = Vec::new();
    for &entry in program.entry_points() {
        if !reachable[entry.index()] {
            reachable[entry.index()] = true;
            worklist.push(entry);
        }
    }
    while let Some(meth) = worklist.pop() {
        for instr in program.instrs(meth) {
            match instr {
                Instr::SCall { target, .. } if !reachable[target.index()] => {
                    reachable[target.index()] = true;
                    worklist.push(*target);
                }
                Instr::VCall { sig, .. } => {
                    for &m in &sig_targets[sig.index()] {
                        if !reachable[m.index()] {
                            reachable[m.index()] = true;
                            worklist.push(m);
                        }
                    }
                }
                _ => {}
            }
        }
    }
    reachable
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cha_reaches_virtual_targets_and_skips_orphans() {
        let program = pta_lang::parse_program(
            r"
            class Object {}
            class A : Object {
                method run() { x = new Object; return x; }
            }
            class B : A {
                method run() { y = new Object; return y; }
            }
            class Main : Object {
                static main() {
                    a = new A;
                    r = a.run();
                }
                static orphan() { z = new Object; }
            }
            entry Main.main;
        ",
        )
        .unwrap();
        let reach = cha_reachable(&program);
        let by_name = |n: &str| {
            program
                .methods()
                .find(|&m| program.method_qualified_name(m) == n)
                .unwrap()
        };
        assert!(reach[by_name("Main.main").index()]);
        // CHA is receiver-type-blind: both overrides of run() count.
        assert!(reach[by_name("A.run").index()]);
        assert!(reach[by_name("B.run").index()]);
        assert!(!reach[by_name("Main.orphan").index()]);
    }
}
