//! The IR lint passes (`W001`–`W006`).
//!
//! Each pass is a whole-program scan over the lowered IR. They are
//! deliberately cheap — linear in the program, plus one CHA reachability
//! fixpoint shared by [`cha_reachable`] — so `pta lint` stays interactive
//! even on the scaled DaCapo workloads. The passes report *analysis-grade
//! certainties*, not heuristics: every warning identifies code that is
//! provably inert (unreachable, doomed, or unobservable) under any of the
//! analyses in this repository, because all of them refine the CHA call
//! graph the passes use as their baseline.

use pta_ir::program::Instr;
use pta_ir::{FieldId, Program, SrcLoc, VarId};

use crate::diag::Diagnostic;
use crate::reach::cha_reachable;

/// Runs every lint pass over `program`, returning findings ordered by
/// code, then by program position.
#[must_use]
pub fn lint_program(program: &Program) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    unreachable_methods(program, &mut diags);
    use_before_assignment(program, &mut diags);
    doomed_casts(program, &mut diags);
    untargeted_virtual_calls(program, &mut diags);
    write_only_fields(program, &mut diags);
    dead_allocations(program, &mut diags);
    diags
}

/// Parses and lints a `.jir` source: frontend errors come back as a single
/// `E0xx` diagnostic, a well-formed program as its (possibly empty) lint
/// findings.
#[must_use]
pub fn lint_source(source: &str) -> Vec<Diagnostic> {
    match pta_lang::parse_program(source) {
        Ok(program) => lint_program(&program),
        Err(err) => vec![crate::convert::diagnose_lang_error(&err)],
    }
}

/// `W001`: methods no CHA path from any entry point can reach.
fn unreachable_methods(program: &Program, diags: &mut Vec<Diagnostic>) {
    let reachable = cha_reachable(program);
    for meth in program.methods() {
        if !reachable[meth.index()] {
            diags.push(
                Diagnostic::warning(
                    "W001",
                    format!(
                        "method {} is unreachable from the entry points",
                        program.method_qualified_name(meth)
                    ),
                )
                .with_span(program.method_loc(meth))
                .with_context(program.method_qualified_name(meth)),
            );
        }
    }
}

/// The variables an instruction reads, in operand order.
fn instr_uses(program: &Program, instr: &Instr, out: &mut Vec<VarId>) {
    out.clear();
    match instr {
        Instr::Alloc { .. } | Instr::SLoad { .. } => {}
        Instr::Move { from, .. } | Instr::Cast { from, .. } | Instr::SStore { from, .. } => {
            out.push(*from);
        }
        Instr::Load { base, .. } => out.push(*base),
        Instr::Store { base, from, .. } => {
            out.push(*base);
            out.push(*from);
        }
        Instr::Throw { var } => out.push(*var),
        Instr::VCall { base, invo, .. } => {
            out.push(*base);
            out.extend_from_slice(program.actual_args(*invo));
        }
        Instr::SCall { invo, .. } => out.extend_from_slice(program.actual_args(*invo)),
    }
}

/// The variable an instruction defines, if any.
fn instr_def(program: &Program, instr: &Instr) -> Option<VarId> {
    match instr {
        Instr::Alloc { var, .. } => Some(*var),
        Instr::Move { to, .. }
        | Instr::Cast { to, .. }
        | Instr::Load { to, .. }
        | Instr::SLoad { to, .. } => Some(*to),
        Instr::VCall { invo, .. } | Instr::SCall { invo, .. } => program.actual_return(*invo),
        Instr::Store { .. } | Instr::SStore { .. } | Instr::Throw { .. } => None,
    }
}

/// `W002`: a local's first use precedes its first assignment.
///
/// Method bodies are straight-line in this IR, so "before" is instruction
/// order. `this`, formals and catch-clause binders are assigned on entry.
/// (The frontend already rejects locals that are *never* assigned; this
/// pass catches the ordering bug the flow-insensitive lowering admits.)
fn use_before_assignment(program: &Program, diags: &mut Vec<Diagnostic>) {
    let mut uses = Vec::new();
    for meth in program.methods() {
        let mut assigned = vec![false; program.var_count()];
        if let Some(this) = program.this_var(meth) {
            assigned[this.index()] = true;
        }
        for &f in program.formals(meth) {
            assigned[f.index()] = true;
        }
        for &(_, var) in program.catches(meth) {
            assigned[var.index()] = true;
        }
        let mut reported = vec![false; program.var_count()];
        for (idx, instr) in program.instrs(meth).iter().enumerate() {
            instr_uses(program, instr, &mut uses);
            for &var in &uses {
                if !assigned[var.index()] && !reported[var.index()] {
                    reported[var.index()] = true;
                    diags.push(
                        Diagnostic::warning(
                            "W002",
                            format!(
                                "variable {} is used before it is assigned",
                                program.var_name(var)
                            ),
                        )
                        .with_span(program.instr_loc(meth, idx))
                        .with_context(program.method_qualified_name(meth)),
                    );
                }
            }
            if let Some(def) = instr_def(program, instr) {
                assigned[def.index()] = true;
            }
        }
    }
}

/// `W003`: casts no execution can satisfy, because the whole program
/// allocates no object whose type is a subtype of the cast target.
fn doomed_casts(program: &Program, diags: &mut Vec<Diagnostic>) {
    let mut allocated = vec![false; program.type_count()];
    for heap in program.heaps() {
        allocated[program.heap_type(heap).index()] = true;
    }
    for meth in program.methods() {
        for (idx, instr) in program.instrs(meth).iter().enumerate() {
            if let Instr::Cast { ty, .. } = instr {
                let satisfiable = program
                    .types()
                    .any(|t| allocated[t.index()] && program.is_subtype(t, *ty));
                if !satisfiable {
                    diags.push(
                        Diagnostic::warning(
                            "W003",
                            format!(
                                "cast to {} can never succeed: the program allocates no \
                                 object of that type or a subtype",
                                program.type_name(*ty)
                            ),
                        )
                        .with_span(program.instr_loc(meth, idx))
                        .with_context(program.method_qualified_name(meth)),
                    );
                }
            }
        }
    }
}

/// `W004`: virtual calls whose signature dispatches to nothing anywhere in
/// the hierarchy — guaranteed no-ops under every analysis.
fn untargeted_virtual_calls(program: &Program, diags: &mut Vec<Diagnostic>) {
    let mut sig_has_target = vec![false; program.sig_count()];
    for meth in program.methods() {
        if !program.method_is_static(meth) {
            sig_has_target[program.method_sig(meth).index()] = true;
        }
    }
    for meth in program.methods() {
        for (idx, instr) in program.instrs(meth).iter().enumerate() {
            if let Instr::VCall { sig, invo, .. } = instr {
                if !sig_has_target[sig.index()] {
                    diags.push(
                        Diagnostic::warning(
                            "W004",
                            format!(
                                "virtual call {} has no dispatch target for signature {}",
                                program.invo_label(*invo),
                                program.sig_name(*sig)
                            ),
                        )
                        .with_span(program.instr_loc(meth, idx))
                        .with_context(program.method_qualified_name(meth)),
                    );
                }
            }
        }
    }
}

/// `W005`: fields some instruction writes but no instruction reads.
fn write_only_fields(program: &Program, diags: &mut Vec<Diagnostic>) {
    let nf = program.field_count();
    let mut written: Vec<Option<(SrcLoc, String)>> = vec![None; nf];
    let mut read = vec![false; nf];
    for meth in program.methods() {
        for (idx, instr) in program.instrs(meth).iter().enumerate() {
            match instr {
                Instr::Store { field, .. } | Instr::SStore { field, .. }
                    if written[field.index()].is_none() =>
                {
                    written[field.index()] = Some((
                        program.instr_loc(meth, idx),
                        program.method_qualified_name(meth),
                    ));
                }
                Instr::Load { field, .. } | Instr::SLoad { field, .. } => {
                    read[field.index()] = true;
                }
                _ => {}
            }
        }
    }
    for f in 0..nf {
        if let Some((loc, in_method)) = &written[f] {
            if !read[f] {
                let field = FieldId::from_index(f);
                diags.push(
                    Diagnostic::warning(
                        "W005",
                        format!(
                            "field {}.{} is written but never read",
                            program.type_name(program.field_owner(field)),
                            program.field_name(field)
                        ),
                    )
                    .with_span(*loc)
                    .with_context(in_method.clone()),
                );
            }
        }
    }
}

/// `W006`: allocations whose result variable the method never reads (and
/// does not return) — the object is unobservable.
fn dead_allocations(program: &Program, diags: &mut Vec<Diagnostic>) {
    let mut uses = Vec::new();
    for meth in program.methods() {
        let mut var_read = vec![false; program.var_count()];
        if let Some(ret) = program.formal_return(meth) {
            var_read[ret.index()] = true;
        }
        for instr in program.instrs(meth) {
            instr_uses(program, instr, &mut uses);
            for &var in &uses {
                var_read[var.index()] = true;
            }
        }
        for (idx, instr) in program.instrs(meth).iter().enumerate() {
            if let Instr::Alloc { var, heap } = instr {
                if !var_read[var.index()] {
                    diags.push(
                        Diagnostic::warning(
                            "W006",
                            format!(
                                "allocation {} is assigned to {} which is never used",
                                program.heap_label(*heap),
                                program.var_name(*var)
                            ),
                        )
                        .with_span(program.instr_loc(meth, idx))
                        .with_context(program.method_qualified_name(meth)),
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn codes(src: &str) -> Vec<&'static str> {
        lint_source(src).iter().map(|d| d.code).collect()
    }

    #[test]
    fn clean_program_has_no_findings() {
        let src = r"
            class Object {}
            class Main : Object {
                static main() {
                    x = new Object;
                    y = x;
                    return y;
                }
            }
            entry Main.main;
        ";
        assert!(codes(src).is_empty(), "{:?}", lint_source(src));
    }

    #[test]
    fn syntax_error_becomes_a_single_e007() {
        assert_eq!(codes("class {"), vec!["E007"]);
    }

    #[test]
    fn each_pass_fires_on_its_seeded_defect() {
        // One program, one seeded defect per pass.
        let src = r"
            class Object {}
            class Phantom : Object {}
            class Unrelated : Object {
                field sink;
                method ping() { return this; }
            }
            class Main : Object {
                static helper() { h = new Object; return h; }
                static main() {
                    x = new Object;
                    u = (Phantom) x;
                    dead = new Object;
                    s = new Unrelated;
                    s.sink = x;
                    r = s.ping();
                }
            }
            entry Main.main;
        ";
        let diags = lint_source(src);
        let codes: Vec<_> = diags.iter().map(|d| d.code).collect();
        assert!(codes.contains(&"W001"), "helper unreachable: {diags:?}");
        assert!(codes.contains(&"W003"), "cast to Phantom doomed: {diags:?}");
        assert!(codes.contains(&"W005"), "sink write-only: {diags:?}");
        assert!(codes.contains(&"W006"), "dead alloc: {diags:?}");
    }

    #[test]
    fn w002_flags_use_before_assignment_order() {
        // `y = x;` before `x = new Object;`: flow-sensitively broken even
        // though every local is assigned somewhere.
        let src = r"
            class Object {}
            class Main : Object {
                static main() {
                    y = x;
                    x = new Object;
                    z = y;
                    return z;
                }
            }
            entry Main.main;
        ";
        let diags = lint_source(src);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code, "W002");
        assert!(diags[0].message.contains('x'));
        assert!(diags[0].span.is_some());
    }

    #[test]
    fn w004_flags_calls_to_signatures_nobody_implements() {
        // `Callee.frob` exists only as a *static* method, so the virtual
        // signature `frob/0` has no dispatch entry anywhere.
        let src = r"
            class Object {}
            class Callee : Object {
                static frob() { o = new Object; return o; }
                method id() { return this; }
            }
            class Main : Object {
                static main() {
                    c = new Callee;
                    d = c.id();
                    e = c.frob();
                    return e;
                }
            }
            entry Main.main;
        ";
        let diags = lint_source(src);
        assert!(
            diags
                .iter()
                .any(|d| d.code == "W004" && d.message.contains("frob")),
            "{diags:?}"
        );
    }
}
