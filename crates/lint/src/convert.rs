//! Adapters from the toolchain's native error types into [`Diagnostic`]s.
//!
//! Each layer keeps its own precise error enum (so library users can match
//! on structure), and this module gives every one of them a stable
//! diagnostic code and a uniform rendering:
//!
//! - [`ValidateError`] → `E001`–`E006` (IR well-formedness),
//! - [`LangError`] → `E007` (lex/parse, with span) and `E008` (lowering),
//!   delegating to the `ValidateError` mapping for its `Validate` variant,
//! - [`VerifyReport`] → `E010`–`E012` / `W010`–`W011` (rule-program
//!   verification), with the rule label as context.

use pta_datalog::{VerifyIssueKind, VerifyReport};
use pta_ir::ValidateError;
use pta_lang::LangError;

use crate::diag::Diagnostic;

/// Maps an IR validation error onto its diagnostic code.
#[must_use]
pub fn diagnose_validate_error(err: &ValidateError) -> Diagnostic {
    let code = match err {
        ValidateError::NoEntryPoint => "E001",
        ValidateError::BadEntryPoint { .. } => "E002",
        ValidateError::ForeignVariable { .. } => "E003",
        ValidateError::ArityMismatch { .. } => "E004",
        ValidateError::BadCallKind { .. } => "E005",
        ValidateError::BadFieldKind { .. } => "E006",
    };
    Diagnostic::error(code, err.to_string())
}

/// Maps a frontend error onto its diagnostic code, carrying the source
/// span for lexical and syntax errors.
#[must_use]
pub fn diagnose_lang_error(err: &LangError) -> Diagnostic {
    match err {
        LangError::Lex { location, message } => {
            Diagnostic::error("E007", format!("lex error: {message}")).with_span(*location)
        }
        LangError::Parse { location, message } => {
            Diagnostic::error("E007", format!("parse error: {message}")).with_span(*location)
        }
        LangError::Lower { message } => {
            Diagnostic::error("E008", format!("lowering error: {message}"))
        }
        LangError::Validate(v) => diagnose_validate_error(v),
    }
}

/// Flattens a rule-program verification report into diagnostics (the
/// strata report is informational and not part of the flattening).
#[must_use]
pub fn diagnose_verify_report(report: &VerifyReport) -> Vec<Diagnostic> {
    report
        .issues
        .iter()
        .map(|issue| {
            let d = match issue.kind {
                VerifyIssueKind::UnboundHeadVar => Diagnostic::error("E010", &issue.message),
                VerifyIssueKind::ArityMismatch => Diagnostic::error("E011", &issue.message),
                VerifyIssueKind::BadBinding => Diagnostic::error("E012", &issue.message),
                VerifyIssueKind::DeadRule => Diagnostic::warning("W010", &issue.message),
                VerifyIssueKind::UnusedRelation => Diagnostic::warning("W011", &issue.message),
            };
            match &issue.rule {
                Some(rule) => d.with_context(rule.clone()),
                None => d,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Severity;

    #[test]
    fn lang_errors_map_to_codes_and_spans() {
        let err = pta_lang::parse_program("class {").unwrap_err();
        let d = diagnose_lang_error(&err);
        assert_eq!(d.code, "E007");
        assert_eq!(d.severity, Severity::Error);
        assert!(d.span.is_some(), "syntax errors carry a span");
    }

    #[test]
    fn missing_entry_maps_to_e001() {
        let err = pta_lang::parse_program("class Object {}").unwrap_err();
        let d = diagnose_lang_error(&err);
        assert_eq!(d.code, "E001");
    }

    #[test]
    fn lowering_errors_map_to_e008() {
        let src = r"
            class Object {}
            class Main : Object { static main() { y = x; } }
            entry Main.main;
        ";
        let err = pta_lang::parse_program(src).unwrap_err();
        let d = diagnose_lang_error(&err);
        assert_eq!(d.code, "E008");
        assert!(d.message.contains("never assigned"));
    }

    #[test]
    fn verify_report_flattens_with_rule_context() {
        let mut e = pta_datalog::Engine::new();
        let never = e.relation("never", 1);
        let out = e.relation("out", 1);
        e.rule()
            .label("starved")
            .head(out, &[pta_datalog::Term::var("x")])
            .atom(never, &[pta_datalog::Term::var("x")])
            .build()
            .unwrap();
        let diags = diagnose_verify_report(&e.verify());
        assert!(diags.iter().any(|d| d.code == "W010"
            && d.severity == Severity::Warning
            && d.context.as_deref() == Some("starved")));
    }
}
