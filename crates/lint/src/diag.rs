//! The structured diagnostic model and its renderers.
//!
//! Every problem the toolchain can report — frontend errors, IR validation
//! failures, Datalog rule-program verification findings, and IR lint
//! warnings — is expressed as a [`Diagnostic`]: a stable code, a severity,
//! a message, and an optional source span / context. One model, two
//! renderers (human-readable text and line-oriented JSON), so the CLI, the
//! library API and the test suite all agree on what a finding looks like.
//!
//! ## Code index
//!
//! | code | severity | meaning |
//! |------|----------|---------|
//! | E001 | error | program has no entry point |
//! | E002 | error | entry point is not a self-contained static method |
//! | E003 | error | instruction uses a variable of another method |
//! | E004 | error | call-site arity mismatch |
//! | E005 | error | call instruction / invocation-site kind mismatch |
//! | E006 | error | static/instance field accessed with the wrong shape |
//! | E007 | error | lexical or syntax error in a `.jir` source |
//! | E008 | error | name-resolution / lowering error |
//! | E010 | error | Datalog rule: head variable not bound by the body |
//! | E011 | error | Datalog rule: atom arity does not match the relation |
//! | E012 | error | Datalog rule: ill-formed functor binding |
//! | E020 | error | malformed line in a `pta check` source/sink spec |
//! | E021 | error | check spec names a method the program does not define |
//! | E030 | error | CLI usage error (unknown flag, bad value, bad combination) |
//! | E031 | error | CLI I/O error (missing or unreadable input file) |
//! | W001 | warning | method unreachable from the entry points (CHA) |
//! | W002 | warning | local variable used before its first assignment |
//! | W003 | warning | cast can never succeed (no allocation of the type) |
//! | W004 | warning | virtual call has zero dispatch targets |
//! | W005 | warning | field is written but never read |
//! | W006 | warning | allocation result is never used |
//! | W007 | warning | method demoted to context-insensitive by graceful degradation |
//! | W010 | warning | Datalog rule can never fire (empty, underivable body) |
//! | W011 | warning | Datalog relation declared but never used |
//! | W020 | warning | taint: a sink may receive an object tainted by a source |
//! | W021 | warning | escape: an allocation site may escape its allocating thread |
//! | W022 | warning | nullness: a dereference base may be null |
//! | W023 | warning | check findings come from a partial (budget-bounded) result |
//!
//! `W007` is an *analysis-time* diagnostic: `pta analyze --degrade` emits
//! one per demoted method. It is never produced by the static lint passes
//! (a program is not wrong for being expensive), so lint-clean inputs stay
//! lint-clean. The `W02x`/`E02x` block belongs to the `pta check` client
//! suite (`pta_clients::check`): findings are computed from a points-to
//! result, so — like `W007` — they never appear in `pta lint` output.
//! `E030`/`E031` are *driver* diagnostics: the `pta` binary reports flag
//! and input-file problems through them (always exit code 2), so even
//! usage errors are machine-readable.

use std::fmt;

use pta_ir::SrcLoc;

/// How bad a [`Diagnostic`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// The input is ill-formed; no analysis result is meaningful.
    Error,
    /// The input is suspicious but analyzable.
    Warning,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Error => write!(f, "error"),
            Severity::Warning => write!(f, "warning"),
        }
    }
}

/// One finding, in the shape every layer of the toolchain shares.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable code (`E0xx` for errors, `W0xx` for lint warnings).
    pub code: &'static str,
    /// Error or warning.
    pub severity: Severity,
    /// Human-readable description of this specific finding.
    pub message: String,
    /// Source location, when the finding maps to a `.jir` span.
    pub span: Option<SrcLoc>,
    /// Enclosing context — usually a qualified method name or a rule label.
    pub context: Option<String>,
}

impl Diagnostic {
    /// Creates an error diagnostic.
    pub fn error(code: &'static str, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            code,
            severity: Severity::Error,
            message: message.into(),
            span: None,
            context: None,
        }
    }

    /// Creates a warning diagnostic.
    pub fn warning(code: &'static str, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            code,
            severity: Severity::Warning,
            message: message.into(),
            span: None,
            context: None,
        }
    }

    /// Attaches a source span (ignored when `loc` is unknown).
    #[must_use]
    pub fn with_span(mut self, loc: SrcLoc) -> Diagnostic {
        if loc.is_known() {
            self.span = Some(loc);
        }
        self
    }

    /// Attaches a context label (method name, rule label, …).
    #[must_use]
    pub fn with_context(mut self, context: impl Into<String>) -> Diagnostic {
        self.context = Some(context.into());
        self
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]: {}", self.severity, self.code, self.message)?;
        match (&self.span, &self.context) {
            (Some(s), Some(c)) => write!(f, " (at {s}, in {c})"),
            (Some(s), None) => write!(f, " (at {s})"),
            (None, Some(c)) => write!(f, " (in {c})"),
            (None, None) => Ok(()),
        }
    }
}

/// Human-readable description of a diagnostic code, for `--explain`-style
/// help and the README index. Returns `None` for unknown codes.
#[must_use]
pub fn code_description(code: &str) -> Option<&'static str> {
    Some(match code {
        "E001" => "program has no entry point",
        "E002" => "entry point is not a self-contained static method",
        "E003" => "instruction uses a variable belonging to another method",
        "E004" => "call site passes the wrong number of arguments",
        "E005" => "call instruction disagrees with its invocation site's kind",
        "E006" => "static/instance field accessed with the wrong instruction shape",
        "E007" => "lexical or syntax error in a .jir source file",
        "E008" => "name-resolution or lowering error in a .jir source file",
        "E010" => "Datalog rule: head variable not bound by any body atom or functor output",
        "E011" => "Datalog rule: atom term count does not match the relation arity",
        "E012" => "Datalog rule: functor binding is ill-formed",
        "E020" => "malformed line in a pta check source/sink specification",
        "E021" => "check specification names a method the program does not define",
        "E030" => "CLI usage error: unknown flag, bad flag value, or invalid combination",
        "E031" => "CLI I/O error: an input file is missing or unreadable",
        "W001" => "method is unreachable from the entry points (CHA call graph)",
        "W002" => "local variable is used before its first assignment",
        "W003" => "cast can never succeed: no allocation in the program has the target type",
        "W004" => "virtual call has zero dispatch targets in the class hierarchy",
        "W005" => "field is written but never read",
        "W006" => "allocated object is never used",
        "W007" => {
            "method was demoted to the context-insensitive constructor mid-run: its context \
             fan-out crossed the --degrade watermark (emitted by `pta analyze`, not `pta lint`)"
        }
        "W010" => "Datalog rule can never fire: a body relation is empty and underivable",
        "W011" => "Datalog relation is declared but never used by any rule or fact",
        "W020" => {
            "taint: a sink call site may receive an object allocated in a source method \
             without passing through a sanitizer"
        }
        "W021" => {
            "escape: an allocation site may escape its allocating thread (reachable from a \
             static field or an uncaught exception)"
        }
        "W022" => "nullness: the base of a dereference may be null at this site",
        "W023" => {
            "check findings were computed from a partial result (budget exhausted or \
             degraded run): absent findings are not proof of absence"
        }
        _ => return None,
    })
}

/// All diagnostic codes, in index order (for documentation generators).
pub const ALL_CODES: &[&str] = &[
    "E001", "E002", "E003", "E004", "E005", "E006", "E007", "E008", "E010", "E011", "E012", "E020",
    "E021", "E030", "E031", "W001", "W002", "W003", "W004", "W005", "W006", "W007", "W010", "W011",
    "W020", "W021", "W022", "W023",
];

/// Renders diagnostics as human-readable text, one per line, followed by a
/// summary line. The empty set renders as a single "no issues" line.
#[must_use]
pub fn render_text(diags: &[Diagnostic]) -> String {
    if diags.is_empty() {
        return "no issues found\n".to_owned();
    }
    let mut out = String::new();
    for d in diags {
        out.push_str(&d.to_string());
        out.push('\n');
    }
    let errors = diags
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .count();
    let warnings = diags.len() - errors;
    out.push_str(&format!("{errors} error(s), {warnings} warning(s)\n"));
    out
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders diagnostics as a JSON array (one object per line). Spans render
/// as `"line"`/`"column"` numbers; absent spans and contexts as `null`.
#[must_use]
pub fn render_json(diags: &[Diagnostic]) -> String {
    let mut body = Vec::with_capacity(diags.len());
    for d in diags {
        let (line, column) = match d.span {
            Some(s) => (s.line.to_string(), s.column.to_string()),
            None => ("null".to_owned(), "null".to_owned()),
        };
        let context = match &d.context {
            Some(c) => format!("\"{}\"", json_escape(c)),
            None => "null".to_owned(),
        };
        body.push(format!(
            "  {{\"code\":\"{}\",\"severity\":\"{}\",\"message\":\"{}\",\
             \"line\":{line},\"column\":{column},\"context\":{context}}}",
            d.code,
            d.severity,
            json_escape(&d.message),
        ));
    }
    format!("[\n{}\n]\n", body.join(",\n"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_code_span_and_context() {
        let d = Diagnostic::warning("W001", "method is unreachable")
            .with_span(SrcLoc::new(12, 5))
            .with_context("Main.helper");
        assert_eq!(
            d.to_string(),
            "warning[W001]: method is unreachable (at 12:5, in Main.helper)"
        );
    }

    #[test]
    fn unknown_span_is_dropped() {
        let d = Diagnostic::error("E001", "no entry point").with_span(SrcLoc::UNKNOWN);
        assert_eq!(d.span, None);
        assert_eq!(d.to_string(), "error[E001]: no entry point");
    }

    #[test]
    fn text_rendering_counts_severities() {
        let diags = vec![
            Diagnostic::error("E001", "a"),
            Diagnostic::warning("W001", "b"),
            Diagnostic::warning("W002", "c"),
        ];
        let text = render_text(&diags);
        assert!(text.ends_with("1 error(s), 2 warning(s)\n"));
        assert!(render_text(&[]).contains("no issues"));
    }

    #[test]
    fn json_rendering_is_well_formed() {
        let diags = vec![
            Diagnostic::warning("W002", "use of \"x\" before assignment")
                .with_span(SrcLoc::new(3, 9)),
        ];
        let json = render_json(&diags);
        assert!(json.contains("\"code\":\"W002\""));
        assert!(json.contains("\"line\":3"));
        assert!(json.contains("\\\"x\\\""));
        let empty = render_json(&[]);
        assert!(empty.starts_with("[\n") && empty.trim_end().ends_with(']'));
    }

    #[test]
    fn every_code_has_a_description() {
        for code in ALL_CODES {
            assert!(code_description(code).is_some(), "{code}");
        }
        assert!(code_description("E999").is_none());
    }
}
