//! Every DaCapo workload configuration must generate lint-clean programs:
//! the generator's warmup pass and dead-allocation sink exist precisely so
//! that no seeded program ships unreachable methods, write-only fields, or
//! dead allocations.

use pta_lint::lint_program;
use pta_workload::{dacapo_workload, DACAPO_NAMES};

#[test]
fn all_dacapo_workloads_are_lint_clean() {
    for name in DACAPO_NAMES {
        let program = dacapo_workload(name, 0.3);
        let diags = lint_program(&program);
        assert!(
            diags.is_empty(),
            "{name} should be lint-clean, got {} diagnostic(s):\n{}",
            diags.len(),
            pta_lint::render_text(&diags)
        );
    }
}

#[test]
fn scaled_up_workload_stays_clean() {
    // The op mix shifts with scale; cleanliness must not be an accident of
    // the small configs.
    let program = dacapo_workload("xalan", 1.0);
    let diags = lint_program(&program);
    assert!(
        diags.is_empty(),
        "xalan@1.0 should be lint-clean:\n{}",
        pta_lint::render_text(&diags)
    );
}
