//! One fixture per diagnostic code, asserting the exact code and span.
//!
//! Source-level codes (`E001`, `E007`, `E008`, `W001`–`W006`) are driven
//! through `.jir` sources exactly as `pta lint` would see them. Validation
//! codes that well-formed `.jir` cannot reach (`E002`–`E006` — the frontend
//! constructs programs that satisfy those invariants by construction) are
//! driven through hand-built [`ValidateError`] values, the same path the
//! converter takes in production.

use pta_ir::validate::ValidateError;
use pta_ir::{InvoId, MethodId, ProgramBuilder, VarId};
use pta_lint::{diagnose_validate_error, lint_source, Severity};

/// Asserts exactly one diagnostic with `code` and returns it.
fn single(source: &str, code: &str) -> pta_lint::Diagnostic {
    let diags = lint_source(source);
    assert_eq!(
        diags.len(),
        1,
        "expected exactly one {code}, got: {diags:?}"
    );
    assert_eq!(diags[0].code, code, "wrong code: {diags:?}");
    diags[0].clone()
}

#[test]
fn e001_no_entry_point() {
    let d = single(
        r"
class Object {}
class Main : Object {
    static main() { x = new Object; y = x; }
}
",
        "E001",
    );
    assert_eq!(d.severity, Severity::Error);
    // NoEntryPoint is a whole-program property; no span to anchor to.
    assert!(d.span.is_none());
}

#[test]
fn e007_parse_error_with_exact_span() {
    // The stray token sits at line 3, column 5.
    let d = single(
        "class Object {}\nclass Main : Object {\n    %%% static main() {}\n}\nentry Main.main;\n",
        "E007",
    );
    assert_eq!(d.severity, Severity::Error);
    let span = d.span.expect("lex/parse errors carry a span");
    assert_eq!((span.line, span.column), (3, 5), "wrong span: {span}");
}

#[test]
fn e008_lowering_error() {
    // `y` is read but never assigned anywhere in the method.
    let d = single(
        r"
class Object {}
class Main : Object {
    static main() { x = y; }
}
entry Main.main;
",
        "E008",
    );
    assert_eq!(d.severity, Severity::Error);
    assert!(
        d.message.contains("never assigned"),
        "unexpected message: {}",
        d.message
    );
}

#[test]
fn w001_unreachable_method_span_points_at_the_method() {
    // `helper` (line 5) is never called from the entry point.
    let d = single(
        "class Object {}\nclass Main : Object {\n    static main() { x = new Object; y = x; }\n\n    static helper() { h = new Object; g = h; }\n}\nentry Main.main;\n",
        "W001",
    );
    assert_eq!(d.severity, Severity::Warning);
    let span = d.span.expect("W001 carries the method's span");
    assert_eq!(span.line, 5, "wrong span: {span}");
    assert!(
        d.message.contains("helper"),
        "message should name the method: {}",
        d.message
    );
}

#[test]
fn w002_use_before_assignment_span_points_at_first_use() {
    // `y = x;` on line 4 reads `x` before its line-5 assignment.
    let d = single(
        "class Object {}\nclass Main : Object {\n    static main() {\n        y = x;\n        x = new Object;\n        z = y;\n    }\n}\nentry Main.main;\n",
        "W002",
    );
    assert_eq!(d.severity, Severity::Warning);
    let span = d.span.expect("W002 carries the first use's span");
    assert_eq!(span.line, 4, "wrong span: {span}");
}

#[test]
fn w003_doomed_cast_no_compatible_heap() {
    // Nothing ever allocates a Phantom (or subtype), so the cast on line 6
    // can never succeed.
    let d = single(
        "class Object {}\nclass Phantom : Object {}\nclass Main : Object {\n    static main() {\n        x = new Object;\n        p = (Phantom) x;\n        q = p;\n    }\n}\nentry Main.main;\n",
        "W003",
    );
    assert_eq!(d.severity, Severity::Warning);
    let span = d.span.expect("W003 carries the cast's span");
    assert_eq!(span.line, 6, "wrong span: {span}");
    assert!(
        d.message.contains("Phantom"),
        "message should name the type: {}",
        d.message
    );
}

#[test]
fn w004_virtual_call_with_no_target() {
    // `frob` exists only as a static method (called statically on line 8,
    // so it is reachable), leaving the virtual site on line 9 with no
    // possible receiver implementation.
    let d = single(
        "class Object {}\nclass Tool : Object {\n    static frob(x) { r = x; }\n}\nclass Main : Object {\n    static main() {\n        t = new Tool;\n        s = Tool.frob(t);\n        t.frob(t);\n    }\n}\nentry Main.main;\n",
        "W004",
    );
    assert_eq!(d.severity, Severity::Warning);
    let span = d.span.expect("W004 carries the call's span");
    assert_eq!(span.line, 9, "wrong span: {span}");
}

#[test]
fn w005_write_only_field() {
    // `sink` is stored on line 6 and never loaded.
    let d = single(
        "class Object {}\nclass Box : Object { field sink; }\nclass Main : Object {\n    static main() {\n        b = new Box;\n        b.sink = b;\n    }\n}\nentry Main.main;\n",
        "W005",
    );
    assert_eq!(d.severity, Severity::Warning);
    let span = d.span.expect("W005 carries the first store's span");
    assert_eq!(span.line, 6, "wrong span: {span}");
    assert!(
        d.message.contains("sink"),
        "message should name the field: {}",
        d.message
    );
}

#[test]
fn w006_dead_allocation() {
    // The allocation on line 4 is never read again.
    let d = single(
        "class Object {}\nclass Main : Object {\n    static main() {\n        dead = new Object;\n    }\n}\nentry Main.main;\n",
        "W006",
    );
    assert_eq!(d.severity, Severity::Warning);
    let span = d.span.expect("W006 carries the allocation's span");
    assert_eq!(span.line, 4, "wrong span: {span}");
}

// ----- validation codes unreachable from well-formed `.jir` ---------------

#[test]
fn e002_bad_entry_point() {
    let d = diagnose_validate_error(&ValidateError::BadEntryPoint {
        method: MethodId::from_raw(7),
    });
    assert_eq!(d.code, "E002");
    assert_eq!(d.severity, Severity::Error);
    assert!(d.message.contains("entry point"), "{}", d.message);
}

#[test]
fn e003_foreign_variable() {
    let d = diagnose_validate_error(&ValidateError::ForeignVariable {
        method: MethodId::from_raw(1),
        var: VarId::from_raw(42),
    });
    assert_eq!(d.code, "E003");
    assert_eq!(d.severity, Severity::Error);
}

#[test]
fn e004_arity_mismatch() {
    let d = diagnose_validate_error(&ValidateError::ArityMismatch {
        method: MethodId::from_raw(1),
        invo: InvoId::from_raw(3),
        callee: Some(MethodId::from_raw(2)),
        got: 1,
        expected: 2,
    });
    assert_eq!(d.code, "E004");
    assert_eq!(d.severity, Severity::Error);
    assert!(
        d.message.contains('1') && d.message.contains('2'),
        "{}",
        d.message
    );
}

#[test]
fn e005_bad_call_kind() {
    use pta_ir::InvoKind;
    let d = diagnose_validate_error(&ValidateError::BadCallKind {
        method: MethodId::from_raw(1),
        invo: InvoId::from_raw(3),
        expected: InvoKind::Static,
        found: InvoKind::Virtual,
        target: None,
    });
    assert_eq!(d.code, "E005");
    assert_eq!(d.severity, Severity::Error);
}

#[test]
fn e006_bad_field_kind() {
    // Constructed through the validator itself: an instance-field load via
    // a static access shape is exactly what real builder misuse produces.
    let mut b = ProgramBuilder::new();
    let object = b.class("Object", None);
    let box_ty = b.class("Box", Some(object));
    let fld = b.field(box_ty, "val"); // instance field
    let main_class = b.class("Main", Some(object));
    let main = b.method(main_class, "main", &[], true);
    let x = b.var(main, "x");
    b.sload(main, x, fld); // static-style access of an instance field
    b.entry_point(main);
    let err = b.finish().expect_err("must fail validation");
    let d = diagnose_validate_error(&err);
    assert_eq!(d.code, "E006");
    assert_eq!(d.severity, Severity::Error);
}

// ----- clean sources stay clean -------------------------------------------

#[test]
fn clean_source_yields_no_diagnostics() {
    let diags = lint_source(
        r"
class Object {}
class Box : Object {
    field val;
    method get() { r = this.val; return r; }
    method set(x) { this.val = x; }
}
class Main : Object {
    static main() {
        b = new Box;
        p = new Object;
        b.set(p);
        q = b.get();
        r = q;
    }
}
entry Main.main;
",
    );
    assert!(diags.is_empty(), "expected clean, got: {diags:?}");
}

#[test]
fn spans_render_in_text_output() {
    let diags = lint_source("class Object {}\n%%%\n");
    let text = pta_lint::render_text(&diags);
    assert!(text.contains("E007"), "{text}");
    assert!(text.contains("2:1"), "span should render: {text}");
}
