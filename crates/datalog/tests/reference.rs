//! Property-based reference checks: the semi-naive engine must compute the
//! same results as brute-force implementations written directly in the
//! test (Warshall closure for transitive closure, nested loops for joins,
//! bounded iteration for functor saturation).

use std::collections::BTreeSet;

use proptest::prelude::*;

use pta_datalog::{Engine, Term};

fn v(n: &str) -> Term {
    Term::var(n)
}

/// Brute-force reflexionless transitive closure.
fn warshall(n: usize, edges: &BTreeSet<(u32, u32)>) -> BTreeSet<(u32, u32)> {
    let mut reach = vec![vec![false; n]; n];
    for &(a, b) in edges {
        reach[a as usize][b as usize] = true;
    }
    for k in 0..n {
        for i in 0..n {
            if reach[i][k] {
                let row_k = reach[k].clone();
                for (j, &r) in row_k.iter().enumerate() {
                    if r {
                        reach[i][j] = true;
                    }
                }
            }
        }
    }
    let mut out = BTreeSet::new();
    for (i, row) in reach.iter().enumerate() {
        for (j, &r) in row.iter().enumerate() {
            if r {
                out.insert((i as u32, j as u32));
            }
        }
    }
    out
}

fn engine_closure(edges: &BTreeSet<(u32, u32)>) -> BTreeSet<(u32, u32)> {
    let mut e = Engine::new();
    let edge = e.relation("edge", 2);
    let path = e.relation("path", 2);
    for &(a, b) in edges {
        e.fact(edge, &[a, b]);
    }
    e.rule()
        .head(path, &[v("x"), v("y")])
        .atom(edge, &[v("x"), v("y")])
        .build()
        .unwrap();
    e.rule()
        .head(path, &[v("x"), v("z")])
        .atom(path, &[v("x"), v("y")])
        .atom(path, &[v("y"), v("z")])
        .build()
        .unwrap();
    e.run();
    e.rows(path).map(|r| (r.get(0), r.get(1))).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn transitive_closure_matches_warshall(
        edges in proptest::collection::btree_set((0u32..12, 0u32..12), 0..40)
    ) {
        prop_assert_eq!(engine_closure(&edges), warshall(12, &edges));
    }

    #[test]
    fn binary_join_matches_nested_loops(
        r in proptest::collection::btree_set((0u32..8, 0u32..8), 0..24),
        s in proptest::collection::btree_set((0u32..8, 0u32..8), 0..24),
    ) {
        let mut e = Engine::new();
        let rr = e.relation("r", 2);
        let ss = e.relation("s", 2);
        let tt = e.relation("t", 2);
        for &(a, b) in &r {
            e.fact(rr, &[a, b]);
        }
        for &(a, b) in &s {
            e.fact(ss, &[a, b]);
        }
        // t(x, z) <- r(x, y), s(y, z).
        e.rule()
            .head(tt, &[v("x"), v("z")])
            .atom(rr, &[v("x"), v("y")])
            .atom(ss, &[v("y"), v("z")])
            .build()
            .unwrap();
        e.run();
        let got: BTreeSet<(u32, u32)> = e.rows(tt).map(|row| (row.get(0), row.get(1))).collect();
        let mut expected = BTreeSet::new();
        for &(x, y) in &r {
            for &(y2, z) in &s {
                if y == y2 {
                    expected.insert((x, z));
                }
            }
        }
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn functor_saturation_matches_modular_orbit(
        start in 0u32..30,
        modulus in 1u32..30,
        step in 0u32..30,
    ) {
        // reach(y) <- reach(x), y = (x + step) % modulus: the orbit of
        // `start` under an affine map, computed directly.
        let mut e = Engine::new();
        let reach = e.relation("reach", 1);
        let f = e.functor("affine", Box::new(move |args: &[u32]| (args[0] + step) % modulus));
        e.fact(reach, &[start % modulus]);
        e.rule()
            .head(reach, &[v("y")])
            .atom(reach, &[v("x")])
            .bind(f, &[v("x")], "y")
            .build()
            .unwrap();
        e.run();
        let got: BTreeSet<u32> = e.rows(reach).map(|r| r.get(0)).collect();
        let mut expected = BTreeSet::new();
        let mut cur = start % modulus;
        while expected.insert(cur) {
            cur = (cur + step) % modulus;
        }
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn multi_head_rules_match_two_single_head_rules(
        facts in proptest::collection::btree_set(0u32..20, 0..15)
    ) {
        // One rule with two heads vs two separate rules must agree.
        let run = |multi: bool| -> (BTreeSet<u32>, BTreeSet<u32>) {
            let mut e = Engine::new();
            let a = e.relation("a", 1);
            let b = e.relation("b", 1);
            let c = e.relation("c", 1);
            for &x in &facts {
                e.fact(a, &[x]);
            }
            if multi {
                e.rule()
                    .head(b, &[v("x")])
                    .head(c, &[v("x")])
                    .atom(a, &[v("x")])
                    .build()
                    .unwrap();
            } else {
                e.rule().head(b, &[v("x")]).atom(a, &[v("x")]).build().unwrap();
                e.rule().head(c, &[v("x")]).atom(a, &[v("x")]).build().unwrap();
            }
            e.run();
            (
                e.rows(b).map(|r| r.get(0)).collect(),
                e.rows(c).map(|r| r.get(0)).collect(),
            )
        };
        prop_assert_eq!(run(true), run(false));
    }
}
