//! Randomized reference checks: the semi-naive engine must compute the
//! same results as brute-force implementations written directly in the
//! test (Warshall closure for transitive closure, nested loops for joins,
//! bounded iteration for functor saturation). Deterministic seeds keep the
//! suite reproducible without an external property-testing framework.

use std::collections::BTreeSet;

use pta_datalog::{Engine, Term};
use pta_ir::rng::Rng;

fn v(n: &str) -> Term {
    Term::var(n)
}

/// A random set of up to `max_pairs` pairs over `0..domain`.
fn random_pairs(rng: &mut Rng, domain: u32, max_pairs: usize) -> BTreeSet<(u32, u32)> {
    let count = rng.gen_range(0..max_pairs + 1);
    (0..count)
        .map(|_| (rng.gen_range(0..domain), rng.gen_range(0..domain)))
        .collect()
}

/// Brute-force reflexionless transitive closure.
fn warshall(n: usize, edges: &BTreeSet<(u32, u32)>) -> BTreeSet<(u32, u32)> {
    let mut reach = vec![vec![false; n]; n];
    for &(a, b) in edges {
        reach[a as usize][b as usize] = true;
    }
    for k in 0..n {
        for i in 0..n {
            if reach[i][k] {
                let row_k = reach[k].clone();
                for (j, &r) in row_k.iter().enumerate() {
                    if r {
                        reach[i][j] = true;
                    }
                }
            }
        }
    }
    let mut out = BTreeSet::new();
    for (i, row) in reach.iter().enumerate() {
        for (j, &r) in row.iter().enumerate() {
            if r {
                out.insert((i as u32, j as u32));
            }
        }
    }
    out
}

fn engine_closure(edges: &BTreeSet<(u32, u32)>) -> BTreeSet<(u32, u32)> {
    let mut e = Engine::new();
    let edge = e.relation("edge", 2);
    let path = e.relation("path", 2);
    for &(a, b) in edges {
        e.fact(edge, &[a, b]);
    }
    e.rule()
        .head(path, &[v("x"), v("y")])
        .atom(edge, &[v("x"), v("y")])
        .build()
        .unwrap();
    e.rule()
        .head(path, &[v("x"), v("z")])
        .atom(path, &[v("x"), v("y")])
        .atom(path, &[v("y"), v("z")])
        .build()
        .unwrap();
    e.run();
    e.rows(path).map(|r| (r.get(0), r.get(1))).collect()
}

#[test]
fn transitive_closure_matches_warshall() {
    let mut rng = Rng::seed_from_u64(0xc105);
    for _ in 0..48 {
        let edges = random_pairs(&mut rng, 12, 40);
        assert_eq!(
            engine_closure(&edges),
            warshall(12, &edges),
            "edges: {edges:?}"
        );
    }
}

#[test]
fn binary_join_matches_nested_loops() {
    let mut rng = Rng::seed_from_u64(0x101);
    for _ in 0..48 {
        let r = random_pairs(&mut rng, 8, 24);
        let s = random_pairs(&mut rng, 8, 24);
        let mut e = Engine::new();
        let rr = e.relation("r", 2);
        let ss = e.relation("s", 2);
        let tt = e.relation("t", 2);
        for &(a, b) in &r {
            e.fact(rr, &[a, b]);
        }
        for &(a, b) in &s {
            e.fact(ss, &[a, b]);
        }
        // t(x, z) <- r(x, y), s(y, z).
        e.rule()
            .head(tt, &[v("x"), v("z")])
            .atom(rr, &[v("x"), v("y")])
            .atom(ss, &[v("y"), v("z")])
            .build()
            .unwrap();
        e.run();
        let got: BTreeSet<(u32, u32)> = e.rows(tt).map(|row| (row.get(0), row.get(1))).collect();
        let mut expected = BTreeSet::new();
        for &(x, y) in &r {
            for &(y2, z) in &s {
                if y == y2 {
                    expected.insert((x, z));
                }
            }
        }
        assert_eq!(got, expected, "r: {r:?}, s: {s:?}");
    }
}

#[test]
fn functor_saturation_matches_modular_orbit() {
    let mut rng = Rng::seed_from_u64(0xf0);
    for _ in 0..48 {
        let start = rng.gen_range(0..30u32);
        let modulus = rng.gen_range(1..30u32);
        let step = rng.gen_range(0..30u32);
        // reach(y) <- reach(x), y = (x + step) % modulus: the orbit of
        // `start` under an affine map, computed directly.
        let mut e = Engine::new();
        let reach = e.relation("reach", 1);
        let f = e.functor(
            "affine",
            Box::new(move |args: &[u32]| (args[0] + step) % modulus),
        );
        e.fact(reach, &[start % modulus]);
        e.rule()
            .head(reach, &[v("y")])
            .atom(reach, &[v("x")])
            .bind(f, &[v("x")], "y")
            .build()
            .unwrap();
        e.run();
        let got: BTreeSet<u32> = e.rows(reach).map(|r| r.get(0)).collect();
        let mut expected = BTreeSet::new();
        let mut cur = start % modulus;
        while expected.insert(cur) {
            cur = (cur + step) % modulus;
        }
        assert_eq!(
            got, expected,
            "start {start}, modulus {modulus}, step {step}"
        );
    }
}

#[test]
fn multi_head_rules_match_two_single_head_rules() {
    let mut rng = Rng::seed_from_u64(0x2b);
    for _ in 0..48 {
        let count = rng.gen_range(0..15usize);
        let facts: BTreeSet<u32> = (0..count).map(|_| rng.gen_range(0..20u32)).collect();
        // One rule with two heads vs two separate rules must agree.
        let run = |multi: bool| -> (BTreeSet<u32>, BTreeSet<u32>) {
            let mut e = Engine::new();
            let a = e.relation("a", 1);
            let b = e.relation("b", 1);
            let c = e.relation("c", 1);
            for &x in &facts {
                e.fact(a, &[x]);
            }
            if multi {
                e.rule()
                    .head(b, &[v("x")])
                    .head(c, &[v("x")])
                    .atom(a, &[v("x")])
                    .build()
                    .unwrap();
            } else {
                e.rule()
                    .head(b, &[v("x")])
                    .atom(a, &[v("x")])
                    .build()
                    .unwrap();
                e.rule()
                    .head(c, &[v("x")])
                    .atom(a, &[v("x")])
                    .build()
                    .unwrap();
            }
            e.run();
            (
                e.rows(b).map(|r| r.get(0)).collect(),
                e.rows(c).map(|r| r.get(0)).collect(),
            )
        };
        assert_eq!(run(true), run(false), "facts: {facts:?}");
    }
}
