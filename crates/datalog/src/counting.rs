//! Incremental maintenance for Datalog: counting semi-naive with DRed.
//!
//! The main [`crate::Engine`] is an additive-only fixpoint evaluator —
//! retracting a fact requires re-running everything. This module is the
//! maintenance counterpart the incremental `AnalysisSession` is built
//! around, realized for the generic rule layer: a [`DeltaEngine`] keeps
//! every derived relation *exactly* consistent with its EDB under both
//! insertions and deletions.
//!
//! Two classic algorithms, picked per stratum:
//!
//! - **Counting** (Gupta–Mumick–Subrahmanian) for non-recursive strata:
//!   every tuple carries the number of distinct rule instantiations that
//!   derive it. A deletion decrements the counts of the instantiations it
//!   participated in; a tuple dies only when its count reaches zero, so
//!   alternative derivations are never lost and no re-derivation pass is
//!   needed. Exact only without recursion — a cyclic derivation can keep
//!   its own count alive.
//! - **DRed** (delete-and-rederive, Gupta–Mumick) for recursive strata:
//!   deletions are first *over*-applied (every tuple transitively
//!   supported by a deleted tuple is suspected and removed), then each
//!   suspect is re-derived from the surviving facts if any rule
//!   instantiation still produces it, and re-derivations propagate
//!   semi-naively.
//!
//! The dense solver's incremental layer (`solver::incremental`) is the
//! same two-phase shape specialized to Figure 2's nine rules — its
//! "invalidation cone" is DRed's over-deletion, its "re-seed" is the
//! re-derivation pass. This module keeps the generic form honest with
//! rule sets the specialized layer cannot express, and serves as the
//! differential oracle for its edit-stream tests.
//!
//! Joins here are deliberately simple (index-free nested loops): the
//! module optimizes for being *obviously correct* — it is a maintenance
//! oracle, not a production evaluator. Rules are positive conjunctive
//! queries (no negation, no functors).

use crate::hash::FxHashMap;
use crate::stratify::scc;

/// Identifies a relation within a [`DeltaEngine`].
#[derive(Debug, Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CRelId(u32);

impl CRelId {
    /// The relation's dense index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One term of an atom: a rule variable (join position) or a constant.
#[derive(Debug, Copy, Clone, PartialEq, Eq)]
pub enum CTerm {
    /// Variable, identified by a small dense id local to its rule.
    Var(u32),
    /// Literal value.
    Const(u32),
}

/// One atom: a relation applied to terms.
#[derive(Debug, Clone)]
pub struct CAtom {
    /// The relation.
    pub rel: CRelId,
    /// Terms, one per column.
    pub terms: Vec<CTerm>,
}

/// A positive Horn rule `head :- body...`.
#[derive(Debug, Clone)]
struct CRule {
    head: CAtom,
    body: Vec<CAtom>,
}

/// Per-tuple support bookkeeping.
#[derive(Debug, Default, Clone, Copy)]
struct Support {
    /// Multiplicity as an explicitly asserted (EDB) fact.
    edb: u32,
    /// Number of rule instantiations currently deriving the tuple. In
    /// recursive strata this is still maintained, but correctness there
    /// rests on DRed, not on the count.
    derived: u32,
}

impl Support {
    #[inline]
    fn live(self) -> bool {
        self.edb > 0 || self.derived > 0
    }
}

#[derive(Debug, Default)]
struct RelData {
    name: String,
    arity: usize,
    rows: FxHashMap<Vec<u32>, Support>,
}

/// Maintenance statistics, cumulative over the engine's lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeltaStats {
    /// Tuples inserted (became live) across all relations.
    pub inserted: u64,
    /// Tuples deleted (became dead) across all relations.
    pub deleted: u64,
    /// Tuples over-deleted by DRed and then re-derived.
    pub rederived: u64,
    /// Maintenance rounds executed.
    pub rounds: u64,
}

/// An incrementally maintained Datalog database. Add relations and rules,
/// then [`DeltaEngine::seal`]; afterwards [`DeltaEngine::insert`] and
/// [`DeltaEngine::remove`] keep all derived relations exact.
#[derive(Default)]
pub struct DeltaEngine {
    rels: Vec<RelData>,
    rules: Vec<CRule>,
    /// Rule indices per stratum, in topological order.
    strata: Vec<Vec<usize>>,
    /// Whether each stratum contains recursion (head feeding a body in
    /// the same stratum) and therefore needs DRed on deletion.
    recursive: Vec<bool>,
    sealed: bool,
    stats: DeltaStats,
}

impl DeltaEngine {
    /// An empty engine.
    #[must_use]
    pub fn new() -> DeltaEngine {
        DeltaEngine::default()
    }

    /// Registers a relation.
    pub fn relation(&mut self, name: &str, arity: usize) -> CRelId {
        assert!(!self.sealed, "relation() after seal()");
        let id = CRelId(self.rels.len() as u32);
        self.rels.push(RelData {
            name: name.to_owned(),
            arity,
            rows: FxHashMap::default(),
        });
        id
    }

    /// Registers a rule `head :- body...`. Head variables must be bound
    /// by the body.
    pub fn rule(&mut self, head: CAtom, body: Vec<CAtom>) {
        assert!(!self.sealed, "rule() after seal()");
        assert!(!body.is_empty(), "facts go through insert(), not rules");
        assert_eq!(self.rels[head.rel.index()].arity, head.terms.len());
        for atom in &body {
            assert_eq!(self.rels[atom.rel.index()].arity, atom.terms.len());
        }
        let bound: Vec<u32> = body
            .iter()
            .flat_map(|a| a.terms.iter())
            .filter_map(|t| match t {
                CTerm::Var(v) => Some(*v),
                CTerm::Const(_) => None,
            })
            .collect();
        for t in &head.terms {
            if let CTerm::Var(v) = t {
                assert!(bound.contains(v), "head variable {v} unbound by body");
            }
        }
        self.rules.push(CRule { head, body });
    }

    /// Computes strata and freezes the schema. Must be called before the
    /// first [`DeltaEngine::insert`].
    pub fn seal(&mut self) {
        assert!(!self.sealed, "seal() twice");
        // Relation dependency graph: body -> head, as in `stratify`.
        let n = self.rels.len();
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
        for rule in &self.rules {
            for atom in &rule.body {
                adj[atom.rel.index()].push(rule.head.rel.index());
            }
        }
        let comp = scc(&adj);
        // `scc` yields reverse topological component ids: successors have
        // *smaller* ids, so evaluating components in decreasing id order
        // visits dependencies first.
        let n_comp = comp.iter().copied().max().map_or(0, |m| m + 1);
        let mut strata: Vec<Vec<usize>> = vec![Vec::new(); n_comp];
        let mut recursive = vec![false; n_comp];
        for (ri, rule) in self.rules.iter().enumerate() {
            let c = comp[rule.head.rel.index()];
            strata[c].push(ri);
            if rule.body.iter().any(|a| comp[a.rel.index()] == c) {
                recursive[c] = true;
            }
        }
        strata.reverse();
        recursive.reverse();
        self.strata = strata;
        self.recursive = recursive;
        self.sealed = true;
    }

    /// Number of live rows in `rel`.
    #[must_use]
    pub fn len(&self, rel: CRelId) -> usize {
        self.rels[rel.index()]
            .rows
            .values()
            .filter(|s| s.live())
            .count()
    }

    /// Whether `rel` has no live rows.
    #[must_use]
    pub fn is_empty(&self, rel: CRelId) -> bool {
        self.len(rel) == 0
    }

    /// Whether `rel` currently contains `row`.
    #[must_use]
    pub fn contains(&self, rel: CRelId, row: &[u32]) -> bool {
        self.rels[rel.index()]
            .rows
            .get(row)
            .is_some_and(|s| s.live())
    }

    /// Live rows of `rel`, in unspecified order.
    pub fn rows(&self, rel: CRelId) -> impl Iterator<Item = &Vec<u32>> {
        self.rels[rel.index()]
            .rows
            .iter()
            .filter(|(_, s)| s.live())
            .map(|(r, _)| r)
    }

    /// The relation's registered name.
    #[must_use]
    pub fn relation_name(&self, rel: CRelId) -> &str {
        &self.rels[rel.index()].name
    }

    /// Cumulative maintenance statistics.
    #[must_use]
    pub fn stats(&self) -> DeltaStats {
        self.stats
    }

    /// Asserts `row` as an EDB fact and propagates all consequences.
    /// Returns whether the tuple was newly visible.
    pub fn insert(&mut self, rel: CRelId, row: &[u32]) -> bool {
        assert!(self.sealed, "insert() before seal()");
        let support = self.rels[rel.index()].rows.entry(row.to_vec()).or_default();
        let was_live = support.live();
        support.edb += 1;
        if was_live {
            return false;
        }
        self.stats.inserted += 1;
        self.propagate_insertions(vec![(rel, row.to_vec())]);
        true
    }

    /// Retracts one EDB assertion of `row` and propagates all
    /// consequences. Returns whether the tuple became invisible.
    pub fn remove(&mut self, rel: CRelId, row: &[u32]) -> bool {
        assert!(self.sealed, "remove() before seal()");
        let Some(support) = self.rels[rel.index()].rows.get_mut(row) else {
            return false;
        };
        if support.edb == 0 {
            return false;
        }
        support.edb -= 1;
        if support.live() {
            return false;
        }
        self.stats.deleted += 1;
        self.propagate_deletions(vec![(rel, row.to_vec())]);
        true
    }

    // ----- evaluation ----------------------------------------------------

    /// All instantiations of `rule` in the current database with body
    /// atom `pivot` bound to exactly `row` (semi-naive delta restriction;
    /// remaining atoms range over all live rows, with atoms *before* the
    /// pivot additionally forbidden from matching `row` itself when they
    /// name the pivot's relation — the standard inclusion–exclusion that
    /// counts each instantiation exactly once when a batch of deltas is
    /// replayed pivot by pivot).
    fn instantiations_via(
        &self,
        rule: &CRule,
        pivot: usize,
        row: &[u32],
        delta: &FxHashMap<(CRelId, Vec<u32>), ()>,
    ) -> Vec<Vec<u32>> {
        let mut out = Vec::new();
        let mut binding: FxHashMap<u32, u32> = FxHashMap::default();
        if !unify(&rule.body[pivot].terms, row, &mut binding) {
            return out;
        }
        self.join_rest(rule, pivot, 0, &mut binding, delta, &mut out);
        out
    }

    /// Recursive nested-loop join over every body atom except `pivot`,
    /// emitting head rows for complete bindings.
    fn join_rest(
        &self,
        rule: &CRule,
        pivot: usize,
        atom_idx: usize,
        binding: &mut FxHashMap<u32, u32>,
        delta: &FxHashMap<(CRelId, Vec<u32>), ()>,
        out: &mut Vec<Vec<u32>>,
    ) {
        if atom_idx == rule.body.len() {
            let head: Vec<u32> = rule
                .head
                .terms
                .iter()
                .map(|t| match t {
                    CTerm::Var(v) => binding[v],
                    CTerm::Const(c) => *c,
                })
                .collect();
            out.push(head);
            return;
        }
        if atom_idx == pivot {
            self.join_rest(rule, pivot, atom_idx + 1, binding, delta, out);
            return;
        }
        let atom = &rule.body[atom_idx];
        let rel = &self.rels[atom.rel.index()];
        for (row, support) in &rel.rows {
            if !support.live() {
                continue;
            }
            // Atoms before the pivot must not match any row in the
            // current delta batch for the same relation: those
            // instantiations are counted when *that* row is the pivot.
            if atom_idx < pivot && delta.contains_key(&(atom.rel, row.clone())) {
                continue;
            }
            let saved: Vec<(u32, Option<u32>)> = atom
                .terms
                .iter()
                .filter_map(|t| match t {
                    CTerm::Var(v) => Some((*v, binding.get(v).copied())),
                    CTerm::Const(_) => None,
                })
                .collect();
            if unify(&atom.terms, row, binding) {
                self.join_rest(rule, pivot, atom_idx + 1, binding, delta, out);
            }
            for (v, old) in saved {
                match old {
                    Some(val) => {
                        binding.insert(v, val);
                    }
                    None => {
                        binding.remove(&v);
                    }
                }
            }
        }
    }

    /// Semi-naive additive propagation of `seed` tuples through every
    /// stratum in order.
    ///
    /// A tuple stays a delta for every stratum from its first appearance
    /// onward: a relation derived in one stratum may be *read* by any
    /// later one, so everything that becomes visible is carried forward
    /// and re-presented (strata whose rules don't mention it just skip
    /// it at the pivot check).
    ///
    /// Within a round, derived heads are buffered and applied only after
    /// every pivot has been processed: joins must see the database as of
    /// the round's start, or a head derived mid-round could join as an
    /// "other atom" for a later pivot and the same instantiation would
    /// be counted twice.
    fn propagate_insertions(&mut self, seed: Vec<(CRelId, Vec<u32>)>) {
        let mut carried = seed;
        for s in 0..self.strata.len() {
            if carried.is_empty() {
                break;
            }
            let mut delta = carried.clone();
            while !delta.is_empty() {
                self.stats.rounds += 1;
                let batch: FxHashMap<(CRelId, Vec<u32>), ()> =
                    delta.iter().map(|t| (t.clone(), ())).collect();
                let mut gains: Vec<(CRelId, Vec<u32>)> = Vec::new();
                let rules = self.strata[s].clone();
                for &ri in &rules {
                    let rule = self.rules[ri].clone();
                    for (rel, row) in &delta {
                        for pivot in 0..rule.body.len() {
                            if rule.body[pivot].rel != *rel {
                                continue;
                            }
                            for head in self.instantiations_via(&rule, pivot, row, &batch) {
                                gains.push((rule.head.rel, head));
                            }
                        }
                    }
                }
                let mut next: Vec<(CRelId, Vec<u32>)> = Vec::new();
                for (rel, head) in gains {
                    let support = self.rels[rel.index()].rows.entry(head.clone()).or_default();
                    let was_live = support.live();
                    support.derived += 1;
                    if !was_live {
                        self.stats.inserted += 1;
                        next.push((rel, head));
                    }
                }
                carried.extend(next.iter().cloned());
                delta = next;
            }
        }
    }

    /// Deletion propagation: counting within non-recursive strata, DRed
    /// within recursive ones. `seed` tuples are already invisible.
    ///
    /// Mirrors [`DeltaEngine::propagate_insertions`]: every death so far
    /// is carried forward and presented to each later stratum, since a
    /// relation that died in one stratum may be read by any later one.
    fn propagate_deletions(&mut self, seed: Vec<(CRelId, Vec<u32>)>) {
        let mut carried = seed;
        for s in 0..self.strata.len() {
            if carried.is_empty() {
                break;
            }
            let newly_dead = if self.recursive[s] {
                self.delete_dred(s, carried.clone())
            } else {
                self.delete_counting(s, carried.clone())
            };
            carried.extend(newly_dead);
        }
    }

    /// Counting deletion within non-recursive stratum `s`: decrement the
    /// counts of every lost instantiation; returns the tuples that died.
    /// Decrements are buffered per round for the same reason insertions
    /// buffer theirs: a head dying mid-round would vanish from the joins
    /// of later pivots in the same round, and the instantiations it
    /// participated in — which existed before the deletion — would never
    /// be charged to their heads.
    fn delete_counting(
        &mut self,
        s: usize,
        mut delta: Vec<(CRelId, Vec<u32>)>,
    ) -> Vec<(CRelId, Vec<u32>)> {
        let mut all_dead: Vec<(CRelId, Vec<u32>)> = Vec::new();
        while !delta.is_empty() {
            self.stats.rounds += 1;
            let batch: FxHashMap<(CRelId, Vec<u32>), ()> =
                delta.iter().map(|t| (t.clone(), ())).collect();
            let mut losses: Vec<(CRelId, Vec<u32>)> = Vec::new();
            let rules = self.strata[s].clone();
            for &ri in &rules {
                let rule = self.rules[ri].clone();
                for (rel, row) in &delta {
                    for pivot in 0..rule.body.len() {
                        if rule.body[pivot].rel != *rel {
                            continue;
                        }
                        for head in self.instantiations_lost_via(&rule, pivot, row, &batch) {
                            losses.push((rule.head.rel, head));
                        }
                    }
                }
            }
            let mut next: Vec<(CRelId, Vec<u32>)> = Vec::new();
            for (rel, head) in losses {
                let support = self.rels[rel.index()]
                    .rows
                    .get_mut(&head)
                    .expect("decrement of underived tuple");
                debug_assert!(support.derived > 0);
                support.derived -= 1;
                if !support.live() {
                    self.stats.deleted += 1;
                    next.push((rel, head));
                }
            }
            all_dead.extend(next.iter().cloned());
            delta = next;
        }
        all_dead
    }

    /// DRed deletion within recursive stratum `s`: over-delete the
    /// closure of the deleted tuples, then re-derive survivors. Returns
    /// the tuples that stayed dead (for later strata). Survivors are
    /// *not* reported — later strata never observed the over-deletion,
    /// so their counts are already consistent.
    fn delete_dred(
        &mut self,
        s: usize,
        mut frontier: Vec<(CRelId, Vec<u32>)>,
    ) -> Vec<(CRelId, Vec<u32>)> {
        // Phase 1: over-deletion. Any tuple with an instantiation using a
        // suspect tuple becomes suspect; its derived count resets to zero
        // (counts are rebuilt during re-derivation). Zeroing is buffered
        // per round, and the (already invisible) frontier is resurrected
        // for the joins: the instantiations being chased existed while
        // every tuple of this round was still live, so the joins must see
        // the database as of the round's start.
        frontier.sort();
        frontier.dedup();
        let mut zeroed: Vec<(CRelId, Vec<u32>)> = Vec::new();
        while !frontier.is_empty() {
            self.stats.rounds += 1;
            for (rel, r) in &frontier {
                self.rels[rel.index()].rows.get_mut(r).unwrap().derived += 1;
            }
            let mut suspect_heads: Vec<(CRelId, Vec<u32>)> = Vec::new();
            let rules = self.strata[s].clone();
            for &ri in &rules {
                let rule = self.rules[ri].clone();
                for (rel, row) in &frontier {
                    for pivot in 0..rule.body.len() {
                        if rule.body[pivot].rel != *rel {
                            continue;
                        }
                        // Over-deletion ranges over *all* live rows — no
                        // inclusion–exclusion: one suspect support is
                        // enough to suspect the head, and zeroing twice
                        // is harmless.
                        for head in
                            self.instantiations_via(&rule, pivot, row, &FxHashMap::default())
                        {
                            suspect_heads.push((rule.head.rel, head));
                        }
                    }
                }
            }
            for (rel, r) in &frontier {
                self.rels[rel.index()].rows.get_mut(r).unwrap().derived -= 1;
            }
            let mut next: Vec<(CRelId, Vec<u32>)> = Vec::new();
            for (rel, head) in suspect_heads {
                let support = self.rels[rel.index()]
                    .rows
                    .get_mut(&head)
                    .expect("suspect head missing");
                if support.derived > 0 {
                    support.derived = 0;
                    zeroed.push((rel, head.clone()));
                    if support.edb == 0 {
                        next.push((rel, head));
                    }
                }
            }
            frontier = next;
        }

        // Phase 2: re-derivation. Recount every zeroed tuple over the
        // surviving facts, to fixpoint: a tuple that comes back live can
        // support another suspect, so counts only grow until stable.
        zeroed.sort();
        zeroed.dedup();
        loop {
            let mut changed = false;
            for (rel, row) in &zeroed {
                let n = self.count_derivations(*rel, row);
                let support = self.rels[rel.index()].rows.get_mut(row).unwrap();
                if support.derived != n {
                    support.derived = n;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        let mut still_dead: Vec<(CRelId, Vec<u32>)> = Vec::new();
        for (rel, row) in &zeroed {
            let support = self.rels[rel.index()].rows[row];
            if support.derived > 0 {
                self.stats.rederived += 1;
            }
            if support.live() {
                continue;
            }
            self.stats.deleted += 1;
            still_dead.push((*rel, row.clone()));
        }
        still_dead
    }

    /// Counts the rule instantiations currently deriving `row` into
    /// `rel`, over live tuples only. Pure — the caller owns the count
    /// bookkeeping.
    fn count_derivations(&self, rel: CRelId, row: &[u32]) -> u32 {
        let mut n = 0u32;
        for rule in &self.rules {
            if rule.head.rel != rel {
                continue;
            }
            // Pre-bind the head against `row`, then enumerate every body
            // instantiation (pivot usize::MAX = no delta restriction).
            let mut binding: FxHashMap<u32, u32> = FxHashMap::default();
            if !unify(&rule.head.terms, row, &mut binding) {
                continue;
            }
            let mut out = Vec::new();
            self.join_rest(
                rule,
                usize::MAX,
                0,
                &mut binding,
                &FxHashMap::default(),
                &mut out,
            );
            n += out.iter().filter(|h| h[..] == *row).count() as u32;
        }
        n
    }

    /// Lost instantiations for a deletion batch: the inclusion–exclusion
    /// dual of [`DeltaEngine::instantiations_via`]. Deleted tuples are
    /// already invisible, so "other atoms" must range over live rows
    /// *plus the batch itself* for atoms after the pivot (they were live
    /// when the instantiation existed), and exclude the batch before the
    /// pivot. Implemented by temporarily resurrecting the batch.
    fn instantiations_lost_via(
        &mut self,
        rule: &CRule,
        pivot: usize,
        row: &[u32],
        batch: &FxHashMap<(CRelId, Vec<u32>), ()>,
    ) -> Vec<Vec<u32>> {
        // Resurrect the batch (derived += 1 marks live without touching
        // EDB counts), join, then undo.
        for (rel, r) in batch.keys() {
            self.rels[rel.index()].rows.get_mut(r).unwrap().derived += 1;
        }
        let out = self.instantiations_via(rule, pivot, row, batch);
        for (rel, r) in batch.keys() {
            self.rels[rel.index()].rows.get_mut(r).unwrap().derived -= 1;
        }
        out
    }
}

/// Unifies `terms` against `row` under `binding`, extending it. Returns
/// `false` (with `binding` possibly extended — callers save/restore) on
/// mismatch.
fn unify(terms: &[CTerm], row: &[u32], binding: &mut FxHashMap<u32, u32>) -> bool {
    debug_assert_eq!(terms.len(), row.len());
    for (t, &v) in terms.iter().zip(row) {
        match t {
            CTerm::Const(c) => {
                if *c != v {
                    return false;
                }
            }
            CTerm::Var(var) => match binding.get(var) {
                Some(&bound) => {
                    if bound != v {
                        return false;
                    }
                }
                None => {
                    binding.insert(*var, v);
                }
            },
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(n: u32) -> CTerm {
        CTerm::Var(n)
    }

    /// edge/2 EDB; path(x,y) :- edge(x,y); path(x,z) :- path(x,y), edge(y,z).
    fn tc_engine() -> (DeltaEngine, CRelId, CRelId) {
        let mut e = DeltaEngine::new();
        let edge = e.relation("edge", 2);
        let path = e.relation("path", 2);
        e.rule(
            CAtom {
                rel: path,
                terms: vec![v(0), v(1)],
            },
            vec![CAtom {
                rel: edge,
                terms: vec![v(0), v(1)],
            }],
        );
        e.rule(
            CAtom {
                rel: path,
                terms: vec![v(0), v(2)],
            },
            vec![
                CAtom {
                    rel: path,
                    terms: vec![v(0), v(1)],
                },
                CAtom {
                    rel: edge,
                    terms: vec![v(1), v(2)],
                },
            ],
        );
        e.seal();
        (e, edge, path)
    }

    /// Reference: from-scratch transitive closure of `edges`.
    fn tc_reference(edges: &[(u32, u32)]) -> std::collections::BTreeSet<(u32, u32)> {
        let mut paths: std::collections::BTreeSet<(u32, u32)> = edges.iter().copied().collect();
        loop {
            let mut grew = false;
            let snapshot: Vec<(u32, u32)> = paths.iter().copied().collect();
            for &(x, y) in &snapshot {
                for &(a, b) in edges {
                    if a == y && paths.insert((x, b)) {
                        grew = true;
                    }
                }
            }
            if !grew {
                break;
            }
        }
        paths
    }

    fn path_set(e: &DeltaEngine, path: CRelId) -> std::collections::BTreeSet<(u32, u32)> {
        e.rows(path).map(|r| (r[0], r[1])).collect()
    }

    #[test]
    fn insertion_reaches_the_additive_fixpoint() {
        let (mut e, edge, path) = tc_engine();
        for &(a, b) in &[(1, 2), (2, 3), (3, 4)] {
            e.insert(edge, &[a, b]);
        }
        assert_eq!(path_set(&e, path), tc_reference(&[(1, 2), (2, 3), (3, 4)]));
    }

    #[test]
    fn deletion_in_a_cycle_retracts_self_supporting_tuples() {
        // The canonical DRed test: a cycle keeps every path alive through
        // itself; counting alone would never reclaim it.
        let (mut e, edge, path) = tc_engine();
        let edges = [(1, 2), (2, 3), (3, 1), (3, 4)];
        for &(a, b) in &edges {
            e.insert(edge, &[a, b]);
        }
        assert!(e.contains(path, &[1, 1]), "cycle closes");
        e.remove(edge, &[3, 1]);
        let rest = [(1, 2), (2, 3), (3, 4)];
        assert_eq!(path_set(&e, path), tc_reference(&rest));
        assert!(!e.contains(path, &[1, 1]), "self-supporting path survived");
    }

    #[test]
    fn alternative_derivations_survive_deletion() {
        // Diamond: 1->2->4 and 1->3->4. Deleting one branch must keep
        // path(1,4) alive via the other.
        let (mut e, edge, path) = tc_engine();
        for &(a, b) in &[(1, 2), (2, 4), (1, 3), (3, 4)] {
            e.insert(edge, &[a, b]);
        }
        e.remove(edge, &[2, 4]);
        assert!(e.contains(path, &[1, 4]), "second derivation lost");
        assert_eq!(path_set(&e, path), tc_reference(&[(1, 2), (1, 3), (3, 4)]));
    }

    #[test]
    fn counting_tracks_duplicate_derivations_without_rederivation() {
        // A purely non-recursive program: out(x) :- a(x); out(x) :- b(x).
        // Deleting a(7) must keep out(7) alive through b(7) using the
        // count alone (no DRed pass runs in a non-recursive stratum).
        let mut e = DeltaEngine::new();
        let a = e.relation("a", 1);
        let b = e.relation("b", 1);
        let out = e.relation("out", 1);
        e.rule(
            CAtom {
                rel: out,
                terms: vec![v(0)],
            },
            vec![CAtom {
                rel: a,
                terms: vec![v(0)],
            }],
        );
        e.rule(
            CAtom {
                rel: out,
                terms: vec![v(0)],
            },
            vec![CAtom {
                rel: b,
                terms: vec![v(0)],
            }],
        );
        e.seal();
        e.insert(a, &[7]);
        e.insert(b, &[7]);
        assert!(e.contains(out, &[7]));
        let before = e.stats().rederived;
        e.remove(a, &[7]);
        assert!(
            e.contains(out, &[7]),
            "count should keep the second support"
        );
        e.remove(b, &[7]);
        assert!(!e.contains(out, &[7]));
        assert_eq!(
            e.stats().rederived,
            before,
            "counting path must not invoke DRed"
        );
    }

    #[test]
    fn random_edit_sequences_match_scratch_evaluation() {
        // Deterministic splitmix64, same as the workspace RNG.
        let mut state = 0x9e37_79b9_7f4a_7c15u64;
        let mut next = move || {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            (z ^ (z >> 31)) as u32
        };
        let (mut e, edge, path) = tc_engine();
        let mut live: Vec<(u32, u32)> = Vec::new();
        for step in 0..300 {
            let a = next() % 7;
            let b = next() % 7;
            let grow = live.is_empty() || next() % 3 != 0;
            if grow {
                if !live.contains(&(a, b)) {
                    live.push((a, b));
                    e.insert(edge, &[a, b]);
                }
            } else {
                let i = (next() as usize) % live.len();
                let (x, y) = live.swap_remove(i);
                e.remove(edge, &[x, y]);
            }
            assert_eq!(
                path_set(&e, path),
                tc_reference(&live),
                "divergence at step {step} (live edges: {live:?})"
            );
        }
        assert!(
            e.stats().rederived > 0,
            "streams never exercised DRed re-derivation"
        );
    }

    #[test]
    fn multi_stratum_programs_propagate_deletions_downstream() {
        // Stratum 1: path = TC(edge). Stratum 2 (non-recursive):
        // reach(y) :- path(1, y); pair(x,y) :- reach(x), reach(y).
        let mut e = DeltaEngine::new();
        let edge = e.relation("edge", 2);
        let path = e.relation("path", 2);
        let reach = e.relation("reach", 1);
        let pair = e.relation("pair", 2);
        e.rule(
            CAtom {
                rel: path,
                terms: vec![v(0), v(1)],
            },
            vec![CAtom {
                rel: edge,
                terms: vec![v(0), v(1)],
            }],
        );
        e.rule(
            CAtom {
                rel: path,
                terms: vec![v(0), v(2)],
            },
            vec![
                CAtom {
                    rel: path,
                    terms: vec![v(0), v(1)],
                },
                CAtom {
                    rel: edge,
                    terms: vec![v(1), v(2)],
                },
            ],
        );
        e.rule(
            CAtom {
                rel: reach,
                terms: vec![v(1)],
            },
            vec![CAtom {
                rel: path,
                terms: vec![CTerm::Const(1), v(1)],
            }],
        );
        e.rule(
            CAtom {
                rel: pair,
                terms: vec![v(0), v(1)],
            },
            vec![
                CAtom {
                    rel: reach,
                    terms: vec![v(0)],
                },
                CAtom {
                    rel: reach,
                    terms: vec![v(1)],
                },
            ],
        );
        e.seal();
        for &(a, b) in &[(1, 2), (2, 3), (1, 4)] {
            e.insert(edge, &[a, b]);
        }
        assert_eq!(e.len(reach), 3); // 2, 3, 4
        assert_eq!(e.len(pair), 9);
        // Cutting 2->3 kills reach(3) and every pair involving 3.
        e.remove(edge, &[2, 3]);
        assert_eq!(e.len(reach), 2);
        assert_eq!(e.len(pair), 4);
        assert!(!e.contains(pair, &[3, 3]));
        // Diamond in the derived stratum: re-adding restores everything.
        e.insert(edge, &[2, 3]);
        assert_eq!(e.len(pair), 9);
    }
}
