//! The semi-naive fixpoint engine.
//!
//! [`Engine`] owns relations, rules and functors. [`Engine::run`] schedules
//! rules into strata (see [`crate::stratify`]) and iterates each stratum to
//! fixpoint with *delta* evaluation: in every round, each rule is evaluated
//! once per body atom, with that atom restricted to the rows derived in the
//! previous round and the remaining atoms ranging over everything derived
//! before this round. Joins are index-driven: for every atom, the columns
//! bound by the current partial match form a key probed against an
//! incrementally maintained hash index (see [`crate::relation`]).

use std::fmt;

use pta_govern::{Budget, BudgetMeter, CancelToken, Termination};

use crate::hash::FxHashMap;
use crate::relation::Relation;
use crate::rule::{Rule, RuleBuilder, Slot};

use crate::tuple::Row;

/// Identifies a relation within an [`Engine`].
#[derive(Debug, Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RelId(u32);

impl RelId {
    /// The relation's dense index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Identifies a registered functor within an [`Engine`].
#[derive(Debug, Copy, Clone, PartialEq, Eq, Hash)]
pub struct FunctorId(u32);

impl FunctorId {
    /// The functor's dense index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A constructor function: maps bound argument values to a single value.
///
/// Functors model the paper's `Record` / `Merge` / `MergeStatic` context
/// constructors. They must be *deterministic* (same arguments, same result)
/// for evaluation to reach a fixpoint; interning closures satisfy this.
pub type Functor = Box<dyn FnMut(&[u32]) -> u32>;

struct RegisteredFunctor {
    name: String,
    f: Functor,
}

/// Evaluation statistics returned by [`Engine::run`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Number of fixpoint rounds across all strata.
    pub rounds: usize,
    /// Number of strata executed.
    pub strata: usize,
    /// Total rows derived (including initial facts).
    pub total_rows: usize,
    /// How the run ended: `Complete` for a full fixpoint, any other
    /// variant when [`Engine::run_governed`] stopped early on budget
    /// exhaustion or cancellation (relations then hold a sound prefix of
    /// the fixpoint).
    pub termination: Termination,
}

/// Per-rule evaluation totals collected by [`Engine::run_profiled`], in
/// rule registration order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RuleProfile {
    /// The rule's diagnostic label (`rule #N` when unlabeled).
    pub label: String,
    /// Semi-naive evaluation passes run (one per non-empty delta window
    /// per round; a rule with a k-atom body can fire up to k times per
    /// round).
    pub fires: u64,
    /// Head rows derived by this rule that were *new* (deduplicated rows
    /// re-derived by an earlier rule in the same round count toward that
    /// earlier rule).
    pub derived: u64,
    /// Cumulative wall-clock nanoseconds spent evaluating the rule.
    pub ns: u64,
}

/// A Datalog engine: relations, rules, functors and the fixpoint driver.
///
/// See the [crate docs](crate) for an end-to-end example.
#[derive(Default)]
pub struct Engine {
    relations: Vec<Relation>,
    rel_by_name: FxHashMap<String, RelId>,
    rules: Vec<Rule>,
    functors: Vec<RegisteredFunctor>,
}

impl Engine {
    /// Creates an empty engine.
    pub fn new() -> Engine {
        Engine::default()
    }

    /// Declares a relation with the given arity; returns its handle.
    ///
    /// # Panics
    ///
    /// Panics if a relation of the same name already exists.
    pub fn relation(&mut self, name: &str, arity: usize) -> RelId {
        assert!(
            !self.rel_by_name.contains_key(name),
            "relation {name} already declared"
        );
        assert!(arity <= crate::tuple::MAX_ARITY, "arity too large");
        let id = RelId(self.relations.len() as u32);
        self.relations.push(Relation::new(name, arity));
        self.rel_by_name.insert(name.to_owned(), id);
        id
    }

    /// Looks up a relation by name.
    pub fn relation_by_name(&self, name: &str) -> Option<RelId> {
        self.rel_by_name.get(name).copied()
    }

    /// The name of a relation.
    pub fn relation_name(&self, rel: RelId) -> &str {
        self.relations[rel.index()].name()
    }

    /// The arity of a relation.
    pub fn relation_arity(&self, rel: RelId) -> usize {
        self.relations[rel.index()].arity()
    }

    /// Registers a functor; returns its handle.
    pub fn functor(&mut self, name: &str, f: Functor) -> FunctorId {
        let id = FunctorId(self.functors.len() as u32);
        self.functors.push(RegisteredFunctor {
            name: name.to_owned(),
            f,
        });
        id
    }

    /// Inserts an initial fact. Returns `true` if the row was new.
    pub fn fact(&mut self, rel: RelId, values: &[u32]) -> bool {
        self.relations[rel.index()].insert(Row::new(values))
    }

    /// Starts building a rule. Call [`RuleBuilder::build`] to register it.
    pub fn rule(&mut self) -> RuleBuilder<'_> {
        RuleBuilder::new(self)
    }

    pub(crate) fn register_rule(&mut self, rule: Rule) {
        self.rules.push(rule);
    }

    /// Number of rules registered so far.
    pub fn rule_count(&self) -> usize {
        self.rules.len()
    }

    /// Number of relations declared so far.
    pub fn relation_count(&self) -> usize {
        self.relations.len()
    }

    pub(crate) fn rules(&self) -> &[Rule] {
        &self.rules
    }

    pub(crate) fn functor_count(&self) -> usize {
        self.functors.len()
    }

    pub(crate) fn relations_ref(&self) -> &[Relation] {
        &self.relations
    }

    /// Number of rows currently in `rel`.
    pub fn len(&self, rel: RelId) -> usize {
        self.relations[rel.index()].len()
    }

    /// `true` if `rel` has no rows.
    pub fn is_empty(&self, rel: RelId) -> bool {
        self.relations[rel.index()].is_empty()
    }

    /// Iterates the rows of `rel` in derivation order.
    pub fn rows(&self, rel: RelId) -> impl Iterator<Item = &Row> {
        self.relations[rel.index()].rows().iter()
    }

    /// `true` if `rel` contains the given row.
    pub fn contains(&self, rel: RelId, values: &[u32]) -> bool {
        self.relations[rel.index()].contains(&Row::new(values))
    }

    /// Populates `into` with every row of `domain` that is absent from
    /// `minus` — the engine's substitute for stratified negation, which
    /// the rule language deliberately omits.
    ///
    /// This is a *pre-run* helper over extensional facts: it reads the
    /// relations as they stand when called, so the complement is only
    /// meaningful for input relations whose contents are fully known
    /// before evaluation (calling it on an IDB relation mid-derivation
    /// would bake in a stale snapshot). Returns the number of rows
    /// inserted.
    ///
    /// # Panics
    ///
    /// Panics if the three relations do not share one arity.
    pub fn complement(&mut self, domain: RelId, minus: RelId, into: RelId) -> usize {
        let arity = self.relation_arity(domain);
        assert_eq!(
            arity,
            self.relation_arity(minus),
            "complement: domain/minus arity mismatch"
        );
        assert_eq!(
            arity,
            self.relation_arity(into),
            "complement: domain/into arity mismatch"
        );
        let missing: Vec<Row> = self.relations[domain.index()]
            .rows()
            .iter()
            .filter(|row| !self.relations[minus.index()].contains(row))
            .cloned()
            .collect();
        let target = &mut self.relations[into.index()];
        missing
            .into_iter()
            .filter(|row| target.insert(*row))
            .count()
    }

    /// Runs all rules to fixpoint, stratum by stratum.
    pub fn run(&mut self) -> EngineStats {
        self.run_governed(&Budget::unlimited(), None)
    }

    /// Like [`Engine::run`], but checks `budget` and `cancel`
    /// cooperatively once per fixpoint round (the engine's natural
    /// iteration granularity; `Budget::max_steps` counts rounds here).
    ///
    /// On exhaustion the engine stops between rounds and returns with
    /// [`EngineStats::termination`] set to the tripped limit. The
    /// relations then hold every row derived so far — a sound *prefix* of
    /// the fixpoint (each row is a valid derivation; sets may be
    /// incomplete). A later `run`/`run_governed` call resumes and
    /// finishes the fixpoint, as rows are never retracted.
    pub fn run_governed(&mut self, budget: &Budget, cancel: Option<&CancelToken>) -> EngineStats {
        self.run_inner(budget, cancel, None)
    }

    /// Like [`Engine::run_governed`], but also collects a per-rule
    /// evaluation profile: how many semi-naive evaluation passes each rule
    /// ran, how many of its derived head rows were new, and its cumulative
    /// evaluation time. Rules are identified by their diagnostic label
    /// (`rule #N` when unlabeled), in registration order.
    ///
    /// Profiling adds a clock read per (rule, round) — negligible next to
    /// rule evaluation — and row-attribution bookkeeping at insert time;
    /// un-profiled runs through [`Engine::run_governed`] pay neither.
    pub fn run_profiled(
        &mut self,
        budget: &Budget,
        cancel: Option<&CancelToken>,
    ) -> (EngineStats, Vec<RuleProfile>) {
        let mut prof: Vec<RuleProfile> = self
            .rules
            .iter()
            .enumerate()
            .map(|(i, r)| RuleProfile {
                label: if r.label.is_empty() {
                    format!("rule #{i}")
                } else {
                    r.label.clone()
                },
                fires: 0,
                derived: 0,
                ns: 0,
            })
            .collect();
        let stats = self.run_inner(budget, cancel, Some(&mut prof));
        (stats, prof)
    }

    fn run_inner(
        &mut self,
        budget: &Budget,
        cancel: Option<&CancelToken>,
        mut prof: Option<&mut Vec<RuleProfile>>,
    ) -> EngineStats {
        let mut meter = BudgetMeter::new(budget);
        let governed = !budget.is_unlimited() || cancel.is_some();
        // Per-relation row footprint for the budget memory estimate.
        let row_bytes: Vec<u64> = self
            .relations
            .iter()
            .map(|r| (r.arity() * 4 + 8) as u64)
            .collect();
        let strata = crate::stratify::schedule(&self.rules, self.relations.len());
        let mut stats = EngineStats {
            strata: strata.len(),
            ..EngineStats::default()
        };
        let n = self.relations.len();
        'outer: for stratum in &strata {
            // At stratum entry every existing row is "new" for this
            // stratum's rules.
            let mut prev_end = vec![0usize; n];
            loop {
                stats.rounds += 1;
                let full_end: Vec<usize> = self.relations.iter().map(Relation::len).collect();
                if governed {
                    let mem: u64 = full_end
                        .iter()
                        .zip(&row_bytes)
                        .map(|(&len, &bytes)| len as u64 * bytes)
                        .sum();
                    if let Some(t) = meter.check(stats.rounds as u64, mem, cancel) {
                        stats.termination = t;
                        break 'outer;
                    }
                }
                let mut derived: Vec<(RelId, Row)> = Vec::new();
                // When profiling: `(rule index, end offset into derived)`
                // per evaluated rule, so fresh insertions below can be
                // attributed back to the rule that derived them.
                let mut segments: Vec<(usize, usize)> = Vec::new();
                {
                    let relations = &mut self.relations;
                    let functors = &mut self.functors;
                    let rules = &self.rules;
                    let mut ctx = EvalCtx {
                        relations,
                        functors,
                        full_end: &full_end,
                        prev_end: &prev_end,
                    };
                    for &ri in stratum {
                        let rule = &rules[ri];
                        let t0 = prof.is_some().then(std::time::Instant::now);
                        let mut evals = 0u64;
                        for k in 0..rule.body.len() {
                            let rel = rule.body[k].rel.index();
                            if prev_end[rel] < full_end[rel] {
                                ctx.eval_rule(rule, k, &mut derived);
                                evals += 1;
                            }
                        }
                        if let (Some(t0), Some(p)) = (t0, prof.as_deref_mut()) {
                            p[ri].fires += evals;
                            p[ri].ns += t0.elapsed().as_nanos() as u64;
                            segments.push((ri, derived.len()));
                        }
                    }
                }
                let mut changed = false;
                let mut seg = segments.into_iter();
                let mut cur = seg.next();
                for (i, (rel, row)) in derived.into_iter().enumerate() {
                    let fresh = self.relations[rel.index()].insert(row);
                    changed |= fresh;
                    if let Some(p) = prof.as_deref_mut() {
                        while let Some((_, end)) = cur {
                            if i < end {
                                break;
                            }
                            cur = seg.next();
                        }
                        if fresh {
                            if let Some((ri, _)) = cur {
                                p[ri].derived += 1;
                            }
                        }
                    }
                }
                prev_end = full_end;
                if !changed {
                    break;
                }
            }
        }
        stats.total_rows = self.relations.iter().map(Relation::len).sum();
        stats
    }
}

impl fmt::Debug for Engine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut d = f.debug_struct("Engine");
        d.field("rules", &self.rules.len());
        d.field(
            "functors",
            &self
                .functors
                .iter()
                .map(|x| x.name.as_str())
                .collect::<Vec<_>>(),
        );
        for rel in &self.relations {
            d.field(rel.name(), &rel.len());
        }
        d.finish()
    }
}

/// Borrow-split evaluation context so relation indices (mutable) and rule
/// metadata (shared) can be used simultaneously.
struct EvalCtx<'a> {
    relations: &'a mut Vec<Relation>,
    functors: &'a mut Vec<RegisteredFunctor>,
    full_end: &'a [usize],
    prev_end: &'a [usize],
}

impl EvalCtx<'_> {
    /// Evaluates `rule` with body position `delta_pos` restricted to the
    /// delta window, appending derived head rows to `out`.
    ///
    /// The delta atom is matched first (anchoring the semi-naive window);
    /// the remaining atoms are ordered greedily at each step by join
    /// selectivity — most bound columns first, smaller relations on ties —
    /// the classic planning heuristic of optimizing Datalog engines.
    fn eval_rule(&mut self, rule: &Rule, delta_pos: usize, out: &mut Vec<(RelId, Row)>) {
        let mut remaining: Vec<usize> = (0..rule.body.len()).filter(|&i| i != delta_pos).collect();
        let mut env = vec![0u32; rule.nvars];
        let mut bound = vec![false; rule.nvars];
        self.join(
            rule,
            &mut remaining,
            Some(delta_pos),
            delta_pos,
            &mut env,
            &mut bound,
            out,
        );
    }

    /// Selectivity score for matching `atom` next: (bound columns,
    /// negated relation size). Higher is better.
    fn score(&self, rule: &Rule, pos: usize, bound: &[bool]) -> (usize, i64) {
        let atom = &rule.body[pos];
        let bound_cols = atom
            .terms
            .iter()
            .filter(|t| match t {
                Slot::Const(_) => true,
                Slot::Var(v) => bound[*v],
            })
            .count();
        let size = self.full_end[atom.rel.index()] as i64;
        (bound_cols, -size)
    }

    #[allow(clippy::too_many_arguments)]
    fn join(
        &mut self,
        rule: &Rule,
        remaining: &mut Vec<usize>,
        forced: Option<usize>,
        delta_pos: usize,
        env: &mut [u32],
        bound: &mut [bool],
        out: &mut Vec<(RelId, Row)>,
    ) {
        let done = forced.is_none() && remaining.is_empty();
        if done {
            // Body matched: evaluate bindings, then derive heads.
            for b in &rule.bindings {
                let args: Vec<u32> = b
                    .args
                    .iter()
                    .map(|s| match s {
                        Slot::Var(v) => env[*v],
                        Slot::Const(c) => *c,
                    })
                    .collect();
                env[b.out] = (self.functors[b.functor.index()].f)(&args);
                bound[b.out] = true;
            }
            for h in &rule.heads {
                let mut row = Row::empty();
                for t in &h.terms {
                    row = row.push(match t {
                        Slot::Var(v) => env[*v],
                        Slot::Const(c) => *c,
                    });
                }
                out.push((h.rel, row));
            }
            return;
        }

        // Pick the next atom: the forced (delta) atom on the first call,
        // then the most selective remaining atom.
        let (pos, picked_index) = match forced {
            Some(p) => (p, None),
            None => {
                let best = (0..remaining.len())
                    .max_by_key(|&i| self.score(rule, remaining[i], bound))
                    .expect("remaining non-empty");
                (remaining[best], Some(best))
            }
        };
        if let Some(i) = picked_index {
            remaining.swap_remove(i);
        }
        let atom = &rule.body[pos];
        let rel_idx = atom.rel.index();

        // Build the probe key from already-bound terms.
        let mut mask = 0u8;
        let mut key = Row::empty();
        for (i, t) in atom.terms.iter().enumerate() {
            match t {
                Slot::Const(c) => {
                    mask |= 1 << i;
                    key = key.push(*c);
                }
                Slot::Var(v) if bound[*v] => {
                    mask |= 1 << i;
                    key = key.push(env[*v]);
                }
                Slot::Var(_) => {}
            }
        }

        let (lo, hi) = if pos == delta_pos {
            (self.prev_end[rel_idx], self.full_end[rel_idx])
        } else {
            (0, self.full_end[rel_idx])
        };
        if lo >= hi {
            // Nothing to match; restore the remaining-set before bailing.
            if picked_index.is_some() {
                remaining.push(pos);
            }
            return;
        }

        // Candidate row positions. The probe allocates a position list copy
        // because the recursion needs the relations borrow back.
        let positions: Vec<u32> = if mask == 0 {
            (lo as u32..hi as u32).collect()
        } else {
            self.relations[rel_idx]
                .probe(mask, &key)
                .iter()
                .copied()
                .filter(|&p| (p as usize) >= lo && (p as usize) < hi)
                .collect()
        };

        let mut newly_bound: Vec<usize> = Vec::new();
        for p in positions {
            let row = self.relations[rel_idx].rows()[p as usize];
            let mut ok = true;
            newly_bound.clear();
            for (i, t) in atom.terms.iter().enumerate() {
                if let Slot::Var(v) = t {
                    if bound[*v] {
                        if env[*v] != row.get(i) {
                            ok = false;
                            break;
                        }
                    } else {
                        env[*v] = row.get(i);
                        bound[*v] = true;
                        newly_bound.push(*v);
                    }
                }
            }
            if ok {
                let saved: Vec<usize> = newly_bound.clone();
                self.join(rule, remaining, None, delta_pos, env, bound, out);
                for &v in &saved {
                    bound[v] = false;
                }
            } else {
                for &v in &newly_bound {
                    bound[v] = false;
                }
            }
        }
        // Restore the remaining-set for the caller (set semantics; order
        // may be permuted, which is fine).
        if picked_index.is_some() {
            remaining.push(pos);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rule::Term;

    fn v(n: &str) -> Term {
        Term::var(n)
    }

    #[test]
    fn transitive_closure() {
        let mut e = Engine::new();
        let edge = e.relation("edge", 2);
        let path = e.relation("path", 2);
        for (a, b) in [(0, 1), (1, 2), (2, 3), (3, 4)] {
            e.fact(edge, &[a, b]);
        }
        e.rule()
            .head(path, &[v("x"), v("y")])
            .atom(edge, &[v("x"), v("y")])
            .build()
            .unwrap();
        e.rule()
            .head(path, &[v("x"), v("z")])
            .atom(edge, &[v("x"), v("y")])
            .atom(path, &[v("y"), v("z")])
            .build()
            .unwrap();
        let stats = e.run();
        assert_eq!(e.len(path), 10); // C(5,2) pairs on a chain
        assert!(stats.rounds >= 3);
        assert!(e.contains(path, &[0, 4]));
        assert!(!e.contains(path, &[4, 0]));
    }

    #[test]
    fn complement_fills_the_gap_between_domain_and_minus() {
        let mut e = Engine::new();
        let loaded = e.relation("Loaded", 2);
        let written = e.relation("Written", 2);
        let unwritten = e.relation("Unwritten", 2);
        for row in [[1, 7], [2, 7], [3, 8]] {
            e.fact(loaded, &row);
        }
        e.fact(written, &[2, 7]);
        e.fact(written, &[9, 9]); // rows outside the domain are ignored
        let inserted = e.complement(loaded, written, unwritten);
        assert_eq!(inserted, 2);
        assert!(e.contains(unwritten, &[1, 7]));
        assert!(e.contains(unwritten, &[3, 8]));
        assert!(!e.contains(unwritten, &[2, 7]));
        // Idempotent: a second call inserts nothing new.
        assert_eq!(e.complement(loaded, written, unwritten), 0);
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn complement_rejects_mismatched_arity() {
        let mut e = Engine::new();
        let a = e.relation("a", 2);
        let b = e.relation("b", 1);
        let c = e.relation("c", 2);
        e.complement(a, b, c);
    }

    #[test]
    fn constants_filter_matches() {
        let mut e = Engine::new();
        let r = e.relation("r", 2);
        let s = e.relation("s", 1);
        e.fact(r, &[1, 10]);
        e.fact(r, &[2, 20]);
        e.rule()
            .head(s, &[v("y")])
            .atom(r, &[Term::cst(2), v("y")])
            .build()
            .unwrap();
        e.run();
        assert_eq!(e.rows(s).collect::<Vec<_>>(), vec![&Row::new(&[20])]);
    }

    #[test]
    fn repeated_variable_within_atom_requires_equality() {
        let mut e = Engine::new();
        let r = e.relation("r", 2);
        let diag = e.relation("diag", 1);
        e.fact(r, &[1, 1]);
        e.fact(r, &[1, 2]);
        e.fact(r, &[3, 3]);
        e.rule()
            .head(diag, &[v("x")])
            .atom(r, &[v("x"), v("x")])
            .build()
            .unwrap();
        e.run();
        assert_eq!(e.len(diag), 2);
        assert!(e.contains(diag, &[1]));
        assert!(e.contains(diag, &[3]));
    }

    #[test]
    fn multi_head_rule_derives_both() {
        let mut e = Engine::new();
        let a = e.relation("a", 1);
        let b = e.relation("b", 1);
        let c = e.relation("c", 1);
        e.fact(a, &[5]);
        e.rule()
            .head(b, &[v("x")])
            .head(c, &[v("x")])
            .atom(a, &[v("x")])
            .build()
            .unwrap();
        e.run();
        assert!(e.contains(b, &[5]));
        assert!(e.contains(c, &[5]));
    }

    #[test]
    fn functor_with_interning_reaches_fixpoint() {
        // ctx(n') <- ctx(n), n' = step(n): step saturates at 3, so the
        // fixpoint must terminate with {0,1,2,3}.
        let mut e = Engine::new();
        let ctx = e.relation("ctx", 1);
        let step = e.functor("step", Box::new(|args: &[u32]| (args[0] + 1).min(3)));
        e.fact(ctx, &[0]);
        e.rule()
            .head(ctx, &[v("m")])
            .atom(ctx, &[v("n")])
            .bind(step, &[v("n")], "m")
            .build()
            .unwrap();
        e.run();
        assert_eq!(e.len(ctx), 4);
        assert!(e.contains(ctx, &[3]));
    }

    #[test]
    fn strata_run_in_dependency_order() {
        // base -> mid -> top, non-recursive: three strata, and results
        // propagate all the way through.
        let mut e = Engine::new();
        let base = e.relation("base", 1);
        let mid = e.relation("mid", 1);
        let top = e.relation("top", 1);
        e.fact(base, &[1]);
        e.rule()
            .head(mid, &[v("x")])
            .atom(base, &[v("x")])
            .build()
            .unwrap();
        e.rule()
            .head(top, &[v("x")])
            .atom(mid, &[v("x")])
            .build()
            .unwrap();
        let stats = e.run();
        assert!(e.contains(top, &[1]));
        assert_eq!(stats.strata, 2);
    }

    #[test]
    fn same_generation_runs_to_fixpoint() {
        // Classic same-generation over a small tree.
        //      0
        //    1   2
        //   3 4 5 6
        let mut e = Engine::new();
        let parent = e.relation("parent", 2); // (child, parent)
        let sg = e.relation("sg", 2);
        for (c, p) in [(1, 0), (2, 0), (3, 1), (4, 1), (5, 2), (6, 2)] {
            e.fact(parent, &[c, p]);
        }
        // sg(x, x) is implicit via the sibling rule; use the textbook pair:
        // sg(x, y) <- parent(x, p), parent(y, p).
        e.rule()
            .head(sg, &[v("x"), v("y")])
            .atom(parent, &[v("x"), v("p")])
            .atom(parent, &[v("y"), v("p")])
            .build()
            .unwrap();
        // sg(x, y) <- parent(x, px), sg(px, py), parent(y, py).
        e.rule()
            .head(sg, &[v("x"), v("y")])
            .atom(parent, &[v("x"), v("px")])
            .atom(sg, &[v("px"), v("py")])
            .atom(parent, &[v("y"), v("py")])
            .build()
            .unwrap();
        e.run();
        // All four leaves are same-generation with each other.
        for x in 3..=6u32 {
            for y in 3..=6u32 {
                assert!(e.contains(sg, &[x, y]), "sg({x},{y})");
            }
        }
        // A leaf and an inner node are not.
        assert!(!e.contains(sg, &[3, 1]));
    }

    #[test]
    fn engine_debug_lists_relations() {
        let mut e = Engine::new();
        let _ = e.relation("edge", 2);
        let dbg = format!("{e:?}");
        assert!(dbg.contains("edge"));
    }

    #[test]
    fn governed_run_stops_early_and_resumes_to_the_same_fixpoint() {
        let mut e = Engine::new();
        let edge = e.relation("edge", 2);
        let path = e.relation("path", 2);
        for (a, b) in [(0, 1), (1, 2), (2, 3), (3, 4)] {
            e.fact(edge, &[a, b]);
        }
        e.rule()
            .head(path, &[v("x"), v("y")])
            .atom(edge, &[v("x"), v("y")])
            .build()
            .unwrap();
        e.rule()
            .head(path, &[v("x"), v("z")])
            .atom(edge, &[v("x"), v("y")])
            .atom(path, &[v("y"), v("z")])
            .build()
            .unwrap();
        let partial = e.run_governed(&Budget::unlimited().with_max_steps(2), None);
        assert_eq!(partial.termination, Termination::StepLimit);
        let rows_so_far = e.len(path);
        assert!(rows_so_far < 10, "two rounds cannot close a 5-chain");
        // Rows are never retracted: re-running resumes and completes.
        let full = e.run();
        assert_eq!(full.termination, Termination::Complete);
        assert_eq!(e.len(path), 10);
    }

    #[test]
    fn cancelled_run_reports_deadline_exceeded() {
        let mut e = Engine::new();
        let edge = e.relation("edge", 2);
        let path = e.relation("path", 2);
        e.fact(edge, &[0, 1]);
        e.rule()
            .head(path, &[v("x"), v("y")])
            .atom(edge, &[v("x"), v("y")])
            .build()
            .unwrap();
        let token = CancelToken::new();
        token.cancel();
        let stats = e.run_governed(&Budget::unlimited(), Some(&token));
        assert_eq!(stats.termination, Termination::DeadlineExceeded);
        assert_eq!(e.len(path), 0, "cancelled before the first round derived");
    }

    #[test]
    fn run_is_idempotent() {
        let mut e = Engine::new();
        let edge = e.relation("edge", 2);
        let path = e.relation("path", 2);
        e.fact(edge, &[0, 1]);
        e.rule()
            .head(path, &[v("x"), v("y")])
            .atom(edge, &[v("x"), v("y")])
            .build()
            .unwrap();
        e.run();
        let before = e.len(path);
        e.run();
        assert_eq!(e.len(path), before);
    }
}
