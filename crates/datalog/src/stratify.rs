//! Rule scheduling via strongly connected components.
//!
//! Rules are partitioned into *strata*: groups that must be iterated to a
//! joint fixpoint because their head relations are mutually recursive.
//! Strata are ordered topologically, so by the time a stratum runs, all
//! relations it reads from earlier strata are complete. For a non-recursive
//! rule set this degenerates to one pass per rule in dependency order; for
//! the points-to rule set, the core relations (`VarPointsTo`, `CallGraph`,
//! `FldPointsTo`, `Reachable`, `InterProcAssign`) form one large recursive
//! stratum, exactly as in Doop.
//!
//! The relation dependency graph has an edge `body -> head` for every rule.
//! Multi-head rules additionally tie their head relations into the same
//! component (a derivation event feeds all heads simultaneously, so none may
//! be finalized before the others).

use crate::rule::Rule;

/// Computes the strongly connected components of a directed graph given as
/// adjacency lists, returning for each node its component index. Component
/// indices are in **reverse topological order** (a component's successors
/// have smaller indices). Iterative Tarjan.
pub(crate) fn scc(adj: &[Vec<usize>]) -> Vec<usize> {
    let n = adj.len();
    const UNSET: usize = usize::MAX;
    let mut index = vec![UNSET; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut comp = vec![UNSET; n];
    let mut next_index = 0usize;
    let mut next_comp = 0usize;

    // Explicit DFS stack: (node, next child position).
    let mut call: Vec<(usize, usize)> = Vec::new();
    for start in 0..n {
        if index[start] != UNSET {
            continue;
        }
        call.push((start, 0));
        index[start] = next_index;
        low[start] = next_index;
        next_index += 1;
        stack.push(start);
        on_stack[start] = true;
        while let Some(top) = call.last_mut() {
            let v = top.0;
            if top.1 < adj[v].len() {
                let w = adj[v][top.1];
                top.1 += 1;
                if index[w] == UNSET {
                    index[w] = next_index;
                    low[w] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    call.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                if low[v] == index[v] {
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w] = false;
                        comp[w] = next_comp;
                        if w == v {
                            break;
                        }
                    }
                    next_comp += 1;
                }
                call.pop();
                if let Some(&(parent, _)) = call.last() {
                    low[parent] = low[parent].min(low[v]);
                }
            }
        }
    }
    comp
}

/// Groups rule indices into strata, ordered so that every stratum only reads
/// relations finalized by earlier strata (or produced within itself).
pub(crate) fn schedule(rules: &[Rule], n_relations: usize) -> Vec<Vec<usize>> {
    if rules.is_empty() {
        return Vec::new();
    }
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n_relations];
    for rule in rules {
        for head in &rule.heads {
            for body in &rule.body {
                adj[body.rel.index()].push(head.rel.index());
            }
            // Tie heads together pairwise.
            for other in &rule.heads {
                if other.rel != head.rel {
                    adj[head.rel.index()].push(other.rel.index());
                }
            }
        }
    }
    let comp = scc(&adj);
    // Tarjan component ids are reverse-topological: a rule whose head is in
    // component c must run at stratum position (max_comp - c). Rules are
    // grouped by their heads' component (heads of one rule share one
    // component by construction).
    let max_comp = comp.iter().copied().max().unwrap_or(0);
    let mut strata: Vec<Vec<usize>> = vec![Vec::new(); max_comp + 1];
    for (ri, rule) in rules.iter().enumerate() {
        let c = comp[rule.heads[0].rel.index()];
        strata[max_comp - c].push(ri);
    }
    strata.retain(|s| !s.is_empty());
    strata
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scc_on_a_cycle_is_one_component() {
        // 0 -> 1 -> 2 -> 0, 2 -> 3
        let adj = vec![vec![1], vec![2], vec![0, 3], vec![]];
        let comp = scc(&adj);
        assert_eq!(comp[0], comp[1]);
        assert_eq!(comp[1], comp[2]);
        assert_ne!(comp[2], comp[3]);
        // 3 is a successor of the cycle: reverse topo order means 3 gets a
        // smaller component id.
        assert!(comp[3] < comp[0]);
    }

    #[test]
    fn scc_on_a_dag_gives_distinct_components_in_order() {
        // 0 -> 1 -> 2
        let adj = vec![vec![1], vec![2], vec![]];
        let comp = scc(&adj);
        assert!(comp[0] > comp[1]);
        assert!(comp[1] > comp[2]);
    }

    #[test]
    fn scc_handles_self_loop_and_isolated() {
        let adj = vec![vec![0], vec![]];
        let comp = scc(&adj);
        assert_ne!(comp[0], comp[1]);
    }
}
