//! Whole-program verification of a registered rule set.
//!
//! [`RuleBuilder::build`](crate::rule::RuleBuilder::build) validates each
//! rule in isolation as it is constructed. [`Engine::verify`] re-checks the
//! *registered program* as a whole, just before evaluation:
//!
//! - **rule safety** (range restriction): every head variable and every
//!   functor argument must be bound by a positive body atom or by an
//!   earlier functor output. Re-checked here because rules reach the engine
//!   as resolved slot programs and a bug in resolution (or a future
//!   alternative rule frontend) would otherwise read uninitialized slots
//!   during the join;
//! - **schema consistency**: every atom's term count must equal its
//!   relation's declared arity, and every functor binding must reference a
//!   registered functor;
//! - **dead rules**: rules that can never fire because some body relation
//!   is empty and is not derivable by any live rule (computed as a
//!   fixpoint over the rule/relation dependency graph);
//! - **unused relations**: declared relations that no rule reads or
//!   derives and that hold no facts;
//! - a **stratification report**: the strata the scheduler will run, in
//!   order, with the mutually recursive core called out — for the paper's
//!   Figure 2 rule set this surfaces the single large recursive stratum
//!   (`VarPointsTo`/`CallGraph`/`FldPointsTo`/`Reachable`/…) exactly as
//!   Doop reports it.
//!
//! Safety and schema violations are *errors* (evaluation would be
//! meaningless); dead rules and unused relations are *warnings* (the
//! program runs, but part of it is inert). `pta-core` runs the verifier
//! before every Datalog back-end evaluation and refuses to evaluate a
//! program with errors.

use std::fmt;

use crate::engine::Engine;
use crate::rule::{Rule, Slot};

/// What a [`VerifyIssue`] is about. Kinds map 1:1 onto the diagnostic codes
/// in `pta-lint` (E010–E012, W010–W011).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VerifyIssueKind {
    /// A head atom uses a variable slot no body atom or binding produces.
    UnboundHeadVar,
    /// An atom's term count differs from its relation's declared arity.
    ArityMismatch,
    /// A functor binding reads a variable slot that is not yet bound (or
    /// names an unregistered functor).
    BadBinding,
    /// The rule can never fire: some body relation is empty and no live
    /// rule can ever derive into it.
    DeadRule,
    /// A declared relation that no rule touches and that holds no facts.
    UnusedRelation,
}

impl VerifyIssueKind {
    /// `true` for kinds that make evaluation meaningless.
    #[must_use]
    pub fn is_error(self) -> bool {
        matches!(
            self,
            VerifyIssueKind::UnboundHeadVar
                | VerifyIssueKind::ArityMismatch
                | VerifyIssueKind::BadBinding
        )
    }
}

/// One verifier finding.
#[derive(Debug, Clone)]
pub struct VerifyIssue {
    /// What went wrong.
    pub kind: VerifyIssueKind,
    /// Label of the offending rule (`rule #N` if the rule is unlabeled);
    /// `None` for relation-level findings.
    pub rule: Option<String>,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for VerifyIssue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let sev = if self.kind.is_error() {
            "error"
        } else {
            "warning"
        };
        match &self.rule {
            Some(r) => write!(f, "{sev}: [{r}] {}", self.message),
            None => write!(f, "{sev}: {}", self.message),
        }
    }
}

/// One scheduled stratum, as [`Engine::run`] will execute it.
#[derive(Debug, Clone)]
pub struct StratumInfo {
    /// Labels of the rules in this stratum.
    pub rules: Vec<String>,
    /// Names of the relations derived by this stratum's rules.
    pub relations: Vec<String>,
    /// `true` if the stratum must iterate to fixpoint because a rule in it
    /// reads a relation the same stratum derives.
    pub recursive: bool,
}

/// The result of [`Engine::verify`]: findings plus the stratification
/// report.
#[derive(Debug, Clone, Default)]
pub struct VerifyReport {
    /// All findings, errors first.
    pub issues: Vec<VerifyIssue>,
    /// The strata [`Engine::run`] will execute, in execution order.
    pub strata: Vec<StratumInfo>,
}

impl VerifyReport {
    /// `true` if any finding is an error.
    #[must_use]
    pub fn has_errors(&self) -> bool {
        self.issues.iter().any(|i| i.kind.is_error())
    }

    /// The error findings.
    pub fn errors(&self) -> impl Iterator<Item = &VerifyIssue> {
        self.issues.iter().filter(|i| i.kind.is_error())
    }

    /// The warning findings.
    pub fn warnings(&self) -> impl Iterator<Item = &VerifyIssue> {
        self.issues.iter().filter(|i| !i.kind.is_error())
    }
}

impl fmt::Display for VerifyReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for issue in &self.issues {
            writeln!(f, "{issue}")?;
        }
        for (i, s) in self.strata.iter().enumerate() {
            let tag = if s.recursive { " (recursive)" } else { "" };
            writeln!(
                f,
                "stratum {i}{tag}: {} rule(s) deriving {}",
                s.rules.len(),
                s.relations.join(", ")
            )?;
        }
        Ok(())
    }
}

fn rule_label(rule: &Rule, index: usize) -> String {
    if rule.label.is_empty() {
        format!("rule #{index}")
    } else {
        rule.label.clone()
    }
}

impl Engine {
    /// Verifies the registered rule program. See the [module docs](self).
    ///
    /// Pure inspection: the engine is not modified, and evaluation state
    /// (facts already derived) only feeds the dead-rule analysis.
    #[must_use]
    pub fn verify(&self) -> VerifyReport {
        let mut errors: Vec<VerifyIssue> = Vec::new();
        let mut warnings: Vec<VerifyIssue> = Vec::new();
        let rules = self.rules();

        // --- per-rule safety and schema checks --------------------------
        for (ri, rule) in rules.iter().enumerate() {
            let label = rule_label(rule, ri);
            let mut bound = vec![false; rule.nvars];
            for atom in &rule.body {
                let expected = self.relation_arity(atom.rel);
                if atom.terms.len() != expected {
                    errors.push(VerifyIssue {
                        kind: VerifyIssueKind::ArityMismatch,
                        rule: Some(label.clone()),
                        message: format!(
                            "body atom over {} has {} terms, relation arity is {expected}",
                            self.relation_name(atom.rel),
                            atom.terms.len()
                        ),
                    });
                }
                for t in &atom.terms {
                    if let Slot::Var(v) = t {
                        if let Some(b) = bound.get_mut(*v) {
                            *b = true;
                        }
                    }
                }
            }
            for binding in &rule.bindings {
                if binding.functor.index() >= self.functor_count() {
                    errors.push(VerifyIssue {
                        kind: VerifyIssueKind::BadBinding,
                        rule: Some(label.clone()),
                        message: format!(
                            "binding names unregistered functor #{}",
                            binding.functor.index()
                        ),
                    });
                }
                for arg in &binding.args {
                    if let Slot::Var(v) = arg {
                        if !bound.get(*v).copied().unwrap_or(false) {
                            errors.push(VerifyIssue {
                                kind: VerifyIssueKind::BadBinding,
                                rule: Some(label.clone()),
                                message: format!(
                                    "functor argument slot v{v} is not bound by the body \
                                     or an earlier binding"
                                ),
                            });
                        }
                    }
                }
                if let Some(b) = bound.get_mut(binding.out) {
                    *b = true;
                }
            }
            for head in &rule.heads {
                let expected = self.relation_arity(head.rel);
                if head.terms.len() != expected {
                    errors.push(VerifyIssue {
                        kind: VerifyIssueKind::ArityMismatch,
                        rule: Some(label.clone()),
                        message: format!(
                            "head atom over {} has {} terms, relation arity is {expected}",
                            self.relation_name(head.rel),
                            head.terms.len()
                        ),
                    });
                }
                for t in &head.terms {
                    if let Slot::Var(v) = t {
                        if !bound.get(*v).copied().unwrap_or(false) {
                            errors.push(VerifyIssue {
                                kind: VerifyIssueKind::UnboundHeadVar,
                                rule: Some(label.clone()),
                                message: format!(
                                    "head variable slot v{v} of {} is not bound by any \
                                     body atom or functor output",
                                    self.relation_name(head.rel)
                                ),
                            });
                        }
                    }
                }
            }
        }

        // --- dead rules -------------------------------------------------
        // A relation is "live" if it holds facts or a live rule derives it;
        // a rule is live if every body relation is live. Fixpoint.
        let n = self.relation_count();
        let mut live_rel: Vec<bool> = (0..n)
            .map(|r| !self.relations_ref()[r].is_empty())
            .collect();
        let mut live_rule = vec![false; rules.len()];
        loop {
            let mut changed = false;
            for (ri, rule) in rules.iter().enumerate() {
                if live_rule[ri] {
                    continue;
                }
                if rule.body.iter().all(|a| live_rel[a.rel.index()]) {
                    live_rule[ri] = true;
                    changed = true;
                    for h in &rule.heads {
                        live_rel[h.rel.index()] = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }
        for (ri, rule) in rules.iter().enumerate() {
            if !live_rule[ri] {
                let starved: Vec<&str> = rule
                    .body
                    .iter()
                    .filter(|a| !live_rel[a.rel.index()])
                    .map(|a| self.relation_name(a.rel))
                    .collect();
                warnings.push(VerifyIssue {
                    kind: VerifyIssueKind::DeadRule,
                    rule: Some(rule_label(rule, ri)),
                    message: format!(
                        "rule can never fire: relation(s) {} are empty and underivable",
                        starved.join(", ")
                    ),
                });
            }
        }

        // --- unused relations -------------------------------------------
        let mut referenced = vec![false; n];
        for rule in rules {
            for a in rule.body.iter().chain(rule.heads.iter()) {
                referenced[a.rel.index()] = true;
            }
        }
        for (r, &is_referenced) in referenced.iter().enumerate() {
            if !is_referenced && self.relations_ref()[r].is_empty() {
                warnings.push(VerifyIssue {
                    kind: VerifyIssueKind::UnusedRelation,
                    rule: None,
                    message: format!(
                        "relation {} is declared but never used by any rule or fact",
                        self.relations_ref()[r].name()
                    ),
                });
            }
        }

        // --- stratification report --------------------------------------
        let strata = crate::stratify::schedule(rules, n);
        let mut report_strata = Vec::with_capacity(strata.len());
        for stratum in &strata {
            let mut rel_names: Vec<String> = Vec::new();
            let mut heads_here = vec![false; n];
            for &ri in stratum {
                for h in &rules[ri].heads {
                    if !heads_here[h.rel.index()] {
                        heads_here[h.rel.index()] = true;
                        rel_names.push(self.relation_name(h.rel).to_owned());
                    }
                }
            }
            let recursive = stratum
                .iter()
                .any(|&ri| rules[ri].body.iter().any(|a| heads_here[a.rel.index()]));
            report_strata.push(StratumInfo {
                rules: stratum
                    .iter()
                    .map(|&ri| rule_label(&rules[ri], ri))
                    .collect(),
                relations: rel_names,
                recursive,
            });
        }

        let mut issues = errors;
        issues.extend(warnings);
        VerifyReport {
            issues,
            strata: report_strata,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rule::{Atom, Rule, Term};

    fn v(n: &str) -> Term {
        Term::var(n)
    }

    #[test]
    fn clean_program_verifies_without_issues() {
        let mut e = Engine::new();
        let edge = e.relation("edge", 2);
        let path = e.relation("path", 2);
        e.fact(edge, &[0, 1]);
        e.rule()
            .label("path-base")
            .head(path, &[v("x"), v("y")])
            .atom(edge, &[v("x"), v("y")])
            .build()
            .unwrap();
        e.rule()
            .label("path-step")
            .head(path, &[v("x"), v("z")])
            .atom(edge, &[v("x"), v("y")])
            .atom(path, &[v("y"), v("z")])
            .build()
            .unwrap();
        let report = e.verify();
        assert!(report.issues.is_empty(), "{report}");
        assert!(!report.has_errors());
    }

    #[test]
    fn strata_report_flags_the_recursive_core() {
        let mut e = Engine::new();
        let edge = e.relation("edge", 2);
        let path = e.relation("path", 2);
        let summary = e.relation("summary", 1);
        e.fact(edge, &[0, 1]);
        e.rule()
            .head(path, &[v("x"), v("y")])
            .atom(edge, &[v("x"), v("y")])
            .build()
            .unwrap();
        e.rule()
            .head(path, &[v("x"), v("z")])
            .atom(edge, &[v("x"), v("y")])
            .atom(path, &[v("y"), v("z")])
            .build()
            .unwrap();
        e.rule()
            .head(summary, &[v("x")])
            .atom(path, &[v("x"), v("x")])
            .build()
            .unwrap();
        let report = e.verify();
        assert_eq!(report.strata.len(), 2);
        assert!(report.strata[0].recursive);
        assert!(report.strata[0].relations.contains(&"path".to_owned()));
        assert!(!report.strata[1].recursive);
        assert_eq!(report.strata[1].relations, vec!["summary".to_owned()]);
    }

    #[test]
    fn dead_rule_is_reported() {
        let mut e = Engine::new();
        let never = e.relation("never", 1); // no facts, no producer
        let out = e.relation("out", 1);
        e.rule()
            .label("starved")
            .head(out, &[v("x")])
            .atom(never, &[v("x")])
            .build()
            .unwrap();
        let report = e.verify();
        assert!(!report.has_errors());
        let dead: Vec<_> = report
            .warnings()
            .filter(|i| i.kind == VerifyIssueKind::DeadRule)
            .collect();
        assert_eq!(dead.len(), 1);
        assert_eq!(dead[0].rule.as_deref(), Some("starved"));
        assert!(dead[0].message.contains("never"));
        let _ = never;
    }

    #[test]
    fn transitively_live_rules_are_not_dead() {
        // a -> b -> c: all rules live because `a` has a fact.
        let mut e = Engine::new();
        let a = e.relation("a", 1);
        let b = e.relation("b", 1);
        let c = e.relation("c", 1);
        e.fact(a, &[1]);
        e.rule()
            .head(b, &[v("x")])
            .atom(a, &[v("x")])
            .build()
            .unwrap();
        e.rule()
            .head(c, &[v("x")])
            .atom(b, &[v("x")])
            .build()
            .unwrap();
        let report = e.verify();
        assert!(report
            .issues
            .iter()
            .all(|i| i.kind != VerifyIssueKind::DeadRule));
    }

    #[test]
    fn unused_relation_is_reported() {
        let mut e = Engine::new();
        let _orphan = e.relation("orphan", 1);
        let a = e.relation("a", 1);
        let b = e.relation("b", 1);
        e.fact(a, &[1]);
        e.rule()
            .head(b, &[v("x")])
            .atom(a, &[v("x")])
            .build()
            .unwrap();
        let report = e.verify();
        let unused: Vec<_> = report
            .warnings()
            .filter(|i| i.kind == VerifyIssueKind::UnusedRelation)
            .collect();
        assert_eq!(unused.len(), 1);
        assert!(unused[0].message.contains("orphan"));
    }

    #[test]
    fn corrupt_rule_safety_violations_are_errors() {
        // Bypass RuleBuilder and register a deliberately broken resolved
        // rule: head variable slot 1 is never bound, and the head arity is
        // wrong. verify() is the engine's last line of defense.
        let mut e = Engine::new();
        let a = e.relation("a", 1);
        let b = e.relation("b", 2);
        e.fact(a, &[1]);
        e.register_rule(Rule {
            heads: vec![Atom {
                rel: b,
                terms: vec![crate::rule::Slot::Var(0), crate::rule::Slot::Var(1)],
            }],
            body: vec![Atom {
                rel: a,
                terms: vec![crate::rule::Slot::Var(0)],
            }],
            bindings: vec![],
            nvars: 2,
            label: "broken".to_owned(),
        });
        let report = e.verify();
        assert!(report.has_errors());
        assert!(report
            .errors()
            .any(|i| i.kind == VerifyIssueKind::UnboundHeadVar));
    }

    #[test]
    fn arity_mismatch_in_resolved_rule_is_an_error() {
        let mut e = Engine::new();
        let a = e.relation("a", 2);
        let b = e.relation("b", 1);
        e.register_rule(Rule {
            heads: vec![Atom {
                rel: b,
                terms: vec![crate::rule::Slot::Var(0)],
            }],
            body: vec![Atom {
                rel: a,
                terms: vec![crate::rule::Slot::Var(0)], // arity is 2
            }],
            bindings: vec![],
            nvars: 1,
            label: String::new(),
        });
        let report = e.verify();
        assert!(report
            .errors()
            .any(|i| i.kind == VerifyIssueKind::ArityMismatch));
        // Unlabeled rules are identified positionally.
        assert_eq!(
            report.errors().next().unwrap().rule.as_deref(),
            Some("rule #0")
        );
    }

    #[test]
    fn report_display_mentions_strata_and_issues() {
        let mut e = Engine::new();
        let a = e.relation("a", 1);
        let b = e.relation("b", 1);
        e.rule()
            .label("only")
            .head(b, &[v("x")])
            .atom(a, &[v("x")])
            .build()
            .unwrap();
        let text = e.verify().to_string();
        assert!(text.contains("stratum 0"));
        assert!(text.contains("warning"));
    }
}
