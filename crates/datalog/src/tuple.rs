//! Fixed-capacity tuples ("rows") of `u32` values.
//!
//! Every Datalog fact is a row of at most [`MAX_ARITY`] interned IDs. Rows
//! are inline, `Copy`, and hashable, so relations and indices never allocate
//! per fact.

use std::fmt;

/// Maximum relation arity supported by the engine.
///
/// The widest relation in the points-to analysis is `FldPointsTo` with five
/// columns; six leaves headroom for clients.
pub const MAX_ARITY: usize = 6;

/// A tuple of up to [`MAX_ARITY`] `u32` values.
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Row {
    data: [u32; MAX_ARITY],
    len: u8,
}

impl Row {
    /// Creates a row from a slice.
    ///
    /// # Panics
    ///
    /// Panics if `values.len() > MAX_ARITY`.
    #[inline]
    pub fn new(values: &[u32]) -> Row {
        assert!(
            values.len() <= MAX_ARITY,
            "row arity {} exceeds max",
            values.len()
        );
        let mut data = [0u32; MAX_ARITY];
        data[..values.len()].copy_from_slice(values);
        Row {
            data,
            len: values.len() as u8,
        }
    }

    /// An empty row (arity 0), useful as an index key when no columns are
    /// bound.
    #[inline]
    pub fn empty() -> Row {
        Row {
            data: [0; MAX_ARITY],
            len: 0,
        }
    }

    /// The arity of this row.
    #[inline]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// `true` if the row has no columns.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The values as a slice.
    #[inline]
    pub fn as_slice(&self) -> &[u32] {
        &self.data[..self.len as usize]
    }

    /// The value at column `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    #[inline]
    pub fn get(&self, i: usize) -> u32 {
        assert!(i < self.len as usize, "column {i} out of bounds");
        self.data[i]
    }

    /// Appends a value, returning the extended row.
    ///
    /// # Panics
    ///
    /// Panics if the row is already at [`MAX_ARITY`].
    #[inline]
    pub fn push(mut self, value: u32) -> Row {
        assert!((self.len as usize) < MAX_ARITY, "row overflow");
        self.data[self.len as usize] = value;
        self.len += 1;
        self
    }

    /// Projects the columns selected by `mask` (bit `i` selects column `i`),
    /// in ascending column order.
    #[inline]
    pub fn project(&self, mask: u8) -> Row {
        let mut out = Row::empty();
        for i in 0..self.len() {
            if mask & (1 << i) != 0 {
                out = out.push(self.data[i]);
            }
        }
        out
    }
}

impl fmt::Debug for Row {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.as_slice().iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

impl From<&[u32]> for Row {
    fn from(values: &[u32]) -> Row {
        Row::new(values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let r = Row::new(&[1, 2, 3]);
        assert_eq!(r.len(), 3);
        assert_eq!(r.as_slice(), &[1, 2, 3]);
        assert_eq!(r.get(1), 2);
        assert!(!r.is_empty());
        assert!(Row::empty().is_empty());
    }

    #[test]
    fn equality_ignores_unused_capacity() {
        let a = Row::new(&[7]);
        let b = Row::empty().push(7);
        assert_eq!(a, b);
    }

    #[test]
    fn project_selects_masked_columns() {
        let r = Row::new(&[10, 20, 30, 40]);
        assert_eq!(r.project(0b0101).as_slice(), &[10, 30]);
        assert_eq!(r.project(0b1111).as_slice(), &[10, 20, 30, 40]);
        assert_eq!(r.project(0).as_slice(), &[] as &[u32]);
    }

    #[test]
    fn debug_format_is_tuple_like() {
        assert_eq!(format!("{:?}", Row::new(&[1, 2])), "(1, 2)");
        assert_eq!(format!("{:?}", Row::empty()), "()");
    }

    #[test]
    #[should_panic(expected = "row overflow")]
    fn push_past_capacity_panics() {
        let mut r = Row::empty();
        for i in 0..=MAX_ARITY as u32 {
            r = r.push(i);
        }
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_out_of_bounds_panics() {
        Row::new(&[1]).get(1);
    }
}
