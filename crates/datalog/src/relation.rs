//! Relations: deduplicated tuple stores with incremental hash indices.
//!
//! A relation keeps its rows in insertion order, which is what makes
//! semi-naive evaluation cheap: the engine remembers, per round, the window
//! of row positions inserted in that round (the *delta*), and joins restrict
//! themselves to positions inside or outside the window. Indices map a
//! projection of bound columns to the list of row positions carrying that
//! key; they are maintained incrementally (each index remembers how far into
//! the row log it has scanned).

use crate::hash::FxHashMap;
use crate::tuple::Row;

/// An index over the columns selected by a bitmask.
#[derive(Debug, Default)]
struct ColumnIndex {
    /// Key (projected columns, ascending) -> positions of matching rows.
    map: FxHashMap<Row, Vec<u32>>,
    /// Number of rows of the log already folded into `map`.
    indexed_upto: usize,
}

/// A deduplicated, insertion-ordered store of [`Row`]s.
#[derive(Debug)]
pub struct Relation {
    name: String,
    arity: usize,
    rows: Vec<Row>,
    seen: FxHashMap<Row, ()>,
    indices: FxHashMap<u8, ColumnIndex>,
}

impl Relation {
    /// Creates an empty relation.
    pub fn new(name: impl Into<String>, arity: usize) -> Relation {
        Relation {
            name: name.into(),
            arity,
            rows: Vec::new(),
            seen: FxHashMap::default(),
            indices: FxHashMap::default(),
        }
    }

    /// The relation's name (for diagnostics).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The declared arity.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of (distinct) rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` if no rows have been inserted.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Inserts a row; returns `true` if it was new.
    ///
    /// # Panics
    ///
    /// Panics if the row's arity differs from the relation's.
    pub fn insert(&mut self, row: Row) -> bool {
        assert_eq!(
            row.len(),
            self.arity,
            "arity mismatch inserting into {}",
            self.name
        );
        if self.seen.insert(row, ()).is_none() {
            self.rows.push(row);
            true
        } else {
            false
        }
    }

    /// `true` if the relation contains `row`.
    pub fn contains(&self, row: &Row) -> bool {
        self.seen.contains_key(row)
    }

    /// All rows, in insertion order.
    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    /// Looks up the positions of rows whose `mask`-projection equals `key`,
    /// bringing the index up to date first.
    ///
    /// `mask` bit `i` selects column `i`; `key` holds the bound values in
    /// ascending column order. An empty mask returns all row positions
    /// (callers should instead scan [`Relation::rows`] directly; this path
    /// exists for generality).
    pub fn probe(&mut self, mask: u8, key: &Row) -> &[u32] {
        debug_assert!(
            (mask as usize) < (1usize << self.arity),
            "mask wider than arity"
        );
        let index = self.indices.entry(mask).or_default();
        if index.indexed_upto < self.rows.len() {
            for pos in index.indexed_upto..self.rows.len() {
                let k = self.rows[pos].project(mask);
                index.map.entry(k).or_default().push(pos as u32);
            }
            index.indexed_upto = self.rows.len();
        }
        index.map.get(key).map(|v| v.as_slice()).unwrap_or(&[])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_deduplicates() {
        let mut r = Relation::new("r", 2);
        assert!(r.insert(Row::new(&[1, 2])));
        assert!(!r.insert(Row::new(&[1, 2])));
        assert!(r.insert(Row::new(&[2, 1])));
        assert_eq!(r.len(), 2);
        assert!(r.contains(&Row::new(&[1, 2])));
        assert!(!r.contains(&Row::new(&[9, 9])));
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn arity_is_enforced() {
        let mut r = Relation::new("r", 2);
        r.insert(Row::new(&[1]));
    }

    #[test]
    fn probe_finds_rows_by_column_subset() {
        let mut r = Relation::new("edge", 2);
        r.insert(Row::new(&[1, 2]));
        r.insert(Row::new(&[1, 3]));
        r.insert(Row::new(&[2, 3]));
        // Index on first column.
        let hits = r.probe(0b01, &Row::new(&[1])).to_vec();
        assert_eq!(hits.len(), 2);
        // Index on second column.
        let hits = r.probe(0b10, &Row::new(&[3])).to_vec();
        assert_eq!(hits.len(), 2);
        // Full-key probe.
        let hits = r.probe(0b11, &Row::new(&[2, 3])).to_vec();
        assert_eq!(hits, vec![2]);
        // Missing key.
        assert!(r.probe(0b01, &Row::new(&[9])).is_empty());
    }

    #[test]
    fn probe_sees_rows_inserted_after_index_creation() {
        let mut r = Relation::new("edge", 2);
        r.insert(Row::new(&[1, 2]));
        assert_eq!(r.probe(0b01, &Row::new(&[1])).len(), 1);
        r.insert(Row::new(&[1, 5]));
        r.insert(Row::new(&[2, 7]));
        // The existing index must be refreshed incrementally.
        assert_eq!(r.probe(0b01, &Row::new(&[1])).len(), 2);
        assert_eq!(r.probe(0b01, &Row::new(&[2])).len(), 1);
    }
}
