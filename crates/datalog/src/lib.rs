//! # pta-datalog — a semi-naive Datalog engine with constructor functors
//!
//! The PLDI 2013 paper specifies its points-to analysis as nine Datalog
//! rules evaluated on the commercial LogicBlox engine (via the Doop
//! framework). This crate is a from-scratch reimplementation of the engine
//! machinery that evaluation relies on:
//!
//! - **relations** of fixed-arity `u32` tuples with hash-set deduplication
//!   and incrementally maintained hash indices over arbitrary column subsets
//!   ([`relation`]);
//! - **rules** — conjunctive queries with multiple head atoms, constants,
//!   and *constructor functors* ([`rule`]). Functors model the paper's
//!   `Record` / `Merge` / `MergeStatic` context constructors, which the
//!   paper notes are "not part of regular Datalog";
//! - **semi-naive fixpoint evaluation** with delta relations, so each rule
//!   only re-joins against facts produced in the previous round
//!   ([`engine`]);
//! - **stratified scheduling**: rules are grouped by the strongly connected
//!   components of the relation dependency graph and each stratum is run to
//!   fixpoint in topological order ([`stratify`]).
//!
//! The engine is deliberately general: `pta-core` uses it to express the
//! paper's Figure 2 rule set *literally* (see `pta_core`'s `datalog_impl`
//! module), and the test suites cross-validate it against the specialized
//! solver on every workload. It is also usable stand-alone:
//!
//! ```
//! use pta_datalog::{Engine, Term};
//!
//! let mut e = Engine::new();
//! let edge = e.relation("edge", 2);
//! let path = e.relation("path", 2);
//! e.fact(edge, &[0, 1]);
//! e.fact(edge, &[1, 2]);
//! e.fact(edge, &[2, 3]);
//!
//! // path(x, y) <- edge(x, y).
//! e.rule()
//!     .head(path, &[Term::var("x"), Term::var("y")])
//!     .atom(edge, &[Term::var("x"), Term::var("y")])
//!     .build()
//!     .unwrap();
//! // path(x, z) <- edge(x, y), path(y, z).
//! e.rule()
//!     .head(path, &[Term::var("x"), Term::var("z")])
//!     .atom(edge, &[Term::var("x"), Term::var("y")])
//!     .atom(path, &[Term::var("y"), Term::var("z")])
//!     .build()
//!     .unwrap();
//!
//! e.run();
//! assert_eq!(e.rows(path).count(), 6); // all reachable pairs
//! ```

mod hash;

pub mod counting;
pub mod engine;
pub mod relation;
pub mod rule;
pub mod stratify;
pub mod tuple;
pub mod verify;

pub use counting::{CAtom, CRelId, CTerm, DeltaEngine, DeltaStats};
pub use engine::{Engine, EngineStats, FunctorId, RelId, RuleProfile};
pub use rule::{RuleBuildError, RuleBuilder, Term};
pub use tuple::{Row, MAX_ARITY};
pub use verify::{StratumInfo, VerifyIssue, VerifyIssueKind, VerifyReport};
