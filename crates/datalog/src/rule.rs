//! Rule representation and the rule-building DSL.
//!
//! A rule is a conjunctive query: one or more *head* atoms derived whenever
//! all *body* atoms match, plus an ordered list of *functor bindings*
//! evaluated after the body matches. Bindings are how the paper's context
//! constructors (`Record`, `Merge`, `MergeStatic`) enter rule evaluation:
//!
//! ```text
//! VarPointsTo(var, ctx, heap, hctx) , hctx = Record(heap, ctx) <-
//!     Reachable(meth, ctx), Alloc(var, heap, meth).
//! ```
//!
//! Variables are named strings during construction and resolved to dense
//! slots by [`RuleBuilder::build`], which also performs range-restriction
//! checks (every head/functor variable must be bound by the body or by an
//! earlier binding).

use std::error::Error;
use std::fmt;

use crate::engine::{Engine, FunctorId, RelId};
use crate::hash::FxHashMap;

/// A term in an atom: a named variable or a constant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Term {
    /// A named variable, unified across the rule.
    Var(String),
    /// A constant value.
    Const(u32),
}

impl Term {
    /// Shorthand for a variable term.
    pub fn var(name: impl Into<String>) -> Term {
        Term::Var(name.into())
    }

    /// Shorthand for a constant term.
    pub fn cst(value: u32) -> Term {
        Term::Const(value)
    }
}

/// A resolved term: variable slot or constant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Slot {
    Var(usize),
    Const(u32),
}

/// A resolved atom.
#[derive(Debug, Clone)]
pub(crate) struct Atom {
    pub rel: RelId,
    pub terms: Vec<Slot>,
}

/// A resolved functor binding `out = functor(args…)`.
#[derive(Debug, Clone)]
pub(crate) struct Binding {
    pub functor: FunctorId,
    pub args: Vec<Slot>,
    pub out: usize,
}

/// A fully resolved rule, ready for semi-naive evaluation.
#[derive(Debug, Clone)]
pub(crate) struct Rule {
    pub heads: Vec<Atom>,
    pub body: Vec<Atom>,
    pub bindings: Vec<Binding>,
    pub nvars: usize,
    #[allow(dead_code)] // diagnostics only
    pub label: String,
}

/// Errors detected while building a rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RuleBuildError {
    /// The rule has no head atom.
    NoHead,
    /// The rule has no body atom (facts should use `Engine::fact`).
    NoBody,
    /// An atom's term count does not match its relation's arity.
    ArityMismatch {
        /// Name of the offending relation.
        relation: String,
        /// Terms supplied.
        got: usize,
        /// Arity expected.
        expected: usize,
    },
    /// A head or functor-argument variable is not bound by the body or by an
    /// earlier binding (violates range restriction).
    UnboundVariable {
        /// The unbound variable's name.
        name: String,
    },
}

impl fmt::Display for RuleBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuleBuildError::NoHead => write!(f, "rule has no head atom"),
            RuleBuildError::NoBody => write!(f, "rule has no body atom"),
            RuleBuildError::ArityMismatch {
                relation,
                got,
                expected,
            } => write!(
                f,
                "atom over {relation} has {got} terms, relation arity is {expected}"
            ),
            RuleBuildError::UnboundVariable { name } => {
                write!(f, "variable {name} is not bound by the rule body")
            }
        }
    }
}

impl Error for RuleBuildError {}

/// Builder for one rule; obtained from [`Engine::rule`].
pub struct RuleBuilder<'e> {
    engine: &'e mut Engine,
    label: String,
    heads: Vec<(RelId, Vec<Term>)>,
    body: Vec<(RelId, Vec<Term>)>,
    bindings: Vec<(FunctorId, Vec<Term>, String)>,
}

impl<'e> RuleBuilder<'e> {
    pub(crate) fn new(engine: &'e mut Engine) -> RuleBuilder<'e> {
        RuleBuilder {
            engine,
            label: String::new(),
            heads: Vec::new(),
            body: Vec::new(),
            bindings: Vec::new(),
        }
    }

    /// Attaches a diagnostic label to the rule.
    pub fn label(mut self, label: impl Into<String>) -> Self {
        self.label = label.into();
        self
    }

    /// Adds a head atom (derived on every body match).
    pub fn head(mut self, rel: RelId, terms: &[Term]) -> Self {
        self.heads.push((rel, terms.to_vec()));
        self
    }

    /// Adds a body atom (must match for the rule to fire).
    pub fn atom(mut self, rel: RelId, terms: &[Term]) -> Self {
        self.body.push((rel, terms.to_vec()));
        self
    }

    /// Adds a functor binding `out = functor(args…)`, evaluated after the
    /// body matches and before heads are derived. Bindings are evaluated in
    /// declaration order, so later bindings may use earlier outputs.
    pub fn bind(mut self, functor: FunctorId, args: &[Term], out: impl Into<String>) -> Self {
        self.bindings.push((functor, args.to_vec(), out.into()));
        self
    }

    /// Resolves names, validates the rule, and registers it with the engine.
    ///
    /// # Errors
    ///
    /// See [`RuleBuildError`].
    pub fn build(self) -> Result<(), RuleBuildError> {
        if self.heads.is_empty() {
            return Err(RuleBuildError::NoHead);
        }
        if self.body.is_empty() {
            return Err(RuleBuildError::NoBody);
        }

        let mut slots: FxHashMap<String, usize> = FxHashMap::default();
        let slot_of = |name: &str, slots: &mut FxHashMap<String, usize>| -> usize {
            if let Some(&s) = slots.get(name) {
                s
            } else {
                let s = slots.len();
                slots.insert(name.to_owned(), s);
                s
            }
        };

        // Resolve body first so body variables get slots and we know what is
        // bound.
        let mut body = Vec::with_capacity(self.body.len());
        let mut bound: Vec<String> = Vec::new();
        for (rel, terms) in &self.body {
            let expected = self.engine.relation_arity(*rel);
            if terms.len() != expected {
                return Err(RuleBuildError::ArityMismatch {
                    relation: self.engine.relation_name(*rel).to_owned(),
                    got: terms.len(),
                    expected,
                });
            }
            let resolved = terms
                .iter()
                .map(|t| match t {
                    Term::Var(n) => {
                        bound.push(n.clone());
                        Slot::Var(slot_of(n, &mut slots))
                    }
                    Term::Const(v) => Slot::Const(*v),
                })
                .collect();
            body.push(Atom {
                rel: *rel,
                terms: resolved,
            });
        }

        // Bindings: args must be bound already; outputs become bound.
        let mut bindings = Vec::with_capacity(self.bindings.len());
        for (functor, args, out) in &self.bindings {
            let mut resolved_args = Vec::with_capacity(args.len());
            for t in args {
                match t {
                    Term::Var(n) => {
                        if !bound.iter().any(|b| b == n) {
                            return Err(RuleBuildError::UnboundVariable { name: n.clone() });
                        }
                        resolved_args.push(Slot::Var(slot_of(n, &mut slots)));
                    }
                    Term::Const(v) => resolved_args.push(Slot::Const(*v)),
                }
            }
            bound.push(out.clone());
            let out_slot = slot_of(out, &mut slots);
            bindings.push(Binding {
                functor: *functor,
                args: resolved_args,
                out: out_slot,
            });
        }

        // Heads: every variable must be bound.
        let mut heads = Vec::with_capacity(self.heads.len());
        for (rel, terms) in &self.heads {
            let expected = self.engine.relation_arity(*rel);
            if terms.len() != expected {
                return Err(RuleBuildError::ArityMismatch {
                    relation: self.engine.relation_name(*rel).to_owned(),
                    got: terms.len(),
                    expected,
                });
            }
            let mut resolved = Vec::with_capacity(terms.len());
            for t in terms {
                match t {
                    Term::Var(n) => {
                        if !bound.iter().any(|b| b == n) {
                            return Err(RuleBuildError::UnboundVariable { name: n.clone() });
                        }
                        resolved.push(Slot::Var(slot_of(n, &mut slots)));
                    }
                    Term::Const(v) => resolved.push(Slot::Const(*v)),
                }
            }
            heads.push(Atom {
                rel: *rel,
                terms: resolved,
            });
        }

        let rule = Rule {
            heads,
            body,
            bindings,
            nvars: slots.len(),
            label: self.label,
        };
        self.engine.register_rule(rule);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;

    #[test]
    fn unbound_head_variable_is_rejected() {
        let mut e = Engine::new();
        let a = e.relation("a", 1);
        let b = e.relation("b", 1);
        let err = e
            .rule()
            .head(b, &[Term::var("y")])
            .atom(a, &[Term::var("x")])
            .build()
            .unwrap_err();
        assert_eq!(err, RuleBuildError::UnboundVariable { name: "y".into() });
    }

    #[test]
    fn arity_mismatch_is_rejected() {
        let mut e = Engine::new();
        let a = e.relation("a", 2);
        let b = e.relation("b", 1);
        let err = e
            .rule()
            .head(b, &[Term::var("x")])
            .atom(a, &[Term::var("x")])
            .build()
            .unwrap_err();
        assert!(matches!(err, RuleBuildError::ArityMismatch { .. }));
    }

    #[test]
    fn headless_and_bodyless_rules_are_rejected() {
        let mut e = Engine::new();
        let a = e.relation("a", 1);
        assert_eq!(
            e.rule().atom(a, &[Term::var("x")]).build().unwrap_err(),
            RuleBuildError::NoHead
        );
        assert_eq!(
            e.rule().head(a, &[Term::cst(1)]).build().unwrap_err(),
            RuleBuildError::NoBody
        );
    }

    #[test]
    fn binding_output_can_feed_head() {
        let mut e = Engine::new();
        let a = e.relation("a", 1);
        let b = e.relation("b", 2);
        let inc = e.functor("inc", Box::new(|args: &[u32]| args[0] + 1));
        e.fact(a, &[10]);
        e.rule()
            .head(b, &[Term::var("x"), Term::var("y")])
            .atom(a, &[Term::var("x")])
            .bind(inc, &[Term::var("x")], "y")
            .build()
            .unwrap();
        e.run();
        assert_eq!(
            e.rows(b).collect::<Vec<_>>(),
            vec![&crate::Row::new(&[10, 11])]
        );
    }

    #[test]
    fn binding_with_unbound_arg_is_rejected() {
        let mut e = Engine::new();
        let a = e.relation("a", 1);
        let b = e.relation("b", 1);
        let inc = e.functor("inc", Box::new(|args: &[u32]| args[0] + 1));
        let err = e
            .rule()
            .head(b, &[Term::var("y")])
            .atom(a, &[Term::var("x")])
            .bind(inc, &[Term::var("z")], "y")
            .build()
            .unwrap_err();
        assert_eq!(err, RuleBuildError::UnboundVariable { name: "z".into() });
    }
}
