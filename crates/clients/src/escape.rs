//! Escape / thread-locality client (`W021`).
//!
//! An allocation site *escapes* its allocating thread when another
//! thread could observe it. In this IR the only cross-thread channels
//! are static fields (global cells any thread can read) and uncaught
//! exceptions (which unwind past the entry point to the runtime), so:
//!
//! - `Escapes(h)` if some static field may point to `h`;
//! - `Escapes(h)` if `h` may escape the entry points as an uncaught
//!   exception;
//! - `Escapes(h')` if `Escapes(h)` and some field of `h` may point to
//!   `h'` — everything reachable from an escaping object escapes with it.
//!
//! Every allocation *not* reported is provably thread-local (safe to
//! stack-allocate, lock-elide, …). The set is monotone in analysis
//! precision: a context-insensitive run inflates the field view and so
//! reports spuriously escaping sites, which is what the bench harness
//! counts across the policy matrix.

use pta_core::PointsToResult;
use pta_ir::{HeapId, Program};

/// One escape alarm: an allocation site that may be observed outside
/// its allocating thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EscapeFinding {
    /// The escaping allocation site.
    pub heap: HeapId,
}

/// Computes every escape finding, sorted by heap.
pub fn escape_findings(program: &Program, result: &PointsToResult) -> Vec<EscapeFinding> {
    let n = program.heap_count();
    let mut escapes = vec![false; n];
    for (_field, heaps) in result.static_points_to_iter() {
        for &h in heaps {
            escapes[h.index()] = true;
        }
    }
    for &h in result.uncaught_exceptions() {
        escapes[h.index()] = true;
    }
    // Close over the field graph: contents of escaping objects escape.
    loop {
        let mut changed = false;
        for ((base, _field), contents) in result.field_points_to_iter() {
            if !escapes[base.index()] {
                continue;
            }
            for &h in contents {
                if !escapes[h.index()] {
                    escapes[h.index()] = true;
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    program
        .heaps()
        .filter(|h| escapes[h.index()])
        .map(|heap| EscapeFinding { heap })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pta_core::{Analysis, AnalysisSession};
    use pta_lang::parse_program;

    const SOURCE: &str = r#"
        class Object {}
        class Node : Object { field next; }
        class Global : Object { static field cell; }
        class Main : Object {
            static main() {
                local = new Node;
                pub = new Node;
                inner = new Object;
                pub.next = inner;
                Global.cell = pub;
            }
        }
        entry Main.main;
    "#;

    #[test]
    fn static_reachability_escapes_locals_stay() {
        let p = parse_program(SOURCE).unwrap();
        let r = AnalysisSession::open(p.clone())
            .policy(Analysis::Insens)
            .solve();
        let findings = escape_findings(&p, &r);
        let labels: Vec<&str> = findings.iter().map(|f| p.heap_label(f.heap)).collect();
        // `pub` escapes through the static cell; `inner` escapes through
        // pub.next; `local` is thread-local.
        assert_eq!(findings.len(), 2, "{labels:?}");
        assert!(
            labels.iter().any(|l| l.contains("new Node#1")),
            "{labels:?}"
        );
        assert!(
            labels.iter().any(|l| l.contains("new Object")),
            "{labels:?}"
        );
    }

    const THROWING: &str = r#"
        class Object {}
        class Err : Object {}
        class Main : Object {
            static main() {
                e = new Err;
                throw e;
            }
        }
        entry Main.main;
    "#;

    #[test]
    fn uncaught_exceptions_escape() {
        let p = parse_program(THROWING).unwrap();
        let r = AnalysisSession::open(p.clone())
            .policy(Analysis::Insens)
            .solve();
        let findings = escape_findings(&p, &r);
        assert_eq!(findings.len(), 1);
        assert!(p.heap_label(findings[0].heap).contains("new Err"));
    }
}
