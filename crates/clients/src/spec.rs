//! The `pta check` source/sink specification format.
//!
//! A spec is a line-oriented text file naming the methods the taint
//! client treats specially:
//!
//! ```text
//! # taint policy for the demo app
//! source    TaintSrc*.make     # heaps allocated here are tainted
//! sanitizer TaintSan*.cleanse  # heaps allocated here launder taint
//! sink      TaintSink*.sink 0  # arg 0 must never be tainted
//! ```
//!
//! Each directive takes a `Class.method` pattern. Either component may
//! end in `*`, which prefix-matches (so `Taint*.make` covers every
//! generated taint-source class, and `*.*` matches everything). A `sink`
//! line optionally names the argument index to inspect; without one,
//! every argument of the call is inspected.
//!
//! Malformed lines are reported as [`E020`](pta_lint::code_description)
//! diagnostics carrying the line number; patterns that contain no
//! wildcard and match no method of the program are reported as `E021`
//! (a spec that names nothing is almost certainly a typo).

use pta_ir::{MethodId, Program, SrcLoc};
use pta_lint::Diagnostic;

/// A `Class.method` pattern, each side exact or `*`-prefix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MethodPattern {
    class: String,
    method: String,
}

fn part_matches(pattern: &str, name: &str) -> bool {
    match pattern.strip_suffix('*') {
        Some(prefix) => name.starts_with(prefix),
        None => name == pattern,
    }
}

impl MethodPattern {
    /// Parses `Class.method`; `None` if the shape is wrong.
    pub fn parse(text: &str) -> Option<MethodPattern> {
        let (class, method) = text.split_once('.')?;
        if class.is_empty() || method.is_empty() || method.contains('.') {
            return None;
        }
        Some(MethodPattern {
            class: class.to_owned(),
            method: method.to_owned(),
        })
    }

    /// `true` if the pattern matches `meth`'s declaring class and name.
    pub fn matches(&self, program: &Program, meth: MethodId) -> bool {
        part_matches(
            &self.class,
            program.type_name(program.method_declaring(meth)),
        ) && part_matches(&self.method, program.method_name(meth))
    }

    /// `true` if either component prefix-matches (ends in `*`).
    pub fn has_wildcard(&self) -> bool {
        self.class.ends_with('*') || self.method.ends_with('*')
    }
}

impl std::fmt::Display for MethodPattern {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}.{}", self.class, self.method)
    }
}

/// One `sink` directive: a method pattern plus the argument to inspect
/// (`None` = every argument).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SinkSpec {
    /// Which callee methods are sinks.
    pub pattern: MethodPattern,
    /// The argument index to inspect, or `None` for all.
    pub arg: Option<usize>,
}

/// A parsed source/sink/sanitizer specification.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CheckSpec {
    /// Methods whose allocations are taint sources.
    pub sources: Vec<MethodPattern>,
    /// Call targets whose arguments must not be tainted.
    pub sinks: Vec<SinkSpec>,
    /// Methods whose allocations launder taint.
    pub sanitizers: Vec<MethodPattern>,
}

impl CheckSpec {
    /// Parses a spec text. Every malformed line becomes one `E020`
    /// diagnostic; an empty `Ok` spec is legal (the taint client then
    /// reports nothing).
    pub fn parse(text: &str) -> Result<CheckSpec, Vec<Diagnostic>> {
        let mut spec = CheckSpec::default();
        let mut errors = Vec::new();
        for (idx, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let mut err = |what: &str| {
                errors.push(
                    Diagnostic::error("E020", format!("{what}: `{}`", raw.trim()))
                        .with_span(SrcLoc::new((idx + 1) as u32, 1)),
                );
            };
            let mut words = line.split_whitespace();
            let directive = words.next().unwrap_or("");
            let Some(pattern) = words.next().and_then(MethodPattern::parse) else {
                err("directive needs a Class.method pattern");
                continue;
            };
            match directive {
                "source" | "sanitizer" => {
                    if words.next().is_some() {
                        err("trailing tokens after the pattern");
                        continue;
                    }
                    if directive == "source" {
                        spec.sources.push(pattern);
                    } else {
                        spec.sanitizers.push(pattern);
                    }
                }
                "sink" => {
                    let arg = match words.next() {
                        None => None,
                        Some(tok) => match tok.parse::<usize>() {
                            Ok(n) => Some(n),
                            Err(_) => {
                                err("sink argument index is not a number");
                                continue;
                            }
                        },
                    };
                    if words.next().is_some() {
                        err("trailing tokens after the argument index");
                        continue;
                    }
                    spec.sinks.push(SinkSpec { pattern, arg });
                }
                _ => err("unknown directive (expected source, sink or sanitizer)"),
            }
        }
        if errors.is_empty() {
            Ok(spec)
        } else {
            Err(errors)
        }
    }

    /// Checks every exact (wildcard-free) pattern against the program;
    /// one `E021` per pattern that names no method.
    pub fn validate(&self, program: &Program) -> Vec<Diagnostic> {
        let all = self
            .sources
            .iter()
            .chain(self.sanitizers.iter())
            .chain(self.sinks.iter().map(|s| &s.pattern));
        let mut diags = Vec::new();
        for pat in all {
            if pat.has_wildcard() {
                continue;
            }
            if !program.methods().any(|m| pat.matches(program, m)) {
                diags.push(Diagnostic::error(
                    "E021",
                    format!("spec pattern `{pat}` matches no method in the program"),
                ));
            }
        }
        diags
    }

    /// `true` if `meth` is a taint source.
    pub fn is_source(&self, program: &Program, meth: MethodId) -> bool {
        self.sources.iter().any(|p| p.matches(program, meth))
    }

    /// `true` if `meth` is a sanitizer.
    pub fn is_sanitizer(&self, program: &Program, meth: MethodId) -> bool {
        self.sanitizers.iter().any(|p| p.matches(program, meth))
    }

    /// The sink directives matching `meth` (usually zero or one).
    pub fn sinks_for<'s>(
        &'s self,
        program: &'s Program,
        meth: MethodId,
    ) -> impl Iterator<Item = &'s SinkSpec> + 's {
        self.sinks
            .iter()
            .filter(move |s| s.pattern.matches(program, meth))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pta_lang::parse_program;

    const SOURCE: &str = r#"
        class Object {}
        class Src : Object { static make() { t = new Object; return t; } }
        class Use : Object { static consume(x) {} }
        class Main : Object {
            static main() {
                a = Src.make();
                Use.consume(a);
            }
        }
        entry Main.main;
    "#;

    #[test]
    fn parses_all_directives_with_comments() {
        let spec = CheckSpec::parse(
            "# policy\nsource Src.make\nsink Use.consume 0 # arg\n\nsanitizer San*.cleanse\n",
        )
        .unwrap();
        assert_eq!(spec.sources.len(), 1);
        assert_eq!(spec.sinks.len(), 1);
        assert_eq!(spec.sinks[0].arg, Some(0));
        assert_eq!(spec.sanitizers.len(), 1);
        assert!(spec.sanitizers[0].has_wildcard());
    }

    #[test]
    fn sink_without_index_inspects_all_args() {
        let spec = CheckSpec::parse("sink Use.consume\n").unwrap();
        assert_eq!(spec.sinks[0].arg, None);
    }

    #[test]
    fn malformed_lines_are_e020_with_line_numbers() {
        let errs = CheckSpec::parse("source Src.make\nfrobnicate X.y\nsink Use.consume zero\n")
            .unwrap_err();
        assert_eq!(errs.len(), 2);
        assert!(errs.iter().all(|d| d.code == "E020"));
        assert_eq!(errs[0].span.unwrap().line, 2);
        assert_eq!(errs[1].span.unwrap().line, 3);
    }

    #[test]
    fn wildcards_prefix_match() {
        let p = parse_program(SOURCE).unwrap();
        let spec = CheckSpec::parse("source Sr*.mak*\nsink *.consume 0\n").unwrap();
        let make = p.methods().find(|&m| p.method_name(m) == "make").unwrap();
        let consume = p
            .methods()
            .find(|&m| p.method_name(m) == "consume")
            .unwrap();
        assert!(spec.is_source(&p, make));
        assert!(!spec.is_source(&p, consume));
        assert_eq!(spec.sinks_for(&p, consume).count(), 1);
        assert!(spec.validate(&p).is_empty());
    }

    #[test]
    fn exact_pattern_matching_nothing_is_e021() {
        let p = parse_program(SOURCE).unwrap();
        let spec = CheckSpec::parse("source Src.nosuch\nsink Missing*.anything\n").unwrap();
        let diags = spec.validate(&p);
        assert_eq!(diags.len(), 1); // the wildcard pattern is exempt
        assert_eq!(diags[0].code, "E021");
        assert!(diags[0].message.contains("Src.nosuch"));
    }
}
