//! Context statistics: where an analysis spends its contexts and tuples.
//!
//! The paper's cost discussions (§4.2) come down to how many contexts each
//! analysis creates and how the context-sensitive tuples distribute over
//! methods — uniform hybrids explode because *every* method multiplies its
//! contexts by the invocation sites reaching it. This client computes that
//! distribution from a result with retained tuples, surfacing the "hot"
//! methods that dominate an analysis's cost (useful when tuning a custom
//! `ContextPolicy`).

use pta_core::PointsToResult;
use pta_ir::hash::FxHashMap;
use pta_ir::{MethodId, Program};

/// Distribution of contexts and tuples over methods.
#[derive(Debug, Clone, PartialEq)]
pub struct ContextStats {
    /// Methods with at least one context-sensitive tuple.
    pub methods_with_tuples: usize,
    /// The largest number of distinct contexts any single method's
    /// variables were analyzed under.
    pub max_contexts_per_method: usize,
    /// Mean distinct contexts per method (over methods with tuples).
    pub avg_contexts_per_method: f64,
    /// Mean tuples per (method, context) pair.
    pub avg_tuples_per_context: f64,
    /// The methods carrying the most tuples, descending (up to `top`).
    pub hottest_methods: Vec<(MethodId, usize)>,
}

/// Computes the context/tuple distribution.
///
/// Returns `None` when `result` was produced without
/// `SolverConfig::keep_tuples` (there is nothing to aggregate).
pub fn context_stats(
    program: &Program,
    result: &PointsToResult,
    top: usize,
) -> Option<ContextStats> {
    let tuples = result.context_sensitive_tuples()?;
    let mut tuples_per_method: FxHashMap<MethodId, usize> = FxHashMap::default();
    let mut contexts_per_method: FxHashMap<MethodId, Vec<u32>> = FxHashMap::default();
    for t in tuples {
        let m = program.var_method(t.var);
        *tuples_per_method.entry(m).or_default() += 1;
        contexts_per_method.entry(m).or_default().push(t.ctx.raw());
    }
    let mut total_ctx_pairs = 0usize;
    let mut max_contexts = 0usize;
    for ctxs in contexts_per_method.values_mut() {
        ctxs.sort_unstable();
        ctxs.dedup();
        total_ctx_pairs += ctxs.len();
        max_contexts = max_contexts.max(ctxs.len());
    }
    let methods_with_tuples = tuples_per_method.len();
    let mut hottest: Vec<(MethodId, usize)> = tuples_per_method.into_iter().collect();
    hottest.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    hottest.truncate(top);

    Some(ContextStats {
        methods_with_tuples,
        max_contexts_per_method: max_contexts,
        avg_contexts_per_method: if methods_with_tuples == 0 {
            0.0
        } else {
            total_ctx_pairs as f64 / methods_with_tuples as f64
        },
        avg_tuples_per_context: if total_ctx_pairs == 0 {
            0.0
        } else {
            tuples.len() as f64 / total_ctx_pairs as f64
        },
        hottest_methods: hottest,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pta_core::{Analysis, AnalysisSession};
    use pta_workload::{generate, WorkloadConfig};

    fn with_tuples(analysis: Analysis) -> (pta_ir::Program, PointsToResult) {
        let p = generate(&WorkloadConfig::tiny(5));
        let r = AnalysisSession::open(p.clone())
            .policy(analysis)
            .keep_tuples(true)
            .solve();
        (p, r)
    }

    #[test]
    fn requires_retained_tuples() {
        let p = generate(&WorkloadConfig::tiny(5));
        let r = AnalysisSession::open(p.clone())
            .policy(Analysis::OneObj)
            .solve();
        assert!(context_stats(&p, &r, 5).is_none());
    }

    #[test]
    fn stats_are_internally_consistent() {
        let (p, r) = with_tuples(Analysis::STwoObjH);
        let s = context_stats(&p, &r, 5).unwrap();
        assert!(s.methods_with_tuples > 0);
        assert!(s.max_contexts_per_method >= 1);
        assert!(s.avg_contexts_per_method >= 1.0);
        assert!(s.avg_contexts_per_method <= s.max_contexts_per_method as f64);
        assert!(s.avg_tuples_per_context >= 1.0);
        assert!(s.hottest_methods.len() <= 5);
        // Hottest methods are sorted descending.
        for w in s.hottest_methods.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
        // The hottest method's tuple count never exceeds the total.
        let total: usize = s.hottest_methods.iter().map(|&(_, n)| n).sum();
        assert!(total as u64 <= r.ctx_var_points_to_count());
    }

    #[test]
    fn uniform_hybrid_creates_more_contexts_per_method() {
        let (p, base) = with_tuples(Analysis::TwoObjH);
        let (_, uniform) = with_tuples(Analysis::UTwoObjH);
        let sb = context_stats(&p, &base, 3).unwrap();
        let su = context_stats(&p, &uniform, 3).unwrap();
        assert!(
            su.avg_contexts_per_method > sb.avg_contexts_per_method,
            "uniform {su:?} vs base {sb:?}"
        );
    }

    #[test]
    fn insens_has_one_context_everywhere() {
        let (p, r) = with_tuples(Analysis::Insens);
        let s = context_stats(&p, &r, 3).unwrap();
        assert_eq!(s.max_contexts_per_method, 1);
        assert!((s.avg_contexts_per_method - 1.0).abs() < 1e-12);
    }
}
