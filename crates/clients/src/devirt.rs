//! The devirtualization client.
//!
//! A virtual call site is *monomorphic* if the analysis resolves it to at
//! most one target method — such calls can be devirtualized (inlined or
//! turned into direct calls) by a compiler. The paper reports the number of
//! "virtual calls whose target cannot be disambiguated" ("poly v-calls") as
//! one of its two client-analysis precision metrics; only call sites in
//! reachable methods are counted.

use pta_core::PointsToResult;
use pta_ir::{Instr, InvoId, MethodId, Program};

/// A reachable virtual call site with its resolved target set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallSiteTargets {
    /// The invocation site.
    pub invo: InvoId,
    /// The methods the analysis says it may dispatch to (sorted).
    pub targets: Vec<MethodId>,
}

fn reachable_vcalls<'p>(
    program: &'p Program,
    result: &'p PointsToResult,
) -> impl Iterator<Item = InvoId> + 'p {
    program
        .methods()
        .filter(|&m| result.is_reachable(m))
        .flat_map(move |m| {
            program.instrs(m).iter().filter_map(|i| match *i {
                Instr::VCall { invo, .. } => Some(invo),
                _ => None,
            })
        })
}

/// Returns every reachable *polymorphic* virtual call site (≥ 2 targets),
/// along with the total number of reachable virtual call sites.
///
/// The pair corresponds to Table 1's "poly v-calls (of ~N)" column.
pub fn poly_virtual_calls(
    program: &Program,
    result: &PointsToResult,
) -> (Vec<CallSiteTargets>, usize) {
    let mut poly = Vec::new();
    let mut total = 0usize;
    for invo in reachable_vcalls(program, result) {
        total += 1;
        let targets = result.call_targets(invo);
        if targets.len() >= 2 {
            poly.push(CallSiteTargets {
                invo,
                targets: targets.to_vec(),
            });
        }
    }
    (poly, total)
}

/// Returns every reachable virtual call site the analysis resolves to
/// exactly one target — the devirtualization opportunities.
pub fn mono_virtual_calls(program: &Program, result: &PointsToResult) -> Vec<CallSiteTargets> {
    reachable_vcalls(program, result)
        .filter_map(|invo| {
            let targets = result.call_targets(invo);
            (targets.len() == 1).then(|| CallSiteTargets {
                invo,
                targets: targets.to_vec(),
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pta_core::{Analysis, AnalysisSession};
    use pta_lang::parse_program;

    /// Polymorphic hierarchy where precision determines devirtualization:
    /// each handler is invoked on a receiver loaded from its own container.
    const SOURCE: &str = r#"
        class Object {}
        class Handler : Object { method handle() { return this; } }
        class Fast : Handler { method handle() { return this; } }
        class Slow : Handler { method handle() { return this; } }
        class Box : Object {
            field h;
            method set(x) { this.h = x; }
            method get() { r = this.h; return r; }
        }
        class Main : Object {
            static main() {
                bf = new Box;
                bs = new Box;
                f = new Fast;
                s = new Slow;
                bf.set(f);
                bs.set(s);
                hf = bf.get();
                hs = bs.get();
                x = hf.handle();
                y = hs.handle();
            }
        }
        entry Main.main;
    "#;

    #[test]
    fn insens_sees_polymorphic_handlers() {
        let p = parse_program(SOURCE).unwrap();
        let r = AnalysisSession::open(p.clone())
            .policy(Analysis::Insens)
            .solve();
        let (poly, total) = poly_virtual_calls(&p, &r);
        // set/get on conflated boxes stay monomorphic (one Box class), but
        // the two handle() calls each see {Fast, Slow}.
        assert_eq!(total, 6);
        assert_eq!(poly.len(), 2);
        for site in &poly {
            assert_eq!(site.targets.len(), 2);
        }
    }

    #[test]
    fn one_obj_devirtualizes_the_handlers() {
        let p = parse_program(SOURCE).unwrap();
        let r = AnalysisSession::open(p.clone())
            .policy(Analysis::OneObj)
            .solve();
        let (poly, total) = poly_virtual_calls(&p, &r);
        assert_eq!(total, 6);
        assert!(poly.is_empty(), "1obj separates the boxes: {poly:?}");
        assert_eq!(mono_virtual_calls(&p, &r).len(), 6);
    }

    #[test]
    fn unreached_sites_are_not_devirt_candidates() {
        let p = parse_program(
            r#"
            class Object {}
            class C : Object { method m() {} }
            class Main : Object {
                static main() { x = new Object; }
                static dead() { c = new C; c.m(); }
            }
            entry Main.main;
        "#,
        )
        .unwrap();
        let r = AnalysisSession::open(p.clone())
            .policy(Analysis::Insens)
            .solve();
        let (poly, total) = poly_virtual_calls(&p, &r);
        assert_eq!(total, 0);
        assert!(poly.is_empty());
        assert!(mono_virtual_calls(&p, &r).is_empty());
    }
}
