//! `pta check` orchestration: run the three clients, cross-validate the
//! two client back ends, and render findings as [`pta_lint`]
//! diagnostics.
//!
//! The client suite has the same two-implementation discipline as the
//! core analysis: the direct Rust fixpoints
//! ([`taint_findings`](crate::taint_findings),
//! [`escape_findings`](crate::escape_findings),
//! [`nullness_findings`](crate::nullness_findings)) and the Datalog rule
//! encoding ([`datalog_check`](crate::rules::datalog_check)) must agree
//! finding-for-finding on every run; [`run_check`] with
//! [`ClientBackend::CrossValidated`] evaluates both and panics on any
//! divergence, so a disagreement is a bug in one of the encodings, not a
//! degraded answer.
//!
//! When the underlying [`PointsToResult`] is *partial* — the solver
//! tripped a budget, was cancelled, or demoted call sites to
//! context-insensitive treatment — every client answer is a sound
//! over-approximation of a *prefix* of the full derivation and may miss
//! findings. The report carries that bit, [`CheckReport::to_diagnostics`]
//! prepends a `W023` warning, and the CLI maps it to exit code 3
//! (partial), mirroring `pta run`.

use pta_core::PointsToResult;
use pta_ir::Program;
use pta_lint::Diagnostic;

use crate::escape::{escape_findings, EscapeFinding};
use crate::nullness::{nullness_findings, NullnessFinding};
use crate::rules::datalog_check;
use crate::spec::CheckSpec;
use crate::taint::{taint_findings, TaintFinding};

/// Which client implementation answers a [`run_check`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ClientBackend {
    /// The hand-specialized Rust fixpoints.
    #[default]
    Direct,
    /// The Datalog rule encoding.
    Datalog,
    /// Run both and assert they agree finding-for-finding.
    CrossValidated,
}

/// Per-cell client-metric counts, the bench-matrix view of a
/// [`CheckReport`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ClientMetrics {
    /// Number of taint findings (sink site × tainted heap pairs).
    pub taint_findings: usize,
    /// Number of allocation sites that may escape their thread.
    pub escape_findings: usize,
    /// Number of dereference sites with a maybe-null base.
    pub nullness_findings: usize,
}

/// The findings of one `pta check` run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckReport {
    /// Taint findings, sorted by `(invo, heap)`.
    pub taint: Vec<TaintFinding>,
    /// Escape findings, sorted by heap.
    pub escape: Vec<EscapeFinding>,
    /// Nullness findings, sorted by `(method, instr)`.
    pub nullness: Vec<NullnessFinding>,
    /// `true` if the underlying result is incomplete (budget trip,
    /// cancellation, or context demotion) and findings may be missing.
    pub partial: bool,
}

/// Runs all three clients over `result` on the chosen back end.
pub fn run_check(
    program: &Program,
    result: &PointsToResult,
    spec: &CheckSpec,
    backend: ClientBackend,
) -> CheckReport {
    let partial = !result.termination().is_complete() || !result.demoted_sites().is_empty();
    let (taint, escape, nullness) = match backend {
        ClientBackend::Direct => (
            taint_findings(program, result, spec),
            escape_findings(program, result),
            nullness_findings(program, result),
        ),
        ClientBackend::Datalog => {
            let dl = datalog_check(program, result, spec);
            (dl.taint, dl.escape, dl.nullness)
        }
        ClientBackend::CrossValidated => {
            let taint = taint_findings(program, result, spec);
            let escape = escape_findings(program, result);
            let nullness = nullness_findings(program, result);
            let dl = datalog_check(program, result, spec);
            assert_eq!(dl.taint, taint, "taint: rule/direct divergence");
            assert_eq!(dl.escape, escape, "escape: rule/direct divergence");
            assert_eq!(dl.nullness, nullness, "nullness: rule/direct divergence");
            (taint, escape, nullness)
        }
    };
    CheckReport {
        taint,
        escape,
        nullness,
        partial,
    }
}

/// The per-cell counts the bench matrix records.
pub fn client_metrics(report: &CheckReport) -> ClientMetrics {
    ClientMetrics {
        taint_findings: report.taint.len(),
        escape_findings: report.escape.len(),
        nullness_findings: report.nullness.len(),
    }
}

impl CheckReport {
    /// `true` if no client reported anything.
    pub fn is_clean(&self) -> bool {
        self.taint.is_empty() && self.escape.is_empty() && self.nullness.is_empty()
    }

    /// Renders the findings as diagnostics, in client order (`W023`
    /// partial tag first, then taint, escape, nullness). Deterministic:
    /// each finding list is already sorted on IR ids.
    pub fn to_diagnostics(&self, program: &Program) -> Vec<Diagnostic> {
        let mut diags = Vec::new();
        if self.partial {
            diags.push(Diagnostic::warning(
                "W023",
                "analysis result is partial (budget trip, cancellation, or context \
                 demotion); client findings may be incomplete"
                    .to_owned(),
            ));
        }
        // Alloc/call instruction indices, for spans.
        let heap_site = |h: pta_ir::HeapId| {
            let m = program.heap_method(h);
            program
                .instrs(m)
                .iter()
                .position(|i| matches!(*i, pta_ir::Instr::Alloc { heap, .. } if heap == h))
                .map(|idx| program.instr_loc(m, idx))
        };
        let invo_site = |i: pta_ir::InvoId| {
            let m = program.invo_method(i);
            program
                .instrs(m)
                .iter()
                .position(|ins| {
                    matches!(*ins,
                        pta_ir::Instr::VCall { invo, .. } | pta_ir::Instr::SCall { invo, .. }
                            if invo == i)
                })
                .map(|idx| program.instr_loc(m, idx))
        };
        for f in &self.taint {
            let mut d = Diagnostic::warning(
                "W020",
                format!(
                    "tainted value may reach sink call `{}`",
                    program.invo_label(f.invo)
                ),
            )
            .with_context(format!(
                "tainted allocation: {}",
                program.heap_label(f.heap)
            ));
            if let Some(loc) = invo_site(f.invo) {
                d = d.with_span(loc);
            }
            diags.push(d);
        }
        for f in &self.escape {
            let mut d = Diagnostic::warning(
                "W021",
                format!(
                    "allocation `{}` may escape its thread",
                    program.heap_label(f.heap)
                ),
            )
            .with_context(format!(
                "allocated in {}",
                program.method_qualified_name(program.heap_method(f.heap))
            ));
            if let Some(loc) = heap_site(f.heap) {
                d = d.with_span(loc);
            }
            diags.push(d);
        }
        for f in &self.nullness {
            diags.push(
                Diagnostic::warning(
                    "W022",
                    format!(
                        "`{}` may be null at this dereference",
                        program.var_name(f.var)
                    ),
                )
                .with_span(program.instr_loc(f.method, f.instr))
                .with_context(format!("in {}", program.method_qualified_name(f.method))),
            );
        }
        diags
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pta_core::{Analysis, AnalysisSession, Budget};
    use pta_lang::parse_program;

    const SOURCE: &str = r#"
        class Object {}
        class Payload : Object {}
        class Src : Object { static make() { t = new Payload; return t; } }
        class Sink : Object { static sink(x) {} }
        class Holder : Object { field val; }
        class Main : Object {
            static main() {
                t = Src.make();
                Sink.sink(t);
                h = new Holder;
                u = h.val;
                u.hash();
            }
        }
        entry Main.main;
    "#;

    const SPEC: &str = "source Src.make\nsink Sink.sink 0\n";

    #[test]
    fn cross_validated_report_and_diagnostics() {
        let p = parse_program(SOURCE).unwrap();
        let spec = CheckSpec::parse(SPEC).unwrap();
        let r = AnalysisSession::open(p.clone())
            .policy(Analysis::OneObjH)
            .solve();
        let report = run_check(&p, &r, &spec, ClientBackend::CrossValidated);
        assert!(!report.partial);
        assert_eq!(report.taint.len(), 1);
        assert_eq!(report.nullness.len(), 1);
        let diags = report.to_diagnostics(&p);
        assert!(diags.iter().any(|d| d.code == "W020"));
        assert!(diags.iter().any(|d| d.code == "W022"));
        assert!(diags.iter().all(|d| d.code != "W023"));
        let metrics = client_metrics(&report);
        assert_eq!(metrics.taint_findings, 1);
        assert_eq!(metrics.nullness_findings, 1);
    }

    #[test]
    fn partial_result_is_tagged_w023() {
        let p = parse_program(SOURCE).unwrap();
        let spec = CheckSpec::parse(SPEC).unwrap();
        let r = AnalysisSession::open(p.clone())
            .policy(Analysis::TwoObjH)
            .budget(Budget::default().with_max_steps(1))
            .solve();
        assert!(!r.termination().is_complete());
        let report = run_check(&p, &r, &spec, ClientBackend::Direct);
        assert!(report.partial);
        let diags = report.to_diagnostics(&p);
        assert_eq!(diags.first().map(|d| d.code), Some("W023"));
    }
}
