//! Heap taint-flow client (`W020`).
//!
//! An allocation site is *tainted* when it sits in a method the
//! [`CheckSpec`](crate::CheckSpec) marks as a `source`, and taint
//! propagates *contents-to-container* along the context-insensitive
//! field points-to view: an object that can reach a tainted object
//! through instance fields is itself tainted (a crate holding a tainted
//! payload must not be handed to a sink). Allocation sites in
//! `sanitizer` methods are never tainted and stop the propagation —
//! wrapping a tainted value in a sanitizer-allocated box launders it.
//!
//! A finding is a *sink call site* — an invocation whose resolved
//! targets include a spec'd sink method — where the inspected argument
//! may point to a tainted heap. Because everything is derived from the
//! cross-validated projections of [`PointsToResult`] (points-to sets,
//! call targets, field views), the findings are byte-identical across
//! the dense and Datalog back ends and across thread counts; a *more
//! precise* analysis can only shrink them.

use pta_core::PointsToResult;
use pta_ir::{HeapId, InvoId, Program};

use crate::spec::CheckSpec;

/// One taint alarm: a sink call site and the tainted heap reaching it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TaintFinding {
    /// The sink call site.
    pub invo: InvoId,
    /// The tainted allocation site flowing into the inspected argument.
    pub heap: HeapId,
}

/// The tainted-heap fixpoint: seeds from `source` methods, closed
/// contents-to-container over the field points-to view, blocked at
/// `sanitizer` allocations. Indexed by `HeapId`.
pub(crate) fn tainted_heaps(
    program: &Program,
    result: &PointsToResult,
    spec: &CheckSpec,
) -> Vec<bool> {
    let n = program.heap_count();
    let mut sanitized = vec![false; n];
    let mut tainted = vec![false; n];
    for h in program.heaps() {
        let owner = program.heap_method(h);
        sanitized[h.index()] = spec.is_sanitizer(program, owner);
        tainted[h.index()] = !sanitized[h.index()] && spec.is_source(program, owner);
    }
    loop {
        let mut changed = false;
        for ((base, _field), contents) in result.field_points_to_iter() {
            if tainted[base.index()] || sanitized[base.index()] {
                continue;
            }
            if contents.iter().any(|h| tainted[h.index()]) {
                tainted[base.index()] = true;
                changed = true;
            }
        }
        if !changed {
            return tainted;
        }
    }
}

/// Computes every taint finding, sorted by `(invo, heap)`.
pub fn taint_findings(
    program: &Program,
    result: &PointsToResult,
    spec: &CheckSpec,
) -> Vec<TaintFinding> {
    let tainted = tainted_heaps(program, result, spec);
    let mut findings = Vec::new();
    for invo in program.invos() {
        for &target in result.call_targets(invo) {
            for sink in spec.sinks_for(program, target) {
                let args = program.actual_args(invo);
                let inspected: &[pta_ir::VarId] = match sink.arg {
                    Some(k) => match args.get(k) {
                        Some(v) => std::slice::from_ref(v),
                        None => &[],
                    },
                    None => args,
                };
                for &var in inspected {
                    for &h in result.points_to(var) {
                        if tainted[h.index()] {
                            findings.push(TaintFinding { invo, heap: h });
                        }
                    }
                }
            }
        }
    }
    findings.sort_unstable();
    findings.dedup();
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use pta_core::{Analysis, AnalysisSession};
    use pta_lang::parse_program;

    const SOURCE: &str = r#"
        class Object {}
        class Payload : Object {}
        class Crate : Object { field lid; }
        class Box : Object { field inner; }
        class Src : Object { static make() { t = new Payload; return t; } }
        class San : Object {
            static cleanse(x) { b = new Box; b.inner = x; return b; }
        }
        class Sink : Object { static sink(x) {} }
        class Main : Object {
            static main() {
                t = Src.make();
                c = new Payload;
                Sink.sink(t);
                Sink.sink(c);
                k = new Crate;
                k.lid = t;
                Sink.sink(k);
                s = San.cleanse(t);
                Sink.sink(s);
            }
        }
        entry Main.main;
    "#;

    const SPEC: &str = "source Src.make\nsanitizer San.cleanse\nsink Sink.sink 0\n";

    #[test]
    fn direct_field_and_sanitized_flows() {
        let p = parse_program(SOURCE).unwrap();
        let spec = CheckSpec::parse(SPEC).unwrap();
        let r = AnalysisSession::open(p.clone())
            .policy(Analysis::OneCall)
            .solve();
        let findings = taint_findings(&p, &r, &spec);
        // sink(t): the tainted payload directly; sink(k): the crate holding
        // it. sink(c) is clean and sink(s) is laundered by the sanitizer.
        assert_eq!(findings.len(), 2);
        let labels: Vec<&str> = findings.iter().map(|f| p.heap_label(f.heap)).collect();
        assert!(
            labels.iter().any(|l| l.starts_with("Src.make/new Payload")),
            "{labels:?}"
        );
        assert!(labels.iter().any(|l| l.contains("new Crate")), "{labels:?}");
    }

    #[test]
    fn empty_spec_reports_nothing() {
        let p = parse_program(SOURCE).unwrap();
        let r = AnalysisSession::open(p.clone())
            .policy(Analysis::Insens)
            .solve();
        assert!(taint_findings(&p, &r, &CheckSpec::default()).is_empty());
    }
}
