//! # pta-clients — client analyses and evaluation metrics
//!
//! The paper's evaluation (§4.2) judges every analysis by four precision
//! metrics and two performance metrics. This crate computes all of them
//! from a [`PointsToResult`]:
//!
//! **Precision** (Table 1, lower is better):
//! - *average points-to set size* ("avg objs per var") — [`precision_metrics`];
//! - *call-graph edges* — context-insensitive edge count;
//! - *polymorphic virtual calls* ("poly v-calls") — reachable virtual call
//!   sites the analysis cannot devirtualize ([`poly_virtual_calls`]);
//! - *may-fail casts* — reachable cast instructions the analysis cannot
//!   prove safe ([`may_fail_casts`]).
//!
//! **Performance**:
//! - *context-sensitive var-points-to size* — "the foremost internal
//!   complexity metric of a points-to analysis";
//! - wall-clock time (measured by the bench harness, not here).
//!
//! The devirtualization and cast-check clients are also usable directly —
//! see the `devirtualize` and `cast_checker` examples at the repository
//! root.
//!
//! **`pta check`** (the lint-style client suite) lives in [`spec`],
//! [`taint`], [`escape`], [`nullness`], [`rules`] and [`check`]: three
//! context-sensitive safety clients driven by a source/sink spec, each
//! implemented twice (direct Rust fixpoint + Datalog rules) and
//! cross-validated finding-for-finding, with results rendered through the
//! `pta-lint` diagnostic model (`W020`–`W023`, `E020`/`E021`).

pub mod casts;
pub mod check;
pub mod devirt;
pub mod escape;
pub mod metrics;
pub mod nullness;
pub mod rules;
pub mod spec;
pub mod stats;
pub mod taint;

pub use casts::{may_fail_casts, CastSite};
pub use check::{client_metrics, run_check, CheckReport, ClientBackend, ClientMetrics};
pub use devirt::{mono_virtual_calls, poly_virtual_calls, CallSiteTargets};
pub use escape::{escape_findings, EscapeFinding};
pub use metrics::{precision_metrics, ExperimentMetrics};
pub use nullness::{nullness_findings, NullnessFinding};
pub use rules::{datalog_check, DatalogCheck};
pub use spec::{CheckSpec, MethodPattern, SinkSpec};
pub use stats::{context_stats, ContextStats};
pub use taint::{taint_findings, TaintFinding};

// Re-exported so client code only needs this crate.
pub use pta_core::PointsToResult;
