//! The client analyses as Datalog rules — the cross-validation twin of
//! [`taint`](crate::taint), [`escape`](crate::escape) and
//! [`nullness`](crate::nullness).
//!
//! The direct Rust fixpoints are hand-specialized; this module encodes
//! the *same* derivations as rules on a fresh [`pta_datalog::Engine`]
//! whose input relations are the context-insensitive projections of a
//! [`PointsToResult`] (`VarPointsTo`, `FldPointsTo`, `StaticPointsTo`,
//! `CallTarget`, …) plus program syntax facts. `pta check` can evaluate
//! both and [`check`](crate::check) asserts them finding-for-finding
//! identical, the same discipline the core analysis applies to its two
//! back ends.
//!
//! The rule language has no negation; the two "unwritten cell" seeds are
//! complements of extensional relations, precomputed with
//! [`pta_datalog::Engine::complement`] before evaluation (mirroring the
//! `NoCatches`-style complement facts of the Figure 2 encoding).

use pta_core::PointsToResult;
use pta_datalog::{Engine, Term};
use pta_ir::{HeapId, Instr, InvoId, MethodId, Program, VarId};

use crate::escape::EscapeFinding;
use crate::nullness::{deref_sites, NullnessFinding};
use crate::spec::CheckSpec;
use crate::taint::TaintFinding;

/// The three finding sets as derived by the rule encoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DatalogCheck {
    /// Taint findings, sorted.
    pub taint: Vec<TaintFinding>,
    /// Escape findings, sorted.
    pub escape: Vec<EscapeFinding>,
    /// Nullness findings, sorted.
    pub nullness: Vec<NullnessFinding>,
}

fn v(name: &str) -> Term {
    Term::var(name)
}

/// Evaluates the client rule program over `result`'s projections.
pub fn datalog_check(program: &Program, result: &PointsToResult, spec: &CheckSpec) -> DatalogCheck {
    let mut e = Engine::new();

    // ----- input relations: result projections -------------------------
    let var_pts = e.relation("VarPointsTo", 2); // (var, heap)
    let fld_pts = e.relation("FldPointsTo", 3); // (base heap, field, heap)
    let static_pts = e.relation("StaticPointsTo", 2); // (field, heap)
    let call_target = e.relation("CallTarget", 2); // (invo, method)
    let uncaught = e.relation("UncaughtEx", 1); // (heap)

    // ----- input relations: program syntax + spec ----------------------
    let all_heap = e.relation("AllHeap", 1);
    let source_heap = e.relation("SourceHeap", 1); // source-method allocs, unsanitized
    let sanitized_heap = e.relation("SanitizedHeap", 1);
    let not_sanitized = e.relation("NotSanitizedHeap", 1);
    let sink_arg = e.relation("SinkMethodArg", 2); // (method, arg index)
    let sink_all = e.relation("SinkMethodAllArgs", 1); // (method)
    let arg_at = e.relation("ActualArg", 3); // (invo, index, var)
    let formal_at = e.relation("FormalParam", 3); // (method, index, var)
    let ret_of = e.relation("FormalReturn", 2); // (method, var)
    let ret_to = e.relation("ActualReturn", 2); // (invo, var)
    let flow_edge = e.relation("FlowEdge", 2); // (from, to): moves + casts
    let load_instr = e.relation("LoadInstr", 3); // (to, base, field)
    let sload_instr = e.relation("SLoadInstr", 2); // (to, field)
    let store_instr = e.relation("StoreInstr", 3); // (base, field, from)
    let sstore_instr = e.relation("SStoreInstr", 2); // (field, from)
    let loaded_cell = e.relation("LoadedCell", 2); // (heap, field)
    let written_cell = e.relation("WrittenCell", 2);
    let unwritten_cell = e.relation("UnwrittenCell", 2);
    let loaded_static = e.relation("LoadedStatic", 1); // (field)
    let written_static = e.relation("WrittenStatic", 1);
    let unwritten_static = e.relation("UnwrittenStatic", 1);
    let deref_site = e.relation("DerefSite", 2); // (site, var)

    // ----- derived relations -------------------------------------------
    let tainted = e.relation("TaintedHeap", 1);
    let taint_finding = e.relation("TaintFinding", 2); // (invo, heap)
    let escapes = e.relation("Escapes", 1);
    let maybe_null = e.relation("MaybeNull", 1);
    let null_field = e.relation("NullField", 2); // (heap, field)
    let null_static = e.relation("NullStatic", 1); // (field)
    let null_deref = e.relation("NullDeref", 2); // (site, var)

    // ----- facts -------------------------------------------------------
    for var in program.vars() {
        for &h in result.points_to(var) {
            e.fact(var_pts, &[var.raw(), h.raw()]);
        }
    }
    for ((base, field), contents) in result.field_points_to_iter() {
        e.fact(written_cell, &[base.raw(), field.raw()]);
        for &h in contents {
            e.fact(fld_pts, &[base.raw(), field.raw(), h.raw()]);
        }
    }
    for (field, contents) in result.static_points_to_iter() {
        e.fact(written_static, &[field.raw()]);
        for &h in contents {
            e.fact(static_pts, &[field.raw(), h.raw()]);
        }
    }
    for invo in program.invos() {
        for &m in result.call_targets(invo) {
            e.fact(call_target, &[invo.raw(), m.raw()]);
        }
        for (k, &a) in program.actual_args(invo).iter().enumerate() {
            e.fact(arg_at, &[invo.raw(), k as u32, a.raw()]);
        }
        if let Some(t) = program.actual_return(invo) {
            e.fact(ret_to, &[invo.raw(), t.raw()]);
        }
    }
    for &h in result.uncaught_exceptions() {
        e.fact(uncaught, &[h.raw()]);
    }
    for h in program.heaps() {
        e.fact(all_heap, &[h.raw()]);
        let owner = program.heap_method(h);
        if spec.is_sanitizer(program, owner) {
            e.fact(sanitized_heap, &[h.raw()]);
        } else if spec.is_source(program, owner) {
            e.fact(source_heap, &[h.raw()]);
        }
    }
    e.complement(all_heap, sanitized_heap, not_sanitized);
    for m in program.methods() {
        for sink in spec.sinks_for(program, m) {
            match sink.arg {
                Some(k) => {
                    e.fact(sink_arg, &[m.raw(), k as u32]);
                }
                None => {
                    e.fact(sink_all, &[m.raw()]);
                }
            }
        }
        if !result.is_reachable(m) {
            continue;
        }
        for (k, &p) in program.formals(m).iter().enumerate() {
            e.fact(formal_at, &[m.raw(), k as u32, p.raw()]);
        }
        if let Some(rv) = program.formal_return(m) {
            e.fact(ret_of, &[m.raw(), rv.raw()]);
        }
        for instr in program.instrs(m) {
            match *instr {
                Instr::Move { to, from } | Instr::Cast { to, from, .. } => {
                    e.fact(flow_edge, &[from.raw(), to.raw()]);
                }
                Instr::Load { to, base, field } => {
                    e.fact(load_instr, &[to.raw(), base.raw(), field.raw()]);
                    for &h in result.points_to(base) {
                        e.fact(loaded_cell, &[h.raw(), field.raw()]);
                    }
                }
                Instr::SLoad { to, field } => {
                    e.fact(sload_instr, &[to.raw(), field.raw()]);
                    e.fact(loaded_static, &[field.raw()]);
                }
                Instr::Store { base, field, from } => {
                    e.fact(store_instr, &[base.raw(), field.raw(), from.raw()]);
                }
                Instr::SStore { field, from } => {
                    e.fact(sstore_instr, &[field.raw(), from.raw()]);
                }
                _ => {}
            }
        }
    }
    e.complement(loaded_cell, written_cell, unwritten_cell);
    e.complement(loaded_static, written_static, unwritten_static);
    let sites = deref_sites(program, result);
    for (s, &(_, _, var)) in sites.iter().enumerate() {
        e.fact(deref_site, &[s as u32, var.raw()]);
    }

    // ----- taint rules -------------------------------------------------
    e.rule()
        .label("taint-source")
        .head(tainted, &[v("h")])
        .atom(source_heap, &[v("h")])
        .build()
        .unwrap();
    e.rule()
        .label("taint-container")
        .head(tainted, &[v("h")])
        .atom(fld_pts, &[v("h"), v("f"), v("h2")])
        .atom(tainted, &[v("h2")])
        .atom(not_sanitized, &[v("h")])
        .build()
        .unwrap();
    e.rule()
        .label("taint-sink-arg")
        .head(taint_finding, &[v("i"), v("h")])
        .atom(call_target, &[v("i"), v("m")])
        .atom(sink_arg, &[v("m"), v("k")])
        .atom(arg_at, &[v("i"), v("k"), v("a")])
        .atom(var_pts, &[v("a"), v("h")])
        .atom(tainted, &[v("h")])
        .build()
        .unwrap();
    e.rule()
        .label("taint-sink-all")
        .head(taint_finding, &[v("i"), v("h")])
        .atom(call_target, &[v("i"), v("m")])
        .atom(sink_all, &[v("m")])
        .atom(arg_at, &[v("i"), v("k"), v("a")])
        .atom(var_pts, &[v("a"), v("h")])
        .atom(tainted, &[v("h")])
        .build()
        .unwrap();

    // ----- escape rules ------------------------------------------------
    e.rule()
        .label("escape-static")
        .head(escapes, &[v("h")])
        .atom(static_pts, &[v("f"), v("h")])
        .build()
        .unwrap();
    e.rule()
        .label("escape-uncaught")
        .head(escapes, &[v("h")])
        .atom(uncaught, &[v("h")])
        .build()
        .unwrap();
    e.rule()
        .label("escape-contents")
        .head(escapes, &[v("h2")])
        .atom(escapes, &[v("h")])
        .atom(fld_pts, &[v("h"), v("f"), v("h2")])
        .build()
        .unwrap();

    // ----- nullness rules ----------------------------------------------
    e.rule()
        .label("null-unwritten-load")
        .head(maybe_null, &[v("to")])
        .atom(load_instr, &[v("to"), v("b"), v("f")])
        .atom(var_pts, &[v("b"), v("h")])
        .atom(unwritten_cell, &[v("h"), v("f")])
        .build()
        .unwrap();
    e.rule()
        .label("null-unwritten-sload")
        .head(maybe_null, &[v("to")])
        .atom(sload_instr, &[v("to"), v("f")])
        .atom(unwritten_static, &[v("f")])
        .build()
        .unwrap();
    e.rule()
        .label("null-flow")
        .head(maybe_null, &[v("to")])
        .atom(flow_edge, &[v("from"), v("to")])
        .atom(maybe_null, &[v("from")])
        .build()
        .unwrap();
    e.rule()
        .label("null-arg")
        .head(maybe_null, &[v("p")])
        .atom(call_target, &[v("i"), v("m")])
        .atom(arg_at, &[v("i"), v("k"), v("a")])
        .atom(formal_at, &[v("m"), v("k"), v("p")])
        .atom(maybe_null, &[v("a")])
        .build()
        .unwrap();
    e.rule()
        .label("null-return")
        .head(maybe_null, &[v("t")])
        .atom(call_target, &[v("i"), v("m")])
        .atom(ret_of, &[v("m"), v("rv")])
        .atom(ret_to, &[v("i"), v("t")])
        .atom(maybe_null, &[v("rv")])
        .build()
        .unwrap();
    e.rule()
        .label("null-field-store")
        .head(null_field, &[v("h"), v("f")])
        .atom(store_instr, &[v("b"), v("f"), v("from")])
        .atom(var_pts, &[v("b"), v("h")])
        .atom(maybe_null, &[v("from")])
        .build()
        .unwrap();
    e.rule()
        .label("null-field-load")
        .head(maybe_null, &[v("to")])
        .atom(load_instr, &[v("to"), v("b"), v("f")])
        .atom(var_pts, &[v("b"), v("h")])
        .atom(null_field, &[v("h"), v("f")])
        .build()
        .unwrap();
    e.rule()
        .label("null-static-store")
        .head(null_static, &[v("f")])
        .atom(sstore_instr, &[v("f"), v("from")])
        .atom(maybe_null, &[v("from")])
        .build()
        .unwrap();
    e.rule()
        .label("null-static-load")
        .head(maybe_null, &[v("to")])
        .atom(sload_instr, &[v("to"), v("f")])
        .atom(null_static, &[v("f")])
        .build()
        .unwrap();
    e.rule()
        .label("null-deref")
        .head(null_deref, &[v("s"), v("x")])
        .atom(deref_site, &[v("s"), v("x")])
        .atom(maybe_null, &[v("x")])
        .build()
        .unwrap();

    let report = e.verify();
    assert!(
        !report.has_errors(),
        "client rule program failed verification: {report}"
    );
    e.run();

    // ----- extraction --------------------------------------------------
    let mut taint: Vec<TaintFinding> = e
        .rows(taint_finding)
        .map(|row| TaintFinding {
            invo: InvoId::from_raw(row.get(0)),
            heap: HeapId::from_raw(row.get(1)),
        })
        .collect();
    taint.sort_unstable();
    let mut escape: Vec<EscapeFinding> = e
        .rows(escapes)
        .map(|row| EscapeFinding {
            heap: HeapId::from_raw(row.get(0)),
        })
        .collect();
    escape.sort_unstable();
    let mut nullness: Vec<NullnessFinding> = e
        .rows(null_deref)
        .map(|row| {
            let (method, instr, var) = sites[row.get(0) as usize];
            debug_assert_eq!(var, VarId::from_raw(row.get(1)));
            let _: MethodId = method;
            NullnessFinding { method, instr, var }
        })
        .collect();
    nullness.sort_unstable();
    DatalogCheck {
        taint,
        escape,
        nullness,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{escape_findings, nullness_findings, taint_findings};
    use pta_core::{Analysis, AnalysisSession};
    use pta_workload::dacapo_workload;

    /// The rule encoding and the direct fixpoints agree on a nontrivial
    /// workload under a precise and an imprecise policy.
    #[test]
    fn rules_match_direct_fixpoints() {
        let mut cfg = pta_workload::WorkloadConfig::tiny(5);
        cfg.taint_groups = 2;
        let p = pta_workload::generate(&cfg);
        let spec = CheckSpec::parse(pta_workload::TAINT_SPEC).unwrap();
        for analysis in [Analysis::Insens, Analysis::SAOneObj] {
            let r = AnalysisSession::open(p.clone()).policy(analysis).solve();
            let dl = datalog_check(&p, &r, &spec);
            assert_eq!(dl.taint, taint_findings(&p, &r, &spec), "{analysis} taint");
            assert_eq!(dl.escape, escape_findings(&p, &r), "{analysis} escape");
            assert_eq!(
                dl.nullness,
                nullness_findings(&p, &r),
                "{analysis} nullness"
            );
        }
    }

    /// Same agreement on a DaCapo-shaped program without injection (the
    /// spec then matches nothing; escape/nullness still have real work).
    #[test]
    fn rules_match_on_dacapo_shape() {
        let p = dacapo_workload("luindex", 0.08);
        let spec = CheckSpec::parse("sink Nothing.matches 0\n").unwrap();
        let r = AnalysisSession::open(p.clone())
            .policy(Analysis::OneObj)
            .solve();
        let dl = datalog_check(&p, &r, &spec);
        assert_eq!(dl.taint, taint_findings(&p, &r, &spec));
        assert_eq!(dl.escape, escape_findings(&p, &r));
        assert_eq!(dl.nullness, nullness_findings(&p, &r));
        assert!(!dl.escape.is_empty(), "registry traffic must escape");
    }
}
