//! Nullness-at-dereference client (`W022`).
//!
//! The IR has no literal `null`, but null-ness still arises: a field
//! read from a cell *no write ever reaches* yields null at runtime (the
//! interpreter models exactly this). A variable is *maybe-null* when:
//!
//! - it loads from an instance-field cell `(h, f)` the analysis saw no
//!   store into (`h` in the base's points-to set, the context-insensitive
//!   `(h, f)` view empty), or from an unwritten static field;
//! - a maybe-null value flows into it through a move, a cast, a call
//!   binding (actual → formal, callee return → call-site return), or
//!   through a field cell / static field a maybe-null value was stored
//!   into.
//!
//! A finding is a *dereference site* — virtual-call receiver, field
//! load/store base, or throw operand — whose variable is maybe-null.
//! Receiver-null virtual calls are not propagated into the callee's
//! `this` (the call would fault, not pass null), so the alarm stays at
//! the faulting site. Only reachable methods are inspected. More
//! precise points-to shrinks `pts(base)`, so spurious unwritten-cell
//! seeds — and with them the findings — shrink monotonically.

use pta_core::PointsToResult;
use pta_ir::hash::FxHashSet;
use pta_ir::{FieldId, HeapId, Instr, MethodId, Program, VarId};

/// One nullness alarm: a dereference whose base may be null.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NullnessFinding {
    /// The method containing the dereference.
    pub method: MethodId,
    /// Index of the dereferencing instruction in the method body.
    pub instr: usize,
    /// The maybe-null variable being dereferenced.
    pub var: VarId,
}

/// Every dereference site of a reachable method, in program order:
/// `(method, instruction index, dereferenced variable)`.
pub(crate) fn deref_sites(
    program: &Program,
    result: &PointsToResult,
) -> Vec<(MethodId, usize, VarId)> {
    let mut sites = Vec::new();
    for m in program.methods() {
        if !result.is_reachable(m) {
            continue;
        }
        for (idx, instr) in program.instrs(m).iter().enumerate() {
            let var = match *instr {
                Instr::VCall { base, .. } => base,
                Instr::Load { base, .. } => base,
                Instr::Store { base, .. } => base,
                Instr::Throw { var } => var,
                _ => continue,
            };
            sites.push((m, idx, var));
        }
    }
    sites
}

/// The maybe-null fixpoint, indexed by `VarId`.
pub(crate) fn maybe_null_vars(program: &Program, result: &PointsToResult) -> Vec<bool> {
    let mut maybe_null = vec![false; program.var_count()];
    let mut null_field: FxHashSet<(HeapId, FieldId)> = FxHashSet::default();
    let mut null_static = vec![false; program.field_count()];
    let reachable: Vec<MethodId> = program
        .methods()
        .filter(|&m| result.is_reachable(m))
        .collect();
    loop {
        let mut changed = false;
        let mark = |v: VarId, maybe_null: &mut Vec<bool>| {
            if !maybe_null[v.index()] {
                maybe_null[v.index()] = true;
                true
            } else {
                false
            }
        };
        for &m in &reachable {
            for instr in program.instrs(m) {
                match *instr {
                    Instr::Load { to, base, field } => {
                        let from_unwritten = result
                            .points_to(base)
                            .iter()
                            .any(|&h| result.field_points_to(h, field).is_empty());
                        let from_null_store = result
                            .points_to(base)
                            .iter()
                            .any(|&h| null_field.contains(&(h, field)));
                        if (from_unwritten || from_null_store) && mark(to, &mut maybe_null) {
                            changed = true;
                        }
                    }
                    Instr::SLoad { to, field } => {
                        if (result.static_points_to(field).is_empty() || null_static[field.index()])
                            && mark(to, &mut maybe_null)
                        {
                            changed = true;
                        }
                    }
                    Instr::Store { base, field, from } => {
                        if maybe_null[from.index()] {
                            for &h in result.points_to(base) {
                                if null_field.insert((h, field)) {
                                    changed = true;
                                }
                            }
                        }
                    }
                    Instr::SStore { field, from } => {
                        if maybe_null[from.index()] && !null_static[field.index()] {
                            null_static[field.index()] = true;
                            changed = true;
                        }
                    }
                    Instr::Move { to, from } | Instr::Cast { to, from, .. } => {
                        if maybe_null[from.index()] && mark(to, &mut maybe_null) {
                            changed = true;
                        }
                    }
                    Instr::VCall { invo, .. } | Instr::SCall { invo, .. } => {
                        let args = program.actual_args(invo);
                        for &target in result.call_targets(invo) {
                            let formals = program.formals(target);
                            for (k, &a) in args.iter().enumerate() {
                                if maybe_null[a.index()]
                                    && k < formals.len()
                                    && mark(formals[k], &mut maybe_null)
                                {
                                    changed = true;
                                }
                            }
                            if let (Some(rv), Some(tv)) =
                                (program.formal_return(target), program.actual_return(invo))
                            {
                                if maybe_null[rv.index()] && mark(tv, &mut maybe_null) {
                                    changed = true;
                                }
                            }
                        }
                    }
                    Instr::Alloc { .. } | Instr::Throw { .. } => {}
                }
            }
        }
        if !changed {
            return maybe_null;
        }
    }
}

/// Computes every nullness finding, sorted by `(method, instr)`.
pub fn nullness_findings(program: &Program, result: &PointsToResult) -> Vec<NullnessFinding> {
    let maybe_null = maybe_null_vars(program, result);
    deref_sites(program, result)
        .into_iter()
        .filter(|&(_, _, var)| maybe_null[var.index()])
        .map(|(method, instr, var)| NullnessFinding { method, instr, var })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pta_core::{Analysis, AnalysisSession};
    use pta_lang::parse_program;

    const SOURCE: &str = r#"
        class Object {}
        class Payload : Object { method touch() { return this; } }
        class Holder : Object { field val; }
        class Main : Object {
            static main() {
                ok = new Holder;
                fill = new Payload;
                ok.val = fill;
                x = ok.val;
                x.touch();
                empty = new Holder;
                y = empty.val;
                y.touch();
            }
        }
        entry Main.main;
    "#;

    #[test]
    fn unwritten_cell_load_flags_its_deref() {
        let p = parse_program(SOURCE).unwrap();
        let r = AnalysisSession::open(p.clone())
            .policy(Analysis::SAOneObj)
            .solve();
        let findings = nullness_findings(&p, &r);
        // Only `y` loads from the unwritten (empty, val) cell; `x`'s cell
        // was written.
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(p.var_name(findings[0].var), "y");
    }

    const FLOWS: &str = r#"
        class Object {}
        class Payload : Object { method touch() { return this; } }
        class Holder : Object { field val; }
        class Relay : Object { static pass(v) { return v; } }
        class Main : Object {
            static main() {
                empty = new Holder;
                y = empty.val;
                z = Relay.pass(y);
                z.touch();
                box = new Holder;
                box.val = z;
                w = box.val;
                w.touch();
            }
        }
        entry Main.main;
    "#;

    #[test]
    fn nullness_flows_through_calls_and_field_cells() {
        let p = parse_program(FLOWS).unwrap();
        let r = AnalysisSession::open(p.clone())
            .policy(Analysis::SAOneObj)
            .solve();
        let findings = nullness_findings(&p, &r);
        let vars: Vec<&str> = findings.iter().map(|f| p.var_name(f.var)).collect();
        // z: null through the call; w: null through the (box, val) cell.
        assert!(vars.contains(&"z"), "{vars:?}");
        assert!(vars.contains(&"w"), "{vars:?}");
    }
}
