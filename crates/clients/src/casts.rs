//! The may-fail casts client.
//!
//! A cast `to = (T) from` *may fail* if the analysis cannot prove that every
//! object `from` may point to is a subtype of `T`. The paper reports, per
//! benchmark, "the number of casts that cannot be statically shown safe" —
//! one of its two client-analysis precision metrics. Only casts in
//! *reachable* methods are counted (the paper's totals are "reachable
//! casts").

use pta_core::PointsToResult;
use pta_ir::{Instr, MethodId, Program, TypeId, VarId};

/// A cast instruction that the analysis could not prove safe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CastSite {
    /// The method containing the cast.
    pub method: MethodId,
    /// The index of the cast instruction within the method body.
    pub instr_index: usize,
    /// The cast target type.
    pub target_type: TypeId,
    /// The source variable.
    pub from: VarId,
    /// How many of the source's possible objects are incompatible.
    pub incompatible_objects: usize,
}

/// Returns every reachable cast the analysis cannot prove safe, along with
/// the total number of reachable casts.
///
/// The pair `(may_fail, reachable_total)` corresponds to Table 1's
/// "may-fail casts (of ~N)" column.
pub fn may_fail_casts(program: &Program, result: &PointsToResult) -> (Vec<CastSite>, usize) {
    let mut failing = Vec::new();
    let mut reachable_casts = 0usize;
    for method in program.methods() {
        if !result.is_reachable(method) {
            continue;
        }
        for (instr_index, instr) in program.instrs(method).iter().enumerate() {
            if let Instr::Cast { from, ty, .. } = *instr {
                reachable_casts += 1;
                let incompatible = result
                    .points_to(from)
                    .iter()
                    .filter(|&&h| !program.is_subtype(program.heap_type(h), ty))
                    .count();
                if incompatible > 0 {
                    failing.push(CastSite {
                        method,
                        instr_index,
                        target_type: ty,
                        from,
                        incompatible_objects: incompatible,
                    });
                }
            }
        }
    }
    (failing, reachable_casts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pta_core::{Analysis, AnalysisSession};
    use pta_lang::parse_program;

    /// A deserialization-style program: payloads of two types stored in a
    /// shared container and cast after retrieval.
    const SOURCE: &str = r#"
        class Object {}
        class A : Object {}
        class B : Object {}
        class Box : Object {
            field v;
            method set(x) { this.v = x; }
            method get() { r = this.v; return r; }
        }
        class Main : Object {
            static main() {
                b1 = new Box;
                b2 = new Box;
                a = new A;
                bb = new B;
                b1.set(a);
                b2.set(bb);
                ra = b1.get();
                rb = b2.get();
                ca = (A) ra;
                cb = (B) rb;
            }
        }
        entry Main.main;
    "#;

    #[test]
    fn insensitive_analysis_cannot_prove_the_casts() {
        let p = parse_program(SOURCE).unwrap();
        let r = AnalysisSession::open(p.clone())
            .policy(Analysis::Insens)
            .solve();
        let (failing, total) = may_fail_casts(&p, &r);
        assert_eq!(total, 2);
        // Both boxes are conflated: each cast sees both A and B.
        assert_eq!(failing.len(), 2);
        assert_eq!(failing[0].incompatible_objects, 1);
    }

    #[test]
    fn object_sensitive_analysis_proves_the_casts() {
        let p = parse_program(SOURCE).unwrap();
        let r = AnalysisSession::open(p.clone())
            .policy(Analysis::OneObj)
            .solve();
        let (failing, total) = may_fail_casts(&p, &r);
        assert_eq!(total, 2);
        assert!(
            failing.is_empty(),
            "1obj separates the two boxes: {failing:?}"
        );
    }

    #[test]
    fn unreachable_casts_are_not_counted() {
        let p = parse_program(
            r#"
            class Object {}
            class A : Object {}
            class Main : Object {
                static main() { x = new Object; }
                static dead() { y = new Object; z = (A) y; }
            }
            entry Main.main;
        "#,
        )
        .unwrap();
        let r = AnalysisSession::open(p.clone())
            .policy(Analysis::Insens)
            .solve();
        let (failing, total) = may_fail_casts(&p, &r);
        assert_eq!(total, 0);
        assert!(failing.is_empty());
    }

    #[test]
    fn upcasts_are_always_safe() {
        let p = parse_program(
            r#"
            class Object {}
            class A : Object {}
            class Main : Object {
                static main() { a = new A; o = (Object) a; }
            }
            entry Main.main;
        "#,
        )
        .unwrap();
        let r = AnalysisSession::open(p.clone())
            .policy(Analysis::Insens)
            .solve();
        let (failing, total) = may_fail_casts(&p, &r);
        assert_eq!(total, 1);
        assert!(failing.is_empty());
    }
}
