//! Aggregate experiment metrics: one struct with every number a Table 1
//! cell group needs.

use pta_core::PointsToResult;
use pta_ir::Program;

use crate::casts::may_fail_casts;
use crate::devirt::poly_virtual_calls;

/// All precision and (platform-independent) performance metrics of the
/// paper's Table 1 for one `(program, analysis)` run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExperimentMetrics {
    /// "avg objs per var": average context-insensitive points-to set size.
    pub avg_var_points_to: f64,
    /// Median context-insensitive points-to set size (the paper notes this
    /// is 1 across the board).
    pub median_var_points_to: usize,
    /// "edges": context-insensitive call-graph edges.
    pub call_graph_edges: usize,
    /// Reachable methods (Table 1's "over ~N meths" reference count).
    pub reachable_methods: usize,
    /// "poly v-calls": reachable virtual call sites with ≥ 2 targets.
    pub poly_virtual_calls: usize,
    /// Total reachable virtual call sites (the "of ~N" reference).
    pub reachable_virtual_calls: usize,
    /// "may-fail casts": reachable casts not provably safe.
    pub may_fail_casts: usize,
    /// Total reachable casts (the "of ~N" reference).
    pub reachable_casts: usize,
    /// "sensitive var-points-to": context-sensitive tuple count, the
    /// paper's main internal complexity metric.
    pub ctx_var_points_to: u64,
    /// Context-sensitive call-graph edges.
    pub ctx_call_graph_edges: u64,
    /// Distinct calling contexts created.
    pub contexts: usize,
    /// Distinct heap contexts created.
    pub heap_contexts: usize,
    /// Exception allocation sites that may escape the entry points
    /// uncaught (the exception-analysis extension's headline number).
    pub uncaught_exception_sites: usize,
}

/// Computes every metric for one analysis run.
pub fn precision_metrics(program: &Program, result: &PointsToResult) -> ExperimentMetrics {
    let (poly, reachable_vcalls) = poly_virtual_calls(program, result);
    let (failing, reachable_casts) = may_fail_casts(program, result);
    ExperimentMetrics {
        avg_var_points_to: result.average_points_to_size(),
        median_var_points_to: result.median_points_to_size(),
        call_graph_edges: result.call_graph_edge_count(),
        reachable_methods: result.reachable_method_count(),
        poly_virtual_calls: poly.len(),
        reachable_virtual_calls: reachable_vcalls,
        may_fail_casts: failing.len(),
        reachable_casts,
        ctx_var_points_to: result.ctx_var_points_to_count(),
        ctx_call_graph_edges: result.ctx_call_graph_edge_count(),
        contexts: result.context_count(),
        heap_contexts: result.heap_context_count(),
        uncaught_exception_sites: result.uncaught_exceptions().len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pta_core::{Analysis, AnalysisSession};
    use pta_lang::parse_program;

    const SOURCE: &str = r#"
        class Object {}
        class A : Object { method m() {} }
        class B : A { method m() {} }
        class Main : Object {
            static pick(x, y) { return x; return y; }
            static main() {
                a = new A;
                bb = new B;
                p = Main.pick(a, bb);
                p.m();
                c = (B) p;
            }
        }
        entry Main.main;
    "#;

    #[test]
    fn metrics_are_internally_consistent() {
        let p = parse_program(SOURCE).unwrap();
        let r = AnalysisSession::open(p.clone())
            .policy(Analysis::Insens)
            .solve();
        let m = precision_metrics(&p, &r);
        assert_eq!(m.reachable_methods, 4); // main, pick, A.m, B.m
        assert_eq!(m.reachable_virtual_calls, 1);
        assert_eq!(m.poly_virtual_calls, 1); // p.m() sees A.m and B.m
        assert_eq!(m.reachable_casts, 1);
        assert_eq!(m.may_fail_casts, 1); // p may be an A
        assert!(m.avg_var_points_to >= 1.0);
        assert!(m.ctx_var_points_to > 0);
        assert_eq!(m.median_var_points_to, 1);
        // Call graph: main->pick, p.m()->{A.m, B.m}.
        assert_eq!(m.call_graph_edges, 3);
        assert_eq!(m.contexts, 1); // insens
        assert_eq!(m.heap_contexts, 1);
    }

    #[test]
    fn more_context_means_no_worse_precision_metrics() {
        let p = parse_program(SOURCE).unwrap();
        let insens = precision_metrics(
            &p,
            &AnalysisSession::open(p.clone())
                .policy(Analysis::Insens)
                .solve(),
        );
        let obj = precision_metrics(
            &p,
            &AnalysisSession::open(p.clone())
                .policy(Analysis::SAOneObj)
                .solve(),
        );
        assert!(obj.may_fail_casts <= insens.may_fail_casts);
        assert!(obj.poly_virtual_calls <= insens.poly_virtual_calls);
        assert!(obj.call_graph_edges <= insens.call_graph_edges);
        assert!(obj.avg_var_points_to <= insens.avg_var_points_to);
    }
}
