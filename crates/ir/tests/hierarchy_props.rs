//! Property tests for the class hierarchy: the Euler-tour subtype test and
//! the dispatch tables must agree with naive reference implementations on
//! random class forests.

use proptest::prelude::*;

use pta_ir::{Program, ProgramBuilder, TypeId};

/// Builds a random single-inheritance forest: class `i`'s parent is a
/// uniformly random earlier class (or a root). Each class declares method
/// `m` with probability ~1/2 and a `probe` method per class for dispatch
/// variety.
fn build_forest(parents: &[Option<usize>], declares: &[bool]) -> (Program, Vec<TypeId>) {
    let mut b = ProgramBuilder::new();
    let mut types = Vec::new();
    for (i, parent) in parents.iter().enumerate() {
        let p = parent.map(|pi| types[pi]);
        let ty = b.class(&format!("C{i}"), p);
        types.push(ty);
        if declares[i] {
            let _ = b.method(ty, "m", &[], false);
        }
    }
    let main = b.method(types[0], "main", &[], true);
    b.entry_point(main);
    (b.finish().unwrap(), types)
}

/// Reference subtype check: walk the parent chain.
fn naive_subtype(parents: &[Option<usize>], mut sub: usize, sup: usize) -> bool {
    loop {
        if sub == sup {
            return true;
        }
        match parents[sub] {
            Some(p) => sub = p,
            None => return false,
        }
    }
}

/// Reference lookup: nearest ancestor (inclusive) declaring `m`.
fn naive_lookup(parents: &[Option<usize>], declares: &[bool], mut ty: usize) -> Option<usize> {
    loop {
        if declares[ty] {
            return Some(ty);
        }
        match parents[ty] {
            Some(p) => ty = p,
            None => return None,
        }
    }
}

fn forest_strategy() -> impl Strategy<Value = (Vec<Option<usize>>, Vec<bool>)> {
    (2usize..24).prop_flat_map(|n| {
        let parents: Vec<BoxedStrategy<Option<usize>>> = (0..n)
            .map(|i| {
                if i == 0 {
                    Just(None).boxed()
                } else {
                    prop_oneof![
                        1 => Just(None),
                        4 => (0..i).prop_map(Some),
                    ]
                    .boxed()
                }
            })
            .collect();
        (parents, proptest::collection::vec(any::<bool>(), n))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn subtype_matches_parent_chain_walk((parents, declares) in forest_strategy()) {
        let (p, types) = build_forest(&parents, &declares);
        for (i, &ti) in types.iter().enumerate() {
            for (j, &tj) in types.iter().enumerate() {
                prop_assert_eq!(
                    p.is_subtype(ti, tj),
                    naive_subtype(&parents, i, j),
                    "subtype(C{}, C{})", i, j
                );
            }
        }
    }

    #[test]
    fn dispatch_matches_ancestor_walk((parents, declares) in forest_strategy()) {
        let (p, types) = build_forest(&parents, &declares);
        // Find the interned signature for "m"/0 by looking at any declared
        // method; if none declares m, every lookup must be None.
        let sig = p
            .methods()
            .find(|&m| p.method_name(m) == "m")
            .map(|m| p.method_sig(m));
        for (i, &ti) in types.iter().enumerate() {
            let expected = naive_lookup(&parents, &declares, i);
            match sig {
                None => prop_assert!(expected.is_none()),
                Some(sig) => {
                    let got = p.lookup(ti, sig).map(|m| p.method_declaring(m));
                    prop_assert_eq!(
                        got,
                        expected.map(|e| types[e]),
                        "lookup on C{}", i
                    );
                }
            }
        }
    }

    #[test]
    fn subtypes_listing_agrees_with_subtype_test((parents, declares) in forest_strategy()) {
        let (p, types) = build_forest(&parents, &declares);
        for &t in &types {
            let listed = p.hierarchy().subtypes(t);
            for &u in &types {
                prop_assert_eq!(listed.contains(&u), p.is_subtype(u, t));
            }
        }
    }
}

mod interp_props {
    use super::*;
    use pta_ir::{InterpConfig, Interpreter};
    use pta_workload::{generate, WorkloadConfig};

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(10))]

        /// The interpreter is deterministic: same program, same facts.
        #[test]
        fn interpreter_is_deterministic(seed in 0u64..5_000) {
            let p = generate(&WorkloadConfig::tiny(seed));
            let run = || {
                let f = Interpreter::new(&p, InterpConfig::default()).run();
                let mut v: Vec<_> = f.var_points_to.iter().copied().collect();
                v.sort();
                let mut c: Vec<_> = f.call_edges.iter().copied().collect();
                c.sort();
                (v, c, f.truncated)
            };
            prop_assert_eq!(run(), run());
        }

        /// A run that did not hit its budget is the full execution: any
        /// larger budget observes exactly the same facts. (With exceptions
        /// in the language, *truncated* runs are not prefix-comparable — a
        /// callee cut off before its `throw` lets the caller continue — so
        /// the guarantee only holds for complete runs; each truncated run
        /// is still a valid execution covered by the soundness tests.)
        #[test]
        fn untruncated_runs_are_budget_independent(seed in 0u64..5_000) {
            let p = generate(&WorkloadConfig::tiny(seed));
            let small = Interpreter::new(&p, InterpConfig { max_steps: 2_000, max_depth: 16 }).run();
            prop_assume!(!small.truncated);
            let big = Interpreter::new(&p, InterpConfig { max_steps: 100_000, max_depth: 64 }).run();
            prop_assert_eq!(&small.var_points_to, &big.var_points_to);
            prop_assert_eq!(&small.call_edges, &big.call_edges);
            prop_assert_eq!(&small.uncaught, &big.uncaught);
        }
    }
}
