//! Randomized property tests for the class hierarchy: the Euler-tour
//! subtype test and the dispatch tables must agree with naive reference
//! implementations on random class forests. Deterministic seeds keep the
//! suite reproducible without an external property-testing framework.

use pta_ir::rng::Rng;
use pta_ir::{Program, ProgramBuilder, TypeId};

/// Builds a random single-inheritance forest shape: class `i`'s parent is a
/// uniformly random earlier class (or a root), and each class declares
/// method `m` with probability ~1/2.
fn random_forest(rng: &mut Rng) -> (Vec<Option<usize>>, Vec<bool>) {
    let n = rng.gen_range(2..24usize);
    let mut parents = Vec::with_capacity(n);
    let mut declares = Vec::with_capacity(n);
    for i in 0..n {
        let parent = if i == 0 || rng.gen_bool(0.2) {
            None
        } else {
            Some(rng.gen_range(0..i))
        };
        parents.push(parent);
        declares.push(rng.gen_bool(0.5));
    }
    (parents, declares)
}

fn build_forest(parents: &[Option<usize>], declares: &[bool]) -> (Program, Vec<TypeId>) {
    let mut b = ProgramBuilder::new();
    let mut types = Vec::new();
    for (i, parent) in parents.iter().enumerate() {
        let p = parent.map(|pi| types[pi]);
        let ty = b.class(&format!("C{i}"), p);
        types.push(ty);
        if declares[i] {
            let _ = b.method(ty, "m", &[], false);
        }
    }
    let main = b.method(types[0], "main", &[], true);
    b.entry_point(main);
    (b.finish().unwrap(), types)
}

/// Reference subtype check: walk the parent chain.
fn naive_subtype(parents: &[Option<usize>], mut sub: usize, sup: usize) -> bool {
    loop {
        if sub == sup {
            return true;
        }
        match parents[sub] {
            Some(p) => sub = p,
            None => return false,
        }
    }
}

/// Reference lookup: nearest ancestor (inclusive) declaring `m`.
fn naive_lookup(parents: &[Option<usize>], declares: &[bool], mut ty: usize) -> Option<usize> {
    loop {
        if declares[ty] {
            return Some(ty);
        }
        match parents[ty] {
            Some(p) => ty = p,
            None => return None,
        }
    }
}

#[test]
fn subtype_matches_parent_chain_walk() {
    let mut rng = Rng::seed_from_u64(0x5b7);
    for _ in 0..64 {
        let (parents, declares) = random_forest(&mut rng);
        let (p, types) = build_forest(&parents, &declares);
        for (i, &ti) in types.iter().enumerate() {
            for (j, &tj) in types.iter().enumerate() {
                assert_eq!(
                    p.is_subtype(ti, tj),
                    naive_subtype(&parents, i, j),
                    "subtype(C{i}, C{j}) on {parents:?}"
                );
            }
        }
    }
}

#[test]
fn dispatch_matches_ancestor_walk() {
    let mut rng = Rng::seed_from_u64(0xd15);
    for _ in 0..64 {
        let (parents, declares) = random_forest(&mut rng);
        let (p, types) = build_forest(&parents, &declares);
        // Find the interned signature for "m"/0 by looking at any declared
        // method; if none declares m, every lookup must be None.
        let sig = p
            .methods()
            .find(|&m| p.method_name(m) == "m")
            .map(|m| p.method_sig(m));
        for (i, &ti) in types.iter().enumerate() {
            let expected = naive_lookup(&parents, &declares, i);
            match sig {
                None => assert!(expected.is_none()),
                Some(sig) => {
                    let got = p.lookup(ti, sig).map(|m| p.method_declaring(m));
                    assert_eq!(
                        got,
                        expected.map(|e| types[e]),
                        "lookup on C{i} in {parents:?}"
                    );
                }
            }
        }
    }
}

#[test]
fn subtypes_listing_agrees_with_subtype_test() {
    let mut rng = Rng::seed_from_u64(0x11f);
    for _ in 0..64 {
        let (parents, declares) = random_forest(&mut rng);
        let (p, types) = build_forest(&parents, &declares);
        for &t in &types {
            let listed = p.hierarchy().subtypes(t);
            for &u in &types {
                assert_eq!(listed.contains(&u), p.is_subtype(u, t));
            }
        }
    }
}

mod interp_props {
    use pta_ir::{InterpConfig, Interpreter};
    use pta_workload::{generate, WorkloadConfig};

    /// The interpreter is deterministic: same program, same facts.
    #[test]
    fn interpreter_is_deterministic() {
        for seed in [0, 17, 481, 1999, 2600, 3001, 3777, 4104, 4650, 4999] {
            let p = generate(&WorkloadConfig::tiny(seed));
            let run = || {
                let f = Interpreter::new(&p, InterpConfig::default()).run();
                let mut v: Vec<_> = f.var_points_to.iter().copied().collect();
                v.sort();
                let mut c: Vec<_> = f.call_edges.iter().copied().collect();
                c.sort();
                (v, c, f.truncated)
            };
            assert_eq!(run(), run(), "seed {seed}");
        }
    }

    /// A run that did not hit its budget is the full execution: any
    /// larger budget observes exactly the same facts. (With exceptions
    /// in the language, *truncated* runs are not prefix-comparable — a
    /// callee cut off before its `throw` lets the caller continue — so
    /// the guarantee only holds for complete runs; each truncated run
    /// is still a valid execution covered by the soundness tests.)
    #[test]
    fn untruncated_runs_are_budget_independent() {
        for seed in 0..10u64 {
            let p = generate(&WorkloadConfig::tiny(seed));
            let small = Interpreter::new(
                &p,
                InterpConfig {
                    max_steps: 2_000,
                    max_depth: 16,
                },
            )
            .run();
            if small.truncated {
                continue;
            }
            let big = Interpreter::new(
                &p,
                InterpConfig {
                    max_steps: 100_000,
                    max_depth: 64,
                },
            )
            .run();
            assert_eq!(small.var_points_to, big.var_points_to, "seed {seed}");
            assert_eq!(small.call_edges, big.call_edges, "seed {seed}");
            assert_eq!(small.uncaught, big.uncaught, "seed {seed}");
        }
    }
}
