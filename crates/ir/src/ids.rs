//! Dense, newtyped ID spaces for the analysis domain of Figure 1.
//!
//! Every entity the analysis manipulates — variables, allocation sites,
//! methods, signatures, fields, invocation sites and class types — is
//! interned into a dense `u32` space. This mirrors Doop's finite-domain
//! encoding on the LogicBlox engine and is what makes the solvers
//! allocation-free on their hot paths: facts are tuples of `u32`s.

use std::fmt;

macro_rules! define_id {
    ($(#[$meta:meta])* $name:ident, $prefix:literal) => {
        $(#[$meta])*
        #[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        pub struct $name(u32);

        impl $name {
            /// Wraps a raw `u32` as an ID.
            #[inline]
            pub const fn from_raw(raw: u32) -> Self {
                Self(raw)
            }

            /// Returns the raw `u32` behind this ID.
            #[inline]
            pub const fn raw(self) -> u32 {
                self.0
            }

            /// Returns this ID as a `usize` index into the owning arena.
            #[inline]
            pub const fn index(self) -> usize {
                self.0 as usize
            }

            /// Creates an ID from an arena index.
            ///
            /// # Panics
            ///
            /// Panics if `index` does not fit in a `u32`.
            #[inline]
            pub fn from_index(index: usize) -> Self {
                assert!(index <= u32::MAX as usize, "id space overflow");
                Self(index as u32)
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

define_id!(
    /// A program variable (`V` in the paper's domain).
    ///
    /// Every local variable is declared in exactly one method, so a `VarId`
    /// implies its enclosing method (`Program::var_method`).
    VarId,
    "v"
);

define_id!(
    /// A heap abstraction, i.e. an allocation site (`H` in the paper).
    ///
    /// The paper "represent\[s\] heap objects as allocation sites throughout";
    /// a `HeapId` identifies one `new` instruction.
    HeapId,
    "h"
);

define_id!(
    /// A method (`M` in the paper).
    MethodId,
    "m"
);

define_id!(
    /// A method signature — name plus type signature (`S` in the paper).
    ///
    /// Virtual dispatch resolves a `SigId` against the dynamic type of the
    /// receiver object via `Lookup` ([`crate::Hierarchy::lookup`]).
    SigId,
    "s"
);

define_id!(
    /// An instance field (`F` in the paper).
    FieldId,
    "f"
);

define_id!(
    /// An instruction label used as an invocation site (`I` in the paper).
    ///
    /// Call-site-sensitive analyses use these as context elements.
    InvoId,
    "i"
);

define_id!(
    /// A class type (`T` in the paper).
    ///
    /// Type-sensitive analyses use the class *containing an allocation site*
    /// (the paper's `CA : H -> T` map) as a context element.
    TypeId,
    "t"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_raw() {
        let v = VarId::from_raw(42);
        assert_eq!(v.raw(), 42);
        assert_eq!(v.index(), 42);
        assert_eq!(VarId::from_index(42), v);
    }

    #[test]
    fn display_uses_prefix() {
        assert_eq!(VarId::from_raw(3).to_string(), "v3");
        assert_eq!(HeapId::from_raw(7).to_string(), "h7");
        assert_eq!(format!("{:?}", MethodId::from_raw(0)), "m0");
        assert_eq!(TypeId::from_raw(9).to_string(), "t9");
        assert_eq!(SigId::from_raw(1).to_string(), "s1");
        assert_eq!(FieldId::from_raw(2).to_string(), "f2");
        assert_eq!(InvoId::from_raw(4).to_string(), "i4");
    }

    #[test]
    fn ordering_follows_raw_value() {
        assert!(VarId::from_raw(1) < VarId::from_raw(2));
        assert_eq!(VarId::default(), VarId::from_raw(0));
    }

    #[test]
    #[should_panic(expected = "id space overflow")]
    fn from_index_overflow_panics() {
        let _ = VarId::from_index(u32::MAX as usize + 1);
    }
}
