//! Source locations for diagnostics.
//!
//! Programs built from `.jir` text carry a line/column per instruction and
//! per method declaration; programs built programmatically (the workload
//! generator, tests) simply leave everything at [`SrcLoc::UNKNOWN`]. The
//! lint subsystem threads these through to its diagnostics so a finding in
//! a `.jir` file points at real source text.

use std::fmt;

/// A 1-based line/column position in a source file. `line == 0` means the
/// position is unknown (programmatically built IR).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SrcLoc {
    /// 1-based source line; 0 when unknown.
    pub line: u32,
    /// 1-based source column; 0 when unknown.
    pub column: u32,
}

impl SrcLoc {
    /// The "no location" sentinel used by programmatically built IR.
    pub const UNKNOWN: SrcLoc = SrcLoc { line: 0, column: 0 };

    /// A known position.
    #[must_use]
    pub fn new(line: u32, column: u32) -> SrcLoc {
        SrcLoc { line, column }
    }

    /// `true` if this refers to actual source text.
    #[must_use]
    pub fn is_known(self) -> bool {
        self.line != 0
    }
}

impl fmt::Display for SrcLoc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_known() {
            write!(f, "{}:{}", self.line, self.column)
        } else {
            write!(f, "?:?")
        }
    }
}
