//! A concrete interpreter for the intermediate language.
//!
//! Points-to analysis is sound iff every points-to fact observable in *any*
//! concrete execution is included in the analysis result. This module
//! executes programs under the language's dynamic semantics (objects are
//! concrete instances tagged with their allocation site; virtual calls
//! dispatch on the receiver's dynamic class; casts throw — here: skip — on
//! incompatible types) and records the dynamic analogues of the analysis
//! relations: `(var, allocation-site)` bindings and `(invocation-site,
//! callee)` call edges.
//!
//! The soundness property tests in `pta-core` and the repository-level
//! integration tests run randomly generated programs through this
//! interpreter and assert that the dynamic facts are a subset of every
//! analysis's result.
//!
//! Execution is bounded by a step and a recursion budget; any *prefix* of an
//! execution yields valid dynamic facts, so truncation never invalidates the
//! subset check.

use crate::hash::{FxHashMap, FxHashSet};
use crate::ids::{FieldId, HeapId, InvoId, MethodId, VarId};
use crate::program::{Instr, Program};

/// Budgets for bounded concrete execution.
#[derive(Debug, Clone, Copy)]
pub struct InterpConfig {
    /// Maximum number of instructions executed across the whole run.
    pub max_steps: usize,
    /// Maximum call depth.
    pub max_depth: usize,
}

impl Default for InterpConfig {
    fn default() -> InterpConfig {
        InterpConfig {
            max_steps: 200_000,
            max_depth: 128,
        }
    }
}

/// Facts observed during concrete execution.
#[derive(Debug, Default, Clone)]
pub struct DynamicFacts {
    /// Every `(variable, allocation site)` binding that occurred.
    pub var_points_to: FxHashSet<(VarId, HeapId)>,
    /// Every `(invocation site, resolved callee)` edge taken.
    pub call_edges: FxHashSet<(InvoId, MethodId)>,
    /// Methods that were entered at least once.
    pub reachable: FxHashSet<MethodId>,
    /// Cast instructions (identified by `(method, instruction index)`) that
    /// failed at least once at run time.
    pub failed_casts: FxHashSet<(MethodId, usize)>,
    /// Allocation sites of exception objects that escaped the entry points
    /// uncaught.
    pub uncaught: FxHashSet<HeapId>,
    /// `true` if execution exhausted a budget (the facts are then a prefix
    /// of the full execution, which is still sound to compare against).
    pub truncated: bool,
}

/// Outcome of executing one method: normal return or a thrown object.
enum Flow {
    Normal(Option<usize>),
    Thrown(usize),
}

/// A concrete object: its allocation site plus its field store.
#[derive(Debug, Default)]
struct ConcreteObject {
    site: HeapId,
    fields: FxHashMap<FieldId, usize>,
}

/// The interpreter. Create one per program and call [`Interpreter::run`].
#[derive(Debug)]
pub struct Interpreter<'p> {
    program: &'p Program,
    config: InterpConfig,
    heap: Vec<ConcreteObject>,
    static_fields: FxHashMap<FieldId, usize>,
    steps: usize,
    facts: DynamicFacts,
}

impl<'p> Interpreter<'p> {
    /// Creates an interpreter for `program` with the given budgets.
    pub fn new(program: &'p Program, config: InterpConfig) -> Interpreter<'p> {
        Interpreter {
            program,
            config,
            heap: Vec::new(),
            static_fields: FxHashMap::default(),
            steps: 0,
            facts: DynamicFacts::default(),
        }
    }

    /// Executes every entry point in order and returns the observed facts.
    pub fn run(mut self) -> DynamicFacts {
        for &entry in self.program.entry_points() {
            self.facts.reachable.insert(entry);
            if let Flow::Thrown(obj) = self.call(entry, None, &[], 0) {
                let site = self.heap[obj].site;
                self.facts.uncaught.insert(site);
            }
        }
        self.facts
    }

    /// Delivers a thrown object to `meth`'s catch clauses (first match, as
    /// in Java); returns `true` if caught. The analysis lets *any* matching
    /// clause catch, so this concrete choice is always covered.
    fn deliver_catch(
        &mut self,
        meth: MethodId,
        obj: usize,
        env: &mut FxHashMap<VarId, usize>,
    ) -> bool {
        let dynamic = self.program.heap_type(self.heap[obj].site);
        for i in 0..self.program.catches(meth).len() {
            let (ty, binder) = self.program.catches(meth)[i];
            if self.program.is_subtype(dynamic, ty) {
                env.insert(binder, obj);
                self.record(binder, obj);
                return true;
            }
        }
        false
    }

    /// Executes `meth`; returns the value of its return variable or the
    /// thrown object escaping it.
    fn call(&mut self, meth: MethodId, this: Option<usize>, args: &[usize], depth: usize) -> Flow {
        if depth >= self.config.max_depth {
            self.facts.truncated = true;
            return Flow::Normal(None);
        }
        let mut env: FxHashMap<VarId, usize> = FxHashMap::default();
        if let (Some(this_var), Some(this_obj)) = (self.program.this_var(meth), this) {
            env.insert(this_var, this_obj);
            self.record(this_var, this_obj);
        }
        for (&formal, &arg) in self.program.formals(meth).iter().zip(args.iter()) {
            env.insert(formal, arg);
            self.record(formal, arg);
        }
        let instrs = self.program.instrs(meth);
        for (idx, instr) in instrs.iter().enumerate() {
            if self.steps >= self.config.max_steps {
                self.facts.truncated = true;
                break;
            }
            self.steps += 1;
            match *instr {
                Instr::Alloc { var, heap } => {
                    let obj = self.heap.len();
                    self.heap.push(ConcreteObject {
                        site: heap,
                        fields: FxHashMap::default(),
                    });
                    env.insert(var, obj);
                    self.record(var, obj);
                }
                Instr::Move { to, from } => {
                    if let Some(&obj) = env.get(&from) {
                        env.insert(to, obj);
                        self.record(to, obj);
                    }
                }
                Instr::Cast { to, from, ty } => {
                    if let Some(&obj) = env.get(&from) {
                        let dynamic = self.heap[obj].site;
                        if self.program.is_subtype(self.program.heap_type(dynamic), ty) {
                            env.insert(to, obj);
                            self.record(to, obj);
                        } else {
                            self.facts.failed_casts.insert((meth, idx));
                        }
                    }
                }
                Instr::Load { to, base, field } => {
                    if let Some(&b) = env.get(&base) {
                        if let Some(&obj) = self.heap[b].fields.get(&field) {
                            env.insert(to, obj);
                            self.record(to, obj);
                        }
                    }
                }
                Instr::Store { base, field, from } => {
                    if let (Some(&b), Some(&v)) = (env.get(&base), env.get(&from)) {
                        self.heap[b].fields.insert(field, v);
                    }
                }
                Instr::SLoad { to, field } => {
                    if let Some(&obj) = self.static_fields.get(&field) {
                        env.insert(to, obj);
                        self.record(to, obj);
                    }
                }
                Instr::SStore { field, from } => {
                    if let Some(&v) = env.get(&from) {
                        self.static_fields.insert(field, v);
                    }
                }
                Instr::Throw { var } => {
                    if let Some(&obj) = env.get(&var) {
                        if !self.deliver_catch(meth, obj, &mut env) {
                            return Flow::Thrown(obj);
                        }
                    }
                }
                Instr::VCall { base, sig, invo } => {
                    if let Some(&recv) = env.get(&base) {
                        let dynamic = self.program.heap_type(self.heap[recv].site);
                        if let Some(target) = self.program.lookup(dynamic, sig) {
                            self.facts.call_edges.insert((invo, target));
                            self.facts.reachable.insert(target);
                            let arg_objs: Vec<usize> = self
                                .program
                                .actual_args(invo)
                                .iter()
                                .filter_map(|a| env.get(a).copied())
                                .collect();
                            // Skip the call if any argument is unbound: a
                            // concrete execution would pass null, which
                            // contributes no points-to facts anyway, but
                            // positional args must line up; in generated
                            // programs arguments are always initialized.
                            if arg_objs.len() == self.program.actual_args(invo).len() {
                                match self.call(target, Some(recv), &arg_objs, depth + 1) {
                                    Flow::Normal(ret) => {
                                        if let (Some(ret_var), Some(obj)) =
                                            (self.program.actual_return(invo), ret)
                                        {
                                            env.insert(ret_var, obj);
                                            self.record(ret_var, obj);
                                        }
                                    }
                                    Flow::Thrown(obj) => {
                                        if !self.deliver_catch(meth, obj, &mut env) {
                                            return Flow::Thrown(obj);
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
                Instr::SCall { target, invo } => {
                    self.facts.call_edges.insert((invo, target));
                    self.facts.reachable.insert(target);
                    let arg_objs: Vec<usize> = self
                        .program
                        .actual_args(invo)
                        .iter()
                        .filter_map(|a| env.get(a).copied())
                        .collect();
                    if arg_objs.len() == self.program.actual_args(invo).len() {
                        match self.call(target, None, &arg_objs, depth + 1) {
                            Flow::Normal(ret) => {
                                if let (Some(ret_var), Some(obj)) =
                                    (self.program.actual_return(invo), ret)
                                {
                                    env.insert(ret_var, obj);
                                    self.record(ret_var, obj);
                                }
                            }
                            Flow::Thrown(obj) => {
                                if !self.deliver_catch(meth, obj, &mut env) {
                                    return Flow::Thrown(obj);
                                }
                            }
                        }
                    }
                }
            }
        }
        Flow::Normal(
            self.program
                .formal_return(meth)
                .and_then(|r| env.get(&r).copied()),
        )
    }

    fn record(&mut self, var: VarId, obj: usize) {
        let site = self.heap[obj].site;
        self.facts.var_points_to.insert((var, site));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ProgramBuilder;

    /// The paper's §1 motivating example: two call sites of `foo` with
    /// different arguments.
    fn motivating_example() -> (Program, Vec<VarId>, Vec<HeapId>) {
        let mut b = ProgramBuilder::new();
        let object = b.class("Object", None);
        let c = b.class("C", Some(object));
        let client = b.class("Client", Some(object));
        let foo = b.method(c, "foo", &["o"], false);
        let o_formal = b.formals(foo)[0];
        let main = b.method(client, "main", &[], true);
        let c1 = b.var(main, "c1");
        let c2 = b.var(main, "c2");
        let obj1 = b.var(main, "obj1");
        let obj2 = b.var(main, "obj2");
        let h_c1 = b.alloc(main, c1, c, "new C /*1*/");
        let h_c2 = b.alloc(main, c2, c, "new C /*2*/");
        let h1 = b.alloc(main, obj1, object, "new Object /*1*/");
        let h2 = b.alloc(main, obj2, object, "new Object /*2*/");
        b.vcall(main, c1, "foo", &[obj1], None, "c1.foo(obj1)");
        b.vcall(main, c2, "foo", &[obj2], None, "c2.foo(obj2)");
        b.entry_point(main);
        let p = b.finish().unwrap();
        (p, vec![o_formal], vec![h_c1, h_c2, h1, h2])
    }

    #[test]
    fn virtual_dispatch_and_arguments_flow() {
        let (p, vars, heaps) = motivating_example();
        let facts = Interpreter::new(&p, InterpConfig::default()).run();
        let o = vars[0];
        // Both objects flow into foo's formal across the two calls.
        assert!(facts.var_points_to.contains(&(o, heaps[2])));
        assert!(facts.var_points_to.contains(&(o, heaps[3])));
        assert!(!facts.truncated);
        assert_eq!(facts.call_edges.len(), 2);
    }

    #[test]
    fn failing_cast_is_recorded_and_blocks_flow() {
        let mut b = ProgramBuilder::new();
        let object = b.class("Object", None);
        let a = b.class("A", Some(object));
        let bb = b.class("B", Some(object));
        let main = b.method(object, "main", &[], true);
        let x = b.var(main, "x");
        let y = b.var(main, "y");
        let h = b.alloc(main, x, a, "new A");
        b.cast(main, y, x, bb);
        b.entry_point(main);
        let p = b.finish().unwrap();
        let facts = Interpreter::new(&p, InterpConfig::default()).run();
        assert!(facts.failed_casts.contains(&(main, 1)));
        assert!(!facts.var_points_to.contains(&(y, h)));
    }

    #[test]
    fn field_store_then_load_flows() {
        let mut b = ProgramBuilder::new();
        let object = b.class("Object", None);
        let boxc = b.class("Box", Some(object));
        let f = b.field(boxc, "value");
        let main = b.method(object, "main", &[], true);
        let bx = b.var(main, "bx");
        let v = b.var(main, "v");
        let w = b.var(main, "w");
        b.alloc(main, bx, boxc, "new Box");
        let hv = b.alloc(main, v, object, "new Object");
        b.store(main, bx, f, v);
        b.load(main, w, bx, f);
        b.entry_point(main);
        let p = b.finish().unwrap();
        let facts = Interpreter::new(&p, InterpConfig::default()).run();
        assert!(facts.var_points_to.contains(&(w, hv)));
    }

    #[test]
    fn recursion_is_truncated_not_hung() {
        let mut b = ProgramBuilder::new();
        let object = b.class("Object", None);
        let c = b.class("C", Some(object));
        let rec = b.method(c, "rec", &[], true);
        b.scall(rec, rec, &[], None, "self call");
        let main = b.method(c, "main", &[], true);
        b.scall(main, rec, &[], None, "kick off");
        b.entry_point(main);
        let p = b.finish().unwrap();
        let facts = Interpreter::new(
            &p,
            InterpConfig {
                max_steps: 10_000,
                max_depth: 16,
            },
        )
        .run();
        assert!(facts.truncated);
        assert!(facts.reachable.contains(&rec));
    }

    #[test]
    fn static_call_returns_value() {
        let mut b = ProgramBuilder::new();
        let object = b.class("Object", None);
        let c = b.class("C", Some(object));
        let mk = b.method(c, "make", &[], true);
        let r = b.var(mk, "r");
        let h = b.alloc(mk, r, c, "new C in make");
        b.set_return(mk, r);
        let main = b.method(c, "main", &[], true);
        let out = b.var(main, "out");
        b.scall(main, mk, &[], Some(out), "out = make()");
        b.entry_point(main);
        let p = b.finish().unwrap();
        let facts = Interpreter::new(&p, InterpConfig::default()).run();
        assert!(facts.var_points_to.contains(&(out, h)));
    }
}

#[cfg(test)]
mod exception_tests {
    use super::*;
    use crate::ProgramBuilder;

    #[test]
    fn uncaught_throws_escape_to_the_entry() {
        let mut b = ProgramBuilder::new();
        let object = b.class("Object", None);
        let err = b.class("Err", Some(object));
        let main = b.method(object, "main", &[], true);
        let x = b.var(main, "x");
        let h = b.alloc(main, x, err, "boom");
        b.throw(main, x);
        b.entry_point(main);
        let p = b.finish().unwrap();
        let facts = Interpreter::new(&p, InterpConfig::default()).run();
        assert_eq!(facts.uncaught.len(), 1);
        assert!(facts.uncaught.contains(&h));
    }

    #[test]
    fn matching_catch_binds_and_clears() {
        let mut b = ProgramBuilder::new();
        let object = b.class("Object", None);
        let err = b.class("Err", Some(object));
        let thrower = b.method(object, "boom", &[], true);
        let tv = b.var(thrower, "t");
        let h = b.alloc(thrower, tv, err, "the error");
        b.throw(thrower, tv);
        let main = b.method(object, "main", &[], true);
        let binder = b.catch_clause(main, err, "caught");
        let after = b.var(main, "after");
        b.scall(main, thrower, &[], None, "boom()");
        b.alloc(main, after, object, "after the catch");
        b.entry_point(main);
        let p = b.finish().unwrap();
        let facts = Interpreter::new(&p, InterpConfig::default()).run();
        assert!(facts.var_points_to.contains(&(binder, h)), "catch binds");
        assert!(facts.uncaught.is_empty(), "nothing escapes");
        // Execution continued after the handled call.
        assert!(facts.var_points_to.iter().any(|&(v, _)| v == after));
    }

    #[test]
    fn non_matching_catch_propagates() {
        let mut b = ProgramBuilder::new();
        let object = b.class("Object", None);
        let err_a = b.class("ErrA", Some(object));
        let err_b = b.class("ErrB", Some(object));
        let thrower = b.method(object, "boom", &[], true);
        let tv = b.var(thrower, "t");
        let h = b.alloc(thrower, tv, err_a, "an ErrA");
        b.throw(thrower, tv);
        let main = b.method(object, "main", &[], true);
        let binder = b.catch_clause(main, err_b, "caught"); // wrong type
        b.scall(main, thrower, &[], None, "boom()");
        b.entry_point(main);
        let p = b.finish().unwrap();
        let facts = Interpreter::new(&p, InterpConfig::default()).run();
        assert!(!facts.var_points_to.iter().any(|&(v, _)| v == binder));
        assert!(facts.uncaught.contains(&h));
    }

    #[test]
    fn static_cell_roundtrip() {
        let mut b = ProgramBuilder::new();
        let object = b.class("Object", None);
        let reg = b.class("Reg", Some(object));
        let cell = b.static_field(reg, "cell");
        let main = b.method(reg, "main", &[], true);
        let v = b.var(main, "v");
        let got = b.var(main, "got");
        let h = b.alloc(main, v, object, "value");
        b.sstore(main, cell, v);
        b.sload(main, got, cell);
        b.entry_point(main);
        let p = b.finish().unwrap();
        let facts = Interpreter::new(&p, InterpConfig::default()).run();
        assert!(facts.var_points_to.contains(&(got, h)));
    }
}
