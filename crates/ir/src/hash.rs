//! A fast, non-cryptographic hasher for small integer-keyed maps.
//!
//! The solvers spend most of their time probing hash tables keyed by one to
//! five `u32`s (points-to tuples, context tuples, dispatch keys). The
//! standard library's SipHash is designed for HashDoS resistance, which this
//! workload does not need; this module provides a multiply-rotate hasher in
//! the spirit of rustc's `FxHasher`, roughly 3-5x faster on these keys.
//!
//! All analysis crates use the [`FxHashMap`] / [`FxHashSet`] aliases so the
//! hashing strategy can be swapped in one place.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// A `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// A fast multiply-rotate hasher for small keys.
///
/// Not resistant to adversarial inputs; suitable only for internal maps over
/// interned IDs, which is how the analysis uses it.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_keys_distinct_hashes() {
        // Not a guarantee in general, but these tiny keys must not collide.
        let mut seen = HashSet::new();
        for key in 0u32..10_000 {
            let mut h = FxHasher::default();
            h.write_u32(key);
            assert!(seen.insert(h.finish()), "collision at {key}");
        }
    }

    #[test]
    fn map_roundtrip() {
        let mut map: FxHashMap<(u32, u32), u32> = FxHashMap::default();
        for i in 0..1000 {
            map.insert((i, i + 1), i * 2);
        }
        for i in 0..1000 {
            assert_eq!(map.get(&(i, i + 1)), Some(&(i * 2)));
        }
        assert_eq!(map.len(), 1000);
    }

    #[test]
    fn hash_is_deterministic() {
        let mut a = FxHasher::default();
        let mut b = FxHasher::default();
        a.write(b"hybrid context sensitivity");
        b.write(b"hybrid context sensitivity");
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn write_tail_bytes_differ_from_padded() {
        let mut a = FxHasher::default();
        a.write(&[1, 2, 3]);
        let mut b = FxHasher::default();
        b.write(&[1, 2, 3, 0, 0]);
        // Different lengths with same logical prefix should (here) differ
        // because chunking differs; this guards against the degenerate
        // implementation that ignores the remainder.
        assert_ne!(a.finish(), 0);
        assert_ne!(b.finish(), 0);
    }
}
