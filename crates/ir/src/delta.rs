//! Program edits: [`ProgramDelta`] describes a batch of changes against a
//! frozen [`Program`], and [`Program::apply_delta`] produces the edited
//! program without disturbing any existing ID.
//!
//! A delta is built against a specific *base* program (captured as the
//! sizes of every ID space). New classes, signatures, fields, methods,
//! variables, allocation sites and invocation sites are appended to the
//! base arenas, so **every ID valid in the base program remains valid —
//! and means the same thing — in the edited program**. This append-only
//! discipline is what lets a long-lived analysis session keep its
//! interned keys across edits (see `pta-core`'s incremental solver).
//!
//! Removals are deliberately conservative:
//!
//! - [`ProgramDelta::remove_instr`] removes one instruction from a base
//!   method's body (by index into the *base* body). Orphaned invocation
//!   and allocation sites stay in their arenas — they are simply no
//!   longer referenced, which validation permits.
//! - [`ProgramDelta::clear_method`] empties a method's body (and drops it
//!   from the entry points). The method itself stays declared, so
//!   dispatch tables — `Lookup` — are unchanged: calls to it still
//!   resolve, they just reach an empty body.
//!
//! Entire methods are never deleted from the arena and added methods on
//! *existing* classes may override inherited signatures, which changes
//! `Lookup` for old receivers; `pta-core` detects that case and falls
//! back to a full re-solve (the hierarchy is rebuilt here either way).

use crate::hash::FxHashMap;
use crate::hierarchy::Hierarchy;
use crate::ids::{FieldId, HeapId, InvoId, MethodId, SigId, TypeId, VarId};
use crate::program::{
    FieldInfo, HeapInfo, Instr, InvoInfo, InvoKind, MethodInfo, Program, SigInfo, TypeInfo, VarInfo,
};
use crate::srcloc::SrcLoc;
use crate::validate::{
    check_catch_binder, check_entry_point, check_instr, EntityView, ValidateError,
};

/// Why a delta could not be applied.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeltaError {
    /// The delta was built against a program with different ID-space
    /// sizes than the one it is being applied to.
    StaleBase,
    /// `remove_instr` named an index outside the method's base body.
    BadRemoveIndex {
        /// The method whose body was edited.
        method: MethodId,
        /// The offending instruction index.
        index: usize,
        /// The base body length.
        body_len: usize,
    },
    /// The edited program failed well-formedness validation.
    Invalid(ValidateError),
}

impl std::fmt::Display for DeltaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeltaError::StaleBase => {
                write!(f, "delta was built against a different base program")
            }
            DeltaError::BadRemoveIndex {
                method,
                index,
                body_len,
            } => write!(
                f,
                "remove_instr index {index} out of range for {method} (body has {body_len} instructions)"
            ),
            DeltaError::Invalid(e) => write!(f, "edited program is ill-formed: {e}"),
        }
    }
}

impl std::error::Error for DeltaError {}

impl From<ValidateError> for DeltaError {
    fn from(e: ValidateError) -> DeltaError {
        DeltaError::Invalid(e)
    }
}

/// Sizes of every ID space of the base program; the compatibility stamp
/// checked by [`Program::apply_delta`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct BaseCounts {
    types: usize,
    fields: usize,
    sigs: usize,
    methods: usize,
    vars: usize,
    heaps: usize,
    invos: usize,
}

impl BaseCounts {
    fn of(p: &Program) -> BaseCounts {
        BaseCounts {
            types: p.type_count(),
            fields: p.field_count(),
            sigs: p.sig_count(),
            methods: p.method_count(),
            vars: p.var_count(),
            heaps: p.heap_count(),
            invos: p.invo_count(),
        }
    }
}

/// A batch of edits against a base [`Program`].
///
/// Build one with [`ProgramDelta::new`], record edits with the same
/// vocabulary as [`crate::ProgramBuilder`] (new entities get provisional
/// IDs that continue the base numbering), then apply it with
/// [`Program::apply_delta`]. A delta may be applied to any program with
/// the same ID-space sizes as its base — in practice, the program it was
/// built from.
///
/// # Example
///
/// ```
/// use pta_ir::{ProgramBuilder, ProgramDelta};
///
/// let mut b = ProgramBuilder::new();
/// let object = b.class("Object", None);
/// let c = b.class("C", Some(object));
/// let main = b.method(c, "main", &[], true);
/// let v = b.var(main, "v");
/// b.alloc(main, v, c, "new C");
/// b.entry_point(main);
/// let base = b.finish()?;
///
/// let mut d = ProgramDelta::new(&base);
/// let w = d.var(main, "w");
/// d.move_(main, w, v);
/// let edited = base.apply_delta(&d).unwrap();
/// assert_eq!(edited.var_count(), base.var_count() + 1);
/// assert_eq!(edited.instrs(main).len(), 2);
/// # Ok::<(), pta_ir::ValidateError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ProgramDelta {
    base: BaseCounts,
    // Appended entities (IDs continue the base numbering).
    new_types: Vec<TypeInfo>,
    new_fields: Vec<FieldInfo>,
    new_sigs: Vec<SigInfo>,
    new_methods: Vec<MethodInfo>,
    new_vars: Vec<VarInfo>,
    new_heaps: Vec<HeapInfo>,
    new_invos: Vec<InvoInfo>,
    // Body edits, in recording order.
    appends: Vec<(MethodId, Instr)>,
    removals: Vec<(MethodId, usize)>,
    cleared: Vec<MethodId>,
    new_catches: Vec<(MethodId, TypeId, VarId)>,
    add_entries: Vec<MethodId>,
    remove_entries: Vec<MethodId>,
    // Base-program snapshots needed for interning against the base.
    base_type_names: FxHashMap<String, TypeId>,
    base_sig_keys: FxHashMap<(String, usize), SigId>,
}

impl ProgramDelta {
    /// Starts an empty delta against `base`.
    #[must_use]
    pub fn new(base: &Program) -> ProgramDelta {
        let mut base_type_names = FxHashMap::default();
        for t in base.types() {
            base_type_names.insert(base.type_name(t).to_owned(), t);
        }
        let mut base_sig_keys = FxHashMap::default();
        for i in 0..base.sig_count() {
            let s = SigId::from_index(i);
            base_sig_keys.insert((base.sig_name(s).to_owned(), base.sig_arity(s)), s);
        }
        ProgramDelta {
            base: BaseCounts::of(base),
            new_types: Vec::new(),
            new_fields: Vec::new(),
            new_sigs: Vec::new(),
            new_methods: Vec::new(),
            new_vars: Vec::new(),
            new_heaps: Vec::new(),
            new_invos: Vec::new(),
            appends: Vec::new(),
            removals: Vec::new(),
            cleared: Vec::new(),
            new_catches: Vec::new(),
            add_entries: Vec::new(),
            remove_entries: Vec::new(),
            base_type_names,
            base_sig_keys,
        }
    }

    /// `true` if the delta records no edits at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.new_types.is_empty()
            && self.new_fields.is_empty()
            && self.new_sigs.is_empty()
            && self.new_methods.is_empty()
            && self.new_vars.is_empty()
            && self.new_heaps.is_empty()
            && self.new_invos.is_empty()
            && self.appends.is_empty()
            && self.removals.is_empty()
            && self.cleared.is_empty()
            && self.new_catches.is_empty()
            && self.add_entries.is_empty()
            && self.remove_entries.is_empty()
    }

    /// `true` if the delta removes anything (instructions, bodies or
    /// entry points) — the cases that require derivation retraction.
    #[must_use]
    pub fn has_retractions(&self) -> bool {
        !self.removals.is_empty() || !self.cleared.is_empty() || !self.remove_entries.is_empty()
    }

    /// Number of methods in the base program this delta was built from.
    #[must_use]
    pub fn base_method_count(&self) -> usize {
        self.base.methods
    }

    /// The `(method, base-body index)` pairs removed, in recording order.
    #[must_use]
    pub fn removed_instrs(&self) -> &[(MethodId, usize)] {
        &self.removals
    }

    /// Methods whose bodies this delta clears entirely.
    #[must_use]
    pub fn cleared_methods(&self) -> &[MethodId] {
        &self.cleared
    }

    /// Entry points removed by this delta.
    #[must_use]
    pub fn removed_entry_points(&self) -> &[MethodId] {
        &self.remove_entries
    }

    /// Entry points added by this delta.
    #[must_use]
    pub fn added_entry_points(&self) -> &[MethodId] {
        &self.add_entries
    }

    /// Instructions appended to *base* methods, in recording order.
    /// (Bodies of methods declared by this delta are not listed — they
    /// are whole new methods, reached through the normal call rules.)
    #[must_use]
    pub fn appended_instrs(&self) -> &[(MethodId, Instr)] {
        &self.appends
    }

    /// Catch clauses added to base methods.
    #[must_use]
    pub fn added_catches(&self) -> &[(MethodId, TypeId, VarId)] {
        &self.new_catches
    }

    /// `true` when the delta declares a method on a *base* type under a
    /// *base* signature. Such a method may override an inherited one, so
    /// `Lookup` can change for receivers that already exist — the one
    /// additive edit that silently retracts old virtual-dispatch
    /// derivations. Incremental maintenance falls back to a full
    /// re-solve when this returns `true`.
    #[must_use]
    pub fn may_change_base_dispatch(&self) -> bool {
        self.new_methods
            .iter()
            .any(|m| m.declaring.index() < self.base.types && m.sig.index() < self.base.sigs)
    }

    // ----- interning helpers ----------------------------------------------

    fn type_index(&self, ty: TypeId) -> usize {
        let i = ty.index();
        assert!(
            i < self.base.types + self.new_types.len(),
            "type {ty} out of range for this delta"
        );
        i
    }

    fn method_info(&mut self, meth: MethodId) -> &mut MethodInfo {
        let i = meth.index();
        assert!(
            i >= self.base.methods,
            "method {meth} belongs to the base program; record body edits via append/remove ops"
        );
        &mut self.new_methods[i - self.base.methods]
    }

    fn is_new_method(&self, meth: MethodId) -> bool {
        meth.index() >= self.base.methods
    }

    /// Appends `instr` to `meth` — into the new-method skeleton for
    /// methods declared by this delta, or the edit list for base methods.
    fn push_instr(&mut self, meth: MethodId, instr: Instr) {
        if self.is_new_method(meth) {
            self.method_info(meth).instrs.push(instr);
        } else {
            self.appends.push((meth, instr));
        }
    }

    // ----- declarations (mirroring ProgramBuilder) ------------------------

    /// Declares a class (or returns the existing/pending ID by name).
    ///
    /// # Panics
    ///
    /// Panics if the name exists with a different parent.
    pub fn class(&mut self, name: &str, parent: Option<TypeId>) -> TypeId {
        if let Some(&id) = self.base_type_names.get(name) {
            return id;
        }
        if let Some(pos) = self.new_types.iter().position(|t| t.name == name) {
            assert_eq!(
                self.new_types[pos].parent, parent,
                "class {name} redeclared with a different parent"
            );
            return TypeId::from_index(self.base.types + pos);
        }
        if let Some(p) = parent {
            self.type_index(p);
        }
        let id = TypeId::from_index(self.base.types + self.new_types.len());
        self.new_types.push(TypeInfo {
            name: name.to_owned(),
            parent,
        });
        id
    }

    /// Interns a signature `(name, arity)` against the base and pending
    /// signatures.
    pub fn sig(&mut self, name: &str, arity: usize) -> SigId {
        if let Some(&id) = self.base_sig_keys.get(&(name.to_owned(), arity)) {
            return id;
        }
        if let Some(pos) = self
            .new_sigs
            .iter()
            .position(|s| s.name == name && s.arity == arity)
        {
            return SigId::from_index(self.base.sigs + pos);
        }
        let id = SigId::from_index(self.base.sigs + self.new_sigs.len());
        self.new_sigs.push(SigInfo {
            name: name.to_owned(),
            arity,
        });
        id
    }

    /// Declares a new instance field `owner.name`.
    pub fn field(&mut self, owner: TypeId, name: &str) -> FieldId {
        self.field_impl(owner, name, false)
    }

    /// Declares a new static field `owner.name`.
    pub fn static_field(&mut self, owner: TypeId, name: &str) -> FieldId {
        self.field_impl(owner, name, true)
    }

    fn field_impl(&mut self, owner: TypeId, name: &str, is_static: bool) -> FieldId {
        self.type_index(owner);
        if let Some(pos) = self
            .new_fields
            .iter()
            .position(|f| f.owner == owner && f.name == name)
        {
            assert_eq!(
                self.new_fields[pos].is_static, is_static,
                "field {name} redeclared with different staticness"
            );
            return FieldId::from_index(self.base.fields + pos);
        }
        let id = FieldId::from_index(self.base.fields + self.new_fields.len());
        self.new_fields.push(FieldInfo {
            name: name.to_owned(),
            owner,
            is_static,
        });
        id
    }

    /// Declares a new method on `declaring`; instance methods implicitly
    /// receive a fresh `this` variable.
    pub fn method(
        &mut self,
        declaring: TypeId,
        name: &str,
        params: &[&str],
        is_static: bool,
    ) -> MethodId {
        self.type_index(declaring);
        let sig = self.sig(name, params.len());
        let id = MethodId::from_index(self.base.methods + self.new_methods.len());
        self.new_methods.push(MethodInfo {
            name: name.to_owned(),
            declaring,
            sig,
            is_static,
            this: None,
            formals: Vec::new(),
            ret: None,
            instrs: Vec::new(),
            instr_locs: Vec::new(),
            loc: SrcLoc::UNKNOWN,
            catches: Vec::new(),
        });
        if !is_static {
            let this = self.var(id, "this");
            self.method_info(id).this = Some(this);
        }
        let formals: Vec<VarId> = params.iter().map(|p| self.var(id, p)).collect();
        self.method_info(id).formals = formals;
        id
    }

    /// Declares a fresh local variable in `meth` (base or new method).
    pub fn var(&mut self, meth: MethodId, name: &str) -> VarId {
        assert!(
            meth.index() < self.base.methods + self.new_methods.len(),
            "method {meth} out of range for this delta"
        );
        let id = VarId::from_index(self.base.vars + self.new_vars.len());
        self.new_vars.push(VarInfo {
            name: name.to_owned(),
            method: meth,
        });
        id
    }

    /// Marks `var` as the return variable of a method *declared by this
    /// delta* (base methods keep their return variable).
    pub fn set_return(&mut self, meth: MethodId, var: VarId) {
        self.method_info(meth).ret = Some(var);
    }

    /// The formal parameters of a method declared by this delta.
    #[must_use]
    pub fn formals(&self, meth: MethodId) -> &[VarId] {
        assert!(self.is_new_method(meth), "formals only for delta methods");
        &self.new_methods[meth.index() - self.base.methods].formals
    }

    /// Registers `meth` as an additional entry point.
    pub fn entry_point(&mut self, meth: MethodId) {
        self.add_entries.push(meth);
    }

    /// Removes `meth` from the entry points (if present).
    pub fn remove_entry_point(&mut self, meth: MethodId) {
        self.remove_entries.push(meth);
    }

    // ----- instructions ----------------------------------------------------

    /// Appends `var = new ty`; returns the fresh allocation site.
    pub fn alloc(&mut self, meth: MethodId, var: VarId, ty: TypeId, label: &str) -> HeapId {
        self.type_index(ty);
        let heap = HeapId::from_index(self.base.heaps + self.new_heaps.len());
        self.new_heaps.push(HeapInfo {
            label: label.to_owned(),
            ty,
            method: meth,
        });
        self.push_instr(meth, Instr::Alloc { var, heap });
        heap
    }

    /// Appends `to = from`.
    pub fn move_(&mut self, meth: MethodId, to: VarId, from: VarId) {
        self.push_instr(meth, Instr::Move { to, from });
    }

    /// Appends `to = (ty) from`.
    pub fn cast(&mut self, meth: MethodId, to: VarId, from: VarId, ty: TypeId) {
        self.type_index(ty);
        self.push_instr(meth, Instr::Cast { to, from, ty });
    }

    /// Appends `to = base.field`.
    pub fn load(&mut self, meth: MethodId, to: VarId, base: VarId, field: FieldId) {
        self.push_instr(meth, Instr::Load { to, base, field });
    }

    /// Appends `base.field = from`.
    pub fn store(&mut self, meth: MethodId, base: VarId, field: FieldId, from: VarId) {
        self.push_instr(meth, Instr::Store { base, field, from });
    }

    /// Appends `to = Class.field`.
    pub fn sload(&mut self, meth: MethodId, to: VarId, field: FieldId) {
        self.push_instr(meth, Instr::SLoad { to, field });
    }

    /// Appends `Class.field = from`.
    pub fn sstore(&mut self, meth: MethodId, field: FieldId, from: VarId) {
        self.push_instr(meth, Instr::SStore { field, from });
    }

    /// Appends `throw var`.
    pub fn throw(&mut self, meth: MethodId, var: VarId) {
        self.push_instr(meth, Instr::Throw { var });
    }

    /// Adds a catch clause to `meth`; returns the fresh binder variable.
    pub fn catch_clause(&mut self, meth: MethodId, ty: TypeId, name: &str) -> VarId {
        self.type_index(ty);
        let var = self.var(meth, name);
        if self.is_new_method(meth) {
            self.method_info(meth).catches.push((ty, var));
        } else {
            self.new_catches.push((meth, ty, var));
        }
        var
    }

    /// Appends a virtual call; returns the fresh invocation site.
    pub fn vcall(
        &mut self,
        meth: MethodId,
        base: VarId,
        name: &str,
        args: &[VarId],
        ret: Option<VarId>,
        label: &str,
    ) -> InvoId {
        let sig = self.sig(name, args.len());
        let invo = InvoId::from_index(self.base.invos + self.new_invos.len());
        self.new_invos.push(InvoInfo {
            label: label.to_owned(),
            method: meth,
            kind: InvoKind::Virtual,
            args: args.to_vec(),
            ret,
        });
        self.push_instr(meth, Instr::VCall { base, sig, invo });
        invo
    }

    /// Appends a static call; returns the fresh invocation site.
    pub fn scall(
        &mut self,
        meth: MethodId,
        target: MethodId,
        args: &[VarId],
        ret: Option<VarId>,
        label: &str,
    ) -> InvoId {
        let invo = InvoId::from_index(self.base.invos + self.new_invos.len());
        self.new_invos.push(InvoInfo {
            label: label.to_owned(),
            method: meth,
            kind: InvoKind::Static,
            args: args.to_vec(),
            ret,
        });
        self.push_instr(meth, Instr::SCall { target, invo });
        invo
    }

    // ----- removals --------------------------------------------------------

    /// Removes the `index`-th instruction of `meth`'s *base* body. The
    /// orphaned allocation/invocation site (if any) stays in its arena.
    pub fn remove_instr(&mut self, meth: MethodId, index: usize) {
        assert!(
            !self.is_new_method(meth),
            "remove_instr targets base methods only"
        );
        self.removals.push((meth, index));
    }

    /// Empties `meth`'s body (and catch clauses), and drops it from the
    /// entry points. The method stays declared: dispatch is unchanged.
    pub fn clear_method(&mut self, meth: MethodId) {
        assert!(
            !self.is_new_method(meth),
            "clear_method targets base methods only"
        );
        self.cleared.push(meth);
        self.remove_entries.push(meth);
    }
}

/// Overlay view of a base program plus a pending delta: IDs below the
/// base counts resolve in the base arenas, appended IDs in the delta's
/// pending lists. This is what lets a delta be validated *before* it is
/// applied, which in turn is what makes [`Program::apply_delta_in_place`]
/// safe — nothing can fail once mutation starts.
struct DeltaView<'a> {
    base: &'a Program,
    delta: &'a ProgramDelta,
}

impl EntityView for DeltaView<'_> {
    fn var_method(&self, var: VarId) -> MethodId {
        match var.index().checked_sub(self.delta.base.vars) {
            None => self.base.var_method(var),
            Some(i) => self.delta.new_vars[i].method,
        }
    }
    fn field_is_static(&self, field: FieldId) -> bool {
        match field.index().checked_sub(self.delta.base.fields) {
            None => self.base.field_is_static(field),
            Some(i) => self.delta.new_fields[i].is_static,
        }
    }
    fn invo_kind(&self, invo: InvoId) -> InvoKind {
        match invo.index().checked_sub(self.delta.base.invos) {
            None => self.base.invo_kind(invo),
            Some(i) => self.delta.new_invos[i].kind,
        }
    }
    fn actual_args(&self, invo: InvoId) -> &[VarId] {
        match invo.index().checked_sub(self.delta.base.invos) {
            None => self.base.actual_args(invo),
            Some(i) => &self.delta.new_invos[i].args,
        }
    }
    fn actual_return(&self, invo: InvoId) -> Option<VarId> {
        match invo.index().checked_sub(self.delta.base.invos) {
            None => self.base.actual_return(invo),
            Some(i) => self.delta.new_invos[i].ret,
        }
    }
    fn sig_arity(&self, sig: SigId) -> usize {
        match sig.index().checked_sub(self.delta.base.sigs) {
            None => self.base.sig_arity(sig),
            Some(i) => self.delta.new_sigs[i].arity,
        }
    }
    fn method_is_static(&self, meth: MethodId) -> bool {
        match meth.index().checked_sub(self.delta.base.methods) {
            None => self.base.method_is_static(meth),
            Some(i) => self.delta.new_methods[i].is_static,
        }
    }
    fn formals_len(&self, meth: MethodId) -> usize {
        match meth.index().checked_sub(self.delta.base.methods) {
            None => self.base.formals(meth).len(),
            Some(i) => self.delta.new_methods[i].formals.len(),
        }
    }
}

/// Validates everything `delta` contributes to the edited program —
/// stale-base stamp, removal indices, entry points, appended
/// instructions, new method bodies, new catch clauses — against the
/// *unmodified* base. Every check the full [`crate::validate`] pass
/// would make on the edited program is either made here or holds by
/// induction (base entities were validated when the base was frozen).
fn validate_delta(base: &Program, delta: &ProgramDelta) -> Result<(), DeltaError> {
    if BaseCounts::of(base) != delta.base {
        return Err(DeltaError::StaleBase);
    }

    for &(m, idx) in &delta.removals {
        if delta.cleared.contains(&m) {
            continue; // the whole body is gone anyway
        }
        let body_len = base.instrs(m).len();
        if idx >= body_len {
            return Err(DeltaError::BadRemoveIndex {
                method: m,
                index: idx,
                body_len,
            });
        }
    }

    let view = DeltaView { base, delta };
    let keeps_base_entry = base
        .entry_points()
        .iter()
        .any(|m| !delta.remove_entries.contains(m));
    if !keeps_base_entry && delta.add_entries.is_empty() {
        return Err(ValidateError::NoEntryPoint.into());
    }
    for &m in &delta.add_entries {
        check_entry_point(&view, m)?;
    }

    for &(m, instr) in &delta.appends {
        check_instr(&view, m, &instr)?;
    }
    for (i, info) in delta.new_methods.iter().enumerate() {
        let id = MethodId::from_index(delta.base.methods + i);
        for instr in &info.instrs {
            check_instr(&view, id, instr)?;
        }
        for &(_, binder) in &info.catches {
            check_catch_binder(&view, id, binder)?;
        }
    }
    for &(m, _ty, binder) in &delta.new_catches {
        check_catch_binder(&view, m, binder)?;
    }
    Ok(())
}

impl Program {
    /// Applies `delta`, producing the edited program. The base program is
    /// untouched; every base ID remains valid in the result.
    ///
    /// # Errors
    ///
    /// [`DeltaError::StaleBase`] if the delta was built against a program
    /// with different ID-space sizes, [`DeltaError::BadRemoveIndex`] for
    /// out-of-range removals, and [`DeltaError::Invalid`] if the edited
    /// program would fail validation.
    pub fn apply_delta(&self, delta: &ProgramDelta) -> Result<Program, DeltaError> {
        validate_delta(self, delta)?;
        let mut program = self.clone();
        program.apply_validated(delta);
        Ok(program)
    }

    /// Applies `delta` by mutating this program directly — no arena
    /// clones. The long-lived session uses this when it holds the only
    /// reference to the current version, which is the common case for an
    /// edit-apply loop; any caller that kept a handle to an old version
    /// forces the cloning path instead, so old versions are never
    /// disturbed.
    ///
    /// All validation runs before the first mutation, so on `Err` the
    /// program is guaranteed unchanged.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Program::apply_delta`].
    pub fn apply_delta_in_place(&mut self, delta: &ProgramDelta) -> Result<(), DeltaError> {
        validate_delta(self, delta)?;
        self.apply_validated(delta);
        Ok(())
    }

    /// The mutation half of delta application; `delta` must already have
    /// passed [`validate_delta`]. Infallible by construction.
    fn apply_validated(&mut self, delta: &ProgramDelta) {
        self.types.extend(delta.new_types.iter().cloned());
        self.fields.extend(delta.new_fields.iter().cloned());
        self.sigs.extend(delta.new_sigs.iter().cloned());
        self.methods.extend(delta.new_methods.iter().cloned());
        self.vars.extend(delta.new_vars.iter().cloned());
        self.heaps.extend(delta.new_heaps.iter().cloned());
        self.invos.extend(delta.new_invos.iter().cloned());

        for &m in &delta.cleared {
            let info = &mut self.methods[m.index()];
            info.instrs.clear();
            info.instr_locs.clear();
            info.catches.clear();
        }
        // Group removals per method and delete from highest index down so
        // earlier removals don't shift later ones. (Removals run before
        // appends, so the indices still address the base body here.)
        let mut by_method: FxHashMap<MethodId, Vec<usize>> = FxHashMap::default();
        for &(m, idx) in &delta.removals {
            if delta.cleared.contains(&m) {
                continue;
            }
            by_method.entry(m).or_default().push(idx);
        }
        for (m, mut idxs) in by_method {
            idxs.sort_unstable();
            idxs.dedup();
            let info = &mut self.methods[m.index()];
            for &i in idxs.iter().rev() {
                info.instrs.remove(i);
                if i < info.instr_locs.len() {
                    info.instr_locs.remove(i);
                }
            }
        }
        for &(m, instr) in &delta.appends {
            self.methods[m.index()].instrs.push(instr);
        }
        for &(m, ty, var) in &delta.new_catches {
            self.methods[m.index()].catches.push((ty, var));
        }

        self.entry_points
            .retain(|m| !delta.remove_entries.contains(m));
        for &m in &delta.add_entries {
            if !self.entry_points.contains(&m) {
                self.entry_points.push(m);
            }
        }

        // Method bodies don't affect subtyping or dispatch, so the
        // hierarchy only needs rebuilding when declarations were added.
        if !delta.new_types.is_empty() || !delta.new_methods.is_empty() {
            self.hierarchy = Hierarchy::build(&self.types, &self.methods);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ProgramBuilder;

    fn base() -> (Program, MethodId, VarId, TypeId) {
        let mut b = ProgramBuilder::new();
        let object = b.class("Object", None);
        let c = b.class("C", Some(object));
        let main = b.method(c, "main", &[], true);
        let v = b.var(main, "v");
        b.alloc(main, v, c, "new C");
        b.entry_point(main);
        (b.finish().unwrap(), main, v, c)
    }

    #[test]
    fn appended_entities_extend_id_spaces_stably() {
        let (p, main, v, c) = base();
        let mut d = ProgramDelta::new(&p);
        let w = d.var(main, "w");
        d.move_(main, w, v);
        let h = d.alloc(main, w, c, "new C 2");
        let edited = p.apply_delta(&d).unwrap();
        assert_eq!(w.index(), p.var_count());
        assert_eq!(h.index(), p.heap_count());
        assert_eq!(edited.var_count(), p.var_count() + 1);
        assert_eq!(edited.heap_count(), p.heap_count() + 1);
        // Base IDs mean the same thing.
        assert_eq!(edited.var_name(v), p.var_name(v));
        assert_eq!(edited.instrs(main).len(), 3);
        // The base program is untouched.
        assert_eq!(p.instrs(main).len(), 1);
    }

    #[test]
    fn new_class_method_and_call_validate() {
        let (p, main, _v, c) = base();
        let mut d = ProgramDelta::new(&p);
        let sub = d.class("Sub", Some(c));
        let helper = d.method(sub, "freshHelper", &["x"], true);
        let x = d.formals(helper)[0];
        d.set_return(helper, x);
        let r = d.var(main, "r");
        let a = d.var(main, "a");
        d.alloc(main, a, sub, "new Sub");
        d.scall(main, helper, &[a], Some(r), "call helper");
        let edited = p.apply_delta(&d).unwrap();
        assert_eq!(edited.type_count(), p.type_count() + 1);
        assert_eq!(edited.method_count(), p.method_count() + 1);
        assert_eq!(edited.invo_count(), p.invo_count() + 1);
        assert!(edited.method_is_static(helper));
    }

    #[test]
    fn remove_instr_deletes_by_base_index() {
        let (p, main, v, c) = base();
        let mut d = ProgramDelta::new(&p);
        d.remove_instr(main, 0);
        let w = d.var(main, "w");
        d.alloc(main, w, c, "replacement");
        let edited = p.apply_delta(&d).unwrap();
        assert_eq!(edited.instrs(main).len(), 1);
        assert!(matches!(
            edited.instrs(main)[0],
            Instr::Alloc { var, .. } if var == w
        ));
        let _ = v;
    }

    #[test]
    fn clear_method_empties_body_but_keeps_dispatch() {
        let mut b = ProgramBuilder::new();
        let object = b.class("Object", None);
        let c = b.class("C", Some(object));
        let run = b.method(c, "run", &[], false);
        let rv = b.var(run, "rv");
        b.alloc(run, rv, c, "inner");
        let main = b.method(c, "main", &[], true);
        let recv = b.var(main, "recv");
        b.alloc(main, recv, c, "new C");
        b.vcall(main, recv, "run", &[], None, "call run");
        b.entry_point(main);
        let p = b.finish().unwrap();

        let mut d = ProgramDelta::new(&p);
        d.clear_method(run);
        let edited = p.apply_delta(&d).unwrap();
        assert!(edited.instrs(run).is_empty());
        // Dispatch still resolves: the method is declared, just empty.
        let sig = edited.method_sig(run);
        assert_eq!(edited.lookup(c, sig), Some(run));
    }

    #[test]
    fn stale_base_and_bad_index_are_rejected() {
        let (p, main, v, c) = base();
        let mut grow = ProgramDelta::new(&p);
        let w = grow.var(main, "w");
        grow.move_(main, w, v);
        let p2 = p.apply_delta(&grow).unwrap();

        // A delta built against p cannot be applied to p2.
        let mut stale = ProgramDelta::new(&p);
        let x = stale.var(main, "x");
        stale.alloc(main, x, c, "h");
        assert_eq!(p2.apply_delta(&stale).unwrap_err(), DeltaError::StaleBase);

        let mut bad = ProgramDelta::new(&p);
        bad.remove_instr(main, 7);
        assert!(matches!(
            p.apply_delta(&bad).unwrap_err(),
            DeltaError::BadRemoveIndex { index: 7, .. }
        ));
    }

    #[test]
    fn removing_the_only_entry_point_fails_validation() {
        let (p, main, _v, _c) = base();
        let mut d = ProgramDelta::new(&p);
        d.remove_entry_point(main);
        assert!(matches!(
            p.apply_delta(&d).unwrap_err(),
            DeltaError::Invalid(ValidateError::NoEntryPoint)
        ));
    }

    #[test]
    fn empty_delta_roundtrips() {
        let (p, main, _v, _c) = base();
        let d = ProgramDelta::new(&p);
        assert!(d.is_empty());
        assert!(!d.has_retractions());
        let edited = p.apply_delta(&d).unwrap();
        assert_eq!(edited.instr_count(), p.instr_count());
        assert_eq!(edited.entry_points(), p.entry_points());
        let _ = main;
    }
}
