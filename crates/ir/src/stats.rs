//! Program-size statistics, used by the workload generator to calibrate the
//! synthetic DaCapo-like suite and by the bench harness to report workload
//! sizes next to each experiment row.

use crate::program::{Instr, Program};

/// Instruction and entity counts for a program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ProgramStats {
    /// Number of class types.
    pub types: usize,
    /// Number of methods.
    pub methods: usize,
    /// Number of local variables.
    pub vars: usize,
    /// Number of allocation sites.
    pub allocs: usize,
    /// Number of `move` instructions.
    pub moves: usize,
    /// Number of `cast` instructions.
    pub casts: usize,
    /// Number of field loads.
    pub loads: usize,
    /// Number of field stores.
    pub stores: usize,
    /// Number of static-field loads.
    pub sloads: usize,
    /// Number of static-field stores.
    pub sstores: usize,
    /// Number of `throw` instructions.
    pub throws: usize,
    /// Number of virtual call sites.
    pub vcalls: usize,
    /// Number of static call sites.
    pub scalls: usize,
}

impl ProgramStats {
    /// Computes the statistics of `program`.
    pub fn of(program: &Program) -> ProgramStats {
        let mut s = ProgramStats {
            types: program.type_count(),
            methods: program.method_count(),
            vars: program.var_count(),
            ..ProgramStats::default()
        };
        for m in program.methods() {
            for instr in program.instrs(m) {
                match instr {
                    Instr::Alloc { .. } => s.allocs += 1,
                    Instr::Move { .. } => s.moves += 1,
                    Instr::Cast { .. } => s.casts += 1,
                    Instr::Load { .. } => s.loads += 1,
                    Instr::Store { .. } => s.stores += 1,
                    Instr::SLoad { .. } => s.sloads += 1,
                    Instr::SStore { .. } => s.sstores += 1,
                    Instr::Throw { .. } => s.throws += 1,
                    Instr::VCall { .. } => s.vcalls += 1,
                    Instr::SCall { .. } => s.scalls += 1,
                }
            }
        }
        s
    }

    /// Total instruction count.
    pub fn instructions(&self) -> usize {
        self.allocs
            + self.moves
            + self.casts
            + self.loads
            + self.stores
            + self.sloads
            + self.sstores
            + self.throws
            + self.vcalls
            + self.scalls
    }
}

/// Capacity hints for solver-side data structures, derived from program
/// statistics. These are heuristics, not bounds: consumers must tolerate
/// growth past every hint. The multipliers were calibrated on the synthetic
/// DaCapo suite (contexts scale with methods and invocation sites, objects
/// with allocation sites) and exist so the hot paths start near their final
/// sizes instead of rehashing their way up from empty tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SizeHints {
    /// Expected distinct calling contexts.
    pub contexts: usize,
    /// Expected distinct heap contexts.
    pub heap_contexts: usize,
    /// Expected distinct `(heap, heap-context)` objects.
    pub objects: usize,
    /// Expected distinct `(variable, context)` points-to keys.
    pub var_ctx_keys: usize,
}

impl SizeHints {
    /// Derives hints from precomputed statistics.
    #[must_use]
    pub fn of(stats: &ProgramStats) -> SizeHints {
        let invos = stats.vcalls + stats.scalls;
        SizeHints {
            contexts: stats.methods * 2 + invos / 2,
            heap_contexts: stats.allocs / 2 + 8,
            objects: stats.allocs * 2 + 8,
            var_ctx_keys: stats.vars * 2 + 8,
        }
    }

    /// Convenience: computes statistics and derives hints in one call.
    #[must_use]
    pub fn of_program(program: &Program) -> SizeHints {
        SizeHints::of(&ProgramStats::of(program))
    }
}

impl std::fmt::Display for ProgramStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} types, {} methods, {} vars, {} instrs ({} alloc, {} move, {} cast, {} load, {} store, {} sload, {} sstore, {} throw, {} vcall, {} scall)",
            self.types,
            self.methods,
            self.vars,
            self.instructions(),
            self.allocs,
            self.moves,
            self.casts,
            self.loads,
            self.stores,
            self.sloads,
            self.sstores,
            self.throws,
            self.vcalls,
            self.scalls
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ProgramBuilder;

    #[test]
    fn counts_every_instruction_kind() {
        let mut b = ProgramBuilder::new();
        let object = b.class("Object", None);
        let c = b.class("C", Some(object));
        let f = b.field(c, "fld");
        let callee = b.method(c, "callee", &[], true);
        let main = b.method(c, "main", &[], true);
        let x = b.var(main, "x");
        let y = b.var(main, "y");
        b.alloc(main, x, c, "new C");
        b.move_(main, y, x);
        b.cast(main, y, x, c);
        b.store(main, x, f, y);
        b.load(main, y, x, f);
        b.vcall(main, x, "nothing", &[], None, "v");
        b.scall(main, callee, &[], None, "s");
        b.entry_point(main);
        let p = b.finish().unwrap();
        let s = ProgramStats::of(&p);
        assert_eq!(s.allocs, 1);
        assert_eq!(s.moves, 1);
        assert_eq!(s.casts, 1);
        assert_eq!(s.loads, 1);
        assert_eq!(s.stores, 1);
        assert_eq!(s.vcalls, 1);
        assert_eq!(s.scalls, 1);
        assert_eq!(s.instructions(), 7);
        assert_eq!(s.methods, 2);
        assert!(s.to_string().contains("2 methods"));
    }
}
