//! Well-formedness validation for [`Program`]s.
//!
//! Checked once when a builder is frozen; analyses may then rely on these
//! invariants without re-checking (e.g. every variable in an instruction
//! belongs to the enclosing method, call arities match, entry points exist).

use std::error::Error;
use std::fmt;

use crate::ids::{FieldId, InvoId, MethodId, VarId};
use crate::program::{Instr, InvoKind, Program};

/// The four field-access shapes, used to report kind mismatches precisely.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FieldAccess {
    /// `to = base.field` where `field` is static.
    InstanceLoad,
    /// `base.field = from` where `field` is static.
    InstanceStore,
    /// `to = Class.field` where `field` is an instance field.
    StaticLoad,
    /// `Class.field = from` where `field` is an instance field.
    StaticStore,
}

/// An ill-formedness diagnosis for a program under construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidateError {
    /// A program must have at least one entry point.
    NoEntryPoint,
    /// An instruction in `method` uses `var`, which belongs to a different
    /// method.
    ForeignVariable {
        /// The method containing the offending instruction.
        method: MethodId,
        /// The variable that belongs elsewhere.
        var: VarId,
    },
    /// An invocation site passes a different number of arguments than the
    /// callee declares (static call) or the signature carries (virtual call).
    ArityMismatch {
        /// The method containing the call.
        method: MethodId,
        /// The offending invocation site.
        invo: InvoId,
        /// The statically known callee, for static calls.
        callee: Option<MethodId>,
        /// Number of actual arguments at the site.
        got: usize,
        /// Number of arguments the callee/signature expects.
        expected: usize,
    },
    /// A call instruction disagrees with its invocation site's recorded
    /// kind, or a static call targets an instance method.
    BadCallKind {
        /// The method containing the call.
        method: MethodId,
        /// The offending invocation site.
        invo: InvoId,
        /// The kind the instruction requires.
        expected: InvoKind,
        /// The kind the site was recorded with.
        found: InvoKind,
        /// For static calls only: the instance method wrongly targeted.
        target: Option<MethodId>,
    },
    /// A static-field instruction names an instance field or vice versa.
    BadFieldKind {
        /// The method containing the instruction.
        method: MethodId,
        /// The field accessed with the wrong kind of instruction.
        field: FieldId,
        /// Which access shape was used.
        access: FieldAccess,
    },
    /// An entry point declares formal parameters or a receiver; analysis
    /// roots must be self-contained static methods.
    BadEntryPoint {
        /// The offending entry point.
        method: MethodId,
    },
}

fn kind_name(k: InvoKind) -> &'static str {
    match k {
        InvoKind::Virtual => "virtual",
        InvoKind::Static => "static",
    }
}

impl fmt::Display for ValidateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidateError::NoEntryPoint => write!(f, "program has no entry point"),
            ValidateError::ForeignVariable { method, var } => {
                write!(
                    f,
                    "method {method} uses variable {var} declared in another method"
                )
            }
            ValidateError::ArityMismatch {
                method,
                invo,
                callee,
                got,
                expected,
            } => match callee {
                Some(c) => write!(
                    f,
                    "arity mismatch in {method}: static site {invo} passes {got} args to {c} expecting {expected}"
                ),
                None => write!(
                    f,
                    "arity mismatch in {method}: virtual site {invo} passes {got} args for signature of arity {expected}"
                ),
            },
            ValidateError::BadCallKind {
                method,
                invo,
                expected,
                found,
                target,
            } => match target {
                Some(t) => write!(
                    f,
                    "bad call kind in {method}: static site {invo} targets instance method {t}"
                ),
                None => write!(
                    f,
                    "bad call kind in {method}: site {invo} recorded as {} but used as {}",
                    kind_name(*found),
                    kind_name(*expected)
                ),
            },
            ValidateError::BadFieldKind {
                method,
                field,
                access,
            } => {
                let what = match access {
                    FieldAccess::InstanceLoad => "instance load of static field",
                    FieldAccess::InstanceStore => "instance store to static field",
                    FieldAccess::StaticLoad => "static load of instance field",
                    FieldAccess::StaticStore => "static store to instance field",
                };
                write!(f, "bad field kind in {method}: {what} {field}")
            }
            ValidateError::BadEntryPoint { method } => {
                write!(
                    f,
                    "entry point {method} must be a static method without parameters"
                )
            }
        }
    }
}

impl Error for ValidateError {}

/// Read-only view of the entity attributes the per-instruction checks
/// consult. Implemented by [`Program`] itself and — in `delta.rs` — by a
/// base program overlaid with a pending [`crate::ProgramDelta`], so a
/// delta can be validated *before* it is applied (which is what makes
/// in-place application safe: nothing can fail after mutation starts).
pub(crate) trait EntityView {
    fn var_method(&self, var: VarId) -> MethodId;
    fn field_is_static(&self, field: FieldId) -> bool;
    fn invo_kind(&self, invo: InvoId) -> InvoKind;
    fn actual_args(&self, invo: InvoId) -> &[VarId];
    fn actual_return(&self, invo: InvoId) -> Option<VarId>;
    fn sig_arity(&self, sig: crate::ids::SigId) -> usize;
    fn method_is_static(&self, meth: MethodId) -> bool;
    fn formals_len(&self, meth: MethodId) -> usize;
}

impl EntityView for Program {
    fn var_method(&self, var: VarId) -> MethodId {
        Program::var_method(self, var)
    }
    fn field_is_static(&self, field: FieldId) -> bool {
        Program::field_is_static(self, field)
    }
    fn invo_kind(&self, invo: InvoId) -> InvoKind {
        Program::invo_kind(self, invo)
    }
    fn actual_args(&self, invo: InvoId) -> &[VarId] {
        Program::actual_args(self, invo)
    }
    fn actual_return(&self, invo: InvoId) -> Option<VarId> {
        Program::actual_return(self, invo)
    }
    fn sig_arity(&self, sig: crate::ids::SigId) -> usize {
        Program::sig_arity(self, sig)
    }
    fn method_is_static(&self, meth: MethodId) -> bool {
        Program::method_is_static(self, meth)
    }
    fn formals_len(&self, meth: MethodId) -> usize {
        Program::formals(self, meth).len()
    }
}

/// Checks that `entry` is a legal analysis root: a static method without
/// parameters.
pub(crate) fn check_entry_point<V: EntityView>(
    view: &V,
    entry: MethodId,
) -> Result<(), ValidateError> {
    if !view.method_is_static(entry) || view.formals_len(entry) != 0 {
        return Err(ValidateError::BadEntryPoint { method: entry });
    }
    Ok(())
}

/// Checks one instruction of `meth`'s body against the view.
pub(crate) fn check_instr<V: EntityView>(
    view: &V,
    meth: MethodId,
    instr: &Instr,
) -> Result<(), ValidateError> {
    let own = |var: VarId| -> Result<(), ValidateError> {
        if view.var_method(var) == meth {
            Ok(())
        } else {
            Err(ValidateError::ForeignVariable { method: meth, var })
        }
    };
    match *instr {
        Instr::Alloc { var, .. } => own(var)?,
        Instr::Move { to, from } | Instr::Cast { to, from, .. } => {
            own(to)?;
            own(from)?;
        }
        Instr::Load { to, base, field } => {
            own(to)?;
            own(base)?;
            if view.field_is_static(field) {
                return Err(ValidateError::BadFieldKind {
                    method: meth,
                    field,
                    access: FieldAccess::InstanceLoad,
                });
            }
        }
        Instr::Store { base, from, field } => {
            own(base)?;
            own(from)?;
            if view.field_is_static(field) {
                return Err(ValidateError::BadFieldKind {
                    method: meth,
                    field,
                    access: FieldAccess::InstanceStore,
                });
            }
        }
        Instr::Throw { var } => own(var)?,
        Instr::SLoad { to, field } => {
            own(to)?;
            if !view.field_is_static(field) {
                return Err(ValidateError::BadFieldKind {
                    method: meth,
                    field,
                    access: FieldAccess::StaticLoad,
                });
            }
        }
        Instr::SStore { field, from } => {
            own(from)?;
            if !view.field_is_static(field) {
                return Err(ValidateError::BadFieldKind {
                    method: meth,
                    field,
                    access: FieldAccess::StaticStore,
                });
            }
        }
        Instr::VCall { base, sig, invo } => {
            own(base)?;
            for &a in view.actual_args(invo) {
                own(a)?;
            }
            if let Some(r) = view.actual_return(invo) {
                own(r)?;
            }
            if view.invo_kind(invo) != InvoKind::Virtual {
                return Err(ValidateError::BadCallKind {
                    method: meth,
                    invo,
                    expected: InvoKind::Virtual,
                    found: view.invo_kind(invo),
                    target: None,
                });
            }
            if view.actual_args(invo).len() != view.sig_arity(sig) {
                return Err(ValidateError::ArityMismatch {
                    method: meth,
                    invo,
                    callee: None,
                    got: view.actual_args(invo).len(),
                    expected: view.sig_arity(sig),
                });
            }
        }
        Instr::SCall { target, invo } => {
            for &a in view.actual_args(invo) {
                own(a)?;
            }
            if let Some(r) = view.actual_return(invo) {
                own(r)?;
            }
            if view.invo_kind(invo) != InvoKind::Static {
                return Err(ValidateError::BadCallKind {
                    method: meth,
                    invo,
                    expected: InvoKind::Static,
                    found: view.invo_kind(invo),
                    target: None,
                });
            }
            if !view.method_is_static(target) {
                return Err(ValidateError::BadCallKind {
                    method: meth,
                    invo,
                    expected: InvoKind::Static,
                    found: InvoKind::Static,
                    target: Some(target),
                });
            }
            if view.actual_args(invo).len() != view.formals_len(target) {
                return Err(ValidateError::ArityMismatch {
                    method: meth,
                    invo,
                    callee: Some(target),
                    got: view.actual_args(invo).len(),
                    expected: view.formals_len(target),
                });
            }
        }
    }
    Ok(())
}

/// Checks that a catch clause's binder variable belongs to `meth`.
pub(crate) fn check_catch_binder<V: EntityView>(
    view: &V,
    meth: MethodId,
    binder: VarId,
) -> Result<(), ValidateError> {
    if view.var_method(binder) == meth {
        Ok(())
    } else {
        Err(ValidateError::ForeignVariable {
            method: meth,
            var: binder,
        })
    }
}

/// Checks all well-formedness invariants of `program`.
///
/// # Errors
///
/// Returns the first [`ValidateError`] discovered.
pub fn validate(program: &Program) -> Result<(), ValidateError> {
    if program.entry_points().is_empty() {
        return Err(ValidateError::NoEntryPoint);
    }
    for &entry in program.entry_points() {
        check_entry_point(program, entry)?;
    }
    for meth in program.methods() {
        for instr in program.instrs(meth) {
            check_instr(program, meth, instr)?;
        }
        for &(_, binder) in program.catches(meth) {
            check_catch_binder(program, meth, binder)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ProgramBuilder;

    #[test]
    fn missing_entry_point_is_rejected() {
        let mut b = ProgramBuilder::new();
        let object = b.class("Object", None);
        let _ = b.method(object, "main", &[], true);
        assert_eq!(b.finish().unwrap_err(), ValidateError::NoEntryPoint);
    }

    #[test]
    fn instance_entry_point_is_rejected() {
        let mut b = ProgramBuilder::new();
        let object = b.class("Object", None);
        let m = b.method(object, "main", &[], false);
        b.entry_point(m);
        assert!(matches!(
            b.finish().unwrap_err(),
            ValidateError::BadEntryPoint { .. }
        ));
    }

    #[test]
    fn static_call_to_instance_method_is_rejected() {
        let mut b = ProgramBuilder::new();
        let object = b.class("Object", None);
        let c = b.class("C", Some(object));
        let inst = b.method(c, "foo", &[], false);
        let main = b.method(c, "main", &[], true);
        b.scall(main, inst, &[], None, "bad");
        b.entry_point(main);
        assert!(matches!(
            b.finish().unwrap_err(),
            ValidateError::BadCallKind { .. }
        ));
    }

    #[test]
    fn arity_mismatch_on_static_call_is_rejected() {
        let mut b = ProgramBuilder::new();
        let object = b.class("Object", None);
        let c = b.class("C", Some(object));
        let callee = b.method(c, "util", &["a", "b"], true);
        let main = b.method(c, "main", &[], true);
        let x = b.var(main, "x");
        b.scall(main, callee, &[x], None, "bad arity");
        b.entry_point(main);
        assert!(matches!(
            b.finish().unwrap_err(),
            ValidateError::ArityMismatch { .. }
        ));
    }

    #[test]
    fn well_formed_program_passes() {
        let mut b = ProgramBuilder::new();
        let object = b.class("Object", None);
        let c = b.class("C", Some(object));
        let callee = b.method(c, "id", &["a"], true);
        let pa = b.formals(callee)[0];
        b.set_return(callee, pa);
        let main = b.method(c, "main", &[], true);
        let x = b.var(main, "x");
        let y = b.var(main, "y");
        b.alloc(main, x, c, "new C");
        b.scall(main, callee, &[x], Some(y), "call id");
        b.entry_point(main);
        assert!(b.finish().is_ok());
    }
}

#[cfg(test)]
mod field_kind_tests {
    use super::*;
    use crate::ProgramBuilder;

    #[test]
    fn instance_access_to_static_field_is_rejected() {
        let mut b = ProgramBuilder::new();
        let object = b.class("Object", None);
        let c = b.class("C", Some(object));
        let f = b.static_field(c, "cell");
        let main = b.method(c, "main", &[], true);
        let x = b.var(main, "x");
        let y = b.var(main, "y");
        b.alloc(main, x, c, "new C");
        b.load(main, y, x, f); // instance load of a static field
        b.entry_point(main);
        assert!(matches!(
            b.finish().unwrap_err(),
            ValidateError::BadFieldKind { .. }
        ));
    }

    #[test]
    fn static_access_to_instance_field_is_rejected() {
        let mut b = ProgramBuilder::new();
        let object = b.class("Object", None);
        let c = b.class("C", Some(object));
        let f = b.field(c, "slot");
        let main = b.method(c, "main", &[], true);
        let y = b.var(main, "y");
        b.sload(main, y, f); // static load of an instance field
        b.entry_point(main);
        assert!(matches!(
            b.finish().unwrap_err(),
            ValidateError::BadFieldKind { .. }
        ));
    }

    #[test]
    fn throw_and_catch_validate() {
        let mut b = ProgramBuilder::new();
        let object = b.class("Object", None);
        let err = b.class("Err", Some(object));
        let main = b.method(object, "main", &[], true);
        let _binder = b.catch_clause(main, err, "e");
        let x = b.var(main, "x");
        b.alloc(main, x, err, "new Err");
        b.throw(main, x);
        b.entry_point(main);
        assert!(b.finish().is_ok());
    }
}
