//! The program representation: classes, fields, methods, variables,
//! allocation sites, invocation sites and instructions.
//!
//! A [`Program`] is an immutable, fully-resolved module. It owns dense
//! arenas for every ID space of the paper's Figure 1 and exposes the
//! symbol-table relations (`FormalArg`, `ActualArg`, `FormalReturn`,
//! `ActualReturn`, `ThisVar`, `HeapType`, `Lookup`) as accessors. Programs
//! are built with [`crate::ProgramBuilder`] and are never mutated afterwards,
//! so analyses may freely share references across threads.

use crate::hierarchy::Hierarchy;
use crate::ids::{FieldId, HeapId, InvoId, MethodId, SigId, TypeId, VarId};
use crate::srcloc::SrcLoc;

/// One instruction of the simplified intermediate language (paper §2.1).
///
/// The five instruction kinds of the paper's input language map to the
/// `ALLOC`, `MOVE`, `LOAD`, `STORE`, `VCALL` and `SCALL` input relations;
/// [`Instr::Cast`] is the checked-cast assignment used by the *may-fail
/// casts* client in the paper's evaluation (§4.2). Call instructions carry
/// their [`InvoId`]; actual arguments and return targets live in the
/// invocation-site table ([`Program::actual_args`], [`Program::actual_return`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Instr {
    /// `var = new T` — allocates `heap` and assigns it to `var`.
    Alloc {
        /// The variable assigned.
        var: VarId,
        /// The allocation site, which is also the heap abstraction.
        heap: HeapId,
    },
    /// `to = from` — copies a reference between locals.
    Move {
        /// Destination variable.
        to: VarId,
        /// Source variable.
        from: VarId,
    },
    /// `to = (ty) from` — checked downcast.
    ///
    /// Following Doop's `AssignCast` semantics, only heap objects whose type
    /// is a subtype of `ty` flow from `from` to `to`; the may-fail-casts
    /// client reports the cast if `from` may point to any object of an
    /// incompatible type.
    Cast {
        /// Destination variable.
        to: VarId,
        /// Source variable.
        from: VarId,
        /// The cast target type.
        ty: TypeId,
    },
    /// `to = base.fld` — field load.
    Load {
        /// Destination variable.
        to: VarId,
        /// Base object variable.
        base: VarId,
        /// The field read.
        field: FieldId,
    },
    /// `base.fld = from` — field store.
    Store {
        /// Base object variable.
        base: VarId,
        /// The field written.
        field: FieldId,
        /// Source variable.
        from: VarId,
    },
    /// `to = Class.fld` — static-field load.
    ///
    /// Static fields are outside the paper's nine-rule model ("their
    /// treatment is a mere engineering complexity, as it does not interact
    /// with context choice", §2.1) but present in the full Doop
    /// implementation; they behave as context-insensitive global cells.
    SLoad {
        /// Destination variable.
        to: VarId,
        /// The static field read.
        field: FieldId,
    },
    /// `Class.fld = from` — static-field store.
    SStore {
        /// The static field written.
        field: FieldId,
        /// Source variable.
        from: VarId,
    },
    /// `base.sig(..)` — virtual call, dispatched on the dynamic type of the
    /// object `base` points to via `Lookup`.
    VCall {
        /// Receiver variable.
        base: VarId,
        /// Signature resolved at the receiver's dynamic type.
        sig: SigId,
        /// The invocation site.
        invo: InvoId,
    },
    /// `throw var` — raises the exception object `var` points to.
    ///
    /// Exceptions are part of full Doop (outside the paper's nine-rule
    /// model); thrown objects propagate to the method's own catch clauses
    /// and, uncaught, across call-graph edges to callers.
    Throw {
        /// The thrown value.
        var: VarId,
    },
    /// `Class.meth(..)` — static call with a statically known target.
    SCall {
        /// The statically known callee.
        target: MethodId,
        /// The invocation site.
        invo: InvoId,
    },
}

/// Whether an invocation site is a virtual or a static call.
///
/// The paper's central observation is that these two language features
/// benefit from *different* context shapes, which is why its `MergeStatic`
/// constructor exists at all.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InvoKind {
    /// A virtual (dynamically dispatched) call.
    Virtual,
    /// A static (direct) call.
    Static,
}

#[derive(Debug, Clone)]
pub(crate) struct TypeInfo {
    pub name: String,
    pub parent: Option<TypeId>,
}

#[derive(Debug, Clone)]
pub(crate) struct FieldInfo {
    pub name: String,
    pub owner: TypeId,
    pub is_static: bool,
}

#[derive(Debug, Clone)]
pub(crate) struct SigInfo {
    pub name: String,
    pub arity: usize,
}

#[derive(Debug, Clone)]
pub(crate) struct MethodInfo {
    pub name: String,
    pub declaring: TypeId,
    pub sig: SigId,
    pub is_static: bool,
    pub this: Option<VarId>,
    pub formals: Vec<VarId>,
    pub ret: Option<VarId>,
    pub instrs: Vec<Instr>,
    /// Source location of each instruction, parallel to `instrs`. Entries
    /// are [`SrcLoc::UNKNOWN`] for programmatically built IR; the vector may
    /// be shorter than `instrs` (trailing instructions are then unknown).
    pub instr_locs: Vec<SrcLoc>,
    /// Source location of the method declaration itself.
    pub loc: SrcLoc,
    /// Catch clauses `(type, binder)`: exceptions reaching this method
    /// whose dynamic type is a subtype of `type` bind to `binder`. Without
    /// block structure in the IR, clauses are method-scoped and *any*
    /// matching clause catches (a sound flow-insensitive approximation of
    /// Java's try ranges and first-match rule).
    pub catches: Vec<(TypeId, VarId)>,
}

#[derive(Debug, Clone)]
pub(crate) struct VarInfo {
    pub name: String,
    pub method: MethodId,
}

#[derive(Debug, Clone)]
pub(crate) struct HeapInfo {
    pub label: String,
    pub ty: TypeId,
    pub method: MethodId,
}

#[derive(Debug, Clone)]
pub(crate) struct InvoInfo {
    pub label: String,
    pub method: MethodId,
    pub kind: InvoKind,
    pub args: Vec<VarId>,
    pub ret: Option<VarId>,
}

/// An immutable, fully-resolved program module.
///
/// See the [crate docs](crate) for the relationship to the paper's model.
#[derive(Debug, Clone)]
pub struct Program {
    pub(crate) types: Vec<TypeInfo>,
    pub(crate) fields: Vec<FieldInfo>,
    pub(crate) sigs: Vec<SigInfo>,
    pub(crate) methods: Vec<MethodInfo>,
    pub(crate) vars: Vec<VarInfo>,
    pub(crate) heaps: Vec<HeapInfo>,
    pub(crate) invos: Vec<InvoInfo>,
    pub(crate) entry_points: Vec<MethodId>,
    pub(crate) hierarchy: Hierarchy,
}

impl Program {
    // ----- counts -------------------------------------------------------

    /// Number of class types (`|T|`).
    pub fn type_count(&self) -> usize {
        self.types.len()
    }

    /// Number of instance fields (`|F|`).
    pub fn field_count(&self) -> usize {
        self.fields.len()
    }

    /// Number of method signatures (`|S|`).
    pub fn sig_count(&self) -> usize {
        self.sigs.len()
    }

    /// Number of methods (`|M|`).
    pub fn method_count(&self) -> usize {
        self.methods.len()
    }

    /// Number of local variables (`|V|`).
    pub fn var_count(&self) -> usize {
        self.vars.len()
    }

    /// Total instruction count across all method bodies. Used by solvers to
    /// pre-size worklists, indices and interners before the first tuple is
    /// derived.
    pub fn instr_count(&self) -> usize {
        self.methods.iter().map(|m| m.instrs.len()).sum()
    }

    /// Number of allocation sites (`|H|`).
    pub fn heap_count(&self) -> usize {
        self.heaps.len()
    }

    /// Number of invocation sites (`|I|`).
    pub fn invo_count(&self) -> usize {
        self.invos.len()
    }

    // ----- iteration ----------------------------------------------------

    /// Iterates over all type IDs.
    pub fn types(&self) -> impl Iterator<Item = TypeId> + '_ {
        (0..self.types.len()).map(TypeId::from_index)
    }

    /// Iterates over all method IDs.
    pub fn methods(&self) -> impl Iterator<Item = MethodId> + '_ {
        (0..self.methods.len()).map(MethodId::from_index)
    }

    /// Iterates over all variable IDs.
    pub fn vars(&self) -> impl Iterator<Item = VarId> + '_ {
        (0..self.vars.len()).map(VarId::from_index)
    }

    /// Iterates over all heap (allocation-site) IDs.
    pub fn heaps(&self) -> impl Iterator<Item = HeapId> + '_ {
        (0..self.heaps.len()).map(HeapId::from_index)
    }

    /// Iterates over all invocation-site IDs.
    pub fn invos(&self) -> impl Iterator<Item = InvoId> + '_ {
        (0..self.invos.len()).map(InvoId::from_index)
    }

    /// The program's entry-point methods (analysis roots).
    pub fn entry_points(&self) -> &[MethodId] {
        &self.entry_points
    }

    // ----- types --------------------------------------------------------

    /// The name of a class type.
    pub fn type_name(&self, ty: TypeId) -> &str {
        &self.types[ty.index()].name
    }

    /// The direct superclass, if any.
    pub fn type_parent(&self, ty: TypeId) -> Option<TypeId> {
        self.types[ty.index()].parent
    }

    /// The class hierarchy (subtyping and dispatch tables).
    pub fn hierarchy(&self) -> &Hierarchy {
        &self.hierarchy
    }

    /// `true` if `sub` is a (reflexive, transitive) subtype of `sup`.
    pub fn is_subtype(&self, sub: TypeId, sup: TypeId) -> bool {
        self.hierarchy.is_subtype(sub, sup)
    }

    /// The paper's `LOOKUP(type, sig) = meth`: resolves a virtual call
    /// signature against a dynamic receiver type.
    pub fn lookup(&self, ty: TypeId, sig: SigId) -> Option<MethodId> {
        self.hierarchy.lookup(ty, sig)
    }

    // ----- fields -------------------------------------------------------

    /// The name of a field.
    pub fn field_name(&self, field: FieldId) -> &str {
        &self.fields[field.index()].name
    }

    /// The class declaring a field.
    pub fn field_owner(&self, field: FieldId) -> TypeId {
        self.fields[field.index()].owner
    }

    /// `true` if the field is static (a global cell rather than a per-object
    /// slot).
    pub fn field_is_static(&self, field: FieldId) -> bool {
        self.fields[field.index()].is_static
    }

    // ----- signatures ---------------------------------------------------

    /// The name component of a signature.
    pub fn sig_name(&self, sig: SigId) -> &str {
        &self.sigs[sig.index()].name
    }

    /// The parameter count of a signature.
    pub fn sig_arity(&self, sig: SigId) -> usize {
        self.sigs[sig.index()].arity
    }

    // ----- methods ------------------------------------------------------

    /// The simple name of a method.
    pub fn method_name(&self, meth: MethodId) -> &str {
        &self.methods[meth.index()].name
    }

    /// A qualified `Class.name` display form.
    pub fn method_qualified_name(&self, meth: MethodId) -> String {
        let info = &self.methods[meth.index()];
        format!("{}.{}", self.types[info.declaring.index()].name, info.name)
    }

    /// The class declaring a method.
    pub fn method_declaring(&self, meth: MethodId) -> TypeId {
        self.methods[meth.index()].declaring
    }

    /// The method's signature.
    pub fn method_sig(&self, meth: MethodId) -> SigId {
        self.methods[meth.index()].sig
    }

    /// `true` if the method is static.
    pub fn method_is_static(&self, meth: MethodId) -> bool {
        self.methods[meth.index()].is_static
    }

    /// The paper's `THISVAR(meth) = this`: the receiver variable of an
    /// instance method, or `None` for static methods.
    pub fn this_var(&self, meth: MethodId) -> Option<VarId> {
        self.methods[meth.index()].this
    }

    /// The paper's `FORMALARG(meth, i) = arg` relation, as a slice.
    pub fn formals(&self, meth: MethodId) -> &[VarId] {
        &self.methods[meth.index()].formals
    }

    /// The paper's `FORMALRETURN(meth) = ret`: the variable whose value a
    /// method returns, or `None` for `void` methods.
    pub fn formal_return(&self, meth: MethodId) -> Option<VarId> {
        self.methods[meth.index()].ret
    }

    /// The instruction body of a method.
    pub fn instrs(&self, meth: MethodId) -> &[Instr] {
        &self.methods[meth.index()].instrs
    }

    /// The method's catch clauses as `(caught type, binder variable)`.
    pub fn catches(&self, meth: MethodId) -> &[(TypeId, VarId)] {
        &self.methods[meth.index()].catches
    }

    /// Source location of the method declaration ([`SrcLoc::UNKNOWN`] for
    /// programmatically built IR).
    pub fn method_loc(&self, meth: MethodId) -> SrcLoc {
        self.methods[meth.index()].loc
    }

    /// Source location of the `idx`-th instruction of `meth`, if recorded.
    pub fn instr_loc(&self, meth: MethodId, idx: usize) -> SrcLoc {
        self.methods[meth.index()]
            .instr_locs
            .get(idx)
            .copied()
            .unwrap_or(SrcLoc::UNKNOWN)
    }

    // ----- variables ----------------------------------------------------

    /// The declared name of a variable.
    pub fn var_name(&self, var: VarId) -> &str {
        &self.vars[var.index()].name
    }

    /// The unique method declaring a variable (every local "is defined in a
    /// unique method", paper §2.1).
    pub fn var_method(&self, var: VarId) -> MethodId {
        self.vars[var.index()].method
    }

    // ----- heap abstractions ---------------------------------------------

    /// A display label for an allocation site.
    pub fn heap_label(&self, heap: HeapId) -> &str {
        &self.heaps[heap.index()].label
    }

    /// The paper's `HEAPTYPE(heap) = type`: the class instantiated at the
    /// allocation site.
    pub fn heap_type(&self, heap: HeapId) -> TypeId {
        self.heaps[heap.index()].ty
    }

    /// The method containing the allocation site.
    pub fn heap_method(&self, heap: HeapId) -> MethodId {
        self.heaps[heap.index()].method
    }

    /// The paper's `CA : H -> T` map for type-sensitivity: the class
    /// *containing* the allocation site, i.e. the class declaring the
    /// allocating method (not the allocated type).
    pub fn heap_containing_class(&self, heap: HeapId) -> TypeId {
        self.method_declaring(self.heap_method(heap))
    }

    // ----- invocation sites ----------------------------------------------

    /// A display label for an invocation site.
    pub fn invo_label(&self, invo: InvoId) -> &str {
        &self.invos[invo.index()].label
    }

    /// The method containing the invocation site.
    pub fn invo_method(&self, invo: InvoId) -> MethodId {
        self.invos[invo.index()].method
    }

    /// Whether the site is a virtual or static call.
    pub fn invo_kind(&self, invo: InvoId) -> InvoKind {
        self.invos[invo.index()].kind
    }

    /// The paper's `ACTUALARG(invo, i) = arg` relation, as a slice.
    pub fn actual_args(&self, invo: InvoId) -> &[VarId] {
        &self.invos[invo.index()].args
    }

    /// The paper's `ACTUALRETURN(invo) = var`: the local receiving the
    /// call's return value, if any.
    pub fn actual_return(&self, invo: InvoId) -> Option<VarId> {
        self.invos[invo.index()].ret
    }
}

#[cfg(test)]
mod tests {
    use crate::ProgramBuilder;

    #[test]
    fn accessors_agree_with_builder() {
        let mut b = ProgramBuilder::new();
        let object = b.class("Object", None);
        let a = b.class("A", Some(object));
        let f = b.field(a, "fld");
        let m = b.method(a, "run", &["p"], false);
        let v = b.var(m, "x");
        let h = b.alloc(m, v, a, "new A");
        let p = b.formals(m)[0];
        b.store(m, v, f, p);
        let main = b.method(a, "main", &[], true);
        b.entry_point(main);
        let prog = b.finish().unwrap();

        assert_eq!(prog.type_count(), 2);
        assert_eq!(prog.field_count(), 1);
        assert_eq!(prog.method_count(), 2);
        assert_eq!(prog.heap_count(), 1);
        assert_eq!(prog.type_name(a), "A");
        assert_eq!(prog.type_parent(a), Some(object));
        assert_eq!(prog.field_owner(f), a);
        assert_eq!(prog.heap_type(h), a);
        assert_eq!(prog.heap_method(h), m);
        assert_eq!(prog.heap_containing_class(h), a);
        assert_eq!(prog.method_qualified_name(m), "A.run");
        assert_eq!(prog.formals(m).len(), 1);
        assert!(prog.this_var(m).is_some());
        assert_eq!(prog.var_method(v), m);
        assert_eq!(prog.entry_points(), &[main]);
        assert_eq!(prog.instrs(m).len(), 2);
    }

    #[test]
    fn static_method_has_no_this() {
        let mut b = ProgramBuilder::new();
        let object = b.class("Object", None);
        let a = b.class("A", Some(object));
        let m = b.method(a, "util", &[], true);
        b.entry_point(m);
        let prog = b.finish().unwrap();
        assert!(prog.method_is_static(m));
        assert_eq!(prog.this_var(m), None);
    }
}
