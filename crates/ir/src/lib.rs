//! # pta-ir — program representation for hybrid points-to analysis
//!
//! This crate implements the *domain* and *input language* of the PLDI 2013
//! paper "Hybrid Context-Sensitivity for Points-To Analysis" (Kastrinis and
//! Smaragdakis), Figure 1:
//!
//! - the value sets `V` (variables), `H` (heap abstractions / allocation
//!   sites), `M` (methods), `S` (signatures), `F` (fields), `I` (invocation
//!   sites) and `T` (class types), each modeled as a dense [`u32`] ID space
//!   (see [`ids`]);
//! - the instruction set of the simplified intermediate language: `new`
//!   (allocation), `move`, `load`, `store`, virtual calls and static calls
//!   (see [`Instr`]), plus `cast`, which the paper's evaluation uses for the
//!   *may-fail casts* client metric;
//! - the symbol-table relations `FormalArg`, `ActualArg`, `FormalReturn`,
//!   `ActualReturn`, `ThisVar`, `HeapType` and `Lookup`, which appear here as
//!   accessors on [`Program`] and as the precomputed dispatch tables in
//!   [`hierarchy`].
//!
//! The representation deliberately mirrors Java bytecode after Soot's Jimple
//! lowering (three-address form, explicit invocation sites, allocation sites
//! as heap abstractions), which is the input the paper's Doop implementation
//! consumes. Programs are constructed either programmatically through
//! [`ProgramBuilder`] or from the textual `.jir` format in the `pta-lang`
//! crate.
//!
//! As in the paper's model (§2.1), static fields, reflection, native methods
//! and threads are out of scope: "their treatment is a mere engineering
//! complexity, as it does not interact with context choice".
//!
//! ## Example
//!
//! ```
//! use pta_ir::ProgramBuilder;
//!
//! let mut b = ProgramBuilder::new();
//! let object = b.class("Object", None);
//! let c = b.class("C", Some(object));
//! let m = b.method(c, "main", &[], true);
//! let v = b.var(m, "v");
//! b.alloc(m, v, c, "new C");
//! b.entry_point(m);
//! let program = b.finish().expect("valid program");
//! assert_eq!(program.method_count(), 1);
//! ```

pub mod builder;
pub mod delta;
pub mod hash;
pub mod hierarchy;
pub mod ids;
pub mod interp;
pub mod program;
pub mod rng;
pub mod srcloc;
pub mod stats;
pub mod validate;

pub use builder::ProgramBuilder;
pub use delta::{DeltaError, ProgramDelta};
pub use hierarchy::Hierarchy;
pub use ids::{FieldId, HeapId, InvoId, MethodId, SigId, TypeId, VarId};
pub use interp::{DynamicFacts, InterpConfig, Interpreter};
pub use program::{Instr, InvoKind, Program};
pub use srcloc::SrcLoc;
pub use stats::{ProgramStats, SizeHints};
pub use validate::{validate, FieldAccess, ValidateError};
