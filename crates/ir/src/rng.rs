//! A small, dependency-free, deterministic pseudo-random number generator.
//!
//! The workload generator (and several seeded randomized tests) need a
//! reproducible source of randomness. The toolchain runs fully offline, so
//! instead of pulling in an external crate this module implements
//! `splitmix64` (Steele, Lea & Flood, OOPSLA 2014) — a tiny, statistically
//! solid 64-bit mixer that is more than adequate for driving program
//! generation. The API intentionally mirrors the subset of `rand::Rng` the
//! repo uses (`gen_range` over half-open ranges, `gen_bool`), so call sites
//! read identically.

use std::ops::Range;

/// Deterministic splitmix64 generator.
#[derive(Debug, Clone)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Creates a generator from a 64-bit seed. Equal seeds yield equal
    /// streams on every platform.
    #[must_use]
    pub fn seed_from_u64(seed: u64) -> Rng {
        Rng { state: seed }
    }

    /// The next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform sample from a half-open range, e.g. `rng.gen_range(0..n)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    #[inline]
    pub fn gen_range<T: SampleRange>(&mut self, range: Range<T>) -> T {
        T::sample(self, range)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `0.0..=1.0`.
    #[inline]
    pub fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} out of range");
        // 53 bits of mantissa give a uniform double in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }

    /// Uniform sample below `bound` (Lemire-style rejection keeps the
    /// distribution exactly uniform).
    fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "gen_range: empty range");
        // Rejection zone so that the modulo is unbiased.
        let zone = u64::MAX - (u64::MAX % bound);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % bound;
            }
        }
    }
}

/// Types that can be sampled uniformly from a `Range` by [`Rng::gen_range`].
pub trait SampleRange: Sized {
    fn sample(rng: &mut Rng, range: Range<Self>) -> Self;
}

impl SampleRange for usize {
    #[inline]
    fn sample(rng: &mut Rng, range: Range<usize>) -> usize {
        assert!(range.start < range.end, "gen_range: empty range {range:?}");
        let span = (range.end - range.start) as u64;
        range.start + rng.below(span) as usize
    }
}

impl SampleRange for u32 {
    #[inline]
    fn sample(rng: &mut Rng, range: Range<u32>) -> u32 {
        assert!(range.start < range.end, "gen_range: empty range {range:?}");
        let span = u64::from(range.end - range.start);
        range.start + rng.below(span) as u32
    }
}

impl SampleRange for u64 {
    #[inline]
    fn sample(rng: &mut Rng, range: Range<u64>) -> u64 {
        assert!(range.start < range.end, "gen_range: empty range {range:?}");
        let span = range.end - range.start;
        range.start + rng.below(span)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng::seed_from_u64(42);
        let mut b = Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng::seed_from_u64(1);
        let mut b = Rng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = Rng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = r.gen_range(3..17usize);
            assert!((3..17).contains(&v));
            let w = r.gen_range(0..5u32);
            assert!(w < 5);
        }
    }

    #[test]
    fn gen_range_hits_every_value() {
        let mut r = Rng::seed_from_u64(9);
        let mut seen = [false; 10];
        for _ in 0..500 {
            seen[r.gen_range(0..10usize)] = true;
        }
        assert!(seen.iter().all(|&s| s), "seen: {seen:?}");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = Rng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((2500..3500).contains(&hits), "hits: {hits}");
        assert!((0..100).all(|_| !r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }
}
