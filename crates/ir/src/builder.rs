//! Programmatic construction of [`Program`]s.
//!
//! [`ProgramBuilder`] is the single way to create a program: it interns
//! classes, signatures, fields, methods and variables into their dense ID
//! spaces, appends instructions, and on [`ProgramBuilder::finish`] freezes
//! everything, builds the class hierarchy, and validates well-formedness.
//!
//! The `pta-lang` textual frontend and the `pta-workload` generator are both
//! thin layers over this builder.

use crate::hash::FxHashMap;
use crate::hierarchy::Hierarchy;
use crate::ids::{FieldId, HeapId, InvoId, MethodId, SigId, TypeId, VarId};
use crate::program::{
    FieldInfo, HeapInfo, Instr, InvoInfo, InvoKind, MethodInfo, Program, SigInfo, TypeInfo, VarInfo,
};
use crate::srcloc::SrcLoc;
use crate::validate::{validate, ValidateError};

/// Incremental builder for [`Program`]s.
///
/// # Example
///
/// ```
/// use pta_ir::ProgramBuilder;
///
/// let mut b = ProgramBuilder::new();
/// let object = b.class("Object", None);
/// let c = b.class("C", Some(object));
/// let foo = b.method(c, "foo", &["o"], false);
/// let main = b.method(c, "main", &[], true);
/// let recv = b.var(main, "recv");
/// let arg = b.var(main, "arg");
/// b.alloc(main, recv, c, "new C");
/// b.alloc(main, arg, object, "new Object");
/// b.vcall(main, recv, "foo", &[arg], None, "call foo");
/// b.entry_point(main);
/// let program = b.finish()?;
/// assert_eq!(program.invo_count(), 1);
/// let _ = foo;
/// # Ok::<(), pta_ir::ValidateError>(())
/// ```
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    types: Vec<TypeInfo>,
    fields: Vec<FieldInfo>,
    sigs: Vec<SigInfo>,
    methods: Vec<MethodInfo>,
    vars: Vec<VarInfo>,
    heaps: Vec<HeapInfo>,
    invos: Vec<InvoInfo>,
    entry_points: Vec<MethodId>,
    type_by_name: FxHashMap<String, TypeId>,
    sig_by_key: FxHashMap<(String, usize), SigId>,
    field_by_key: FxHashMap<(TypeId, String), FieldId>,
}

impl ProgramBuilder {
    /// Creates an empty builder.
    pub fn new() -> ProgramBuilder {
        ProgramBuilder::default()
    }

    // ----- declarations ---------------------------------------------------

    /// Declares a class with an optional superclass, or returns the existing
    /// ID if a class of this name was already declared.
    ///
    /// # Panics
    ///
    /// Panics if the class was already declared with a *different* parent.
    pub fn class(&mut self, name: &str, parent: Option<TypeId>) -> TypeId {
        if let Some(&id) = self.type_by_name.get(name) {
            assert_eq!(
                self.types[id.index()].parent,
                parent,
                "class {name} redeclared with a different parent"
            );
            return id;
        }
        let id = TypeId::from_index(self.types.len());
        self.types.push(TypeInfo {
            name: name.to_owned(),
            parent,
        });
        self.type_by_name.insert(name.to_owned(), id);
        id
    }

    /// Looks up a previously declared class by name.
    pub fn class_by_name(&self, name: &str) -> Option<TypeId> {
        self.type_by_name.get(name).copied()
    }

    /// Interns a method signature (name, arity).
    pub fn sig(&mut self, name: &str, arity: usize) -> SigId {
        if let Some(&id) = self.sig_by_key.get(&(name.to_owned(), arity)) {
            return id;
        }
        let id = SigId::from_index(self.sigs.len());
        self.sigs.push(SigInfo {
            name: name.to_owned(),
            arity,
        });
        self.sig_by_key.insert((name.to_owned(), arity), id);
        id
    }

    /// Declares (or returns the existing) instance field `owner.name`.
    pub fn field(&mut self, owner: TypeId, name: &str) -> FieldId {
        self.field_impl(owner, name, false)
    }

    /// Declares (or returns the existing) static field `owner.name`.
    pub fn static_field(&mut self, owner: TypeId, name: &str) -> FieldId {
        self.field_impl(owner, name, true)
    }

    fn field_impl(&mut self, owner: TypeId, name: &str, is_static: bool) -> FieldId {
        if let Some(&id) = self.field_by_key.get(&(owner, name.to_owned())) {
            assert_eq!(
                self.fields[id.index()].is_static,
                is_static,
                "field {name} redeclared with different staticness"
            );
            return id;
        }
        let id = FieldId::from_index(self.fields.len());
        self.fields.push(FieldInfo {
            name: name.to_owned(),
            owner,
            is_static,
        });
        self.field_by_key.insert((owner, name.to_owned()), id);
        id
    }

    /// Declares a method on `declaring` with the given formal parameter
    /// names. Instance methods (`is_static == false`) implicitly receive a
    /// `this` variable. The signature is interned from the name and arity.
    pub fn method(
        &mut self,
        declaring: TypeId,
        name: &str,
        params: &[&str],
        is_static: bool,
    ) -> MethodId {
        let sig = self.sig(name, params.len());
        let id = MethodId::from_index(self.methods.len());
        self.methods.push(MethodInfo {
            name: name.to_owned(),
            declaring,
            sig,
            is_static,
            this: None,
            formals: Vec::new(),
            ret: None,
            instrs: Vec::new(),
            instr_locs: Vec::new(),
            loc: SrcLoc::UNKNOWN,
            catches: Vec::new(),
        });
        if !is_static {
            let this = self.var(id, "this");
            self.methods[id.index()].this = Some(this);
        }
        let formals: Vec<VarId> = params.iter().map(|p| self.var(id, p)).collect();
        self.methods[id.index()].formals = formals;
        id
    }

    /// Declares a fresh local variable in `meth`.
    pub fn var(&mut self, meth: MethodId, name: &str) -> VarId {
        let id = VarId::from_index(self.vars.len());
        self.vars.push(VarInfo {
            name: name.to_owned(),
            method: meth,
        });
        id
    }

    /// Marks `var` as the method's return variable (the paper's
    /// `FORMALRETURN`).
    pub fn set_return(&mut self, meth: MethodId, var: VarId) {
        self.methods[meth.index()].ret = Some(var);
    }

    /// The formal parameters of a previously declared method.
    pub fn formals(&self, meth: MethodId) -> &[VarId] {
        &self.methods[meth.index()].formals
    }

    /// The implicit receiver variable of an instance method.
    pub fn this(&self, meth: MethodId) -> Option<VarId> {
        self.methods[meth.index()].this
    }

    /// Registers `meth` as an analysis entry point.
    pub fn entry_point(&mut self, meth: MethodId) {
        self.entry_points.push(meth);
    }

    // ----- instructions ---------------------------------------------------

    /// Appends `var = new ty` to `meth`; returns the fresh allocation site.
    pub fn alloc(&mut self, meth: MethodId, var: VarId, ty: TypeId, label: &str) -> HeapId {
        let heap = HeapId::from_index(self.heaps.len());
        self.heaps.push(HeapInfo {
            label: label.to_owned(),
            ty,
            method: meth,
        });
        self.methods[meth.index()]
            .instrs
            .push(Instr::Alloc { var, heap });
        heap
    }

    /// Appends `to = from`.
    pub fn move_(&mut self, meth: MethodId, to: VarId, from: VarId) {
        self.methods[meth.index()]
            .instrs
            .push(Instr::Move { to, from });
    }

    /// Appends `to = (ty) from`.
    pub fn cast(&mut self, meth: MethodId, to: VarId, from: VarId, ty: TypeId) {
        self.methods[meth.index()]
            .instrs
            .push(Instr::Cast { to, from, ty });
    }

    /// Appends `to = base.field`.
    pub fn load(&mut self, meth: MethodId, to: VarId, base: VarId, field: FieldId) {
        self.methods[meth.index()]
            .instrs
            .push(Instr::Load { to, base, field });
    }

    /// Appends `base.field = from`.
    pub fn store(&mut self, meth: MethodId, base: VarId, field: FieldId, from: VarId) {
        self.methods[meth.index()]
            .instrs
            .push(Instr::Store { base, field, from });
    }

    /// Appends `throw var`.
    pub fn throw(&mut self, meth: MethodId, var: VarId) {
        self.methods[meth.index()].instrs.push(Instr::Throw { var });
    }

    /// Adds a catch clause to `meth`: exceptions of (a subtype of) `ty`
    /// reaching the method bind to a fresh variable, which is returned.
    pub fn catch_clause(&mut self, meth: MethodId, ty: TypeId, name: &str) -> VarId {
        let var = self.var(meth, name);
        self.methods[meth.index()].catches.push((ty, var));
        var
    }

    /// Appends `to = Class.field` (static-field load).
    pub fn sload(&mut self, meth: MethodId, to: VarId, field: FieldId) {
        self.methods[meth.index()]
            .instrs
            .push(Instr::SLoad { to, field });
    }

    /// Appends `Class.field = from` (static-field store).
    pub fn sstore(&mut self, meth: MethodId, field: FieldId, from: VarId) {
        self.methods[meth.index()]
            .instrs
            .push(Instr::SStore { field, from });
    }

    /// Appends a virtual call `ret = base.name(args)`; returns the fresh
    /// invocation site.
    pub fn vcall(
        &mut self,
        meth: MethodId,
        base: VarId,
        name: &str,
        args: &[VarId],
        ret: Option<VarId>,
        label: &str,
    ) -> InvoId {
        let sig = self.sig(name, args.len());
        let invo = InvoId::from_index(self.invos.len());
        self.invos.push(InvoInfo {
            label: label.to_owned(),
            method: meth,
            kind: InvoKind::Virtual,
            args: args.to_vec(),
            ret,
        });
        self.methods[meth.index()]
            .instrs
            .push(Instr::VCall { base, sig, invo });
        invo
    }

    /// Appends a static call `ret = target(args)`; returns the fresh
    /// invocation site.
    pub fn scall(
        &mut self,
        meth: MethodId,
        target: MethodId,
        args: &[VarId],
        ret: Option<VarId>,
        label: &str,
    ) -> InvoId {
        let invo = InvoId::from_index(self.invos.len());
        self.invos.push(InvoInfo {
            label: label.to_owned(),
            method: meth,
            kind: InvoKind::Static,
            args: args.to_vec(),
            ret,
        });
        self.methods[meth.index()]
            .instrs
            .push(Instr::SCall { target, invo });
        invo
    }

    // ----- source locations ------------------------------------------------

    /// Records the source location of the method declaration (used by the
    /// textual frontend so diagnostics can point at `.jir` source).
    pub fn set_method_loc(&mut self, meth: MethodId, loc: SrcLoc) {
        self.methods[meth.index()].loc = loc;
    }

    /// Records the source location of the most recently appended instruction
    /// of `meth`. Earlier instructions without a recorded location default
    /// to [`SrcLoc::UNKNOWN`].
    ///
    /// # Panics
    ///
    /// Panics if `meth` has no instructions yet.
    pub fn set_last_instr_loc(&mut self, meth: MethodId, loc: SrcLoc) {
        let info = &mut self.methods[meth.index()];
        assert!(
            !info.instrs.is_empty(),
            "set_last_instr_loc on empty method {meth}"
        );
        info.instr_locs
            .resize(info.instrs.len() - 1, SrcLoc::UNKNOWN);
        info.instr_locs.push(loc);
    }

    // ----- introspection ---------------------------------------------------
    //
    // Read access to the partially built program; used by generators that
    // post-process their own output (e.g. the workload generator's
    // dead-allocation sweep) before freezing it.

    /// Number of methods declared so far.
    pub fn method_count(&self) -> usize {
        self.methods.len()
    }

    /// The instructions appended to `meth` so far.
    pub fn instrs(&self, meth: MethodId) -> &[Instr] {
        &self.methods[meth.index()].instrs
    }

    /// The return variable of `meth`, if one was set.
    pub fn formal_return(&self, meth: MethodId) -> Option<VarId> {
        self.methods[meth.index()].ret
    }

    /// Actual arguments recorded for an invocation site.
    pub fn actual_args(&self, invo: InvoId) -> &[VarId] {
        &self.invos[invo.index()].args
    }

    /// The variable receiving an invocation site's return value, if any.
    pub fn actual_return(&self, invo: InvoId) -> Option<VarId> {
        self.invos[invo.index()].ret
    }

    // ----- finalization ----------------------------------------------------

    /// Freezes the builder into an immutable [`Program`], building the class
    /// hierarchy and dispatch tables.
    ///
    /// # Errors
    ///
    /// Returns a [`ValidateError`] if the program is ill-formed (e.g. an
    /// instruction references a variable of another method, an entry point is
    /// missing, or a call's argument count mismatches the callee).
    pub fn finish(self) -> Result<Program, ValidateError> {
        let hierarchy = Hierarchy::build(&self.types, &self.methods);
        let program = Program {
            types: self.types,
            fields: self.fields,
            sigs: self.sigs,
            methods: self.methods,
            vars: self.vars,
            heaps: self.heaps,
            invos: self.invos,
            entry_points: self.entry_points,
            hierarchy,
        };
        validate(&program)?;
        Ok(program)
    }

    /// Like [`finish`](Self::finish) but panics on ill-formed programs.
    /// Intended for generators and tests that construct programs they know
    /// to be valid.
    pub fn finish_unchecked_panic(self) -> Program {
        self.finish()
            .expect("generated program must be well-formed")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let mut b = ProgramBuilder::new();
        let object = b.class("Object", None);
        let a1 = b.class("A", Some(object));
        let a2 = b.class("A", Some(object));
        assert_eq!(a1, a2);
        let s1 = b.sig("foo", 2);
        let s2 = b.sig("foo", 2);
        let s3 = b.sig("foo", 3);
        assert_eq!(s1, s2);
        assert_ne!(s1, s3);
        let f1 = b.field(a1, "next");
        let f2 = b.field(a1, "next");
        assert_eq!(f1, f2);
    }

    #[test]
    #[should_panic(expected = "different parent")]
    fn class_redeclaration_with_new_parent_panics() {
        let mut b = ProgramBuilder::new();
        let object = b.class("Object", None);
        let a = b.class("A", Some(object));
        b.class("Object", Some(a));
    }

    #[test]
    fn overload_by_arity_gets_distinct_sigs() {
        let mut b = ProgramBuilder::new();
        let object = b.class("Object", None);
        let c = b.class("C", Some(object));
        let m0 = b.method(c, "foo", &[], false);
        let m1 = b.method(c, "foo", &["x"], false);
        let main = b.method(c, "main", &[], true);
        b.entry_point(main);
        let p = b.finish().unwrap();
        assert_ne!(p.method_sig(m0), p.method_sig(m1));
    }

    #[test]
    fn finish_rejects_cross_method_vars() {
        let mut b = ProgramBuilder::new();
        let object = b.class("Object", None);
        let c = b.class("C", Some(object));
        let m1 = b.method(c, "one", &[], true);
        let m2 = b.method(c, "two", &[], true);
        let v1 = b.var(m1, "x");
        let v2 = b.var(m2, "y");
        b.move_(m1, v1, v2); // v2 belongs to m2: ill-formed
        b.entry_point(m1);
        assert!(b.finish().is_err());
    }
}
