//! Class hierarchy: constant-time subtype tests and virtual dispatch.
//!
//! Implements the paper's `LOOKUP(type, sig) = meth` symbol-table function
//! and the subtype relation used by cast handling. Subtyping over the
//! single-inheritance class forest is answered in O(1) with an Euler-tour
//! (pre/post order) interval encoding; dispatch is a per-type table from
//! signature to the nearest definition walking up the superclass chain —
//! exactly Java's virtual method resolution.

use crate::hash::FxHashMap;
use crate::ids::{MethodId, SigId, TypeId};
use crate::program::{MethodInfo, TypeInfo};

/// Precomputed subtyping and dispatch tables for a program.
///
/// Built once by [`crate::ProgramBuilder::finish`]; immutable afterwards.
#[derive(Debug, Clone)]
pub struct Hierarchy {
    /// Euler-tour entry time per type.
    pre: Vec<u32>,
    /// Euler-tour exit time per type.
    post: Vec<u32>,
    /// Per-type virtual dispatch table: signature -> resolved method.
    dispatch: Vec<FxHashMap<SigId, MethodId>>,
    /// Children lists (kept for hierarchy queries and workload tooling).
    children: Vec<Vec<TypeId>>,
}

impl Hierarchy {
    pub(crate) fn build(types: &[TypeInfo], methods: &[MethodInfo]) -> Hierarchy {
        let n = types.len();
        let mut children: Vec<Vec<TypeId>> = vec![Vec::new(); n];
        let mut roots: Vec<TypeId> = Vec::new();
        for (i, info) in types.iter().enumerate() {
            let id = TypeId::from_index(i);
            match info.parent {
                Some(p) => children[p.index()].push(id),
                None => roots.push(id),
            }
        }

        // Iterative Euler tour over the forest.
        let mut pre = vec![0u32; n];
        let mut post = vec![0u32; n];
        let mut clock = 0u32;
        // Stack holds (type, next-child-index).
        let mut stack: Vec<(TypeId, usize)> = Vec::new();
        for &root in &roots {
            stack.push((root, 0));
            pre[root.index()] = clock;
            clock += 1;
            while let Some(top) = stack.last_mut() {
                let ty = top.0;
                if top.1 < children[ty.index()].len() {
                    let child = children[ty.index()][top.1];
                    top.1 += 1;
                    pre[child.index()] = clock;
                    clock += 1;
                    stack.push((child, 0));
                } else {
                    post[ty.index()] = clock;
                    clock += 1;
                    stack.pop();
                }
            }
        }

        // Declared methods per type (instance methods only participate in
        // virtual dispatch).
        let mut declared: Vec<FxHashMap<SigId, MethodId>> = vec![FxHashMap::default(); n];
        for (i, m) in methods.iter().enumerate() {
            if !m.is_static {
                declared[m.declaring.index()].insert(m.sig, MethodId::from_index(i));
            }
        }

        // Dispatch tables: inherit the parent's table, then overlay own
        // declarations. Parents appear before children in a forest-order
        // traversal we derive from the Euler tour (process types sorted by
        // pre-order time, so a parent's table is complete first).
        let mut order: Vec<TypeId> = (0..n).map(TypeId::from_index).collect();
        order.sort_by_key(|t| pre[t.index()]);
        let mut dispatch: Vec<FxHashMap<SigId, MethodId>> = vec![FxHashMap::default(); n];
        for ty in order {
            let mut table = match types[ty.index()].parent {
                Some(p) => dispatch[p.index()].clone(),
                None => FxHashMap::default(),
            };
            for (&sig, &m) in &declared[ty.index()] {
                table.insert(sig, m);
            }
            dispatch[ty.index()] = table;
        }

        Hierarchy {
            pre,
            post,
            dispatch,
            children,
        }
    }

    /// `true` if `sub` is a reflexive–transitive subtype of `sup`.
    #[inline]
    pub fn is_subtype(&self, sub: TypeId, sup: TypeId) -> bool {
        self.pre[sup.index()] <= self.pre[sub.index()]
            && self.post[sub.index()] <= self.post[sup.index()]
    }

    /// The paper's `LOOKUP(type, sig)`: the method a virtual call with
    /// signature `sig` resolves to when the receiver's dynamic type is `ty`.
    ///
    /// Returns `None` if no definition exists along the superclass chain
    /// (an ill-typed call; the analysis simply derives no callee for it).
    #[inline]
    pub fn lookup(&self, ty: TypeId, sig: SigId) -> Option<MethodId> {
        self.dispatch[ty.index()].get(&sig).copied()
    }

    /// Enumerates the full dispatch table of `ty`: every signature
    /// resolvable on a receiver of dynamic type `ty`, with the method it
    /// resolves to. This is the paper's `LOOKUP` relation restricted to one
    /// type; the Datalog back end materializes it as input facts.
    pub fn dispatch_entries(&self, ty: TypeId) -> impl Iterator<Item = (SigId, MethodId)> + '_ {
        self.dispatch[ty.index()].iter().map(|(&s, &m)| (s, m))
    }

    /// Direct subclasses of `ty`.
    pub fn children(&self, ty: TypeId) -> &[TypeId] {
        &self.children[ty.index()]
    }

    /// All reflexive–transitive subtypes of `ty`, in pre-order.
    pub fn subtypes(&self, ty: TypeId) -> Vec<TypeId> {
        let mut out = Vec::new();
        let mut stack = vec![ty];
        while let Some(t) = stack.pop() {
            out.push(t);
            stack.extend(self.children(t).iter().copied());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::ProgramBuilder;

    #[test]
    fn subtype_is_reflexive_and_transitive() {
        let mut b = ProgramBuilder::new();
        let object = b.class("Object", None);
        let a = b.class("A", Some(object));
        let a1 = b.class("A1", Some(a));
        let a2 = b.class("A2", Some(a));
        let deep = b.class("Deep", Some(a1));
        let m = b.method(object, "main", &[], true);
        b.entry_point(m);
        let p = b.finish().unwrap();

        for t in [object, a, a1, a2, deep] {
            assert!(p.is_subtype(t, t), "reflexive at {t:?}");
            assert!(p.is_subtype(t, object));
        }
        assert!(p.is_subtype(deep, a));
        assert!(p.is_subtype(deep, a1));
        assert!(!p.is_subtype(deep, a2));
        assert!(!p.is_subtype(a, a1));
        assert!(!p.is_subtype(a1, a2));
        assert!(!p.is_subtype(a2, a1));
    }

    #[test]
    fn dispatch_picks_nearest_override() {
        let mut b = ProgramBuilder::new();
        let object = b.class("Object", None);
        let a = b.class("A", Some(object));
        let b1 = b.class("B", Some(a));
        let c = b.class("C", Some(b1));
        let m_a = b.method(a, "foo", &["x"], false);
        let m_b = b.method(b1, "foo", &["x"], false);
        let main = b.method(object, "main", &[], true);
        b.entry_point(main);
        let sig = b.sig("foo", 1);
        let p = b.finish().unwrap();

        assert_eq!(p.lookup(a, sig), Some(m_a));
        assert_eq!(p.lookup(b1, sig), Some(m_b));
        // C inherits B's definition.
        assert_eq!(p.lookup(c, sig), Some(m_b));
        // Object has no definition.
        assert_eq!(p.lookup(object, sig), None);
    }

    #[test]
    fn static_methods_do_not_enter_dispatch() {
        let mut b = ProgramBuilder::new();
        let object = b.class("Object", None);
        let a = b.class("A", Some(object));
        let _stat = b.method(a, "util", &[], true);
        let main = b.method(object, "main", &[], true);
        b.entry_point(main);
        let sig = b.sig("util", 0);
        let p = b.finish().unwrap();
        assert_eq!(p.lookup(a, sig), None);
    }

    #[test]
    fn subtypes_enumerates_subtree() {
        let mut b = ProgramBuilder::new();
        let object = b.class("Object", None);
        let a = b.class("A", Some(object));
        let a1 = b.class("A1", Some(a));
        let a2 = b.class("A2", Some(a));
        let main = b.method(object, "main", &[], true);
        b.entry_point(main);
        let p = b.finish().unwrap();
        let mut subs = p.hierarchy().subtypes(a);
        subs.sort();
        assert_eq!(subs, vec![a, a1, a2]);
    }
}
