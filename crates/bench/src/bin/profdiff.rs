//! Compares per-rule fire counts between two profiled bench dumps.
//!
//! Usage: `profdiff BASELINE CURRENT [--tolerance PCT]`
//!
//! Both inputs are `table1 --profile --json` dumps (the checked-in
//! baseline is `BENCH_profile.json`). Rows are matched by `(workload,
//! analysis, threads)`; for every rule in a matched pair the `fires` and
//! `derived` counters are compared. The solver is deterministic, so on an
//! unchanged tree the counts agree exactly; a drift means the rule
//! engine's behaviour changed and the baseline needs a deliberate
//! regeneration. `--tolerance PCT` (default `0`) allows proportional
//! slack for experiments that are expected to move counts slightly.
//!
//! Timing (`ns`) is never compared — it is machine noise by design.
//!
//! Exit codes: `0` all matched rules agree, `1` drift detected (or no
//! comparable rows), `2` usage or input errors. CI gates on this
//! (`ci.sh` runs it with `--tolerance 5`): drift fails the build, and an
//! *intended* behaviour change must regenerate `BENCH_profile.json` in
//! the same commit (the refresh command is printed by `ci.sh` and
//! documented in the README).

use std::process::ExitCode;

use pta_bench::json::{self, Value};

const USAGE: &str = "usage: profdiff BASELINE CURRENT [--tolerance PCT]";

/// One row's rule table, keyed for matching against the other dump.
struct ProfiledRow {
    key: (String, String, u64),
    /// `(rule name, fires, derived)` in dump order.
    rules: Vec<(String, u64, u64)>,
}

fn load(path: &str) -> Result<Vec<ProfiledRow>, String> {
    let source = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let doc = json::parse(&source).map_err(|e| format!("{path}: {e}"))?;
    json::validate_rows(&doc).map_err(|e| format!("{path}: {e}"))?;
    let rows = doc.as_array().expect("validated dumps are arrays");
    let mut out = Vec::new();
    for row in rows {
        let Some(profile) = row.get("profile") else {
            continue; // unprofiled rows have nothing to diff
        };
        let field = |k: &str| row.get(k).and_then(Value::as_str).unwrap_or("").to_owned();
        let threads = row.get("threads").and_then(Value::as_number).unwrap_or(1.0) as u64;
        let rules = profile
            .get("rules")
            .and_then(Value::as_array)
            .expect("validated profiles carry a rules array")
            .iter()
            .map(|r| {
                let num = |k: &str| r.get(k).and_then(Value::as_number).unwrap_or(0.0) as u64;
                (
                    r.get("name")
                        .and_then(Value::as_str)
                        .unwrap_or("")
                        .to_owned(),
                    num("fires"),
                    num("derived"),
                )
            })
            .collect();
        out.push(ProfiledRow {
            key: (field("workload"), field("analysis"), threads),
            rules,
        });
    }
    Ok(out)
}

/// `true` if `current` is within `tolerance` (a fraction, e.g. `0.05`)
/// of `base`, in either direction.
fn within(base: u64, current: u64, tolerance: f64) -> bool {
    let slack = (base as f64 * tolerance).abs();
    (current as f64 - base as f64).abs() <= slack
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths = Vec::new();
    let mut tolerance = 0.0f64;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--tolerance" => {
                i += 1;
                let Some(v) = args.get(i).and_then(|v| v.parse::<f64>().ok()) else {
                    eprintln!("error: --tolerance needs a percentage\n{USAGE}");
                    return ExitCode::from(2);
                };
                tolerance = v / 100.0;
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => paths.push(other.to_owned()),
        }
        i += 1;
    }
    let [baseline_path, current_path] = paths.as_slice() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    let (baseline, current) = match (load(baseline_path), load(current_path)) {
        (Ok(b), Ok(c)) => (b, c),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };

    let mut compared = 0usize;
    let mut drifted = 0usize;
    for b in &baseline {
        let Some(c) = current.iter().find(|c| c.key == b.key) else {
            eprintln!(
                "[profdiff] {}/{} x{}: missing from {current_path}",
                b.key.0, b.key.1, b.key.2
            );
            drifted += 1;
            continue;
        };
        for (name, b_fires, b_derived) in &b.rules {
            let Some((_, c_fires, c_derived)) = c.rules.iter().find(|(n, _, _)| n == name) else {
                eprintln!(
                    "[profdiff] {}/{} x{}: rule {name:?} missing from {current_path}",
                    b.key.0, b.key.1, b.key.2
                );
                drifted += 1;
                continue;
            };
            compared += 1;
            for (what, base, cur) in [
                ("fires", *b_fires, *c_fires),
                ("derived", *b_derived, *c_derived),
            ] {
                if !within(base, cur, tolerance) {
                    let delta = cur as i128 - base as i128;
                    println!(
                        "{}/{} x{} {name} {what}: {base} -> {cur} ({delta:+})",
                        b.key.0, b.key.1, b.key.2
                    );
                    drifted += 1;
                }
            }
        }
    }
    if compared == 0 {
        eprintln!("error: no comparable profiled rows between the two dumps");
        return ExitCode::FAILURE;
    }
    if drifted > 0 {
        println!("[profdiff] {drifted} drifted counters across {compared} compared rules");
        return ExitCode::FAILURE;
    }
    println!("[profdiff] {compared} rule profiles match");
    ExitCode::SUCCESS
}
