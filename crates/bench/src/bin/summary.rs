//! Computes the paper's §1/§4 aggregate claims (average speedups, uniform
//! hybrid slowdowns, the 1call+H tradeoff) from a full matrix run and
//! reports paper-vs-measured for each.
//!
//! Usage: `cargo run --release -p pta-bench --bin summary -- [flags]`
//! Flags: `--scale S --workloads A,B --analyses A,B --reps N --jobs N
//! --json PATH` (`PTA_*` environment variables are the fallback for each).

use std::process::ExitCode;

use pta_bench::{maybe_dump_json, render_summary, run_matrix, MatrixOptions};

fn main() -> ExitCode {
    let mut opts = MatrixOptions::from_env();
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Err(e) = opts.apply_cli_args(&args) {
        eprintln!("error: {e}");
        eprintln!(
            "usage: summary [--scale S] [--workloads A,B] [--analyses A,B] \
             [--reps N] [--jobs N] [--cell-timeout SECS] [--json PATH]"
        );
        return ExitCode::FAILURE;
    }
    let rows = run_matrix(&opts);
    print!("{}", render_summary(&rows));
    maybe_dump_json(&opts, &rows);
    ExitCode::SUCCESS
}
