//! Computes the paper's §1/§4 aggregate claims (average speedups, uniform
//! hybrid slowdowns, the 1call+H tradeoff) from a full matrix run and
//! reports paper-vs-measured for each.
//!
//! Usage: `cargo run --release -p pta-bench --bin summary`
//! Environment: PTA_SCALE, PTA_WORKLOADS, PTA_ANALYSES, PTA_REPS, PTA_JSON.

use pta_bench::{maybe_dump_json, render_summary, run_matrix, MatrixOptions};

fn main() {
    let opts = MatrixOptions::from_env();
    let rows = run_matrix(&opts);
    print!("{}", render_summary(&rows));
    maybe_dump_json(&rows);
}
