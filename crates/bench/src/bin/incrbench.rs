//! Measures incremental fixpoint maintenance against full re-solves:
//! the experiment behind `BENCH_incremental.json`.
//!
//! A long-lived [`AnalysisSession`] solves a workload once, then absorbs
//! a stream of seeded single-method additive edits (one fresh allocation
//! appended to one existing method per edit) through
//! [`AnalysisSession::apply`]. Each apply is timed; after the stream, the
//! final program is re-solved from scratch `--reps` times for the
//! baseline. The headline number is `speedup`: median from-scratch solve
//! time over median incremental apply time.
//!
//! Wall-clock is host-dependent, so the JSON row also carries the
//! deterministic `final_ctx_tuples` / `final_reachable` counts — those
//! are what the checked-in artifact pins, and every apply is verified to
//! have taken the incremental path (`"incremental_applies"` must equal
//! `"edits"` for an `"status":"ok"` row).
//!
//! Usage: `incrbench [--workload NAME] [--scale S] [--analysis NAME]
//! [--edits N] [--seed S] [--reps N] [--threads N] [--min-speedup X]
//! [--json PATH]`
//!
//! Exit codes: 0 ok; 1 a session apply fell back to a from-scratch
//! re-solve or the measured speedup is below `--min-speedup`; 2 usage.

use std::process::ExitCode;
use std::time::Instant;

use pta_core::{Analysis, AnalysisSession, PointsToResult};
use pta_ir::{Program, ProgramDelta};
use pta_workload::{dacapo_config, generate, DACAPO_NAMES};

struct Options {
    workload: String,
    scale: f64,
    analysis: Analysis,
    edits: usize,
    seed: u64,
    reps: usize,
    threads: usize,
    min_speedup: f64,
    json: Option<String>,
}

impl Default for Options {
    fn default() -> Options {
        Options {
            workload: "luindex".into(),
            scale: 64.0,
            analysis: Analysis::TwoObjH,
            edits: 20,
            seed: 1,
            reps: 3,
            threads: 1,
            min_speedup: 0.0,
            json: None,
        }
    }
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut o = Options::default();
    let mut i = 0;
    while i < args.len() {
        let need = |key: &str| args.get(i + 1).ok_or(format!("{key} needs a value"));
        match args[i].as_str() {
            "--workload" => {
                o.workload = need("--workload")?.clone();
                if !DACAPO_NAMES.contains(&o.workload.as_str()) {
                    return Err(format!("unknown workload {}", o.workload));
                }
                i += 1;
            }
            "--scale" => {
                o.scale = need("--scale")?
                    .parse()
                    .map_err(|_| "--scale needs a number")?;
                if !(o.scale.is_finite() && o.scale > 0.0 && o.scale <= 1024.0) {
                    return Err("--scale must be in (0, 1024]".into());
                }
                i += 1;
            }
            "--analysis" => {
                o.analysis = need("--analysis")?
                    .parse()
                    .map_err(|_| "--analysis needs a known name")?;
                i += 1;
            }
            "--edits" => {
                o.edits = need("--edits")?
                    .parse()
                    .map_err(|_| "--edits needs a count")?;
                i += 1;
            }
            "--seed" => {
                o.seed = need("--seed")?
                    .parse()
                    .map_err(|_| "--seed needs an integer")?;
                i += 1;
            }
            "--reps" => {
                o.reps = need("--reps")?
                    .parse()
                    .map_err(|_| "--reps needs a count")?;
                i += 1;
            }
            "--threads" => {
                o.threads = need("--threads")?
                    .parse()
                    .map_err(|_| "--threads needs a count")?;
                i += 1;
            }
            "--min-speedup" => {
                o.min_speedup = need("--min-speedup")?
                    .parse()
                    .map_err(|_| "--min-speedup needs a number")?;
                i += 1;
            }
            "--json" => {
                o.json = Some(need("--json")?.clone());
                i += 1;
            }
            other => return Err(format!("unknown flag {other}")),
        }
        i += 1;
    }
    if o.edits == 0 || o.reps == 0 {
        return Err("--edits and --reps must be positive".into());
    }
    Ok(o)
}

/// One seeded single-method additive edit: append `fresh = new T` to a
/// randomly chosen existing method, with `T` drawn from the program's
/// classes. This is the "developer edits one method body" workload the
/// incremental engine is built for.
fn single_method_edit(program: &Program, step: usize, seed: u64) -> ProgramDelta {
    // splitmix64, same generator family as the workload crate.
    let mut state = seed
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(step as u64);
    let mut next = move || {
        state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        (z ^ (z >> 31)) as usize
    };
    let meth = pta_ir::MethodId::from_index(next() % program.method_count());
    let ty = pta_ir::TypeId::from_index(next() % program.type_count());
    let mut delta = ProgramDelta::new(program);
    let var = delta.var(meth, &format!("incr_v{step}"));
    delta.alloc(meth, var, ty, &format!("incr_h{step}"));
    delta
}

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

fn fmt_ms(secs: f64) -> f64 {
    (secs * 1e6).round() / 1e3
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let o = match parse_args(&args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!(
                "usage: incrbench [--workload NAME] [--scale S] [--analysis NAME] [--edits N] \
                 [--seed S] [--reps N] [--threads N] [--min-speedup X] [--json PATH]"
            );
            return ExitCode::from(2);
        }
    };

    let base = generate(&dacapo_config(&o.workload, o.scale));
    let mut session = AnalysisSession::open(base)
        .policy(o.analysis)
        .threads(o.threads)
        .incremental(true);
    let started = Instant::now();
    session.solve();
    let initial_solve = started.elapsed().as_secs_f64();
    println!(
        "{} @ {} x {}: initial solve {:.3}s (retained: {})",
        o.workload,
        o.scale,
        o.analysis.name(),
        initial_solve,
        session.is_retained()
    );

    let mut apply_secs: Vec<f64> = Vec::with_capacity(o.edits);
    let mut incremental_applies = 0usize;
    let mut last: Option<PointsToResult> = None;
    for step in 0..o.edits {
        let delta = single_method_edit(session.program(), step, o.seed);
        let t = Instant::now();
        let result = session.apply(&delta).expect("additive edit applies");
        apply_secs.push(t.elapsed().as_secs_f64());
        if session.last_apply_was_incremental() {
            incremental_applies += 1;
        }
        last = Some(result);
    }
    let last = last.expect("at least one edit");

    let final_program = session.program().clone();
    let mut solve_secs: Vec<f64> = Vec::with_capacity(o.reps);
    for _ in 0..o.reps {
        let mut scratch = AnalysisSession::from_arc(final_program.clone())
            .policy(o.analysis)
            .threads(o.threads);
        let t = Instant::now();
        scratch.solve();
        solve_secs.push(t.elapsed().as_secs_f64());
    }

    let med_apply = median(&mut apply_secs);
    let med_solve = median(&mut solve_secs);
    let speedup = med_solve / med_apply;
    let all_incremental = incremental_applies == o.edits;
    let status = if all_incremental { "ok" } else { "fallback" };
    println!(
        "{} edits: median apply {:.3}ms, median re-solve {:.3}ms, speedup {:.1}x ({} incremental)",
        o.edits,
        med_apply * 1e3,
        med_solve * 1e3,
        speedup,
        incremental_applies
    );

    let row = format!(
        "[\n  {{\"schema_version\":1,\"workload\":\"{}\",\"scale\":{},\"analysis\":\"{}\",\
         \"status\":\"{}\",\"threads\":{},\"edits\":{},\"seed\":{},\"reps\":{},\
         \"incremental_applies\":{},\"initial_solve_ms\":{},\"median_apply_ms\":{},\
         \"median_solve_ms\":{},\"speedup\":{:.3},\"final_ctx_tuples\":{},\
         \"final_reachable\":{},\"final_call_edges\":{}}}\n]",
        o.workload,
        o.scale,
        o.analysis.name(),
        status,
        o.threads,
        o.edits,
        o.seed,
        o.reps,
        incremental_applies,
        fmt_ms(initial_solve),
        fmt_ms(med_apply),
        fmt_ms(med_solve),
        speedup,
        last.ctx_var_points_to_count(),
        last.reachable_method_count(),
        last.ctx_call_graph_edge_count(),
    );
    if let Some(path) = &o.json {
        if let Err(e) = std::fs::write(path, format!("{row}\n")) {
            eprintln!("error: cannot write {path}: {e}");
            return ExitCode::from(2);
        }
        println!("wrote {path}");
    }

    if !all_incremental {
        eprintln!(
            "error: {} of {} applies fell back to a from-scratch re-solve",
            o.edits - incremental_applies,
            o.edits
        );
        return ExitCode::FAILURE;
    }
    if speedup < o.min_speedup {
        eprintln!(
            "error: speedup {speedup:.1}x is below the required {:.1}x",
            o.min_speedup
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
