//! Regenerates the paper's Table 1 (§4.2) over the synthetic DaCapo suite.
//!
//! Usage: `cargo run --release -p pta-bench --bin table1 -- [flags]`
//! Flags: `--scale S --workloads A,B --analyses A,B --reps N --jobs N
//! --cell-timeout SECS --json PATH --trace-dir DIR --profile` (see the
//! crate docs; `PTA_*` environment variables are the fallback for each).
//!
//! Check mode: `table1 --check FILE [--expect-cells N]` parses a previous
//! `--json` dump with the crate's own JSON reader, validates every row, and
//! exits without running anything — the CI smoke-perf step uses this to
//! assert a fresh dump is well-formed and complete. Rows with `--profile`
//! embeds validate too and are counted in the summary line.

use std::process::ExitCode;

use pta_bench::{json, maybe_dump_json, render_table1, run_matrix, MatrixOptions};

/// Count heap usage so every row carries `peak_rss_bytes` (see
/// `pta_govern::memtrack`); delegates to the system allocator.
#[global_allocator]
static ALLOC: pta_govern::memtrack::CountingAlloc = pta_govern::memtrack::CountingAlloc;

fn check(path: &str, expect_cells: Option<usize>) -> ExitCode {
    let source = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let doc = match json::parse(&source) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("error: {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let summary = match json::validate_rows(&doc) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let cells = summary.cells;
    if let Some(expected) = expect_cells {
        if cells != expected {
            eprintln!("error: {path}: {cells} cells, expected {expected}");
            return ExitCode::FAILURE;
        }
    }
    let mut notes = Vec::new();
    if summary.timeouts > 0 {
        // Timed-out cells are tolerated — the dump is well-formed and
        // complete — but loudly reported: their metrics are partial.
        notes.push(format!(
            "{} timed out; those rows carry partial results",
            summary.timeouts
        ));
    }
    if summary.memory_caps > 0 {
        notes.push(format!(
            "{} tripped their memory budget; those rows carry partial results",
            summary.memory_caps
        ));
    }
    if summary.profiled > 0 {
        notes.push(format!("{} carry profile embeds", summary.profiled));
    }
    if notes.is_empty() {
        println!("{path}: {cells} cells OK");
    } else {
        println!("{path}: {cells} cells OK ({})", notes.join("; "));
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(i) = args.iter().position(|a| a == "--check") {
        let Some(path) = args.get(i + 1) else {
            eprintln!("usage: table1 --check FILE [--expect-cells N]");
            return ExitCode::FAILURE;
        };
        let expect = match args.iter().position(|a| a == "--expect-cells") {
            Some(j) => match args.get(j + 1).and_then(|n| n.parse().ok()) {
                Some(n) => Some(n),
                None => {
                    eprintln!("error: --expect-cells needs a number");
                    return ExitCode::FAILURE;
                }
            },
            None => None,
        };
        return check(path, expect);
    }

    let mut opts = MatrixOptions::from_env();
    if let Err(e) = opts.apply_cli_args(&args) {
        eprintln!("error: {e}");
        eprintln!(
            "usage: table1 [--scale S] [--workloads A,B] [--analyses A,B] \
             [--reps N] [--jobs N] [--cell-timeout SECS] [--max-memory BYTES] \
             [--json PATH] [--trace-dir DIR] [--profile] [--taint-groups N] \
             [--share on,off] | table1 --check FILE [--expect-cells N]"
        );
        return ExitCode::FAILURE;
    }
    let rows = run_matrix(&opts);
    print!("{}", render_table1(&rows));
    maybe_dump_json(&opts, &rows);
    ExitCode::SUCCESS
}
