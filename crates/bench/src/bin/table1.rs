//! Regenerates the paper's Table 1 (§4.2) over the synthetic DaCapo suite.
//!
//! Usage: `cargo run --release -p pta-bench --bin table1`
//! Environment: PTA_SCALE, PTA_WORKLOADS, PTA_ANALYSES, PTA_REPS, PTA_JSON.

use pta_bench::{maybe_dump_json, render_table1, run_matrix, MatrixOptions};

fn main() {
    let opts = MatrixOptions::from_env();
    let rows = run_matrix(&opts);
    print!("{}", render_table1(&rows));
    maybe_dump_json(&rows);
}
