//! `soak` — deterministic fault-injection soak test for `pta serve`.
//!
//! Launches the daemon in-process (TCP only, OS-assigned port), replays a
//! seeded stream of mixed queries from several concurrent connections, and
//! checks the three robustness properties the serve design promises:
//!
//! 1. **Zero hangs** — every request gets exactly one response line before
//!    a per-read timeout; the daemon then drains cleanly (exit 0).
//! 2. **Zero wrong answers** — every response is byte-identical to a fresh
//!    batch oracle: the driver builds its own `Resident` from the same
//!    config and computes each expected line with the same pure
//!    [`pta_serve::answer`] evaluator. Faulted requests are predictable
//!    too, because the injector decides from `(seed, request id)` alone:
//!    a `cancel` fault *must* produce the `cancelled` error line, `exhaust`
//!    the `budget_exhausted` line, `garble` the `!garble <id>` line, and
//!    `delay` the normal answer (late, not different).
//! 3. **Bounded cancellation latency** — cancel-faulted requests turn
//!    around inside a generous wall-clock bound instead of wedging a
//!    worker.
//!
//! It also measures the client-observed latency distribution in the
//! shared fixed-bucket histogram from `pta-obs` (p50/p95/p99 are bucket
//! upper bounds), pulls the daemon's own metrics via the `metrics` op,
//! cross-checks the request counters against the planned stream, and
//! folds the counter section of the Prometheus exposition into a
//! digest. Counters are commutative sums of per-request increments
//! decided by `(seed, id)` alone, so with `--threads 1` the digest is
//! byte-identical across reruns — `BENCH_serve.json` pins it.
//!
//! Usage: `soak [--requests N] [--seed S] [--fault-rate R] [--threads N]
//! [--workers N] [--connections N] [--workload NAME:SCALE]
//! [--json FILE]`. Exits 0 on a clean pass, 1 with a report on any
//! violation.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::process::ExitCode;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use pta_govern::CancelToken;
use pta_ir::rng::Rng;
use pta_ir::Instr;
use pta_obs::{Metrics, LATENCY_BUCKETS_US};
use pta_serve::json::Value;
use pta_serve::{
    answer, garble_line, launch, FaultInjector, FaultKind, ProgramSource, ReqCtx, Request,
    Resident, ServeConfig,
};

/// The soak exercises the same allocator configuration as the real binary
/// so the daemon's `resident_bytes`/`request_peak_bytes` stats are live.
#[global_allocator]
static ALLOC: pta_govern::memtrack::CountingAlloc = pta_govern::memtrack::CountingAlloc;

/// Per-read timeout: a response taking longer than this counts as a hang.
const READ_TIMEOUT: Duration = Duration::from_secs(60);
/// Outstanding-request window per connection. Small enough that total
/// outstanding work stays below the queue capacity (so nothing sheds and
/// every response is oracle-predictable), large enough to keep all
/// workers busy.
const WINDOW: usize = 8;
/// Wall-clock bound on the turnaround of a cancel-faulted request.
const CANCEL_LATENCY_BOUND: Duration = Duration::from_secs(10);

struct Args {
    requests: u64,
    seed: u64,
    fault_rate: f64,
    threads: usize,
    workers: usize,
    connections: usize,
    workload: String,
    json_out: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut a = Args {
        requests: 500,
        seed: 42,
        fault_rate: 0.02,
        threads: 4,
        workers: 4,
        connections: 4,
        workload: "luindex:0.3".to_string(),
        json_out: None,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let need = |j: usize| -> Result<&String, String> {
            argv.get(j)
                .ok_or_else(|| format!("{} needs a value", argv[j - 1]))
        };
        match argv[i].as_str() {
            "--requests" => a.requests = need(i + 1)?.parse().map_err(|e| format!("{e}"))?,
            "--seed" => a.seed = need(i + 1)?.parse().map_err(|e| format!("{e}"))?,
            "--fault-rate" => a.fault_rate = need(i + 1)?.parse().map_err(|e| format!("{e}"))?,
            "--threads" => a.threads = need(i + 1)?.parse().map_err(|e| format!("{e}"))?,
            "--workers" => a.workers = need(i + 1)?.parse().map_err(|e| format!("{e}"))?,
            "--connections" => a.connections = need(i + 1)?.parse().map_err(|e| format!("{e}"))?,
            "--workload" => a.workload = need(i + 1)?.clone(),
            "--json" => a.json_out = Some(need(i + 1)?.clone()),
            other => return Err(format!("unknown flag {other}")),
        }
        i += 2;
    }
    if a.requests == 0 || a.connections == 0 {
        return Err("--requests and --connections must be positive".into());
    }
    Ok(a)
}

/// One generated request: the wire line, the parsed form for the oracle,
/// and the injector's (deterministic) decision for its id.
struct Planned {
    line: String,
    fault: Option<FaultKind>,
}

/// Builds the seeded request mix. Ops cycle through the four query kinds
/// with valid targets drawn from the program and a sprinkling of invalid
/// ones (which must answer structured errors, also byte-predictable).
fn plan_requests(args: &Args, resident: &Resident, injector: &FaultInjector) -> Vec<Planned> {
    let rp = &resident.programs[0];
    let program = &rp.program;
    let mut rng = Rng::seed_from_u64(args.seed ^ 0x5eed_50a1);

    // Target pools, all in deterministic arena order.
    let mut var_names: Vec<String> = Vec::new();
    for v in program.vars() {
        let name = program.var_name(v);
        if var_names.len() < 256 && !var_names.iter().any(|n| n == name) {
            var_names.push(name.to_string());
        }
    }
    let invo_count = program.invo_count() as u64;
    let mut casts: Vec<(String, usize)> = Vec::new();
    for m in program.methods() {
        for (idx, instr) in program.instrs(m).iter().enumerate() {
            if matches!(instr, Instr::Cast { .. }) && casts.len() < 256 {
                casts.push((program.method_qualified_name(m), idx));
            }
        }
    }
    assert!(
        !var_names.is_empty() && invo_count > 0,
        "workload too small"
    );

    let policies = ["insens", "2obj+H"];
    let mut planned = Vec::with_capacity(args.requests as usize);
    for id in 1..=args.requests {
        let policy = if rng.gen_bool(0.2) {
            None // exercise the default-policy path
        } else {
            Some(policies[rng.gen_range(0..policies.len() as u64) as usize])
        };
        let program_field = if rng.gen_bool(0.3) {
            Some(rp.name.clone())
        } else {
            None
        };
        let bogus = rng.gen_bool(0.1);
        let mut line = format!("{{\"id\":{id},\"op\":");
        match rng.gen_range(0..4u64) {
            0 | 3 => {
                let op = if rng.gen_bool(0.5) {
                    "points_to"
                } else {
                    "findings"
                };
                let var = if bogus {
                    format!("no_such_var_{id}")
                } else {
                    var_names[rng.gen_range(0..var_names.len() as u64) as usize].clone()
                };
                line.push_str(&format!("\"{op}\",\"var\":\"{var}\""));
            }
            1 => {
                let invo = if bogus {
                    invo_count + id
                } else {
                    rng.gen_range(0..invo_count)
                };
                line.push_str(&format!("\"devirt\",\"invo\":{invo}"));
            }
            _ => {
                if bogus || casts.is_empty() {
                    line.push_str("\"cast_check\",\"method\":\"No.method\",\"instr\":0");
                } else {
                    let (m, idx) = &casts[rng.gen_range(0..casts.len() as u64) as usize];
                    line.push_str(&format!(
                        "\"cast_check\",\"method\":\"{m}\",\"instr\":{idx}"
                    ));
                }
            }
        }
        if let Some(p) = policy {
            line.push_str(&format!(",\"policy\":\"{p}\""));
        }
        if let Some(p) = &program_field {
            line.push_str(&format!(",\"program\":\"{p}\""));
        }
        line.push('}');
        planned.push(Planned {
            line,
            fault: injector.decide(id),
        });
    }
    planned
}

/// Computes the oracle's expected response bytes for one planned request,
/// replaying the injector's decision through the same evaluator the
/// daemon uses.
fn expected_line(p: &Planned, resident: &Resident) -> String {
    let req: Request = pta_serve::parse_request(&p.line).expect("planned lines are well-formed");
    match p.fault {
        Some(FaultKind::Garble) => garble_line(req.id),
        Some(FaultKind::Cancel) => {
            let cancel = CancelToken::new();
            cancel.cancel();
            answer(&req, resident, &mut ReqCtx::new(cancel, None, None))
        }
        Some(FaultKind::Exhaust) => answer(
            &req,
            resident,
            &mut ReqCtx::new(CancelToken::new(), None, Some(0)),
        ),
        // A delay changes when the answer arrives, never what it says.
        Some(FaultKind::Delay) | None => answer(&req, resident, &mut ReqCtx::unlimited()),
    }
}

/// Sends one control request on a fresh connection and returns the
/// single response line.
fn control_request(port: u16, line: &str) -> String {
    let stream = TcpStream::connect(("127.0.0.1", port)).expect("connect for control op");
    stream.set_read_timeout(Some(READ_TIMEOUT)).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    writer.write_all(format!("{line}\n").as_bytes()).unwrap();
    let mut out = String::new();
    reader.read_line(&mut out).unwrap();
    out.trim_end().to_string()
}

/// FNV-1a over the counter sections of a Prometheus exposition (the
/// `# TYPE ... counter` header and its series lines, in registry
/// order). Counters are deterministic sums of per-request increments
/// decided by `(seed, id)`, so this digest is rerun-stable; latency
/// histograms and point-in-time gauges are excluded by construction.
fn digest_counters(prom: &str) -> String {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    let mut absorb = |line: &str| {
        for &b in line.as_bytes() {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        hash ^= u64::from(b'\n');
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    };
    let mut counting = false;
    for line in prom.lines() {
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            counting = rest.ends_with(" counter");
        }
        if counting {
            absorb(line);
        }
    }
    format!("{hash:016x}")
}

/// The value of one exposition series, e.g.
/// `prom_value(text, "pta_requests_total{op=\"devirt\"}")`.
fn prom_value(prom: &str, series: &str) -> Option<u64> {
    prom.lines().find_map(|l| {
        l.strip_prefix(series)
            .and_then(|rest| rest.trim().parse().ok())
    })
}

/// Pulls the request id back out of a response line (normal responses
/// carry `"id":N`, garbled ones are `!garble N`).
fn response_id(line: &str) -> Option<u64> {
    if let Some(rest) = line.strip_prefix("!garble ") {
        return rest.trim().parse().ok();
    }
    let at = line.find("\"id\":")? + 5;
    let digits: String = line[at..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    digits.parse().ok()
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("soak: {e}");
            return ExitCode::from(2);
        }
    };
    let injector = FaultInjector {
        rate: args.fault_rate,
        kinds: vec![
            FaultKind::Delay,
            FaultKind::Cancel,
            FaultKind::Exhaust,
            FaultKind::Garble,
        ],
        seed: args.seed,
    };
    let sources = match ProgramSource::parse_workload(&args.workload) {
        Ok(s) => vec![s],
        Err(e) => {
            eprintln!("soak: --workload: {e}");
            return ExitCode::from(2);
        }
    };
    let policies = vec!["insens".to_string(), "2obj+H".to_string()];
    let solve = pta_serve::SolveConfig {
        threads: args.threads,
        ..pta_serve::SolveConfig::default()
    };

    eprintln!(
        "soak: {} requests, seed {}, fault rate {}, {} connections -> {} workers",
        args.requests, args.seed, args.fault_rate, args.connections, args.workers
    );

    // The oracle: an independent Resident from the same config. Startup
    // solves are deterministic, so the daemon's copy answers identically.
    let t0 = Instant::now();
    let oracle = match Resident::build(&sources, &policies, &solve) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("soak: oracle build failed: {e}");
            return ExitCode::from(2);
        }
    };
    let planned = plan_requests(&args, &oracle, &injector);
    let expected: HashMap<u64, String> = planned
        .iter()
        .enumerate()
        .map(|(i, p)| (i as u64 + 1, expected_line(p, &oracle)))
        .collect();
    let predicted_faults = planned.iter().filter(|p| p.fault.is_some()).count();
    eprintln!(
        "soak: oracle ready in {:.1?} ({} faults predicted)",
        t0.elapsed(),
        predicted_faults
    );

    let handle = match launch(ServeConfig {
        sources,
        policies,
        solve,
        workers: args.workers,
        queue_capacity: args.connections * WINDOW + args.workers + 8,
        port: Some(0),
        use_stdin: false,
        faults: Some(injector),
        ..ServeConfig::default()
    }) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("soak: launch failed: {e}");
            return ExitCode::from(2);
        }
    };
    let port = handle.port.expect("TCP was requested");

    // Replay: each connection owns a round-robin slice of the stream and
    // keeps up to WINDOW requests outstanding, matching responses by id.
    let mismatches = Arc::new(AtomicU64::new(0));
    let hangs = Arc::new(AtomicU64::new(0));
    let max_latency_us = Arc::new(AtomicU64::new(0));
    let max_cancel_latency_us = Arc::new(AtomicU64::new(0));
    // Client-observed latency distribution, in the same fixed buckets
    // the daemon uses for `pta_request_latency_us`.
    let client_metrics = Metrics::enabled();
    let latency_hist = client_metrics.histogram("soak_request_latency_us", &[], LATENCY_BUCKETS_US);
    let expected = Arc::new(expected);
    let cancel_ids: Arc<Vec<u64>> = Arc::new(
        planned
            .iter()
            .enumerate()
            .filter(|(_, p)| p.fault == Some(FaultKind::Cancel))
            .map(|(i, _)| i as u64 + 1)
            .collect(),
    );
    let lines: Arc<Vec<String>> = Arc::new(planned.into_iter().map(|p| p.line).collect());

    let replay_start = Instant::now();
    let mut clients = Vec::new();
    for c in 0..args.connections {
        let lines = Arc::clone(&lines);
        let expected = Arc::clone(&expected);
        let mismatches = Arc::clone(&mismatches);
        let hangs = Arc::clone(&hangs);
        let max_latency_us = Arc::clone(&max_latency_us);
        let max_cancel_latency_us = Arc::clone(&max_cancel_latency_us);
        let cancel_ids = Arc::clone(&cancel_ids);
        let latency_hist = latency_hist.clone();
        let connections = args.connections;
        clients.push(std::thread::spawn(move || {
            let stream = TcpStream::connect(("127.0.0.1", port)).expect("connect");
            stream.set_read_timeout(Some(READ_TIMEOUT)).unwrap();
            stream.set_nodelay(true).ok();
            let mut writer = stream.try_clone().expect("clone stream");
            let mut reader = BufReader::new(stream);
            let mine: Vec<usize> = (0..lines.len()).skip(c).step_by(connections).collect();
            let mut sent_at: HashMap<u64, Instant> = HashMap::new();
            let mut next = 0usize;
            let mut received = 0usize;
            while received < mine.len() {
                while next < mine.len() && sent_at.len() < WINDOW {
                    let idx = mine[next];
                    sent_at.insert(idx as u64 + 1, Instant::now());
                    writer
                        .write_all(format!("{}\n", lines[idx]).as_bytes())
                        .expect("write request");
                    next += 1;
                }
                let mut line = String::new();
                match reader.read_line(&mut line) {
                    Ok(0) => panic!("connection closed with {received}/{} answered", mine.len()),
                    Ok(_) => {}
                    Err(e) => {
                        eprintln!("soak: HANG: read timed out/failed on conn {c}: {e}");
                        hangs.fetch_add(1, Ordering::SeqCst);
                        return;
                    }
                }
                let line = line.trim_end_matches('\n');
                let Some(id) = response_id(line) else {
                    eprintln!("soak: MISMATCH: uncorrelatable response {line:?}");
                    mismatches.fetch_add(1, Ordering::SeqCst);
                    received += 1;
                    continue;
                };
                let latency = sent_at.remove(&id).map_or(Duration::ZERO, |t| t.elapsed());
                let us = u64::try_from(latency.as_micros()).unwrap_or(u64::MAX);
                max_latency_us.fetch_max(us, Ordering::SeqCst);
                latency_hist.observe(us);
                if cancel_ids.contains(&id) {
                    max_cancel_latency_us.fetch_max(us, Ordering::SeqCst);
                }
                received += 1;
                match expected.get(&id) {
                    Some(want) if want == line => {}
                    Some(want) => {
                        eprintln!("soak: MISMATCH id {id}:\n  want: {want}\n  got:  {line}");
                        mismatches.fetch_add(1, Ordering::SeqCst);
                    }
                    None => {
                        eprintln!("soak: MISMATCH: unexpected response id {id}: {line}");
                        mismatches.fetch_add(1, Ordering::SeqCst);
                    }
                }
            }
        }));
    }
    for cthread in clients {
        if cthread.join().is_err() {
            hangs.fetch_add(1, Ordering::SeqCst);
        }
    }
    let replay_elapsed = replay_start.elapsed();

    // Pull the daemon's own accounting before shutting it down.
    let stats = control_request(port, "{\"id\":0,\"op\":\"stats\"}");
    let metrics_reply = control_request(port, "{\"id\":0,\"op\":\"metrics\"}");
    let prometheus = pta_serve::json::parse(&metrics_reply)
        .ok()
        .and_then(|v| match v.get("prometheus") {
            Some(Value::String(s)) => Some(s.clone()),
            _ => None,
        })
        .unwrap_or_default();
    let digest = digest_counters(&prometheus);

    handle.request_shutdown();
    let exit = handle.wait();

    let n_mismatch = mismatches.load(Ordering::SeqCst);
    let n_hangs = hangs.load(Ordering::SeqCst);
    let max_lat = Duration::from_micros(max_latency_us.load(Ordering::SeqCst));
    let max_cancel_lat = Duration::from_micros(max_cancel_latency_us.load(Ordering::SeqCst));
    let (p50, p95, p99) = (
        latency_hist.quantile(0.50),
        latency_hist.quantile(0.95),
        latency_hist.quantile(0.99),
    );
    println!(
        "soak: {} requests in {:.1?} | faults {} | max latency {:.1?} | max cancel latency {:.1?}",
        args.requests, replay_elapsed, predicted_faults, max_lat, max_cancel_lat
    );
    println!("soak: latency p50 <= {p50}us, p95 <= {p95}us, p99 <= {p99}us (bucket upper bounds)");
    println!("soak: metrics digest {digest}");
    println!("soak: daemon stats: {stats}");

    let mut failed = false;
    // Cross-check: the daemon's own request counters must account for
    // exactly the planned query stream (plus the stats + metrics pulls
    // this driver makes, counted under their own op labels).
    let counted: u64 = ["points_to", "findings", "devirt", "cast_check"]
        .iter()
        .map(|op| {
            prom_value(&prometheus, &format!("pta_requests_total{{op=\"{op}\"}}")).unwrap_or(0)
        })
        .sum();
    if counted != args.requests {
        println!(
            "soak: FAIL: daemon query counters sum to {counted}, want {} requests",
            args.requests
        );
        failed = true;
    }
    if prom_value(&prometheus, "pta_requests_shed_total").unwrap_or(0) != 0 {
        println!("soak: FAIL: requests were shed; the window should keep the queue under capacity");
        failed = true;
    }
    let hist_count = prom_value(
        &prometheus,
        "pta_request_latency_us_count{op=\"points_to\"}",
    );
    if hist_count.is_none_or(|n| n == 0) {
        println!("soak: FAIL: daemon latency histogram recorded no points_to observations");
        failed = true;
    }
    if n_hangs > 0 {
        println!("soak: FAIL: {n_hangs} hang(s)");
        failed = true;
    }
    if n_mismatch > 0 {
        println!("soak: FAIL: {n_mismatch} response(s) differed from the oracle");
        failed = true;
    }
    if !cancel_ids.is_empty() && max_cancel_lat > CANCEL_LATENCY_BOUND {
        println!(
            "soak: FAIL: cancel latency {max_cancel_lat:.1?} exceeds bound {CANCEL_LATENCY_BOUND:?}"
        );
        failed = true;
    }
    if exit != 0 {
        println!("soak: FAIL: daemon drain exited {exit}, want 0");
        failed = true;
    }
    if !stats.contains(&format!("\"served\":{}", args.requests)) {
        println!(
            "soak: FAIL: daemon served-count disagrees with {} requests: {stats}",
            args.requests
        );
        failed = true;
    }
    if let Some(path) = &args.json_out {
        let row = format!(
            "[\n  {{\"schema_version\":1,\"driver\":\"soak\",\"workload\":\"{}\",\"requests\":{},\"seed\":{},\"fault_rate\":{},\"threads\":{},\"workers\":{},\"connections\":{},\"faults\":{},\"replay_ms\":{},\"p50_us\":{p50},\"p95_us\":{p95},\"p99_us\":{p99},\"max_us\":{},\"metrics_digest\":\"{digest}\",\"passed\":{}}}\n]\n",
            args.workload,
            args.requests,
            args.seed,
            args.fault_rate,
            args.threads,
            args.workers,
            args.connections,
            predicted_faults,
            replay_elapsed.as_millis(),
            max_latency_us.load(Ordering::SeqCst),
            !failed
        );
        if let Err(e) = std::fs::write(path, row) {
            eprintln!("soak: cannot write {path}: {e}");
            return ExitCode::from(2);
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        println!("soak: PASS");
        ExitCode::SUCCESS
    }
}
