//! Regenerates the paper's Figure 3 (§4.1): execution time vs may-fail
//! casts, one series per benchmark. Prints CSV data followed by ASCII
//! scatter plots (lower-left is better, as in the paper).
//!
//! Usage: `cargo run --release -p pta-bench --bin figure3 -- [flags]`
//! Flags: `--scale S --workloads A,B --analyses A,B --reps N --jobs N
//! --json PATH` (`PTA_*` environment variables are the fallback for each).

use std::process::ExitCode;

use pta_bench::{
    maybe_dump_json, render_figure3_csv, render_figure3_scatter, run_matrix, MatrixOptions,
};

fn main() -> ExitCode {
    let mut opts = MatrixOptions::from_env();
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Err(e) = opts.apply_cli_args(&args) {
        eprintln!("error: {e}");
        eprintln!(
            "usage: figure3 [--scale S] [--workloads A,B] [--analyses A,B] \
             [--reps N] [--jobs N] [--cell-timeout SECS] [--json PATH]"
        );
        return ExitCode::FAILURE;
    }
    let rows = run_matrix(&opts);
    println!("{}", render_figure3_csv(&rows));
    print!("{}", render_figure3_scatter(&rows));
    maybe_dump_json(&opts, &rows);
    ExitCode::SUCCESS
}
