//! Regenerates the paper's Figure 3 (§4.1): execution time vs may-fail
//! casts, one series per benchmark. Prints CSV data followed by ASCII
//! scatter plots (lower-left is better, as in the paper).
//!
//! Usage: `cargo run --release -p pta-bench --bin figure3`
//! Environment: PTA_SCALE, PTA_WORKLOADS, PTA_ANALYSES, PTA_REPS, PTA_JSON.

use pta_bench::{
    maybe_dump_json, render_figure3_csv, render_figure3_scatter, run_matrix, MatrixOptions,
};

fn main() {
    let opts = MatrixOptions::from_env();
    let rows = run_matrix(&opts);
    println!("{}", render_figure3_csv(&rows));
    print!("{}", render_figure3_scatter(&rows));
    maybe_dump_json(&rows);
}
