//! # pta-bench — the experiment harness
//!
//! Regenerates **every table and figure** of the paper's evaluation (§4):
//!
//! | paper artifact | binary | output |
//! |---|---|---|
//! | Table 1 (12 analyses × 10 benchmarks × 6 metrics) | `table1` | the table, in the paper's layout, plus JSON rows |
//! | Figure 3 (time vs may-fail casts scatter) | `figure3` | per-benchmark CSV series + ASCII scatter |
//! | §1/§4 summary statistics (speedups, slowdowns) | `summary` | the aggregate claims, paper vs. measured |
//!
//! All binaries accept environment variables and equivalent command-line
//! flags (flags win when both are given):
//!
//! - `PTA_SCALE` / `--scale S` — workload scale factor (default `1.0`; the
//!   full DaCapo suite at scale 1 runs the complete matrix in well under a
//!   minute);
//! - `PTA_WORKLOADS` / `--workloads A,B` — comma-separated subset of
//!   benchmark names;
//! - `PTA_ANALYSES` / `--analyses A,B` — comma-separated subset of analysis
//!   names (e.g. `1obj,S-2obj+H`);
//! - `PTA_THREADS` / `--threads N,M` — comma-separated dense-solver worker
//!   counts; every `(workload, analysis)` cell is solved once per count and
//!   emits one row per count (`1` = sequential, `0` = one per core, default
//!   `1`). Results are identical across counts, so extra counts measure
//!   parallel speedup — the format used by `BENCH_parallel.json`;
//! - `PTA_REPS` / `--reps N` — repetitions per cell (median reported);
//! - `PTA_JOBS` / `--jobs N` — worker threads for the matrix (`1` =
//!   sequential, `0` = one per core, default). Cells are farmed out to
//!   workers; row order in every output is deterministic regardless of
//!   completion order. Use `--jobs 1` for timing-grade runs — parallel
//!   cells contend for cores and per-cell times become pessimistic;
//! - `PTA_CELL_TIMEOUT` / `--cell-timeout SECS` — per-cell wall-clock
//!   deadline. A cell whose solve trips the deadline is retried once
//!   (transient contention on a loaded box is the common cause); if the
//!   retry trips too, the cell's row is emitted with `"status":"timeout"`
//!   and carries whatever the partial solve salvaged. With a timeout set,
//!   all cells also share one SIGINT-linked [`pta_core::CancelToken`], so
//!   ctrl-c drains the matrix cooperatively instead of killing it: every
//!   unfinished cell comes back as a timeout row and the outputs still
//!   render;
//! - `PTA_JSON` / `--json PATH` — dump the raw [`ExperimentRow`]s (wall
//!   time, precision metrics, and solver counters) as JSON, the format
//!   checked in as `BENCH_baseline.json` and consumed by `table1 --check`;
//! - `PTA_TRACE_DIR` / `--trace-dir DIR` — record a Chrome trace-event
//!   JSON file per cell into `DIR` (created if missing), named
//!   `{workload}-{analysis}-t{threads}.trace.json`. Every repetition of
//!   the cell lands on the same timeline. Tracing skews wall times, so
//!   traced dumps are diagnostics, not measurements;
//! - `PTA_PROFILE` / `--profile` — collect a per-rule evaluation profile
//!   per cell and embed it in the JSON row under `"profile"` (the format
//!   checked in as `BENCH_profile.json` and diffed by `profdiff`).
//!   Profiling forces the solve sequential, so profiled rows ignore
//!   multi-thread counts for timing purposes;
//! - `PTA_TAINT_GROUPS` / `--taint-groups N` — inject `N` taint fixture
//!   groups into every generated workload and run the `pta check` client
//!   suite (taint, escape, nullness) against each cell's final result,
//!   embedding the finding counts in the JSON row under `"clients"`.
//!   The clients run after the clock stops, like the precision metrics,
//!   so timings stay comparable; `0` (the default) leaves the workloads
//!   byte-identical to earlier schema revisions.
//!
//! Micro-benchmarks (`cargo bench`, plain `main`-style harnesses) cover
//! per-analysis solver time (`analyses`), the design-choice ablations
//! called out in DESIGN.md (`ablation`), and solver-internals (`solver`).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use pta_clients::{
    client_metrics, precision_metrics, run_check, CheckSpec, ClientBackend, ClientMetrics,
    ExperimentMetrics,
};
use pta_core::{Analysis, AnalysisSession, Budget, CancelToken, SolverStats};
use pta_ir::{Program, ProgramStats};
use pta_workload::{DACAPO_NAMES, TAINT_SPEC};

pub mod json;
pub mod render;
pub mod timing;

pub use render::{render_figure3_csv, render_figure3_scatter, render_summary, render_table1};

// Re-export for binaries.
pub use pta_workload::dacapo_config as workload_config;

/// Version of the JSON row format emitted by [`ExperimentRow::to_json`].
///
/// History: v1 (unversioned) dumps predate the `schema_version` and
/// `threads` fields; v2 added both. `table1 --check` accepts either —
/// see [`json::validate_rows`].
pub const SCHEMA_VERSION: u32 = 2;

/// How a matrix cell ended: completed, timed out (even after the one
/// retry), or tripped a `--max-memory` budget; partial rows carry the
/// salvaged solve's numbers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CellStatus {
    /// The solve reached its fixpoint; the row is a real measurement.
    #[default]
    Ok,
    /// The per-cell deadline (or a shared cancellation) tripped twice;
    /// every metric in the row under-approximates the true fixpoint.
    Timeout,
    /// The solver's memory estimate crossed the cell's `--max-memory`
    /// budget. Deterministic (the estimate is a model, not a host
    /// measurement), so the cell is not retried; every metric
    /// under-approximates the true fixpoint.
    MemoryCap,
}

impl CellStatus {
    /// Stable machine-readable name, used verbatim in JSON rows.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            CellStatus::Ok => "ok",
            CellStatus::Timeout => "timeout",
            CellStatus::MemoryCap => "memory_cap",
        }
    }
}

/// One `(workload, analysis)` measurement: every Table 1 cell group.
#[derive(Debug, Clone)]
pub struct ExperimentRow {
    /// Benchmark name (Table 1 row).
    pub workload: String,
    /// Analysis name (Table 1 column).
    pub analysis: String,
    /// Whether the cell completed or timed out.
    pub status: CellStatus,
    /// Dense-solver worker count the cell was solved with (`1` =
    /// sequential; results are identical for every value, only
    /// `time_secs` changes).
    pub threads: usize,
    /// Reachable methods ("over ~N meths").
    pub reachable_methods: usize,
    /// "avg objs per var".
    pub avg_objs_per_var: f64,
    /// "edges" in the context-insensitive call graph.
    pub call_graph_edges: usize,
    /// "poly v-calls".
    pub poly_v_calls: usize,
    /// Total reachable virtual call sites ("of ~N").
    pub reachable_v_calls: usize,
    /// "may-fail casts".
    pub may_fail_casts: usize,
    /// Total reachable casts ("of ~N").
    pub reachable_casts: usize,
    /// "elapsed time (s)".
    pub time_secs: f64,
    /// "sensitive var-points-to" (tuples; the paper reports millions).
    pub sensitive_var_points_to: u64,
    /// Distinct calling contexts.
    pub contexts: usize,
    /// Distinct heap contexts.
    pub heap_contexts: usize,
    /// Exception sites that may escape `main` uncaught.
    pub uncaught_exception_sites: usize,
    /// The solver's internal counters for the timed run (rule firings,
    /// dedup traffic, worklist shape).
    pub stats: SolverStats,
    /// Per-rule evaluation profile of the final repetition, when the cell
    /// ran with profiling on (`--profile`). Optional in the JSON row, so
    /// the schema stays at v2.
    pub profile: Option<pta_obs::Profile>,
    /// `pta check` client finding counts (taint / escape / nullness),
    /// when the cell ran with taint fixtures injected (`--taint-groups`).
    /// Like `profile`, optional in the JSON row — the schema stays at v2.
    pub clients: Option<ClientMetrics>,
    /// Peak heap bytes over the cell's solves, measured by the binary's
    /// counting allocator (`pta_govern::memtrack`; the high-water mark is
    /// reset at cell start). `None` — and absent from the JSON row — in
    /// processes without the allocator installed, e.g. unit tests. With
    /// `--jobs > 1` the counter is process-wide, so concurrent cells
    /// inflate each other; memory experiments run `--jobs 1`.
    pub peak_rss_bytes: Option<u64>,
    /// `true` for cells solved with hash-consed set sharing disabled
    /// (`--share on,off` axis). Emitted as an optional `"no_share":true`
    /// so default rows are unchanged and the schema stays at v2.
    pub no_share: bool,
}

impl ExperimentRow {
    #[allow(clippy::too_many_arguments)]
    fn new(
        workload: &str,
        analysis: Analysis,
        status: CellStatus,
        threads: usize,
        m: &ExperimentMetrics,
        time_secs: f64,
        stats: SolverStats,
        profile: Option<pta_obs::Profile>,
        clients: Option<ClientMetrics>,
        peak_rss_bytes: Option<u64>,
        no_share: bool,
    ) -> Self {
        ExperimentRow {
            workload: workload.to_owned(),
            analysis: analysis.name().to_owned(),
            status,
            threads,
            reachable_methods: m.reachable_methods,
            avg_objs_per_var: m.avg_var_points_to,
            call_graph_edges: m.call_graph_edges,
            poly_v_calls: m.poly_virtual_calls,
            reachable_v_calls: m.reachable_virtual_calls,
            may_fail_casts: m.may_fail_casts,
            reachable_casts: m.reachable_casts,
            time_secs,
            sensitive_var_points_to: m.ctx_var_points_to,
            contexts: m.contexts,
            heap_contexts: m.heap_contexts,
            uncaught_exception_sites: m.uncaught_exception_sites,
            stats,
            profile,
            clients,
            peak_rss_bytes,
            no_share,
        }
    }
}

/// Escapes a string for inclusion in a JSON document.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Formats an `f64` as a JSON number (finite values only).
fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".to_owned()
    }
}

impl ExperimentRow {
    /// Serializes the row as a single-line JSON object. The toolchain runs
    /// fully offline, so this is hand-rolled rather than serde-derived.
    /// Profiled cells append an optional `"profile"` object — an addition
    /// consumers treat as optional, so the schema stays at v2.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\"schema_version\":{},\"workload\":\"{}\",\"analysis\":\"{}\",\
             \"status\":\"{}\",\"threads\":{},\"reachable_methods\":{},\
             \"avg_objs_per_var\":{},\"call_graph_edges\":{},\"poly_v_calls\":{},\
             \"reachable_v_calls\":{},\"may_fail_casts\":{},\"reachable_casts\":{},\
             \"time_secs\":{},\"sensitive_var_points_to\":{},\"contexts\":{},\
             \"heap_contexts\":{},\"uncaught_exception_sites\":{},\"stats\":{}",
            SCHEMA_VERSION,
            json_escape(&self.workload),
            json_escape(&self.analysis),
            self.status.as_str(),
            self.threads,
            self.reachable_methods,
            json_f64(self.avg_objs_per_var),
            self.call_graph_edges,
            self.poly_v_calls,
            self.reachable_v_calls,
            self.may_fail_casts,
            self.reachable_casts,
            json_f64(self.time_secs),
            self.sensitive_var_points_to,
            self.contexts,
            self.heap_contexts,
            self.uncaught_exception_sites,
            self.stats.to_json(),
        );
        if let Some(p) = &self.profile {
            out.push_str(&format!(",\"profile\":{}", p.to_json()));
        }
        if let Some(c) = &self.clients {
            out.push_str(&format!(
                ",\"clients\":{{\"taint\":{},\"escape\":{},\"nullness\":{}}}",
                c.taint_findings, c.escape_findings, c.nullness_findings
            ));
        }
        if let Some(peak) = self.peak_rss_bytes {
            out.push_str(&format!(",\"peak_rss_bytes\":{peak}"));
        }
        if self.no_share {
            out.push_str(",\"no_share\":true");
        }
        out.push('}');
        out
    }
}

/// Serializes rows as a JSON array, one object per line.
#[must_use]
pub fn rows_to_json(rows: &[ExperimentRow]) -> String {
    let body: Vec<String> = rows.iter().map(|r| format!("  {}", r.to_json())).collect();
    format!("[\n{}\n]", body.join(",\n"))
}

/// Harness options, usually read from the environment via
/// [`MatrixOptions::from_env`].
#[derive(Debug, Clone)]
pub struct MatrixOptions {
    /// Workload scale factor.
    pub scale: f64,
    /// Benchmarks to run (Table 1 row order).
    pub workloads: Vec<String>,
    /// Analyses to run (Table 1 column order).
    pub analyses: Vec<Analysis>,
    /// Dense-solver worker counts to run each `(workload, analysis)` cell
    /// at (`PTA_THREADS` / `--threads`, comma-separated; default `[1]`).
    /// Each count gets its own row; results are identical across counts,
    /// so extra counts only add timing columns (the parallel-speedup
    /// experiment runs `1,4`).
    pub threads: Vec<usize>,
    /// Repetitions per cell; the median time is reported (the paper uses
    /// medians of three runs).
    pub repetitions: usize,
    /// Worker threads for the matrix: `1` = sequential, `0` = one per core.
    pub jobs: usize,
    /// Per-cell wall-clock deadline in seconds, if any. A tripped cell is
    /// retried once; a second trip yields a `"status":"timeout"` row.
    pub cell_timeout: Option<f64>,
    /// Per-cell memory budget in bytes (`--max-memory` / `PTA_MAX_MEMORY`,
    /// `pta_govern::parse_byte_size` syntax), enforced against the
    /// solver's deterministic memory estimate. A tripped cell yields a
    /// `"status":"memory_cap"` row without a retry — the estimate is a
    /// model, so the trip reproduces exactly.
    pub max_memory: Option<u64>,
    /// Where to dump the rows as JSON after the run, if anywhere.
    pub json_out: Option<String>,
    /// Directory receiving one Chrome trace-event JSON file per cell
    /// (`--trace-dir`; created if missing). `None` disables tracing, which
    /// keeps the solver's recording paths true no-ops.
    pub trace_dir: Option<String>,
    /// Collect a per-rule profile per cell and embed it in the JSON rows
    /// (`--profile`). Forces each solve sequential, so profiled dumps are
    /// for rule-cost analysis, not speedup measurements.
    pub profile: bool,
    /// Taint-fixture groups injected into every workload
    /// (`--taint-groups`; see `pta_workload::WorkloadConfig::taint_groups`).
    /// With a non-zero count, each cell also runs the `pta check` client
    /// suite against [`pta_workload::TAINT_SPEC`] (untimed, after the
    /// measured solves) and embeds the finding counts under `"clients"`.
    /// `0` (the default) leaves workloads and JSON rows unchanged.
    pub taint_groups: usize,
    /// Hash-consed set sharing values to run each cell at (`--share
    /// on,off` / `PTA_SHARE`; default `[true]`). Like `threads`, each
    /// value gets its own row; results are identical across values, only
    /// memory (and `time_secs`) differ. `false` rows carry
    /// `"no_share":true`.
    pub share: Vec<bool>,
}

impl Default for MatrixOptions {
    fn default() -> Self {
        MatrixOptions {
            scale: 1.0,
            workloads: DACAPO_NAMES.iter().map(|s| s.to_string()).collect(),
            analyses: Analysis::TABLE1.to_vec(),
            threads: vec![1],
            repetitions: 3,
            jobs: 0,
            cell_timeout: None,
            max_memory: None,
            json_out: None,
            trace_dir: None,
            profile: false,
            taint_groups: 0,
            share: vec![true],
        }
    }
}

impl MatrixOptions {
    /// Reads `PTA_SCALE`, `PTA_WORKLOADS`, `PTA_ANALYSES`, `PTA_REPS`,
    /// `PTA_JOBS`, `PTA_CELL_TIMEOUT`, `PTA_JSON`, `PTA_TRACE_DIR`,
    /// `PTA_PROFILE` and `PTA_TAINT_GROUPS` from the environment, falling
    /// back to defaults.
    ///
    /// # Panics
    ///
    /// Panics with a clear message on malformed values (these are operator
    /// inputs on the command line).
    pub fn from_env() -> MatrixOptions {
        let mut opts = MatrixOptions::default();
        if let Ok(s) = std::env::var("PTA_SCALE") {
            opts.scale = s.parse().unwrap_or_else(|_| panic!("bad PTA_SCALE: {s:?}"));
        }
        if let Ok(s) = std::env::var("PTA_WORKLOADS") {
            opts.workloads = s.split(',').map(|w| w.trim().to_owned()).collect();
        }
        if let Ok(s) = std::env::var("PTA_ANALYSES") {
            opts.analyses = s
                .split(',')
                .map(|a| a.trim().parse().unwrap_or_else(|e| panic!("{e}")))
                .collect();
        }
        if let Ok(s) = std::env::var("PTA_THREADS") {
            opts.threads =
                parse_thread_list(&s).unwrap_or_else(|| panic!("bad PTA_THREADS: {s:?}"));
        }
        if let Ok(s) = std::env::var("PTA_REPS") {
            opts.repetitions = s.parse().unwrap_or_else(|_| panic!("bad PTA_REPS: {s:?}"));
        }
        if let Ok(s) = std::env::var("PTA_JOBS") {
            opts.jobs = s.parse().unwrap_or_else(|_| panic!("bad PTA_JOBS: {s:?}"));
        }
        if let Ok(s) = std::env::var("PTA_CELL_TIMEOUT") {
            opts.cell_timeout = Some(
                parse_cell_timeout(&s).unwrap_or_else(|| panic!("bad PTA_CELL_TIMEOUT: {s:?}")),
            );
        }
        if let Ok(s) = std::env::var("PTA_MAX_MEMORY") {
            opts.max_memory = Some(
                pta_govern::parse_byte_size(&s)
                    .unwrap_or_else(|e| panic!("bad PTA_MAX_MEMORY: {e}")),
            );
        }
        if let Ok(s) = std::env::var("PTA_JSON") {
            opts.json_out = Some(s);
        }
        if let Ok(s) = std::env::var("PTA_TRACE_DIR") {
            opts.trace_dir = Some(s);
        }
        if let Ok(s) = std::env::var("PTA_TAINT_GROUPS") {
            opts.taint_groups = s
                .parse()
                .unwrap_or_else(|_| panic!("bad PTA_TAINT_GROUPS: {s:?}"));
        }
        if let Ok(s) = std::env::var("PTA_PROFILE") {
            opts.profile = match s.as_str() {
                "1" | "true" | "yes" => true,
                "0" | "false" | "no" | "" => false,
                _ => panic!("bad PTA_PROFILE: {s:?} (expected 1 or 0)"),
            };
        }
        if let Ok(s) = std::env::var("PTA_SHARE") {
            opts.share = parse_share_list(&s).unwrap_or_else(|| panic!("bad PTA_SHARE: {s:?}"));
        }
        opts
    }

    /// Applies command-line flags on top of the current options. Flags
    /// mirror the environment variables (`--scale`, `--workloads`,
    /// `--analyses`, `--reps`, `--jobs`, `--cell-timeout`, `--json`,
    /// `--trace-dir`, `--profile`, `--taint-groups`) and take precedence. Unknown flags are
    /// an error so typos fail loudly.
    ///
    /// # Errors
    ///
    /// Returns a usage message naming the offending flag or value.
    pub fn apply_cli_args(&mut self, args: &[String]) -> Result<(), String> {
        let mut i = 0;
        let value = |i: &mut usize, flag: &str| -> Result<String, String> {
            *i += 1;
            args.get(*i)
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        while i < args.len() {
            match args[i].as_str() {
                "--scale" => {
                    let v = value(&mut i, "--scale")?;
                    self.scale = v.parse().map_err(|_| format!("bad --scale: {v:?}"))?;
                }
                "--workloads" => {
                    let v = value(&mut i, "--workloads")?;
                    self.workloads = v.split(',').map(|w| w.trim().to_owned()).collect();
                }
                "--analyses" => {
                    let v = value(&mut i, "--analyses")?;
                    self.analyses = v
                        .split(',')
                        .map(|a| a.trim().parse().map_err(|e| format!("{e}")))
                        .collect::<Result<_, _>>()?;
                }
                "--threads" => {
                    let v = value(&mut i, "--threads")?;
                    self.threads = parse_thread_list(&v)
                        .ok_or_else(|| format!("bad --threads: {v:?} (expected e.g. 1,4)"))?;
                }
                "--reps" => {
                    let v = value(&mut i, "--reps")?;
                    self.repetitions = v.parse().map_err(|_| format!("bad --reps: {v:?}"))?;
                }
                "--jobs" => {
                    let v = value(&mut i, "--jobs")?;
                    self.jobs = v.parse().map_err(|_| format!("bad --jobs: {v:?}"))?;
                }
                "--cell-timeout" => {
                    let v = value(&mut i, "--cell-timeout")?;
                    self.cell_timeout = Some(parse_cell_timeout(&v).ok_or_else(|| {
                        format!("bad --cell-timeout: {v:?} (expected seconds > 0)")
                    })?);
                }
                "--max-memory" => {
                    let v = value(&mut i, "--max-memory")?;
                    self.max_memory = Some(
                        pta_govern::parse_byte_size(&v)
                            .map_err(|e| format!("bad --max-memory: {e}"))?,
                    );
                }
                "--json" => {
                    self.json_out = Some(value(&mut i, "--json")?);
                }
                "--trace-dir" => {
                    self.trace_dir = Some(value(&mut i, "--trace-dir")?);
                }
                "--profile" => {
                    self.profile = true;
                }
                "--taint-groups" => {
                    let v = value(&mut i, "--taint-groups")?;
                    self.taint_groups = v
                        .parse()
                        .map_err(|_| format!("bad --taint-groups: {v:?}"))?;
                }
                "--share" => {
                    let v = value(&mut i, "--share")?;
                    self.share = parse_share_list(&v)
                        .ok_or_else(|| format!("bad --share: {v:?} (expected e.g. on,off)"))?;
                }
                other => return Err(format!("unknown flag {other}")),
            }
            i += 1;
        }
        Ok(())
    }

    /// Generates one named workload at the options' scale, with the
    /// options' taint fixtures injected.
    ///
    /// # Panics
    ///
    /// Panics if `name` is not a known DaCapo workload.
    #[must_use]
    pub fn generate_workload(&self, name: &str) -> Program {
        let mut cfg = pta_workload::dacapo_config(name, self.scale);
        cfg.taint_groups = self.taint_groups;
        pta_workload::generate(&cfg)
    }

    /// The number of worker threads the matrix will actually use: `jobs`,
    /// with `0` resolved to the core count.
    #[must_use]
    pub fn effective_jobs(&self) -> usize {
        if self.jobs == 0 {
            std::thread::available_parallelism().map_or(1, usize::from)
        } else {
            self.jobs
        }
    }
}

/// Parses a cell timeout: positive, finite seconds.
fn parse_cell_timeout(s: &str) -> Option<f64> {
    s.trim()
        .parse::<f64>()
        .ok()
        .filter(|v| v.is_finite() && *v > 0.0)
}

/// Parses a comma-separated sharing-axis list (`"on,off"`; `true`/`1`
/// and `false`/`0` also accepted). An empty list is not.
fn parse_share_list(s: &str) -> Option<Vec<bool>> {
    let values: Option<Vec<bool>> = s
        .split(',')
        .map(|t| match t.trim() {
            "on" | "true" | "1" => Some(true),
            "off" | "false" | "0" => Some(false),
            _ => None,
        })
        .collect();
    values.filter(|v| !v.is_empty())
}

/// Parses a comma-separated worker-count list (`"1,4"`). `0` is allowed
/// (one worker per core); an empty list is not.
fn parse_thread_list(s: &str) -> Option<Vec<usize>> {
    let counts: Option<Vec<usize>> = s
        .split(',')
        .map(|t| t.trim().parse::<usize>().ok())
        .collect();
    counts.filter(|c| !c.is_empty())
}

/// Runs one `(program, analysis)` cell, timing the solver only (workload
/// generation and metric computation excluded), median of `reps` runs.
pub fn run_cell(
    workload: &str,
    program: &Program,
    analysis: Analysis,
    reps: usize,
) -> ExperimentRow {
    run_cell_governed(workload, program, analysis, 1, reps, None, None)
}

/// [`run_cell`] with an optional per-repetition wall-clock deadline and an
/// optional shared cancellation token (the matrix driver links one to
/// SIGINT when a timeout is configured).
///
/// A repetition whose solve comes back partial is retried once — on a
/// loaded box the first trip is often transient scheduling noise. If the
/// retry is partial too, the cell stops burning repetitions and its row is
/// tagged [`CellStatus::Timeout`], carrying the metrics of the salvaged
/// partial result (every count under-approximates the true fixpoint).
pub fn run_cell_governed(
    workload: &str,
    program: &Program,
    analysis: Analysis,
    threads: usize,
    reps: usize,
    cell_timeout: Option<f64>,
    cancel: Option<&CancelToken>,
) -> ExperimentRow {
    run_cell_observed(
        workload,
        program,
        analysis,
        threads,
        reps,
        cell_timeout,
        None,
        cancel,
        &pta_obs::Trace::disabled(),
        false,
        None,
        true,
    )
}

/// [`run_cell_governed`] with observability attached: every repetition
/// records into `trace` (a disabled trace keeps this a no-op), and with
/// `profile` on the row embeds the final repetition's per-rule profile.
/// Both instruments skew wall times, so observed rows are diagnostics.
///
/// With `check_spec` set, the `pta check` client suite (taint, escape,
/// nullness) runs against the final repetition's result — after the
/// clock stops, like the precision metrics — and its finding counts land
/// in the row's `clients` column.
///
/// `share` toggles hash-consed set sharing for the cell's solves
/// (results are identical either way; `false` rows carry
/// `"no_share":true` so the memory comparison is self-describing).
#[allow(clippy::too_many_arguments)] // mirrors run_cell_governed + the instruments
pub fn run_cell_observed(
    workload: &str,
    program: &Program,
    analysis: Analysis,
    threads: usize,
    reps: usize,
    cell_timeout: Option<f64>,
    max_memory: Option<u64>,
    cancel: Option<&CancelToken>,
    trace: &pta_obs::Trace,
    profile: bool,
    check_spec: Option<&CheckSpec>,
    share: bool,
) -> ExperimentRow {
    let solve = || {
        let start = Instant::now();
        let mut budget = Budget::unlimited();
        if let Some(secs) = cell_timeout {
            budget = budget.with_deadline(Duration::from_secs_f64(secs));
        }
        if let Some(bytes) = max_memory {
            budget = budget.with_max_memory(bytes);
        }
        let mut session = AnalysisSession::open(program.clone())
            .policy(analysis)
            .threads(threads)
            .budget(budget)
            .trace(trace.clone())
            .profile(profile)
            .share(share);
        if let Some(token) = cancel {
            session = session.cancel(token.clone());
        }
        let result = session.solve();
        (start.elapsed().as_secs_f64(), result)
    };
    pta_govern::memtrack::reset_peak();
    let mut times = Vec::with_capacity(reps.max(1));
    let mut result = None;
    let mut status = CellStatus::Ok;
    let mut retried = false;
    for _ in 0..reps.max(1) {
        let (mut secs, mut r) = solve();
        // A memory-cap trip is deterministic (the estimate is a model,
        // not wall-clock luck), so retrying it would only repeat the
        // same partial solve.
        let memory_capped =
            |r: &pta_core::PointsToResult| r.termination() == pta_govern::Termination::MemoryCap;
        if !r.termination().is_complete() && !memory_capped(&r) && !retried {
            retried = true;
            (secs, r) = solve();
        }
        let tripped = !r.termination().is_complete();
        let capped = memory_capped(&r);
        times.push(secs);
        result = Some(r);
        if tripped {
            status = if capped {
                CellStatus::MemoryCap
            } else {
                CellStatus::Timeout
            };
            break;
        }
    }
    // Read the high-water mark before the (allocation-heavy) metric
    // computation below, so the figure covers exactly the solves.
    let peak = pta_govern::memtrack::peak_bytes();
    times.sort_by(f64::total_cmp);
    let median = times[times.len() / 2];
    let result = result.expect("at least one repetition");
    let stats = *result.solver_stats();
    let row_profile = result.profile().cloned();
    let metrics = precision_metrics(program, &result);
    let clients = check_spec
        .map(|spec| client_metrics(&run_check(program, &result, spec, ClientBackend::Direct)));
    ExperimentRow::new(
        workload,
        analysis,
        status,
        threads,
        &metrics,
        median,
        stats,
        row_profile,
        clients,
        (peak > 0).then_some(peak),
        !share,
    )
}

/// One matrix cell with the options' observability applied: with a trace
/// directory configured, the cell runs under a fresh recorder and its
/// timeline is written to `{dir}/{workload}-{analysis}-t{threads}.trace.json`.
///
/// # Panics
///
/// Panics if the trace file cannot be written (operator-facing tool).
fn run_matrix_cell(
    opts: &MatrixOptions,
    workload: &str,
    program: &Program,
    analysis: Analysis,
    threads: usize,
    share: bool,
    cancel: Option<&CancelToken>,
) -> ExperimentRow {
    let trace = if opts.trace_dir.is_some() {
        pta_obs::Trace::enabled()
    } else {
        pta_obs::Trace::disabled()
    };
    let check_spec = (opts.taint_groups > 0)
        .then(|| CheckSpec::parse(TAINT_SPEC).expect("TAINT_SPEC is well-formed"));
    let row = run_cell_observed(
        workload,
        program,
        analysis,
        threads,
        opts.repetitions,
        opts.cell_timeout,
        opts.max_memory,
        cancel,
        &trace,
        opts.profile,
        check_spec.as_ref(),
        share,
    );
    if let Some(dir) = &opts.trace_dir {
        let path = format!(
            "{dir}/{}-{}-t{threads}.trace.json",
            workload,
            analysis.name()
        );
        std::fs::write(&path, trace.to_chrome_json())
            .unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
    }
    row
}

fn log_cell(row: &ExperimentRow) {
    eprintln!(
        "[pta-bench]   {:>10} {:>10} x{}  {:>8.3}s  vpt {:>10}  casts {}/{}{}",
        row.workload,
        row.analysis,
        row.threads,
        row.time_secs,
        row.sensitive_var_points_to,
        row.may_fail_casts,
        row.reachable_casts,
        if row.status == CellStatus::Timeout {
            "  TIMEOUT (partial)"
        } else {
            ""
        }
    );
}

/// Runs the full matrix described by `opts`, printing progress to stderr.
///
/// With `jobs > 1` (or `jobs == 0` on a multi-core box), `(workload,
/// analysis)` cells are farmed out to worker threads pulling from a shared
/// queue. Workloads are generated once up front and shared read-only; each
/// cell is still timed with `run_cell`, and the returned rows are in
/// workload-major, analysis-minor order regardless of which worker finished
/// first — identical to the sequential order, so `table1`, `figure3` and
/// `summary` render the same layout either way.
pub fn run_matrix(opts: &MatrixOptions) -> Vec<ExperimentRow> {
    let threads = if opts.threads.is_empty() {
        vec![1]
    } else {
        opts.threads.clone()
    };
    let share = if opts.share.is_empty() {
        vec![true]
    } else {
        opts.share.clone()
    };
    let cells: Vec<(usize, usize, usize, usize)> = (0..opts.workloads.len())
        .flat_map(|w| {
            let threads = &threads;
            let share = &share;
            (0..opts.analyses.len()).flat_map(move |a| {
                (0..threads.len()).flat_map(move |t| (0..share.len()).map(move |s| (w, a, t, s)))
            })
        })
        .collect();
    // One SIGINT-linked token shared by every cell: with a per-cell
    // deadline configured, ctrl-c drains the matrix into timeout rows
    // instead of killing the process mid-dump.
    let cancel = opts
        .cell_timeout
        .is_some()
        .then(CancelToken::linked_to_sigint);
    if let Some(dir) = &opts.trace_dir {
        std::fs::create_dir_all(dir).unwrap_or_else(|e| panic!("cannot create {dir}: {e}"));
    }
    let jobs = opts.effective_jobs().min(cells.len()).max(1);
    if jobs == 1 {
        let mut rows = Vec::with_capacity(cells.len());
        for name in &opts.workloads {
            let program = opts.generate_workload(name);
            eprintln!("[pta-bench] {name}: {}", ProgramStats::of(&program));
            for &analysis in &opts.analyses {
                for &t in &threads {
                    for &s in &share {
                        let row =
                            run_matrix_cell(opts, name, &program, analysis, t, s, cancel.as_ref());
                        log_cell(&row);
                        rows.push(row);
                    }
                }
            }
        }
        return rows;
    }

    let programs: Vec<Program> = opts
        .workloads
        .iter()
        .map(|name| {
            let program = opts.generate_workload(name);
            eprintln!("[pta-bench] {name}: {}", ProgramStats::of(&program));
            program
        })
        .collect();
    eprintln!("[pta-bench] {} cells on {jobs} workers", cells.len());
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<ExperimentRow>>> = cells.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(&(w, a, t, s)) = cells.get(i) else {
                    break;
                };
                let row = run_matrix_cell(
                    opts,
                    &opts.workloads[w],
                    &programs[w],
                    opts.analyses[a],
                    threads[t],
                    share[s],
                    cancel.as_ref(),
                );
                log_cell(&row);
                *slots[i].lock().expect("no panics while holding the slot") = Some(row);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("worker panics propagate out of the scope")
                .expect("every cell index was claimed and filled")
        })
        .collect()
}

/// Writes rows as pretty JSON to `path`.
///
/// # Panics
///
/// Panics if the file cannot be written (operator-facing tool).
pub fn write_json(rows: &[ExperimentRow], path: &str) {
    let json = rows_to_json(rows);
    std::fs::write(path, json).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
    eprintln!("[pta-bench] wrote {path}");
}

/// Writes rows as pretty JSON to `opts.json_out`, if set (the `--json`
/// flag or the `PTA_JSON` environment variable).
pub fn maybe_dump_json(opts: &MatrixOptions, rows: &[ExperimentRow]) {
    if let Some(path) = &opts.json_out {
        write_json(rows, path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pta_workload::dacapo_workload;

    #[test]
    fn run_cell_produces_consistent_row() {
        let program = dacapo_workload("luindex", 0.15);
        let row = run_cell("luindex", &program, Analysis::OneObj, 1);
        assert_eq!(row.workload, "luindex");
        assert_eq!(row.analysis, "1obj");
        assert!(row.reachable_methods > 0);
        assert!(row.sensitive_var_points_to > 0);
        assert!(row.may_fail_casts <= row.reachable_casts);
        assert!(row.poly_v_calls <= row.reachable_v_calls);
        assert!(row.time_secs >= 0.0);
    }

    #[test]
    fn taint_groups_populate_client_columns() {
        let opts = MatrixOptions {
            scale: 0.1,
            workloads: vec!["luindex".into()],
            analyses: vec![Analysis::OneObj, Analysis::SAOneObj],
            threads: vec![1],
            repetitions: 1,
            jobs: 1,
            cell_timeout: None,
            max_memory: None,
            json_out: None,
            trace_dir: None,
            profile: false,
            taint_groups: 2,
            share: vec![true],
        };
        let rows = run_matrix(&opts);
        let pure = rows[0].clients.expect("clients column populated");
        let hybrid = rows[1].clients.expect("clients column populated");
        // The injected fixtures make the hybrid's advantage visible on
        // every client: SA-1obj reports no more findings than 1obj.
        assert!(
            hybrid.taint_findings < pure.taint_findings,
            "{hybrid:?} vs {pure:?}"
        );
        assert!(
            hybrid.escape_findings < pure.escape_findings,
            "{hybrid:?} vs {pure:?}"
        );
        assert!(
            hybrid.nullness_findings < pure.nullness_findings,
            "{hybrid:?} vs {pure:?}"
        );
        // The column round-trips through the JSON dump and its validator.
        let dump = rows_to_json(&rows);
        let doc = json::parse(&dump).unwrap();
        json::validate_rows(&doc).unwrap();
        assert!(dump.contains("\"clients\""), "{dump}");
        // Without fixtures the column stays absent.
        let plain = run_cell(
            "luindex",
            &dacapo_workload("luindex", 0.1),
            Analysis::OneObj,
            1,
        );
        assert!(plain.clients.is_none());
        assert!(!plain.to_json().contains("clients"));
    }

    #[test]
    fn matrix_runs_a_small_subset() {
        let opts = MatrixOptions {
            scale: 0.15,
            workloads: vec!["antlr".into()],
            analyses: vec![Analysis::Insens, Analysis::STwoObjH],
            threads: vec![1],
            repetitions: 1,
            jobs: 1,
            cell_timeout: None,
            max_memory: None,
            json_out: None,
            trace_dir: None,
            profile: false,
            taint_groups: 0,
            share: vec![true],
        };
        let rows = run_matrix(&opts);
        assert_eq!(rows.len(), 2);
        // Context-sensitivity is more precise than insens on every metric.
        assert!(rows[1].may_fail_casts <= rows[0].may_fail_casts);
        assert!(rows[1].call_graph_edges <= rows[0].call_graph_edges);
        // Counters are always on: the timed run fired real rules.
        assert!(rows[0].stats.vpt_inserted > 0);
        assert!(rows[1].stats.fire_vcall_dispatch > 0);
    }

    #[test]
    fn parallel_matrix_matches_sequential_order_and_results() {
        let mut opts = MatrixOptions {
            scale: 0.15,
            workloads: vec!["luindex".into(), "lusearch".into()],
            analyses: vec![Analysis::Insens, Analysis::OneObj, Analysis::STwoObjH],
            threads: vec![1],
            repetitions: 1,
            jobs: 1,
            cell_timeout: None,
            max_memory: None,
            json_out: None,
            trace_dir: None,
            profile: false,
            taint_groups: 0,
            share: vec![true],
        };
        let sequential = run_matrix(&opts);
        opts.jobs = 4;
        let parallel = run_matrix(&opts);
        assert_eq!(sequential.len(), parallel.len());
        for (s, p) in sequential.iter().zip(&parallel) {
            assert_eq!(s.workload, p.workload);
            assert_eq!(s.analysis, p.analysis);
            // The analysis is deterministic, so everything but wall time
            // must agree bit-for-bit across drivers.
            assert_eq!(s.sensitive_var_points_to, p.sensitive_var_points_to);
            assert_eq!(s.call_graph_edges, p.call_graph_edges);
            assert_eq!(s.may_fail_casts, p.may_fail_casts);
            assert_eq!(s.stats, p.stats);
        }
    }

    #[test]
    fn thread_counts_fan_out_into_rows_with_identical_results() {
        let opts = MatrixOptions {
            scale: 0.15,
            workloads: vec!["antlr".into()],
            analyses: vec![Analysis::STwoObjH],
            threads: vec![1, 2],
            repetitions: 1,
            jobs: 1,
            cell_timeout: None,
            max_memory: None,
            json_out: None,
            trace_dir: None,
            profile: false,
            taint_groups: 0,
            share: vec![true],
        };
        let rows = run_matrix(&opts);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].threads, 1);
        assert_eq!(rows[1].threads, 2);
        // Only the clock may differ between the two rows.
        assert_eq!(
            rows[0].sensitive_var_points_to,
            rows[1].sensitive_var_points_to
        );
        assert_eq!(rows[0].may_fail_casts, rows[1].may_fail_casts);
        assert_eq!(rows[0].contexts, rows[1].contexts);
        assert_eq!(rows[0].call_graph_edges, rows[1].call_graph_edges);
    }

    #[test]
    fn cli_args_override_options() {
        let mut opts = MatrixOptions::default();
        let args: Vec<String> = [
            "--scale",
            "0.5",
            "--workloads",
            "antlr, chart",
            "--analyses",
            "insens,S-2obj+H",
            "--threads",
            "1, 4",
            "--reps",
            "5",
            "--jobs",
            "2",
            "--cell-timeout",
            "2.5",
            "--json",
            "/tmp/out.json",
            "--trace-dir",
            "/tmp/traces",
            "--profile",
            "--taint-groups",
            "2",
        ]
        .iter()
        .map(ToString::to_string)
        .collect();
        opts.apply_cli_args(&args).unwrap();
        assert_eq!(opts.scale, 0.5);
        assert_eq!(opts.workloads, vec!["antlr", "chart"]);
        assert_eq!(opts.analyses, vec![Analysis::Insens, Analysis::STwoObjH]);
        assert_eq!(opts.threads, vec![1, 4]);
        assert_eq!(opts.repetitions, 5);
        assert_eq!(opts.jobs, 2);
        assert_eq!(opts.cell_timeout, Some(2.5));
        assert_eq!(opts.json_out.as_deref(), Some("/tmp/out.json"));
        assert_eq!(opts.trace_dir.as_deref(), Some("/tmp/traces"));
        assert!(opts.profile);
        assert_eq!(opts.taint_groups, 2);
        assert_eq!(opts.effective_jobs(), 2);

        assert!(opts
            .apply_cli_args(&["--bogus".to_string()])
            .unwrap_err()
            .contains("--bogus"));
        assert!(opts
            .apply_cli_args(&["--scale".to_string()])
            .unwrap_err()
            .contains("needs a value"));
        assert!(opts
            .apply_cli_args(&["--cell-timeout".to_string(), "-1".to_string()])
            .unwrap_err()
            .contains("--cell-timeout"));
    }

    #[test]
    fn timed_out_cells_are_tagged_and_salvage_the_partial_run() {
        let program = dacapo_workload("hsqldb", 0.3);
        // A microsecond deadline trips on the meter's first clock read, on
        // both the initial attempt and the retry.
        let row = run_cell_governed(
            "hsqldb",
            &program,
            Analysis::TwoObjH,
            1,
            3,
            Some(1e-6),
            None,
        );
        assert_eq!(row.status, CellStatus::Timeout);
        assert!(row.to_json().contains("\"status\":\"timeout\""));
        // The timeout short-circuits the remaining repetitions, and the
        // salvaged partial numbers under-approximate a complete run.
        let complete = run_cell("hsqldb", &program, Analysis::TwoObjH, 1);
        assert_eq!(complete.status, CellStatus::Ok);
        assert!(row.reachable_methods <= complete.reachable_methods);
        assert!(row.sensitive_var_points_to <= complete.sensitive_var_points_to);
    }

    #[test]
    fn a_shared_cancellation_turns_cells_into_timeout_rows() {
        let token = CancelToken::new();
        token.cancel();
        let program = dacapo_workload("antlr", 0.15);
        let row = run_cell_governed(
            "antlr",
            &program,
            Analysis::STwoObjH,
            1,
            2,
            None,
            Some(&token),
        );
        assert_eq!(row.status, CellStatus::Timeout);
    }

    #[test]
    fn a_roomy_cell_timeout_changes_nothing() {
        let program = dacapo_workload("luindex", 0.15);
        let governed = run_cell_governed(
            "luindex",
            &program,
            Analysis::OneObj,
            1,
            1,
            Some(600.0),
            None,
        );
        let plain = run_cell("luindex", &program, Analysis::OneObj, 1);
        assert_eq!(governed.status, CellStatus::Ok);
        assert_eq!(
            governed.sensitive_var_points_to,
            plain.sensitive_var_points_to
        );
        assert_eq!(governed.may_fail_casts, plain.may_fail_casts);
        assert_eq!(governed.stats, plain.stats);
    }

    #[test]
    fn rows_serialize_to_json() {
        let program = dacapo_workload("luindex", 0.15);
        let row = run_cell("luindex", &program, Analysis::OneCall, 1);
        let json = row.to_json();
        assert!(json.contains("\"analysis\":\"1call\""));
        assert!(json.contains("\"status\":\"ok\""));
        assert!(json.contains("\"stats\":{\"vpt_inserted\":"));
        assert!(json.starts_with('{') && json.ends_with('}'));
        let arr = rows_to_json(std::slice::from_ref(&row));
        assert!(arr.starts_with('[') && arr.trim_end().ends_with(']'));
    }

    #[test]
    fn profiled_cells_embed_the_rule_table() {
        let program = dacapo_workload("luindex", 0.15);
        let row = run_cell_observed(
            "luindex",
            &program,
            Analysis::OneObj,
            1,
            1,
            None,
            None,
            None,
            &pta_obs::Trace::disabled(),
            true,
            None,
            true,
        );
        let p = row
            .profile
            .as_ref()
            .expect("profiled cell carries a profile");
        assert!(p.rules.iter().any(|r| r.name == "alloc" && r.fires > 0));
        let json = row.to_json();
        assert!(json.contains(",\"profile\":{\"rules\":[{\"name\":\"alloc\","));
        assert!(json.ends_with("}}"));
        // An unprofiled cell stays lean.
        let plain = run_cell("luindex", &program, Analysis::OneObj, 1);
        assert!(plain.profile.is_none());
        assert!(!plain.to_json().contains("\"profile\""));
    }

    #[test]
    fn trace_dir_writes_one_timeline_per_cell() {
        let dir = std::env::temp_dir().join(format!("pta-bench-traces-{}", std::process::id()));
        let opts = MatrixOptions {
            scale: 0.15,
            workloads: vec!["luindex".into()],
            analyses: vec![Analysis::OneObj],
            threads: vec![1, 2],
            repetitions: 1,
            jobs: 1,
            cell_timeout: None,
            max_memory: None,
            json_out: None,
            trace_dir: Some(dir.to_string_lossy().into_owned()),
            profile: false,
            taint_groups: 0,
            share: vec![true],
        };
        let rows = run_matrix(&opts);
        assert_eq!(rows.len(), 2);
        for t in [1, 2] {
            let path = dir.join(format!("luindex-1obj-t{t}.trace.json"));
            let source = std::fs::read_to_string(&path).expect("trace file written");
            let doc = json::parse(&source).expect("trace file is valid JSON");
            let events = doc
                .get("traceEvents")
                .and_then(json::Value::as_array)
                .expect("trace carries a traceEvents array");
            assert!(!events.is_empty(), "timeline for t{t} has events");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn json_escaping_handles_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_f64(1.5), "1.5");
        assert_eq!(json_f64(f64::NAN), "null");
    }
}
