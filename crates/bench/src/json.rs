//! A minimal JSON reader for validating harness output.
//!
//! The toolchain runs fully offline (no serde), and the harness emits JSON
//! by hand — so round-tripping through an independent parser is the
//! cheapest way to catch a malformed emitter. `table1 --check FILE` and the
//! CI smoke-perf step both parse a dumped `--json` file with this module
//! and assert every cell is present and well-formed.
//!
//! Scope: the full JSON grammar minus `\u` surrogate pairs (the emitter
//! never produces them). Numbers are parsed as `f64`, which is exact for
//! every counter the solver can realistically produce (< 2^53).

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value. Objects use a `BTreeMap` so iteration order is
/// deterministic in error messages.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<Value>),
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// The value as a finite number, if it is one.
    #[must_use]
    pub fn as_number(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Object field lookup; `None` for non-objects and missing keys.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.get(key),
            _ => None,
        }
    }
}

/// A parse error with a byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset where parsing failed.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parses a complete JSON document; trailing content is an error.
///
/// # Errors
///
/// Returns the first syntax error with its byte offset.
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing content after document"));
    }
    Ok(v)
}

impl Parser<'_> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            offset: self.pos,
            message: message.to_owned(),
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected {word}")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            map.insert(key, self.value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        if self.bytes.get(self.pos) != Some(&b'"') {
            return Err(self.err("expected a string"));
        }
        self.pos += 1;
        let mut out = String::new();
        loop {
            let Some(&b) = self.bytes.get(self.pos) else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(&esc) = self.bytes.get(self.pos) else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(hex)
                                    .ok_or_else(|| self.err("\\u escape is not a scalar"))?,
                            );
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                // Multi-byte UTF-8 passes through unchanged.
                _ => {
                    let start = self.pos - 1;
                    while self
                        .bytes
                        .get(self.pos)
                        .is_some_and(|&b| b != b'"' && b != b'\\')
                    {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| self.err("invalid UTF-8"))?,
                    );
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .filter(|n| n.is_finite())
            .map(Value::Number)
            .ok_or_else(|| self.err("bad number"))
    }
}

/// Fields every [`crate::ExperimentRow`] JSON object must carry.
///
/// `status`, `schema_version` and `threads` are deliberately absent:
/// they are validated separately because dumps from before those fields
/// existed (`BENCH_baseline.json` among them) omit them. A missing
/// status means `"ok"`, a missing version means v1, a missing thread
/// count means `1`.
const ROW_FIELDS: &[&str] = &[
    "workload",
    "analysis",
    "reachable_methods",
    "avg_objs_per_var",
    "call_graph_edges",
    "poly_v_calls",
    "reachable_v_calls",
    "may_fail_casts",
    "reachable_casts",
    "time_secs",
    "sensitive_var_points_to",
    "contexts",
    "heap_contexts",
    "uncaught_exception_sites",
    "stats",
];

/// What [`validate_rows`] found in a well-formed dump.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RowsSummary {
    /// Total number of rows (cells) in the dump.
    pub cells: usize,
    /// Rows tagged `"status":"timeout"` — cells whose solve exceeded the
    /// per-cell deadline even after the retry. Their metrics are the
    /// salvaged partial result, not a real measurement.
    pub timeouts: usize,
    /// Rows tagged `"status":"memory_cap"` — cells whose solve tripped
    /// the per-cell `--max-memory` budget (a deterministic model trip,
    /// not host noise). Their metrics are the salvaged partial result.
    pub memory_caps: usize,
    /// Rows carrying a `"profile"` embed (cells run with `--profile`).
    /// Profiled solves are forced sequential, so their times are not
    /// comparable to unprofiled rows.
    pub profiled: usize,
}

/// Validates a parsed `--json` dump: a non-empty array of rows, each with
/// the full field set, a non-negative wall time, and a `stats` object with
/// numeric counters. Timed-out rows (`"status":"timeout"`) are tolerated
/// and counted; a missing `status` (legacy dump) means `"ok"`. Rows
/// carrying a `"profile"` embed (`--profile` dumps, `BENCH_profile.json`)
/// are tolerated and counted too; when present the embed must hold a
/// `"rules"` array whose entries have a name and numeric counters.
///
/// Both schema versions are accepted: v1 dumps (no `schema_version`, no
/// `threads` — `BENCH_baseline.json` era) and v2 dumps (both fields on
/// every row). A version this reader does not know is an error, so a
/// future incompatible format fails loudly instead of half-validating.
///
/// # Errors
///
/// Returns a message naming the first offending row and field.
pub fn validate_rows(doc: &Value) -> Result<RowsSummary, String> {
    let rows = doc.as_array().ok_or("top level is not an array")?;
    if rows.is_empty() {
        return Err("no rows".to_owned());
    }
    let mut timeouts = 0;
    let mut memory_caps = 0;
    let mut profiled = 0;
    for (i, row) in rows.iter().enumerate() {
        match row.get("schema_version").map(Value::as_number) {
            None => {} // v1: predates row versioning
            Some(Some(v)) if v == 1.0 || v == f64::from(crate::SCHEMA_VERSION) => {}
            Some(v) => {
                return Err(format!(
                    "row {i}: unsupported schema_version {v:?} (this reader knows 1 and {})",
                    crate::SCHEMA_VERSION
                ))
            }
        }
        match row.get("threads").map(Value::as_number) {
            None => {} // v1 rows are implicitly single-threaded
            Some(Some(n)) if n >= 0.0 && n.fract() == 0.0 => {}
            Some(n) => return Err(format!("row {i}: field \"threads\" is malformed: {n:?}")),
        }
        match row.get("status").map(Value::as_str) {
            None | Some(Some("ok")) => {}
            Some(Some("timeout")) => timeouts += 1,
            Some(Some("memory_cap")) => memory_caps += 1,
            Some(s) => {
                return Err(format!(
                    "row {i}: field \"status\" is malformed: {s:?} \
                     (expected \"ok\", \"timeout\" or \"memory_cap\")"
                ))
            }
        }
        for &field in ROW_FIELDS {
            let v = row
                .get(field)
                .ok_or_else(|| format!("row {i}: missing field {field:?}"))?;
            let ok = match field {
                "workload" | "analysis" => v.as_str().is_some_and(|s| !s.is_empty()),
                "avg_objs_per_var" => v.as_number().is_some_and(|n| n >= 0.0),
                "time_secs" => v.as_number().is_some_and(|n| n >= 0.0),
                "stats" => matches!(v, Value::Object(_)),
                _ => v.as_number().is_some_and(|n| n >= 0.0 && n.fract() == 0.0),
            };
            if !ok {
                return Err(format!("row {i}: field {field:?} is malformed: {v:?}"));
            }
        }
        let Some(Value::Object(stats)) = row.get("stats") else {
            unreachable!("checked above");
        };
        for (name, v) in stats {
            if v.as_number().is_none_or(|n| n < 0.0) {
                return Err(format!("row {i}: stats counter {name:?} is malformed"));
            }
        }
        if let Some(profile) = row.get("profile") {
            validate_profile(profile).map_err(|e| format!("row {i}: {e}"))?;
            profiled += 1;
        }
        if let Some(clients) = row.get("clients") {
            validate_clients(clients).map_err(|e| format!("row {i}: {e}"))?;
        }
        // Optional memory column (cells measured under the counting
        // allocator) and sharing marker (`--share off` rows).
        if let Some(peak) = row.get("peak_rss_bytes") {
            if peak.as_number().is_none_or(|n| n < 0.0 || n.fract() != 0.0) {
                return Err(format!("row {i}: field \"peak_rss_bytes\" is malformed"));
            }
        }
        if let Some(ns) = row.get("no_share") {
            if !matches!(ns, Value::Bool(true)) {
                return Err(format!(
                    "row {i}: field \"no_share\" is malformed (only `true` is ever emitted)"
                ));
            }
        }
    }
    Ok(RowsSummary {
        cells: rows.len(),
        timeouts,
        memory_caps,
        profiled,
    })
}

/// Validates one row's `"clients"` embed (cells run with `--taint-groups`):
/// an object with one non-negative integer finding count per client.
fn validate_clients(clients: &Value) -> Result<(), String> {
    for key in ["taint", "escape", "nullness"] {
        let ok = clients
            .get(key)
            .and_then(Value::as_number)
            .is_some_and(|n| n >= 0.0 && n.fract() == 0.0);
        if !ok {
            return Err(format!("clients embed: counter {key:?} is malformed"));
        }
    }
    Ok(())
}

/// Validates one row's `"profile"` embed: an object whose `"rules"` array
/// holds `{name, fires, derived, ns}` entries with non-negative integer
/// counters (the shape `profdiff` consumes).
fn validate_profile(profile: &Value) -> Result<(), String> {
    let rules = profile
        .get("rules")
        .ok_or("profile embed has no \"rules\" array")?
        .as_array()
        .ok_or("profile \"rules\" is not an array")?;
    for (j, rule) in rules.iter().enumerate() {
        if rule.get("name").and_then(Value::as_str).is_none() {
            return Err(format!("profile rule {j} has no name"));
        }
        for key in ["fires", "derived", "ns"] {
            let ok = rule
                .get(key)
                .and_then(Value::as_number)
                .is_some_and(|n| n >= 0.0 && n.fract() == 0.0);
            if !ok {
                return Err(format!("profile rule {j}: counter {key:?} is malformed"));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_nesting() {
        let v = parse(r#"{"a": [1, -2.5, "x\n", true, false, null], "b": {}}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 6);
        assert_eq!(
            v.get("a").unwrap().as_array().unwrap()[0].as_number(),
            Some(1.0)
        );
        assert_eq!(
            v.get("a").unwrap().as_array().unwrap()[2].as_str(),
            Some("x\n")
        );
        assert_eq!(v.get("b"), Some(&Value::Object(BTreeMap::new())));
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("[1] garbage").is_err());
        assert!(parse(r#"{"a" 1}"#).is_err());
        assert!(parse("1e999").is_err()); // non-finite
    }

    #[test]
    fn round_trips_real_rows() {
        let program = pta_workload::dacapo_workload("luindex", 0.15);
        let row = crate::run_cell("luindex", &program, pta_core::Analysis::OneObj, 1);
        let doc = parse(&crate::rows_to_json(std::slice::from_ref(&row))).unwrap();
        assert_eq!(
            validate_rows(&doc),
            Ok(RowsSummary {
                cells: 1,
                timeouts: 0,
                memory_caps: 0,
                profiled: 0
            })
        );
        let parsed = &doc.as_array().unwrap()[0];
        assert_eq!(parsed.get("workload").unwrap().as_str(), Some("luindex"));
        assert_eq!(
            parsed
                .get("stats")
                .unwrap()
                .get("vpt_inserted")
                .unwrap()
                .as_number(),
            Some(row.stats.vpt_inserted as f64)
        );
    }

    #[test]
    fn validation_names_the_broken_field() {
        let doc = parse(r#"[{"workload":"w"}]"#).unwrap();
        let err = validate_rows(&doc).unwrap_err();
        assert!(err.contains("row 0"), "{err}");
        assert!(err.contains("analysis"), "{err}");
        assert_eq!(
            validate_rows(&parse("[]").unwrap()),
            Err("no rows".to_owned())
        );
    }

    #[test]
    fn timeout_rows_validate_and_are_counted() {
        let program = pta_workload::dacapo_workload("luindex", 0.15);
        let ok = crate::run_cell("luindex", &program, pta_core::Analysis::OneObj, 1);
        let timed_out = crate::run_cell_governed(
            "luindex",
            &program,
            pta_core::Analysis::STwoObjH,
            1,
            1,
            Some(1e-6),
            None,
        );
        assert_eq!(timed_out.status, crate::CellStatus::Timeout);
        let doc = parse(&crate::rows_to_json(&[ok.clone(), timed_out])).unwrap();
        assert_eq!(
            validate_rows(&doc),
            Ok(RowsSummary {
                cells: 2,
                timeouts: 1,
                memory_caps: 0,
                profiled: 0
            })
        );

        // Legacy dumps (BENCH_baseline.json) predate the status field;
        // a missing status reads as "ok".
        let legacy =
            crate::rows_to_json(std::slice::from_ref(&ok)).replace("\"status\":\"ok\",", "");
        assert_eq!(
            validate_rows(&parse(&legacy).unwrap()),
            Ok(RowsSummary {
                cells: 1,
                timeouts: 0,
                memory_caps: 0,
                profiled: 0
            })
        );

        // Anything else in the status slot is malformed.
        let bogus = crate::rows_to_json(std::slice::from_ref(&ok))
            .replace("\"status\":\"ok\"", "\"status\":\"maybe\"");
        let err = validate_rows(&parse(&bogus).unwrap()).unwrap_err();
        assert!(err.contains("status"), "{err}");
    }

    #[test]
    fn profiled_rows_validate_and_are_counted() {
        let program = pta_workload::dacapo_workload("luindex", 0.15);
        let plain = crate::run_cell("luindex", &program, pta_core::Analysis::OneObj, 1);
        let profiled = crate::run_cell_observed(
            "luindex",
            &program,
            pta_core::Analysis::OneObj,
            1,
            1,
            None,
            None,
            None,
            &pta_obs::Trace::disabled(),
            true,
            None,
            true,
        );
        let dump = crate::rows_to_json(&[plain, profiled]);
        assert_eq!(
            validate_rows(&parse(&dump).unwrap()),
            Ok(RowsSummary {
                cells: 2,
                timeouts: 0,
                memory_caps: 0,
                profiled: 1
            })
        );

        // A mangled rule counter inside the embed fails loudly.
        let broken = dump.replacen("\"fires\":", "\"fires\":-", 1);
        let err = validate_rows(&parse(&broken).unwrap()).unwrap_err();
        assert!(err.contains("fires"), "{err}");
    }

    #[test]
    fn both_schema_versions_validate_but_unknown_ones_fail() {
        let program = pta_workload::dacapo_workload("luindex", 0.15);
        let row = crate::run_cell("luindex", &program, pta_core::Analysis::OneObj, 1);
        let current = crate::rows_to_json(std::slice::from_ref(&row));
        assert!(current.contains(&format!("\"schema_version\":{}", crate::SCHEMA_VERSION)));
        assert!(current.contains("\"threads\":1"));
        assert!(validate_rows(&parse(&current).unwrap()).is_ok());

        // A v1 dump (BENCH_baseline.json era): no schema_version, no
        // threads, no status.
        let v1 = current
            .replace(
                &format!("\"schema_version\":{},", crate::SCHEMA_VERSION),
                "",
            )
            .replace("\"threads\":1,", "")
            .replace("\"status\":\"ok\",", "");
        assert!(validate_rows(&parse(&v1).unwrap()).is_ok());

        // A future version must fail loudly.
        let v99 = current.replace(
            &format!("\"schema_version\":{}", crate::SCHEMA_VERSION),
            "\"schema_version\":99",
        );
        let err = validate_rows(&parse(&v99).unwrap()).unwrap_err();
        assert!(err.contains("schema_version"), "{err}");
    }
}
