//! A minimal timing harness for the `cargo bench` targets.
//!
//! The toolchain runs fully offline, so instead of an external benchmark
//! framework this module provides the small subset the bench targets need:
//! named measurements, an optional substring filter from the command line
//! (`cargo bench -p pta-bench --bench analyses -- 2obj`), a configurable
//! sample count, and a median/min/max report on stdout. Bench targets are
//! declared with `harness = false` and drive this from a plain `main`.

use std::hint::black_box;
use std::time::Instant;

/// A bench session: holds the CLI filter and default sample count.
pub struct Bench {
    filter: Vec<String>,
    samples: usize,
}

impl Default for Bench {
    fn default() -> Self {
        Bench::new()
    }
}

impl Bench {
    /// Creates a session with no filter and 10 samples per measurement.
    #[must_use]
    pub fn new() -> Bench {
        Bench {
            filter: Vec::new(),
            samples: 10,
        }
    }

    /// Creates a session from `std::env::args`: every non-flag argument is
    /// a substring filter (a measurement runs if it matches any of them;
    /// no filters means run everything). Flags (`--bench`, `--exact`, …)
    /// that cargo forwards are ignored.
    #[must_use]
    pub fn from_args() -> Bench {
        let mut b = Bench::new();
        b.filter = std::env::args()
            .skip(1)
            .filter(|a| !a.starts_with('-'))
            .collect();
        b
    }

    /// Sets the sample count for subsequent measurements.
    pub fn sample_size(&mut self, n: usize) -> &mut Bench {
        self.samples = n.max(1);
        self
    }

    /// `true` if `id` passes the CLI filter.
    #[must_use]
    pub fn matches(&self, id: &str) -> bool {
        self.filter.is_empty() || self.filter.iter().any(|f| id.contains(f.as_str()))
    }

    /// Times `f` (one warm-up call plus `samples` measured calls) and
    /// prints a `min/median/max` line. The closure's result is passed
    /// through [`black_box`] so the work is not optimized away.
    pub fn measure<T, F: FnMut() -> T>(&self, id: &str, mut f: F) {
        if !self.matches(id) {
            return;
        }
        black_box(f());
        let mut times = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(f());
            times.push(start.elapsed().as_secs_f64());
        }
        times.sort_by(f64::total_cmp);
        let median = times[times.len() / 2];
        println!(
            "{id:<44} {:>10.3} ms  (min {:.3}, max {:.3}, n={})",
            median * 1e3,
            times[0] * 1e3,
            times[times.len() - 1] * 1e3,
            self.samples
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filter_matches_substrings() {
        let mut b = Bench::new();
        assert!(b.matches("anything"));
        b.filter = vec!["2obj".into()];
        assert!(b.matches("ablation/2obj+H"));
        assert!(!b.matches("ablation/1call"));
    }

    #[test]
    fn measure_runs_the_closure() {
        let mut b = Bench::new();
        b.sample_size(2);
        let mut calls = 0;
        b.measure("self-test", || calls += 1);
        assert_eq!(calls, 3); // warm-up + 2 samples
    }
}
