//! Rendering: Table 1, Figure 3 and the summary statistics, in layouts
//! mirroring the paper.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::{CellStatus, ExperimentRow};

fn by_workload(rows: &[ExperimentRow]) -> BTreeMap<&str, Vec<&ExperimentRow>> {
    let mut map: BTreeMap<&str, Vec<&ExperimentRow>> = BTreeMap::new();
    for row in rows {
        map.entry(&row.workload).or_default().push(row);
    }
    map
}

fn find<'r>(rows: &[&'r ExperimentRow], analysis: &str) -> Option<&'r ExperimentRow> {
    rows.iter().find(|r| r.analysis == analysis).copied()
}

/// Renders the paper's Table 1: per benchmark, four precision metrics and
/// two performance metrics for every analysis, grouped like the paper
/// (call-site group, 1-object group, 2-object group, 2-type group). The
/// best performance number per group is marked with `*` (the paper uses
/// bold).
pub fn render_table1(rows: &[ExperimentRow]) -> String {
    let mut out = String::new();
    let analyses: Vec<&str> = {
        // Preserve first-seen order (callers pass Table 1 order).
        let mut seen = Vec::new();
        for r in rows {
            if !seen.contains(&r.analysis.as_str()) {
                seen.push(&r.analysis);
            }
        }
        seen
    };

    let _ = writeln!(
        out,
        "Table 1: precision and performance metrics for all benchmarks and analyses."
    );
    let _ = writeln!(
        out,
        "(Lower is better everywhere. `*` marks the best time within an analysis group,"
    );
    let _ = writeln!(out, "as the paper's bold entries do.)\n");

    for (workload, wrows) in by_workload(rows) {
        let reference = wrows[0];
        let _ = writeln!(
            out,
            "== {workload} (over ~{} meths; v-calls of ~{}; casts of ~{})",
            reference.reachable_methods, reference.reachable_v_calls, reference.reachable_casts
        );
        let _ = writeln!(
            out,
            "{:>11} | {:>12} {:>8} {:>12} {:>14} | {:>12} {:>16}",
            "analysis",
            "avg objs/var",
            "edges",
            "poly v-calls",
            "may-fail casts",
            "time (s)",
            "sens var-pts-to"
        );
        let _ = writeln!(out, "{}", "-".repeat(96));

        // Group boundaries in Table 1 order.
        let groups: [&[&str]; 4] = [
            &["1call", "1call+H", "2call+H"],
            &["1obj", "U-1obj", "SA-1obj", "SB-1obj"],
            &["2obj+H", "U-2obj+H", "S-2obj+H"],
            &["2type+H", "U-2type+H", "S-2type+H"],
        ];
        // Timed-out cells report the deadline, not a measurement, so they
        // never win the best-time star.
        let best_time_of_group = |names: &[&str]| -> Option<f64> {
            names
                .iter()
                .filter_map(|n| find(&wrows, n))
                .filter(|r| r.status == CellStatus::Ok)
                .map(|r| r.time_secs)
                .min_by(f64::total_cmp)
        };

        for &analysis in &analyses {
            let Some(row) = find(&wrows, analysis) else {
                continue;
            };
            let star = row.status == CellStatus::Ok
                && groups
                    .iter()
                    .find(|g| g.contains(&analysis))
                    .and_then(|g| best_time_of_group(g))
                    .is_some_and(|best| (row.time_secs - best).abs() < 1e-12);
            let _ = writeln!(
                out,
                "{:>11} | {:>12.2} {:>8} {:>12} {:>14} | {:>11.3}{} {:>16}{}",
                row.analysis,
                row.avg_objs_per_var,
                row.call_graph_edges,
                row.poly_v_calls,
                row.may_fail_casts,
                row.time_secs,
                if star { "*" } else { " " },
                row.sensitive_var_points_to,
                match row.status {
                    CellStatus::Ok => "",
                    CellStatus::Timeout => "  TIMEOUT (partial)",
                    CellStatus::MemoryCap => "  MEMORY CAP (partial)",
                },
            );
            let is_last_present_of_group = groups.iter().any(|g| {
                g.contains(&analysis) && g.iter().rfind(|n| analyses.contains(n)) == Some(&analysis)
            });
            if is_last_present_of_group {
                let _ = writeln!(out, "{}", "-".repeat(96));
            }
        }
        let _ = writeln!(out);
    }
    out
}

/// Renders Figure 3's data as CSV: one series per benchmark, columns
/// `workload,analysis,may_fail_casts,time_secs`.
pub fn render_figure3_csv(rows: &[ExperimentRow]) -> String {
    let mut out = String::from("workload,analysis,may_fail_casts,time_secs\n");
    for row in rows {
        let _ = writeln!(
            out,
            "{},{},{},{:.6}",
            row.workload, row.analysis, row.may_fail_casts, row.time_secs
        );
    }
    out
}

/// Renders an ASCII scatter per benchmark: execution time (Y, rows) against
/// may-fail casts (X, columns), lower-left is better — the layout of the
/// paper's Figure 3.
pub fn render_figure3_scatter(rows: &[ExperimentRow]) -> String {
    const W: usize = 72;
    const H: usize = 18;
    let mut out = String::new();
    for (workload, wrows) in by_workload(rows) {
        let xmax = wrows
            .iter()
            .map(|r| r.may_fail_casts)
            .max()
            .unwrap_or(1)
            .max(1);
        let xmin = wrows.iter().map(|r| r.may_fail_casts).min().unwrap_or(0);
        let tmax = wrows
            .iter()
            .map(|r| r.time_secs)
            .max_by(f64::total_cmp)
            .unwrap_or(1.0)
            .max(1e-9);
        let mut grid = vec![vec![' '; W + 1]; H + 1];
        let mut labels: Vec<String> = Vec::new();
        for (i, row) in wrows.iter().enumerate() {
            let marker = char::from_u32('a' as u32 + (i as u32 % 26)).unwrap_or('?');
            let x = if xmax == xmin {
                0
            } else {
                (row.may_fail_casts - xmin) * W / (xmax - xmin)
            };
            // Y grows downward; put fast analyses near the bottom.
            let y = H - ((row.time_secs / tmax) * H as f64).round() as usize;
            grid[y.min(H)][x.min(W)] = marker;
            labels.push(format!(
                "  {marker} = {} ({} casts, {:.3}s)",
                row.analysis, row.may_fail_casts, row.time_secs
            ));
        }
        let _ = writeln!(out, "== {workload}: time (s, up) vs may-fail casts (right)");
        for (yi, line) in grid.iter().enumerate() {
            let y_val = tmax * (H - yi) as f64 / H as f64;
            let line: String = line.iter().collect();
            let _ = writeln!(out, "{y_val:>8.3} |{line}");
        }
        let _ = writeln!(out, "{:>8} +{}", "", "-".repeat(W + 1));
        let _ = writeln!(
            out,
            "{:>10}{xmin:<8}{:>width$}{xmax}",
            "",
            "",
            width = W.saturating_sub(16)
        );
        for label in labels {
            let _ = writeln!(out, "{label}");
        }
        let _ = writeln!(out);
    }
    out
}

/// Geometric mean of `values`; 1.0 for an empty slice.
fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 1.0;
    }
    (values.iter().map(|v| v.ln()).sum::<f64>() / values.len() as f64).exp()
}

/// One paper claim compared against measurement.
#[derive(Debug, Clone)]
pub struct ClaimLine {
    /// Description of the claim.
    pub claim: String,
    /// What the paper reports.
    pub paper: String,
    /// What this reproduction measures.
    pub measured: String,
    /// Whether the direction/shape of the claim holds.
    pub holds: bool,
}

/// Computes the paper's §1/§4 aggregate claims from the matrix and renders
/// them paper-vs-measured.
pub fn render_summary(rows: &[ExperimentRow]) -> String {
    let mut lines: Vec<ClaimLine> = Vec::new();
    let per_wl = by_workload(rows);

    // Helper: ratios of time and vpt between two analyses across workloads.
    let ratios = |num: &str, den: &str| -> (Vec<f64>, Vec<f64>, Vec<f64>) {
        let mut time = Vec::new();
        let mut vpt = Vec::new();
        let mut casts = Vec::new();
        for wrows in per_wl.values() {
            if let (Some(n), Some(d)) = (find(wrows, num), find(wrows, den)) {
                if d.time_secs > 0.0 && n.time_secs > 0.0 {
                    time.push(n.time_secs / d.time_secs);
                }
                if d.sensitive_var_points_to > 0 {
                    vpt.push(n.sensitive_var_points_to as f64 / d.sensitive_var_points_to as f64);
                }
                if d.may_fail_casts > 0 {
                    casts.push(n.may_fail_casts as f64 / d.may_fail_casts as f64);
                }
            }
        }
        (time, vpt, casts)
    };

    // Claim 1: S-2obj+H is faster than 2obj+H (paper: avg 1.53x speedup)
    // and more precise.
    {
        let (time, vpt, casts) = ratios("2obj+H", "S-2obj+H");
        let speedup = geomean(&time);
        let vpt_ratio = geomean(&vpt);
        let cast_ratio = geomean(&casts);
        lines.push(ClaimLine {
            claim: "S-2obj+H vs 2obj+H: cheaper and more precise".into(),
            paper: "avg 1.53x speedup; fewer may-fail casts".into(),
            // Wall-clock at our workload sizes is millisecond-scale and
            // noisy; the verdict is gated on the paper's own
            // platform-independent cost metric (sensitive var-points-to,
            // §4.2) plus the precision side, with time reported alongside.
            measured: format!(
                "time ratio {speedup:.2}x; base has {vpt_ratio:.2}x the sensitive var-points-to \
                 and {cast_ratio:.2}x the may-fail casts"
            ),
            holds: vpt_ratio >= 0.98 && cast_ratio > 1.0,
        });
    }

    // Claim 2: the 1obj selective hybrids are at least as cheap as 1obj
    // with no precision loss (paper: avg 1.12x speedup for the family).
    // Gated on the deterministic tuple metric; time reported alongside.
    {
        let (time_sb, vpt_sb, casts_sb) = ratios("1obj", "SB-1obj");
        let (time_sa, vpt_sa, _) = ratios("1obj", "SA-1obj");
        let sb = geomean(&time_sb);
        let sa = geomean(&time_sa);
        lines.push(ClaimLine {
            claim: "SA/SB-1obj vs 1obj: as cheap or cheaper, SB more precise".into(),
            paper: "avg 1.12x speedup; SB strictly more precise".into(),
            measured: format!(
                "time ratio vs SB {sb:.2}x, vs SA {sa:.2}x; vpt ratio vs SB {:.2}x, vs SA {:.2}x; \
                 1obj has {:.2}x SB's may-fail casts",
                geomean(&vpt_sb),
                geomean(&vpt_sa),
                geomean(&casts_sb)
            ),
            holds: geomean(&vpt_sb) >= 0.95 && geomean(&vpt_sa) >= 0.98 && geomean(&casts_sb) > 1.0,
        });
    }

    // Claim 3: uniform hybrids are precise but very slow (paper: often 3x+
    // slower, 2x+ the context-sensitive points-to size).
    {
        let (time, vpt, _) = ratios("U-2obj+H", "2obj+H");
        let (time1, vpt1, _) = ratios("U-1obj", "1obj");
        lines.push(ClaimLine {
            claim: "uniform hybrids cost far more than their bases".into(),
            paper: "often >=3x slower, ~2x context-sensitive points-to".into(),
            measured: format!(
                "U-2obj+H: {:.2}x time, {:.2}x vpt; U-1obj: {:.2}x time, {:.2}x vpt",
                geomean(&time),
                geomean(&vpt),
                geomean(&time1),
                geomean(&vpt1)
            ),
            holds: geomean(&vpt) > 1.2 && geomean(&vpt1) > 1.2,
        });
    }

    // Claim 4: a call-site-sensitive heap is a bad tradeoff (1call+H vs
    // 1call: much more cost, almost no precision).
    {
        let (time, vpt, casts) = ratios("1call+H", "1call");
        lines.push(ClaimLine {
            claim: "1call+H vs 1call: cost up, precision flat".into(),
            paper: "cost grows significantly, little precision added".into(),
            measured: format!(
                "{:.2}x time, {:.2}x vpt, {:.2}x may-fail casts",
                geomean(&time),
                geomean(&vpt),
                geomean(&casts)
            ),
            holds: geomean(&vpt) > 1.2 && geomean(&casts) > 0.95,
        });
    }

    // Claim 5: selective hybrids approach uniform-hybrid precision.
    {
        let (_, _, casts_s) = ratios("S-2obj+H", "U-2obj+H");
        let (_, _, casts_base) = ratios("2obj+H", "U-2obj+H");
        lines.push(ClaimLine {
            claim: "S-2obj+H precision close to U-2obj+H, far from 2obj+H".into(),
            paper: "selective ~= uniform precision at a fraction of cost".into(),
            measured: format!(
                "may-fail casts: S/U ratio {:.2}x vs base/U ratio {:.2}x",
                geomean(&casts_s),
                geomean(&casts_base)
            ),
            holds: geomean(&casts_s) < geomean(&casts_base),
        });
    }

    let mut out = String::from("Summary statistics (paper vs measured):\n\n");
    for line in &lines {
        let _ = writeln!(
            out,
            "[{}] {}",
            if line.holds { "HOLDS" } else { "DIFFERS" },
            line.claim
        );
        let _ = writeln!(out, "    paper:    {}", line.paper);
        let _ = writeln!(out, "    measured: {}", line.measured);
        let _ = writeln!(out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(workload: &str, analysis: &str, casts: usize, time: f64, vpt: u64) -> ExperimentRow {
        ExperimentRow {
            workload: workload.into(),
            analysis: analysis.into(),
            status: CellStatus::Ok,
            threads: 1,
            reachable_methods: 100,
            avg_objs_per_var: 2.0,
            call_graph_edges: 500,
            poly_v_calls: 10,
            reachable_v_calls: 50,
            may_fail_casts: casts,
            reachable_casts: 60,
            time_secs: time,
            sensitive_var_points_to: vpt,
            contexts: 10,
            heap_contexts: 5,
            uncaught_exception_sites: 0,
            stats: pta_core::SolverStats::default(),
            profile: None,
            clients: None,
            peak_rss_bytes: None,
            no_share: false,
        }
    }

    fn sample() -> Vec<ExperimentRow> {
        vec![
            row("antlr", "1call", 40, 0.2, 9000),
            row("antlr", "1call+H", 40, 0.5, 15000),
            row("antlr", "1obj", 35, 0.15, 8000),
            row("antlr", "SA-1obj", 33, 0.12, 7000),
            row("antlr", "SB-1obj", 30, 0.14, 7500),
            row("antlr", "U-1obj", 28, 0.4, 16000),
            row("antlr", "2obj+H", 20, 0.3, 10000),
            row("antlr", "U-2obj+H", 12, 1.0, 25000),
            row("antlr", "S-2obj+H", 13, 0.2, 9000),
            row("antlr", "2type+H", 25, 0.18, 9500),
            row("antlr", "U-2type+H", 14, 0.5, 15000),
            row("antlr", "S-2type+H", 16, 0.15, 8800),
        ]
    }

    #[test]
    fn table1_contains_all_analyses_and_marks_best() {
        let t = render_table1(&sample());
        for a in ["1call", "S-2obj+H", "U-2type+H"] {
            assert!(t.contains(a), "missing {a} in:\n{t}");
        }
        assert!(t.contains('*'), "no best-time marker:\n{t}");
        assert!(t.contains("antlr"));
    }

    #[test]
    fn figure3_csv_has_header_and_rows() {
        let csv = render_figure3_csv(&sample());
        assert!(csv.starts_with("workload,analysis,may_fail_casts,time_secs\n"));
        assert_eq!(csv.lines().count(), 13);
    }

    #[test]
    fn scatter_renders_each_analysis_label() {
        let s = render_figure3_scatter(&sample());
        assert!(s.contains("= S-2obj+H"));
        assert!(s.contains("time (s, up) vs may-fail casts"));
    }

    #[test]
    fn summary_claims_hold_on_paper_shaped_sample() {
        let s = render_summary(&sample());
        assert!(
            !s.contains("DIFFERS"),
            "sample should satisfy all claims:\n{s}"
        );
    }

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 1.0);
    }
}

#[cfg(test)]
mod edge_case_tests {
    use super::*;
    use crate::ExperimentRow;

    fn row(analysis: &str, casts: usize, time: f64) -> ExperimentRow {
        ExperimentRow {
            workload: "w".into(),
            analysis: analysis.into(),
            status: crate::CellStatus::Ok,
            threads: 1,
            reachable_methods: 1,
            avg_objs_per_var: 1.0,
            call_graph_edges: 1,
            poly_v_calls: 0,
            reachable_v_calls: 0,
            may_fail_casts: casts,
            reachable_casts: casts,
            time_secs: time,
            sensitive_var_points_to: 1,
            contexts: 1,
            heap_contexts: 1,
            uncaught_exception_sites: 0,
            stats: pta_core::SolverStats::default(),
            profile: None,
            clients: None,
            peak_rss_bytes: None,
            no_share: false,
        }
    }

    #[test]
    fn scatter_handles_identical_x_values() {
        // All analyses fail the same number of casts: xmin == xmax.
        let rows = vec![row("a1", 5, 0.1), row("a2", 5, 0.2)];
        let s = render_figure3_scatter(&rows);
        assert!(s.contains("= a1"));
        assert!(s.contains("= a2"));
    }

    #[test]
    fn scatter_handles_zero_times_and_zero_casts() {
        let rows = vec![row("fast", 0, 0.0), row("slow", 9, 0.5)];
        let s = render_figure3_scatter(&rows);
        assert!(s.contains("= fast (0 casts"));
    }

    #[test]
    fn summary_with_missing_analyses_does_not_panic() {
        // Only one analysis present: every ratio set is empty, geomean
        // degrades to 1.0, and rendering still succeeds.
        let rows = vec![row("1obj", 3, 0.1)];
        let s = render_summary(&rows);
        assert!(s.contains("Summary statistics"));
    }

    #[test]
    fn table_with_unknown_analysis_name_renders_without_groups() {
        let rows = vec![row("custom-policy", 1, 0.1)];
        let t = render_table1(&rows);
        assert!(t.contains("custom-policy"));
    }
}
