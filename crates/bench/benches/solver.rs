//! Solver-infrastructure benchmarks: the specialized worklist solver vs the
//! generic Datalog back end (the gap between Doop's compiled rules and an
//! interpreted engine), plus workload generation throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use pta_core::datalog_impl::analyze_datalog;
use pta_core::{analyze, Analysis};
use pta_workload::{generate, WorkloadConfig};

fn solver_vs_datalog(c: &mut Criterion) {
    // Small program: the Datalog back end is the executable specification,
    // not the fast path.
    let program = generate(&WorkloadConfig::tiny(42));
    let mut group = c.benchmark_group("solver-vs-datalog");
    group.sample_size(10);
    group.bench_function("specialized/1obj", |b| {
        b.iter(|| black_box(analyze(black_box(&program), &Analysis::OneObj)))
    });
    group.bench_function("datalog/1obj", |b| {
        b.iter(|| black_box(analyze_datalog(black_box(&program), &Analysis::OneObj)))
    });
    group.bench_function("specialized/S-2obj+H", |b| {
        b.iter(|| black_box(analyze(black_box(&program), &Analysis::STwoObjH)))
    });
    group.bench_function("datalog/S-2obj+H", |b| {
        b.iter(|| black_box(analyze_datalog(black_box(&program), &Analysis::STwoObjH)))
    });
    group.finish();
}

fn workload_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("workload-generation");
    group.sample_size(20);
    for (name, cfg) in [
        ("tiny", WorkloadConfig::tiny(7)),
        ("small", WorkloadConfig::small(7)),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &cfg, |b, cfg| {
            b.iter(|| black_box(generate(black_box(cfg))))
        });
    }
    group.finish();
}

criterion_group!(benches, solver_vs_datalog, workload_generation);
criterion_main!(benches);
