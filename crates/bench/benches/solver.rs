//! Solver-infrastructure benchmarks: the specialized worklist solver vs the
//! generic Datalog back end (the gap between Doop's compiled rules and an
//! interpreted engine), plus workload generation throughput.

use std::hint::black_box;

use pta_bench::timing::Bench;
use pta_core::{Analysis, AnalysisSession, Backend};
use pta_workload::{generate, WorkloadConfig};

fn main() {
    let mut bench = Bench::from_args();
    // Small program: the Datalog back end is the executable specification,
    // not the fast path.
    let program = generate(&WorkloadConfig::tiny(42));
    bench.sample_size(10);
    bench.measure("solver-vs-datalog/specialized/1obj", || {
        black_box(
            AnalysisSession::open(black_box(program.clone()))
                .policy(Analysis::OneObj)
                .solve(),
        )
    });
    bench.measure("solver-vs-datalog/datalog/1obj", || {
        black_box(
            AnalysisSession::open(black_box(program.clone()))
                .policy(Analysis::OneObj)
                .backend(Backend::Datalog)
                .solve(),
        )
    });
    bench.measure("solver-vs-datalog/specialized/S-2obj+H", || {
        black_box(
            AnalysisSession::open(black_box(program.clone()))
                .policy(Analysis::STwoObjH)
                .solve(),
        )
    });
    bench.measure("solver-vs-datalog/datalog/S-2obj+H", || {
        black_box(
            AnalysisSession::open(black_box(program.clone()))
                .policy(Analysis::STwoObjH)
                .backend(Backend::Datalog)
                .solve(),
        )
    });
    bench.sample_size(20);
    for (name, cfg) in [
        ("tiny", WorkloadConfig::tiny(7)),
        ("small", WorkloadConfig::small(7)),
    ] {
        bench.measure(&format!("workload-generation/{name}"), || {
            black_box(generate(black_box(&cfg)))
        });
    }
}
