//! Ablation benchmarks for the design choices DESIGN.md calls out.
//!
//! - **static-call context treatment** (§2.2/§3.2): the only difference
//!   between `1obj`, `SA-1obj` and `SB-1obj` is `MergeStatic`; benchmarking
//!   them side by side isolates its cost.
//! - **call-site heap contexts are a bad buy** (§3 insight): `1call` vs
//!   `1call+H` isolates the cost of a call-site heap context; `2call+H`
//!   shows deep call-site contexts blowing up.
//! - **uniform vs selective combination** (§3.1 vs §3.2): `2obj+H` vs
//!   `U-2obj+H` vs `S-2obj+H` — the paper's headline comparison.
//! - **workload scaling**: `S-2obj+H` across scales, showing cost grows
//!   near-linearly in program size (the paper's scalability argument).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use pta_core::{analyze, Analysis};
use pta_workload::dacapo_workload;

fn merge_static_ablation(c: &mut Criterion) {
    let program = dacapo_workload("jython", 1.0); // static-call-heavy
    let mut group = c.benchmark_group("ablation-merge-static");
    group.sample_size(20);
    for analysis in [Analysis::OneObj, Analysis::SAOneObj, Analysis::SBOneObj] {
        group.bench_with_input(
            BenchmarkId::from_parameter(analysis.name()),
            &analysis,
            |b, a| b.iter(|| black_box(analyze(black_box(&program), a))),
        );
    }
    group.finish();
}

fn heap_context_ablation(c: &mut Criterion) {
    let program = dacapo_workload("hsqldb", 1.0); // container-heavy
    let mut group = c.benchmark_group("ablation-heap-context");
    group.sample_size(20);
    for analysis in [Analysis::OneCall, Analysis::OneCallH, Analysis::TwoCallH] {
        group.bench_with_input(
            BenchmarkId::from_parameter(analysis.name()),
            &analysis,
            |b, a| b.iter(|| black_box(analyze(black_box(&program), a))),
        );
    }
    group.finish();
}

fn uniform_vs_selective(c: &mut Criterion) {
    let program = dacapo_workload("xalan", 1.0);
    let mut group = c.benchmark_group("ablation-uniform-vs-selective");
    group.sample_size(20);
    for analysis in [Analysis::TwoObjH, Analysis::UTwoObjH, Analysis::STwoObjH] {
        group.bench_with_input(
            BenchmarkId::from_parameter(analysis.name()),
            &analysis,
            |b, a| b.iter(|| black_box(analyze(black_box(&program), a))),
        );
    }
    group.finish();
}

/// Deeper object-sensitive contexts (the paper's §6 "deeper-context
/// analyses" future work): 2obj+H vs 2obj+2H vs 3obj+2H vs the depth-3
/// selective hybrid.
fn deeper_contexts(c: &mut Criterion) {
    let program = dacapo_workload("eclipse", 1.0);
    let mut group = c.benchmark_group("ablation-deeper-contexts");
    group.sample_size(15);
    for analysis in [
        Analysis::TwoObjH,
        Analysis::TwoObj2H,
        Analysis::ThreeObj2H,
        Analysis::SThreeObj2H,
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(analysis.name()),
            &analysis,
            |b, a| b.iter(|| black_box(analyze(black_box(&program), a))),
        );
    }
    group.finish();
}

fn scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation-scaling");
    group.sample_size(10);
    for scale in [1u32, 2, 4] {
        let program = dacapo_workload("antlr", scale as f64);
        group.bench_with_input(BenchmarkId::from_parameter(scale), &program, |b, p| {
            b.iter(|| black_box(analyze(black_box(p), &Analysis::STwoObjH)))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    merge_static_ablation,
    heap_context_ablation,
    uniform_vs_selective,
    deeper_contexts,
    scaling
);
criterion_main!(benches);
