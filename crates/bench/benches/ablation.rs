//! Ablation benchmarks for the design choices DESIGN.md calls out.
//!
//! - **static-call context treatment** (§2.2/§3.2): the only difference
//!   between `1obj`, `SA-1obj` and `SB-1obj` is `MergeStatic`; benchmarking
//!   them side by side isolates its cost.
//! - **call-site heap contexts are a bad buy** (§3 insight): `1call` vs
//!   `1call+H` isolates the cost of a call-site heap context; `2call+H`
//!   shows deep call-site contexts blowing up.
//! - **uniform vs selective combination** (§3.1 vs §3.2): `2obj+H` vs
//!   `U-2obj+H` vs `S-2obj+H` — the paper's headline comparison.
//! - **workload scaling**: `S-2obj+H` across scales, showing cost grows
//!   near-linearly in program size (the paper's scalability argument).

use std::hint::black_box;

use pta_bench::timing::Bench;
use pta_core::{Analysis, AnalysisSession};
use pta_workload::dacapo_workload;

fn ablation(bench: &mut Bench, group: &str, workload: &str, analyses: &[Analysis]) {
    let program = dacapo_workload(workload, 1.0);
    for &analysis in analyses {
        bench.measure(&format!("{group}/{}", analysis.name()), || {
            black_box(
                AnalysisSession::open(black_box(program.clone()))
                    .policy(analysis)
                    .solve(),
            )
        });
    }
}

fn main() {
    let mut bench = Bench::from_args();
    bench.sample_size(20);
    // jython is static-call-heavy; hsqldb container-heavy.
    ablation(
        &mut bench,
        "ablation-merge-static",
        "jython",
        &[Analysis::OneObj, Analysis::SAOneObj, Analysis::SBOneObj],
    );
    ablation(
        &mut bench,
        "ablation-heap-context",
        "hsqldb",
        &[Analysis::OneCall, Analysis::OneCallH, Analysis::TwoCallH],
    );
    ablation(
        &mut bench,
        "ablation-uniform-vs-selective",
        "xalan",
        &[Analysis::TwoObjH, Analysis::UTwoObjH, Analysis::STwoObjH],
    );
    // Deeper object-sensitive contexts (the paper's §6 "deeper-context
    // analyses" future work): 2obj+H vs 2obj+2H vs 3obj+2H vs the depth-3
    // selective hybrid.
    bench.sample_size(15);
    ablation(
        &mut bench,
        "ablation-deeper-contexts",
        "eclipse",
        &[
            Analysis::TwoObjH,
            Analysis::TwoObj2H,
            Analysis::ThreeObj2H,
            Analysis::SThreeObj2H,
        ],
    );
    bench.sample_size(10);
    for scale in [1u32, 2, 4] {
        let program = dacapo_workload("antlr", f64::from(scale));
        bench.measure(&format!("ablation-scaling/{scale}x"), || {
            black_box(
                AnalysisSession::open(black_box(program.clone()))
                    .policy(Analysis::STwoObjH)
                    .solve(),
            )
        });
    }
}
