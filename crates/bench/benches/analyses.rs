//! Benchmark: solver wall-clock per analysis (Table 1's time column), one
//! group per paper analysis group, on a mid-size workload.
//!
//! Run a single group with e.g.
//! `cargo bench -p pta-bench --bench analyses -- 2obj`.

use std::hint::black_box;

use pta_bench::timing::Bench;
use pta_core::{analyze, Analysis};
use pta_workload::dacapo_workload;

fn bench_group(bench: &mut Bench, group_name: &str, analyses: &[Analysis]) {
    let program = dacapo_workload("antlr", 1.0);
    bench.sample_size(20);
    for &analysis in analyses {
        bench.measure(&format!("{group_name}/{}", analysis.name()), || {
            black_box(analyze(black_box(&program), &analysis))
        });
    }
}

fn main() {
    let mut bench = Bench::from_args();
    bench_group(
        &mut bench,
        "call-site",
        &[Analysis::OneCall, Analysis::OneCallH, Analysis::TwoCallH],
    );
    bench_group(
        &mut bench,
        "1obj",
        &[
            Analysis::OneObj,
            Analysis::UOneObj,
            Analysis::SAOneObj,
            Analysis::SBOneObj,
        ],
    );
    bench_group(
        &mut bench,
        "2obj",
        &[Analysis::TwoObjH, Analysis::UTwoObjH, Analysis::STwoObjH],
    );
    bench_group(
        &mut bench,
        "2type",
        &[Analysis::TwoTypeH, Analysis::UTwoTypeH, Analysis::STwoTypeH],
    );
}
