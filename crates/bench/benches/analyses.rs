//! Benchmark: solver wall-clock per analysis (Table 1's time column), one
//! group per paper analysis group, on a mid-size workload.
//!
//! Run a single group with e.g.
//! `cargo bench -p pta-bench --bench analyses -- 2obj`.
//!
//! `PTA_BENCH_WORKLOAD` picks the benchmark (default `antlr`) and
//! `PTA_SCALE` the scale factor (default `1.0`), so the same harness can
//! time the solver on e.g. `chart` at scale 24 when chasing a hot path.

use std::hint::black_box;

use pta_bench::timing::Bench;
use pta_core::{Analysis, AnalysisSession};
use pta_workload::dacapo_workload;

fn bench_group(bench: &mut Bench, group_name: &str, analyses: &[Analysis]) {
    let workload = std::env::var("PTA_BENCH_WORKLOAD").unwrap_or_else(|_| "antlr".to_owned());
    let scale: f64 = std::env::var("PTA_SCALE")
        .ok()
        .map(|s| s.parse().unwrap_or_else(|_| panic!("bad PTA_SCALE: {s:?}")))
        .unwrap_or(1.0);
    let program = dacapo_workload(&workload, scale);
    bench.sample_size(20);
    for &analysis in analyses {
        bench.measure(&format!("{group_name}/{}", analysis.name()), || {
            black_box(
                AnalysisSession::open(black_box(program.clone()))
                    .policy(analysis)
                    .solve(),
            )
        });
    }
}

fn main() {
    let mut bench = Bench::from_args();
    bench_group(
        &mut bench,
        "call-site",
        &[Analysis::OneCall, Analysis::OneCallH, Analysis::TwoCallH],
    );
    bench_group(
        &mut bench,
        "1obj",
        &[
            Analysis::OneObj,
            Analysis::UOneObj,
            Analysis::SAOneObj,
            Analysis::SBOneObj,
        ],
    );
    bench_group(
        &mut bench,
        "2obj",
        &[Analysis::TwoObjH, Analysis::UTwoObjH, Analysis::STwoObjH],
    );
    bench_group(
        &mut bench,
        "2type",
        &[Analysis::TwoTypeH, Analysis::UTwoTypeH, Analysis::STwoTypeH],
    );
}
