//! Criterion benchmark: solver wall-clock per analysis (Table 1's time
//! column), one group per paper analysis group, on a mid-size workload.
//!
//! Run a single group with e.g.
//! `cargo bench -p pta-bench --bench analyses -- 2obj`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use pta_core::{analyze, Analysis};
use pta_workload::dacapo_workload;

fn bench_group(c: &mut Criterion, group_name: &str, analyses: &[Analysis]) {
    let program = dacapo_workload("antlr", 1.0);
    let mut group = c.benchmark_group(group_name);
    group.sample_size(20);
    for &analysis in analyses {
        group.bench_with_input(
            BenchmarkId::from_parameter(analysis.name()),
            &analysis,
            |b, a| b.iter(|| black_box(analyze(black_box(&program), a))),
        );
    }
    group.finish();
}

fn call_site_group(c: &mut Criterion) {
    bench_group(
        c,
        "call-site",
        &[Analysis::OneCall, Analysis::OneCallH, Analysis::TwoCallH],
    );
}

fn one_obj_group(c: &mut Criterion) {
    bench_group(
        c,
        "1obj",
        &[
            Analysis::OneObj,
            Analysis::UOneObj,
            Analysis::SAOneObj,
            Analysis::SBOneObj,
        ],
    );
}

fn two_obj_group(c: &mut Criterion) {
    bench_group(
        c,
        "2obj",
        &[Analysis::TwoObjH, Analysis::UTwoObjH, Analysis::STwoObjH],
    );
}

fn two_type_group(c: &mut Criterion) {
    bench_group(
        c,
        "2type",
        &[Analysis::TwoTypeH, Analysis::UTwoTypeH, Analysis::STwoTypeH],
    );
}

criterion_group!(
    benches,
    call_site_group,
    one_obj_group,
    two_obj_group,
    two_type_group
);
criterion_main!(benches);
