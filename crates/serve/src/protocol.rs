//! The serve wire protocol: line-delimited JSON requests and responses.
//!
//! # Grammar
//!
//! Every request is one JSON object on one line:
//!
//! ```text
//! {"id": N, "op": OP, ...op-specific fields...}
//! ```
//!
//! | op           | fields                                   | answer                    |
//! |--------------|------------------------------------------|---------------------------|
//! | `points_to`  | `program?`, `policy?`, `var`             | points-to set per binding |
//! | `devirt`     | `program?`, `policy?`, `invo` (index)    | dispatch targets          |
//! | `cast_check` | `program?`, `policy?`, `method`, `instr` | may-fail verdict          |
//! | `findings`   | `program?`, `policy?`, `var`             | client findings for var   |
//! | `update`     | `program?`, `edits` (array)              | new version + per-policy  |
//! | `health`     | —                                        | liveness + queue depth    |
//! | `stats`      | —                                        | full daemon statistics    |
//! | `metrics`    | —                                        | metrics JSON + Prometheus |
//! | `shutdown`   | —                                        | ack, then graceful drain  |
//!
//! An `update` edits the resident program in place and re-establishes
//! every resident policy's fixpoint — incrementally when the session
//! retained its solver state, by re-solving otherwise. Each element of
//! `edits` is an object tagged by `"edit"`:
//!
//! ```text
//! {"edit":"alloc","method":"Main.main","to":"p","class":"A","label":"h9"}
//! {"edit":"move","method":"Main.main","to":"x","from":"y"}
//! {"edit":"remove","method":"Main.main","index":3}
//! {"edit":"clear","method":"Main.main"}
//! {"edit":"entry","method":"Main.boot"}
//! {"edit":"remove_entry","method":"Main.boot"}
//! ```
//!
//! Methods are addressed by qualified name, classes by name, variables
//! by name within the method (`"to"` vars that do not exist yet are
//! created). `remove` addresses an instruction by its index in the
//! method body.
//!
//! `program` may be omitted when exactly one program is resident;
//! `policy` defaults to the first policy the daemon was started with.
//! Any request may carry `deadline_ms` (a per-request deadline measured
//! from admission).
//!
//! Responses are one JSON object per line: `{"id":N,"ok":true,...}` on
//! success, `{"id":N,"ok":false,"error":CODE,"message":...}` otherwise.
//! Error codes are enumerated in [`ErrorCode`]; they are part of the
//! protocol and are asserted on by the soak driver.

use crate::json::{self, Value};

/// Machine-readable error codes carried in `"error"` fields.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The line was not a JSON object.
    Parse,
    /// The line exceeded the daemon's maximum request size.
    Oversized,
    /// Well-formed JSON missing or mistyping a required field.
    BadRequest,
    /// No resident program with that name.
    UnknownProgram,
    /// The policy is not one the daemon was started with.
    UnknownPolicy,
    /// No variable with that name in the program.
    UnknownVar,
    /// The invocation-site index is out of range or not a virtual call.
    UnknownInvo,
    /// `method`/`instr` does not name a cast instruction.
    UnknownCast,
    /// Admission queue full: the request was shed, not queued.
    Overloaded,
    /// The daemon is draining; no new work is admitted.
    ShuttingDown,
    /// The request's deadline passed before or during evaluation.
    DeadlineExceeded,
    /// The request's cancel token tripped (injected fault or forced
    /// drain).
    Cancelled,
    /// The request's evaluation step budget was exhausted (injected
    /// fault).
    BudgetExhausted,
}

impl ErrorCode {
    /// The stable wire name.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::Parse => "parse",
            ErrorCode::Oversized => "oversized",
            ErrorCode::BadRequest => "bad_request",
            ErrorCode::UnknownProgram => "unknown_program",
            ErrorCode::UnknownPolicy => "unknown_policy",
            ErrorCode::UnknownVar => "unknown_var",
            ErrorCode::UnknownInvo => "unknown_invo",
            ErrorCode::UnknownCast => "unknown_cast",
            ErrorCode::Overloaded => "overloaded",
            ErrorCode::ShuttingDown => "shutting_down",
            ErrorCode::DeadlineExceeded => "deadline_exceeded",
            ErrorCode::Cancelled => "cancelled",
            ErrorCode::BudgetExhausted => "budget_exhausted",
        }
    }
}

/// One parsed element of an `update` request's `"edits"` array.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EditSpec {
    /// Append `to = new class` to `method` (creating `to` if needed).
    Alloc {
        method: String,
        to: String,
        class: String,
        label: String,
    },
    /// Append `to = from` to `method`.
    Move {
        method: String,
        to: String,
        from: String,
    },
    /// Remove the instruction at `index` in `method`'s body.
    Remove { method: String, index: u64 },
    /// Remove every instruction of `method`.
    Clear { method: String },
    /// Add `method` to the entry-point set.
    Entry { method: String },
    /// Remove `method` from the entry-point set.
    RemoveEntry { method: String },
}

/// What a query asks of the resident analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Op {
    PointsTo { var: String },
    Devirt { invo: u64 },
    CastCheck { method: String, instr: u64 },
    Findings { var: String },
    Update { edits: Vec<EditSpec> },
    Health,
    Stats,
    Metrics,
    Shutdown,
}

impl Op {
    /// The wire name of the operation (mirrored back in responses).
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Op::PointsTo { .. } => "points_to",
            Op::Devirt { .. } => "devirt",
            Op::CastCheck { .. } => "cast_check",
            Op::Findings { .. } => "findings",
            Op::Update { .. } => "update",
            Op::Health => "health",
            Op::Stats => "stats",
            Op::Metrics => "metrics",
            Op::Shutdown => "shutdown",
        }
    }

    /// Whether this op consults a resident (program, policy) entry.
    #[must_use]
    pub fn is_query(&self) -> bool {
        matches!(
            self,
            Op::PointsTo { .. } | Op::Devirt { .. } | Op::CastCheck { .. } | Op::Findings { .. }
        )
    }

    /// Whether this op mutates the resident state (takes the write
    /// lock instead of a read lock).
    #[must_use]
    pub fn is_update(&self) -> bool {
        matches!(self, Op::Update { .. })
    }
}

/// A parsed, validated request.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Client-chosen correlation id, echoed in the response.
    pub id: u64,
    pub op: Op,
    /// Resident program name; `None` means "the only program".
    pub program: Option<String>,
    /// Policy name; `None` means the daemon's first policy.
    pub policy: Option<String>,
    /// Per-request deadline in milliseconds from admission.
    pub deadline_ms: Option<u64>,
}

/// Renders the standard error response line (no trailing newline).
#[must_use]
pub fn error_line(id: u64, code: ErrorCode, message: &str) -> String {
    format!(
        "{{\"id\":{},\"ok\":false,\"error\":\"{}\",\"message\":\"{}\"}}",
        id,
        code.as_str(),
        json::escape(message)
    )
}

/// Parses one element of an `update` request's `"edits"` array.
fn parse_edit(item: &Value) -> Result<EditSpec, String> {
    let str_field = |key: &str| -> Result<String, String> {
        match item.get(key) {
            Some(Value::String(s)) => Ok(s.clone()),
            _ => Err(format!("edit missing string field \"{key}\"")),
        }
    };
    let kind = str_field("edit")?;
    let method = str_field("method")?;
    Ok(match kind.as_str() {
        "alloc" => EditSpec::Alloc {
            method,
            to: str_field("to")?,
            class: str_field("class")?,
            label: str_field("label")?,
        },
        "move" => EditSpec::Move {
            method,
            to: str_field("to")?,
            from: str_field("from")?,
        },
        "remove" => {
            let index = item
                .get("index")
                .and_then(Value::as_u64)
                .ok_or("edit \"remove\" needs a non-negative integer \"index\"")?;
            EditSpec::Remove { method, index }
        }
        "clear" => EditSpec::Clear { method },
        "entry" => EditSpec::Entry { method },
        "remove_entry" => EditSpec::RemoveEntry { method },
        other => return Err(format!("unknown edit kind \"{other}\"")),
    })
}

/// Parses one request line. On failure returns `(best-effort id, code,
/// message)` so the connection can still answer with a correlated error:
/// the id is recovered from the malformed object when possible, else 0.
pub fn parse_request(line: &str) -> Result<Request, (u64, ErrorCode, String)> {
    let v = match json::parse(line) {
        Ok(v @ Value::Object(_)) => v,
        Ok(_) => return Err((0, ErrorCode::Parse, "request must be a JSON object".into())),
        Err(e) => return Err((0, ErrorCode::Parse, e)),
    };
    let id = match v.get("id") {
        Some(idv) => idv.as_u64().ok_or((
            0,
            ErrorCode::BadRequest,
            "\"id\" must be a non-negative integer".into(),
        ))?,
        None => {
            return Err((
                0,
                ErrorCode::BadRequest,
                "missing required field \"id\"".into(),
            ));
        }
    };
    let fail = |msg: &str| (id, ErrorCode::BadRequest, msg.to_string());
    let opt_str = |key: &str| -> Result<Option<String>, (u64, ErrorCode, String)> {
        match v.get(key) {
            None | Some(Value::Null) => Ok(None),
            Some(Value::String(s)) => Ok(Some(s.clone())),
            Some(_) => Err(fail(&format!("\"{key}\" must be a string"))),
        }
    };
    let req_str = |key: &str| -> Result<String, (u64, ErrorCode, String)> {
        opt_str(key)?.ok_or_else(|| fail(&format!("missing required field \"{key}\"")))
    };
    let req_u64 = |key: &str| -> Result<u64, (u64, ErrorCode, String)> {
        match v.get(key) {
            Some(n) => n
                .as_u64()
                .ok_or_else(|| fail(&format!("\"{key}\" must be a non-negative integer"))),
            None => Err(fail(&format!("missing required field \"{key}\""))),
        }
    };
    let op_name = req_str("op")?;
    let op = match op_name.as_str() {
        "points_to" => Op::PointsTo {
            var: req_str("var")?,
        },
        "devirt" => Op::Devirt {
            invo: req_u64("invo")?,
        },
        "cast_check" => Op::CastCheck {
            method: req_str("method")?,
            instr: req_u64("instr")?,
        },
        "findings" => Op::Findings {
            var: req_str("var")?,
        },
        "update" => {
            let Some(Value::Array(items)) = v.get("edits") else {
                return Err(fail("\"edits\" must be an array of edit objects"));
            };
            if items.is_empty() {
                return Err(fail("\"edits\" must not be empty"));
            }
            let mut edits = Vec::with_capacity(items.len());
            for item in items {
                edits.push(parse_edit(item).map_err(|m| fail(&m))?);
            }
            Op::Update { edits }
        }
        "health" => Op::Health,
        "stats" => Op::Stats,
        "metrics" => Op::Metrics,
        "shutdown" => Op::Shutdown,
        other => return Err((id, ErrorCode::BadRequest, format!("unknown op \"{other}\""))),
    };
    let deadline_ms = match v.get("deadline_ms") {
        None | Some(Value::Null) => None,
        Some(n) => Some(
            n.as_u64()
                .ok_or_else(|| fail("\"deadline_ms\" must be a non-negative integer"))?,
        ),
    };
    Ok(Request {
        id,
        op,
        program: opt_str("program")?,
        policy: opt_str("policy")?,
        deadline_ms,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_each_op() {
        let r = parse_request(r#"{"id":1,"op":"points_to","var":"x"}"#).unwrap();
        assert_eq!(r.op, Op::PointsTo { var: "x".into() });
        let r = parse_request(r#"{"id":2,"op":"devirt","invo":7,"policy":"2objH"}"#).unwrap();
        assert_eq!(r.op, Op::Devirt { invo: 7 });
        assert_eq!(r.policy.as_deref(), Some("2objH"));
        let r = parse_request(r#"{"id":3,"op":"cast_check","method":"A.m","instr":4}"#).unwrap();
        assert_eq!(
            r.op,
            Op::CastCheck {
                method: "A.m".into(),
                instr: 4
            }
        );
        let r = parse_request(r#"{"id":4,"op":"findings","var":"v","deadline_ms":9}"#).unwrap();
        assert_eq!(r.deadline_ms, Some(9));
        for (op, want) in [
            ("health", Op::Health),
            ("stats", Op::Stats),
            ("metrics", Op::Metrics),
            ("shutdown", Op::Shutdown),
        ] {
            let r = parse_request(&format!("{{\"id\":5,\"op\":\"{op}\"}}")).unwrap();
            assert_eq!(r.op, want);
        }
    }

    #[test]
    fn parses_update_edit_scripts() {
        let r = parse_request(
            r#"{"id":6,"op":"update","program":"app","edits":[
                {"edit":"alloc","method":"A.main","to":"x","class":"B","label":"h9"},
                {"edit":"move","method":"A.main","to":"y","from":"x"},
                {"edit":"remove","method":"A.main","index":3},
                {"edit":"clear","method":"B.helper"},
                {"edit":"entry","method":"B.boot"},
                {"edit":"remove_entry","method":"A.main"}]}"#,
        )
        .unwrap();
        assert_eq!(r.program.as_deref(), Some("app"));
        assert!(r.op.is_update());
        let Op::Update { edits } = r.op else {
            unreachable!()
        };
        assert_eq!(edits.len(), 6);
        assert_eq!(
            edits[0],
            EditSpec::Alloc {
                method: "A.main".into(),
                to: "x".into(),
                class: "B".into(),
                label: "h9".into(),
            }
        );
        assert_eq!(
            edits[2],
            EditSpec::Remove {
                method: "A.main".into(),
                index: 3
            }
        );
        assert_eq!(
            edits[5],
            EditSpec::RemoveEntry {
                method: "A.main".into()
            }
        );
    }

    #[test]
    fn rejects_malformed_edit_scripts() {
        for line in [
            // Missing, empty, or mistyped edits array.
            r#"{"id":1,"op":"update"}"#,
            r#"{"id":1,"op":"update","edits":[]}"#,
            r#"{"id":1,"op":"update","edits":"clear"}"#,
            // Unknown kind, missing fields, mistyped index.
            r#"{"id":1,"op":"update","edits":[{"edit":"explode","method":"A.m"}]}"#,
            r#"{"id":1,"op":"update","edits":[{"edit":"alloc","method":"A.m","to":"x"}]}"#,
            r#"{"id":1,"op":"update","edits":[{"edit":"remove","method":"A.m","index":-1}]}"#,
            r#"{"id":1,"op":"update","edits":[{"edit":"clear"}]}"#,
        ] {
            let (id, code, _) = parse_request(line).unwrap_err();
            assert_eq!((id, code), (1, ErrorCode::BadRequest), "accepted: {line}");
        }
    }

    #[test]
    fn recovers_the_id_from_malformed_requests() {
        // Unknown op and missing fields still correlate to the id...
        let (id, code, _) = parse_request(r#"{"id":41,"op":"frobnicate"}"#).unwrap_err();
        assert_eq!((id, code), (41, ErrorCode::BadRequest));
        let (id, code, _) = parse_request(r#"{"id":42,"op":"points_to"}"#).unwrap_err();
        assert_eq!((id, code), (42, ErrorCode::BadRequest));
        // ...while unparseable lines fall back to id 0.
        let (id, code, _) = parse_request("{\"id\":43,").unwrap_err();
        assert_eq!((id, code), (0, ErrorCode::Parse));
    }

    #[test]
    fn rejects_mistyped_fields() {
        for line in [
            r#"{"op":"health"}"#,
            r#"{"id":-1,"op":"health"}"#,
            r#"{"id":1.5,"op":"health"}"#,
            r#"{"id":1,"op":"devirt","invo":"seven"}"#,
            r#"{"id":1,"op":"points_to","var":7}"#,
            r#"{"id":1,"op":"health","deadline_ms":"soon"}"#,
            r#"[1,2,3]"#,
        ] {
            assert!(parse_request(line).is_err(), "accepted: {line}");
        }
    }
}
