//! The daemon's resident state: programs loaded once, policies solved
//! once, answers served many times.
//!
//! Startup parses (or generates) every configured program, then solves
//! every configured policy for each program — each solve under the
//! configured startup budget. A solve that trips its budget does **not**
//! make the (program, policy) pair unavailable: mirroring the batch
//! CLI's exit-3 semantics, the daemon instead solves the always-cheap
//! context-insensitive baseline to completion and answers queries for
//! the tripped policy from that fallback, tagging every such response
//! `"partial": true`. Clients get a sound (over-approximate) answer and
//! an honest label instead of an error.
//!
//! Client findings (`op: "findings"`) are also materialized here, once
//! per entry, so per-request work is pure lookup + filtering and a
//! request deadline bounds only cheap scans.

use std::fmt::Write as _;
use std::str::FromStr;
use std::time::Instant;

use pta_clients::{run_check, CheckReport, CheckSpec, ClientBackend};
use pta_core::{Analysis, AnalysisSession, Budget, PointsToResult, Termination};
use pta_ir::Program;
use pta_lang::parse_program;
use pta_workload::{dacapo_workload, DACAPO_NAMES};

/// Where a resident program comes from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProgramSource {
    /// A `.jir` file on disk; the resident name is the file stem.
    File(String),
    /// A generated DaCapo-shaped workload, `name:scale`; the resident
    /// name is the full spec string (so two scales can coexist).
    Workload { name: String, scale: String },
}

impl ProgramSource {
    /// Parses a `--workload NAME:SCALE` spec.
    pub fn parse_workload(spec: &str) -> Result<ProgramSource, String> {
        let (name, scale) = spec
            .split_once(':')
            .ok_or_else(|| format!("expected NAME:SCALE, got \"{spec}\""))?;
        if !DACAPO_NAMES.contains(&name) {
            return Err(format!(
                "unknown workload \"{name}\" (want one of {})",
                DACAPO_NAMES.join(", ")
            ));
        }
        let s: f64 = scale
            .parse()
            .map_err(|_| format!("bad workload scale \"{scale}\""))?;
        if !s.is_finite() || s <= 0.0 || s > 1024.0 {
            return Err(format!("workload scale {scale} outside (0, 1024]"));
        }
        Ok(ProgramSource::Workload {
            name: name.to_owned(),
            scale: scale.to_owned(),
        })
    }

    /// The resident name queries address this program by.
    #[must_use]
    pub fn resident_name(&self) -> String {
        match self {
            ProgramSource::File(path) => std::path::Path::new(path)
                .file_stem()
                .map(|s| s.to_string_lossy().into_owned())
                .unwrap_or_else(|| path.clone()),
            ProgramSource::Workload { name, scale } => format!("{name}:{scale}"),
        }
    }

    fn load(&self) -> Result<Program, String> {
        match self {
            ProgramSource::File(path) => {
                let source = std::fs::read_to_string(path)
                    .map_err(|e| format!("cannot read {path}: {e}"))?;
                parse_program(&source).map_err(|e| format!("cannot parse {path}: {e}"))
            }
            ProgramSource::Workload { name, scale } => {
                // Both validated in `parse_workload`.
                Ok(dacapo_workload(name, scale.parse().unwrap()))
            }
        }
    }
}

/// How the daemon solves at startup.
#[derive(Debug, Clone)]
pub struct SolveConfig {
    /// Solver threads for the startup solves (answers are unaffected:
    /// the parallel solver is bit-identical to sequential).
    pub threads: usize,
    /// Startup budget per (program, policy) solve; a trip engages the
    /// context-insensitive fallback.
    pub budget: Budget,
    /// Hash-consed shared points-to sets (the batch default).
    pub share: bool,
}

impl Default for SolveConfig {
    fn default() -> Self {
        SolveConfig {
            threads: 1,
            budget: Budget::unlimited(),
            share: true,
        }
    }
}

/// One solved (program, policy) pair.
pub struct PolicyEntry {
    pub policy: Analysis,
    /// The result queries are answered from. When `partial`, this is the
    /// context-insensitive fallback, not the tripped primary solve.
    pub result: PointsToResult,
    /// Client findings over `result`, materialized once.
    pub report: CheckReport,
    /// `true` when the primary solve tripped its budget and the
    /// fallback answers instead.
    pub partial: bool,
    /// How the primary solve ended (`Complete` when `!partial`).
    pub termination: Termination,
    /// Wall-clock startup solve time (primary + any fallback), ms.
    pub solve_ms: u64,
    /// Primary solve step count.
    pub steps: u64,
}

impl PolicyEntry {
    /// The wire value of this entry's `"status"` in health responses.
    #[must_use]
    pub fn status(&self) -> &'static str {
        if self.partial {
            "partial"
        } else {
            "ready"
        }
    }
}

/// A resident program with one entry per configured policy.
pub struct ResidentProgram {
    pub name: String,
    pub program: Program,
    pub entries: Vec<PolicyEntry>,
}

/// Everything the daemon holds hot. Built once at startup, then shared
/// immutably (`Arc`) by every worker; answering never locks.
pub struct Resident {
    pub programs: Vec<ResidentProgram>,
    /// The configured policies, in flag order; `policies[0]` is the
    /// default for requests that omit `"policy"`.
    pub policies: Vec<Analysis>,
}

impl Resident {
    /// Loads every program and solves every (program, policy) pair.
    pub fn build(
        sources: &[ProgramSource],
        policy_names: &[String],
        solve: &SolveConfig,
    ) -> Result<Resident, String> {
        if sources.is_empty() {
            return Err("no programs: pass FILE.jir and/or --workload NAME:SCALE".into());
        }
        let mut policies = Vec::new();
        for name in policy_names {
            let a = Analysis::from_str(name)
                .map_err(|_| format!("unknown policy \"{name}\" (try `pta list`)"))?;
            if !policies.contains(&a) {
                policies.push(a);
            }
        }
        if policies.is_empty() {
            policies.push(Analysis::Insens);
        }
        let mut programs: Vec<ResidentProgram> = Vec::new();
        for source in sources {
            let name = source.resident_name();
            if programs.iter().any(|p| p.name == name) {
                return Err(format!("duplicate resident program name \"{name}\""));
            }
            let program = source.load()?;
            let mut entries = Vec::new();
            for &policy in &policies {
                entries.push(solve_entry(&program, policy, solve));
            }
            programs.push(ResidentProgram {
                name,
                program,
                entries,
            });
        }
        Ok(Resident { programs, policies })
    }

    /// Resolves a request's program reference. `None` means "the only
    /// resident program" and is an error when several are loaded.
    pub fn program(&self, name: Option<&str>) -> Result<&ResidentProgram, String> {
        match name {
            Some(n) => self.programs.iter().find(|p| p.name == n).ok_or_else(|| {
                format!(
                    "no resident program \"{n}\" (have: {})",
                    self.names().join(", ")
                )
            }),
            None if self.programs.len() == 1 => Ok(&self.programs[0]),
            None => Err(format!(
                "\"program\" is required with several resident programs (have: {})",
                self.names().join(", ")
            )),
        }
    }

    /// Resolves a request's policy reference against the resident set.
    pub fn entry<'r>(
        &self,
        program: &'r ResidentProgram,
        policy: Option<&str>,
    ) -> Result<&'r PolicyEntry, String> {
        let want = match policy {
            None => self.policies[0],
            Some(name) => {
                Analysis::from_str(name).map_err(|_| format!("unknown policy \"{name}\""))?
            }
        };
        program
            .entries
            .iter()
            .find(|e| e.policy == want)
            .ok_or_else(|| {
                format!(
                    "policy \"{}\" is not resident (have: {})",
                    want.name(),
                    self.policies
                        .iter()
                        .map(|p| p.name())
                        .collect::<Vec<_>>()
                        .join(", ")
                )
            })
    }

    fn names(&self) -> Vec<&str> {
        self.programs.iter().map(|p| p.name.as_str()).collect()
    }

    /// One line per (program, policy) pair for startup logging.
    #[must_use]
    pub fn summary(&self) -> String {
        let mut out = String::new();
        for p in &self.programs {
            for e in &p.entries {
                let _ = writeln!(
                    out,
                    "  {} × {}: {} ({} steps, {} ms)",
                    p.name,
                    e.policy.name(),
                    e.status(),
                    e.steps,
                    e.solve_ms
                );
            }
        }
        out
    }
}

fn solve_entry(program: &Program, policy: Analysis, solve: &SolveConfig) -> PolicyEntry {
    let started = Instant::now();
    let primary = AnalysisSession::new(program)
        .policy(policy)
        .threads(solve.threads)
        .budget(solve.budget.clone())
        .share(solve.share)
        .run();
    let termination = primary.termination();
    let steps = primary.solver_stats().steps;
    let (result, partial) = if termination.is_complete() {
        (primary, false)
    } else {
        // Budget tripped: answer from the context-insensitive baseline,
        // solved to completion (it is the cheapest policy by orders of
        // magnitude), and tag every response partial — the serve analog
        // of the batch CLI's exit-3 partial result.
        let fallback = AnalysisSession::new(program)
            .policy(Analysis::Insens)
            .threads(solve.threads)
            .share(solve.share)
            .run();
        (fallback, true)
    };
    let report = run_check(
        program,
        &result,
        &CheckSpec::default(),
        ClientBackend::Direct,
    );
    PolicyEntry {
        policy,
        result,
        report,
        partial,
        termination,
        solve_ms: started.elapsed().as_millis() as u64,
        steps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sources(spec: &str) -> Vec<ProgramSource> {
        vec![ProgramSource::parse_workload(spec).unwrap()]
    }

    #[test]
    fn builds_ready_entries_and_resolves_references() {
        let r = Resident::build(
            &sources("luindex:0.1"),
            &["insens".into(), "2obj+H".into()],
            &SolveConfig::default(),
        )
        .unwrap();
        assert_eq!(r.policies, vec![Analysis::Insens, Analysis::TwoObjH]);
        let p = r.program(None).unwrap();
        assert_eq!(p.name, "luindex:0.1");
        let e = r.entry(p, Some("2obj+H")).unwrap();
        assert_eq!(e.status(), "ready");
        assert!(!e.partial);
        assert!(r.entry(p, Some("3obj+2H")).is_err());
        assert!(r.program(Some("missing")).is_err());
    }

    #[test]
    fn tripped_solves_fall_back_to_insens_and_tag_partial() {
        let r = Resident::build(
            &sources("luindex:0.2"),
            &["2obj+H".into()],
            &SolveConfig {
                budget: Budget::unlimited().with_max_steps(50),
                ..SolveConfig::default()
            },
        )
        .unwrap();
        let e = &r.programs[0].entries[0];
        assert!(e.partial);
        assert_eq!(e.status(), "partial");
        assert_eq!(e.termination, Termination::StepLimit);
        // The fallback is a complete insens result, so answers exist.
        assert!(e.result.termination().is_complete());
        assert!(e.result.reachable_method_count() > 0);
    }

    #[test]
    fn rejects_bad_sources() {
        assert!(ProgramSource::parse_workload("luindex").is_err());
        assert!(ProgramSource::parse_workload("nosuch:0.1").is_err());
        assert!(ProgramSource::parse_workload("luindex:-1").is_err());
        assert!(ProgramSource::parse_workload("luindex:nan").is_err());
        let missing = vec![ProgramSource::File("/nonexistent/x.jir".into())];
        assert!(Resident::build(&missing, &[], &SolveConfig::default()).is_err());
        assert!(Resident::build(&[], &[], &SolveConfig::default()).is_err());
    }
}
