//! The daemon's resident state: programs loaded once, policies solved
//! once, answers served many times.
//!
//! Startup parses (or generates) every configured program, then solves
//! every configured policy for each program — each solve under the
//! configured startup budget. A solve that trips its budget does **not**
//! make the (program, policy) pair unavailable: mirroring the batch
//! CLI's exit-3 semantics, the daemon instead solves the always-cheap
//! context-insensitive baseline to completion and answers queries for
//! the tripped policy from that fallback, tagging every such response
//! `"partial": true`. Clients get a sound (over-approximate) answer and
//! an honest label instead of an error.
//!
//! Client findings (`op: "findings"`) are also materialized here, once
//! per entry, so per-request work is pure lookup + filtering and a
//! request deadline bounds only cheap scans.

use std::fmt::Write as _;
use std::str::FromStr;
use std::sync::Arc;
use std::time::Instant;

use pta_clients::{run_check, CheckReport, CheckSpec, ClientBackend};
use pta_core::{Analysis, AnalysisSession, Budget, PointsToResult, Termination};
use pta_ir::{MethodId, Program, ProgramDelta, VarId};
use pta_lang::parse_program;
use pta_obs::Metrics;
use pta_workload::{dacapo_workload, DACAPO_NAMES};

use crate::protocol::EditSpec;

/// Where a resident program comes from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProgramSource {
    /// A `.jir` file on disk; the resident name is the file stem.
    File(String),
    /// A generated DaCapo-shaped workload, `name:scale`; the resident
    /// name is the full spec string (so two scales can coexist).
    Workload { name: String, scale: String },
}

impl ProgramSource {
    /// Parses a `--workload NAME:SCALE` spec.
    pub fn parse_workload(spec: &str) -> Result<ProgramSource, String> {
        let (name, scale) = spec
            .split_once(':')
            .ok_or_else(|| format!("expected NAME:SCALE, got \"{spec}\""))?;
        if !DACAPO_NAMES.contains(&name) {
            return Err(format!(
                "unknown workload \"{name}\" (want one of {})",
                DACAPO_NAMES.join(", ")
            ));
        }
        let s: f64 = scale
            .parse()
            .map_err(|_| format!("bad workload scale \"{scale}\""))?;
        if !s.is_finite() || s <= 0.0 || s > 1024.0 {
            return Err(format!("workload scale {scale} outside (0, 1024]"));
        }
        Ok(ProgramSource::Workload {
            name: name.to_owned(),
            scale: scale.to_owned(),
        })
    }

    /// The resident name queries address this program by.
    #[must_use]
    pub fn resident_name(&self) -> String {
        match self {
            ProgramSource::File(path) => std::path::Path::new(path)
                .file_stem()
                .map(|s| s.to_string_lossy().into_owned())
                .unwrap_or_else(|| path.clone()),
            ProgramSource::Workload { name, scale } => format!("{name}:{scale}"),
        }
    }

    fn load(&self) -> Result<Program, String> {
        match self {
            ProgramSource::File(path) => {
                let source = std::fs::read_to_string(path)
                    .map_err(|e| format!("cannot read {path}: {e}"))?;
                parse_program(&source).map_err(|e| format!("cannot parse {path}: {e}"))
            }
            ProgramSource::Workload { name, scale } => {
                // Both validated in `parse_workload`.
                Ok(dacapo_workload(name, scale.parse().unwrap()))
            }
        }
    }
}

/// How the daemon solves at startup.
#[derive(Debug, Clone)]
pub struct SolveConfig {
    /// Solver threads for the startup solves (answers are unaffected:
    /// the parallel solver is bit-identical to sequential).
    pub threads: usize,
    /// Startup budget per (program, policy) solve; a trip engages the
    /// context-insensitive fallback.
    pub budget: Budget,
    /// Hash-consed shared points-to sets (the batch default).
    pub share: bool,
    /// The daemon's metrics registry, attached to every resident
    /// session so solver/apply counters land in one place. Disabled by
    /// default (records nothing, allocates nothing).
    pub metrics: Metrics,
}

impl Default for SolveConfig {
    fn default() -> Self {
        SolveConfig {
            threads: 1,
            budget: Budget::unlimited(),
            share: true,
            metrics: Metrics::disabled(),
        }
    }
}

/// One solved (program, policy) pair.
pub struct PolicyEntry {
    pub policy: Analysis,
    /// The owned session behind `result`. Kept alive between requests so
    /// `update` can maintain the fixpoint incrementally instead of
    /// re-solving from scratch.
    session: AnalysisSession<Analysis>,
    /// The result queries are answered from. When `partial`, this is the
    /// context-insensitive fallback, not the tripped primary solve.
    pub result: PointsToResult,
    /// Client findings over `result`, materialized once.
    pub report: CheckReport,
    /// `true` when the primary solve tripped its budget and the
    /// fallback answers instead.
    pub partial: bool,
    /// How the primary solve ended (`Complete` when `!partial`).
    pub termination: Termination,
    /// Wall-clock solve time of the most recent (re-)solve, ms.
    pub solve_ms: u64,
    /// Primary solve step count.
    pub steps: u64,
    /// `true` when the most recent `update` was absorbed by incremental
    /// maintenance rather than a from-scratch re-solve.
    pub incremental: bool,
    /// Why the most recent `update` fell back to a from-scratch
    /// re-solve (`None` at startup and after incremental updates).
    pub last_fallback: Option<&'static str>,
}

impl PolicyEntry {
    /// The wire value of this entry's `"status"` in health responses.
    #[must_use]
    pub fn status(&self) -> &'static str {
        if self.partial {
            "partial"
        } else {
            "ready"
        }
    }
}

/// A resident program with one entry per configured policy.
pub struct ResidentProgram {
    pub name: String,
    pub program: Arc<Program>,
    /// Monotone program version: 1 at startup, +1 per applied `update`.
    pub version: u64,
    pub entries: Vec<PolicyEntry>,
}

/// Everything the daemon holds hot. Built once at startup, then shared
/// immutably (`Arc`) by every worker; answering never locks.
pub struct Resident {
    pub programs: Vec<ResidentProgram>,
    /// The configured policies, in flag order; `policies[0]` is the
    /// default for requests that omit `"policy"`.
    pub policies: Vec<Analysis>,
}

impl Resident {
    /// Loads every program and solves every (program, policy) pair.
    pub fn build(
        sources: &[ProgramSource],
        policy_names: &[String],
        solve: &SolveConfig,
    ) -> Result<Resident, String> {
        if sources.is_empty() {
            return Err("no programs: pass FILE.jir and/or --workload NAME:SCALE".into());
        }
        let mut policies = Vec::new();
        for name in policy_names {
            let a = Analysis::from_str(name)
                .map_err(|_| format!("unknown policy \"{name}\" (try `pta list`)"))?;
            if !policies.contains(&a) {
                policies.push(a);
            }
        }
        if policies.is_empty() {
            policies.push(Analysis::Insens);
        }
        let mut programs: Vec<ResidentProgram> = Vec::new();
        for source in sources {
            let name = source.resident_name();
            if programs.iter().any(|p| p.name == name) {
                return Err(format!("duplicate resident program name \"{name}\""));
            }
            let program = Arc::new(source.load()?);
            let mut entries = Vec::new();
            for &policy in &policies {
                entries.push(solve_entry(&program, policy, solve));
            }
            programs.push(ResidentProgram {
                name,
                program,
                version: 1,
                entries,
            });
        }
        Ok(Resident { programs, policies })
    }

    /// Resolves a request's program reference. `None` means "the only
    /// resident program" and is an error when several are loaded.
    pub fn program(&self, name: Option<&str>) -> Result<&ResidentProgram, String> {
        match name {
            Some(n) => self.programs.iter().find(|p| p.name == n).ok_or_else(|| {
                format!(
                    "no resident program \"{n}\" (have: {})",
                    self.names().join(", ")
                )
            }),
            None if self.programs.len() == 1 => Ok(&self.programs[0]),
            None => Err(format!(
                "\"program\" is required with several resident programs (have: {})",
                self.names().join(", ")
            )),
        }
    }

    /// Resolves a request's policy reference against the resident set.
    pub fn entry<'r>(
        &self,
        program: &'r ResidentProgram,
        policy: Option<&str>,
    ) -> Result<&'r PolicyEntry, String> {
        let want = match policy {
            None => self.policies[0],
            Some(name) => {
                Analysis::from_str(name).map_err(|_| format!("unknown policy \"{name}\""))?
            }
        };
        program
            .entries
            .iter()
            .find(|e| e.policy == want)
            .ok_or_else(|| {
                format!(
                    "policy \"{}\" is not resident (have: {})",
                    want.name(),
                    self.policies
                        .iter()
                        .map(|p| p.name())
                        .collect::<Vec<_>>()
                        .join(", ")
                )
            })
    }

    fn names(&self) -> Vec<&str> {
        self.programs.iter().map(|p| p.name.as_str()).collect()
    }

    /// Applies one `update` request: edits the named resident program
    /// and re-establishes every policy's fixpoint — incrementally when
    /// the entry's session retained its solver state.
    pub fn update(
        &mut self,
        name: Option<&str>,
        edits: &[EditSpec],
        solve: &SolveConfig,
    ) -> Result<UpdateOutcome, String> {
        let idx = match name {
            Some(n) => self
                .programs
                .iter()
                .position(|p| p.name == n)
                .ok_or_else(|| {
                    format!(
                        "no resident program \"{n}\" (have: {})",
                        self.names().join(", ")
                    )
                })?,
            None if self.programs.len() == 1 => 0,
            None => {
                return Err(format!(
                    "\"program\" is required with several resident programs (have: {})",
                    self.names().join(", ")
                ));
            }
        };
        let rp = &mut self.programs[idx];
        let delta = build_delta(&rp.program, edits)?;
        // Validate the delta once up front so a bad edit script fails
        // atomically instead of leaving entries on different versions.
        let new_program = Arc::new(rp.program.apply_delta(&delta).map_err(|e| e.to_string())?);
        let mut entries = Vec::with_capacity(rp.entries.len());
        for e in &mut rp.entries {
            e.apply(&delta, solve)?;
            entries.push((e.policy, e.incremental, e.solve_ms, e.last_fallback));
        }
        rp.program = new_program;
        rp.version += 1;
        Ok(UpdateOutcome {
            program: rp.name.clone(),
            version: rp.version,
            entries,
        })
    }

    /// Exports per-entry state gauges (`pta_policy_*`, labeled by
    /// program and policy) into `m`. Called after startup solves and
    /// after every applied update, so the exposition endpoint always
    /// reflects the current resident state.
    pub fn export_gauges(&self, m: &Metrics) {
        if !m.is_enabled() {
            return;
        }
        for p in &self.programs {
            m.gauge("pta_program_version", &[("program", &p.name)])
                .set(p.version);
            for e in &p.entries {
                let labels: &[(&str, &str)] = &[("program", &p.name), ("policy", e.policy.name())];
                m.gauge("pta_policy_solve_ms", labels).set(e.solve_ms);
                m.gauge("pta_policy_steps", labels).set(e.steps);
                m.gauge("pta_policy_partial", labels)
                    .set(u64::from(e.partial));
            }
        }
    }

    /// One line per (program, policy) pair for startup logging.
    #[must_use]
    pub fn summary(&self) -> String {
        let mut out = String::new();
        for p in &self.programs {
            for e in &p.entries {
                let _ = writeln!(
                    out,
                    "  {} × {}: {} ({} steps, {} ms)",
                    p.name,
                    e.policy.name(),
                    e.status(),
                    e.steps,
                    e.solve_ms
                );
            }
        }
        out
    }
}

/// Resolves a primary solve into the answer source queries use,
/// engaging the context-insensitive fallback when the solve tripped its
/// budget — the serve analog of the batch CLI's exit-3 partial result.
/// Returns `(result, report, partial, termination, steps)`.
fn resolve_primary(
    primary: PointsToResult,
    program: &Arc<Program>,
    solve: &SolveConfig,
) -> (PointsToResult, CheckReport, bool, Termination, u64) {
    let termination = primary.termination();
    let steps = primary.solver_stats().steps;
    let (result, partial) = if termination.is_complete() {
        (primary, false)
    } else {
        // Budget tripped: answer from the context-insensitive baseline,
        // solved to completion (it is the cheapest policy by orders of
        // magnitude), and tag every response partial.
        let fallback = AnalysisSession::from_arc(Arc::clone(program))
            .policy(Analysis::Insens)
            .threads(solve.threads)
            .share(solve.share)
            .metrics(solve.metrics.clone())
            .solve();
        (fallback, true)
    };
    let report = run_check(
        program,
        &result,
        &CheckSpec::default(),
        ClientBackend::Direct,
    );
    (result, report, partial, termination, steps)
}

fn solve_entry(program: &Arc<Program>, policy: Analysis, solve: &SolveConfig) -> PolicyEntry {
    let started = Instant::now();
    let mut session = AnalysisSession::from_arc(Arc::clone(program))
        .policy(policy)
        .threads(solve.threads)
        .budget(solve.budget.clone())
        .share(solve.share)
        .incremental(true)
        .metrics(solve.metrics.clone());
    let primary = session.solve();
    let (result, report, partial, termination, steps) = resolve_primary(primary, program, solve);
    PolicyEntry {
        policy,
        session,
        result,
        report,
        partial,
        termination,
        solve_ms: started.elapsed().as_millis() as u64,
        steps,
        incremental: false,
        last_fallback: None,
    }
}

impl PolicyEntry {
    /// Applies one program delta to this entry — incrementally when the
    /// session retained its fixpoint, by re-solving otherwise.
    fn apply(&mut self, delta: &ProgramDelta, solve: &SolveConfig) -> Result<(), String> {
        let started = Instant::now();
        let primary = self.session.apply(delta).map_err(|e| e.to_string())?;
        self.incremental = self.session.last_apply_was_incremental();
        self.last_fallback = self.session.last_fallback();
        let program = Arc::clone(self.session.program());
        let (result, report, partial, termination, steps) =
            resolve_primary(primary, &program, solve);
        self.result = result;
        self.report = report;
        self.partial = partial;
        self.termination = termination;
        self.steps = steps;
        self.solve_ms = started.elapsed().as_millis() as u64;
        Ok(())
    }
}

/// The per-policy outcome report of one applied `update`.
pub struct UpdateOutcome {
    pub program: String,
    pub version: u64,
    /// `(policy, maintained incrementally, solve_ms, fallback reason)`
    /// per entry; the reason is `None` for incremental maintenance.
    pub entries: Vec<(Analysis, bool, u64, Option<&'static str>)>,
}

/// Resolves the edit script's names against `program` and builds the
/// corresponding [`ProgramDelta`].
fn build_delta(program: &Program, edits: &[EditSpec]) -> Result<ProgramDelta, String> {
    let find_method = |name: &str| -> Result<MethodId, String> {
        program
            .methods()
            .find(|&m| program.method_qualified_name(m) == name)
            .ok_or_else(|| format!("no method named \"{name}\""))
    };
    let find_var = |meth: MethodId, name: &str| -> Option<VarId> {
        program
            .vars()
            .find(|&v| program.var_method(v) == meth && program.var_name(v) == name)
    };
    let mut delta = ProgramDelta::new(program);
    for edit in edits {
        match edit {
            EditSpec::Alloc {
                method,
                to,
                class,
                label,
            } => {
                let m = find_method(method)?;
                let ty = program
                    .types()
                    .find(|&t| program.type_name(t) == class)
                    .ok_or_else(|| format!("no class named \"{class}\""))?;
                let var = find_var(m, to).unwrap_or_else(|| delta.var(m, to));
                delta.alloc(m, var, ty, label);
            }
            EditSpec::Move { method, to, from } => {
                let m = find_method(method)?;
                let from = find_var(m, from)
                    .ok_or_else(|| format!("no variable \"{from}\" in {method}"))?;
                let to = find_var(m, to).unwrap_or_else(|| delta.var(m, to));
                delta.move_(m, to, from);
            }
            EditSpec::Remove { method, index } => {
                delta.remove_instr(find_method(method)?, *index as usize);
            }
            EditSpec::Clear { method } => delta.clear_method(find_method(method)?),
            EditSpec::Entry { method } => delta.entry_point(find_method(method)?),
            EditSpec::RemoveEntry { method } => delta.remove_entry_point(find_method(method)?),
        }
    }
    Ok(delta)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sources(spec: &str) -> Vec<ProgramSource> {
        vec![ProgramSource::parse_workload(spec).unwrap()]
    }

    #[test]
    fn builds_ready_entries_and_resolves_references() {
        let r = Resident::build(
            &sources("luindex:0.1"),
            &["insens".into(), "2obj+H".into()],
            &SolveConfig::default(),
        )
        .unwrap();
        assert_eq!(r.policies, vec![Analysis::Insens, Analysis::TwoObjH]);
        let p = r.program(None).unwrap();
        assert_eq!(p.name, "luindex:0.1");
        let e = r.entry(p, Some("2obj+H")).unwrap();
        assert_eq!(e.status(), "ready");
        assert!(!e.partial);
        assert!(r.entry(p, Some("3obj+2H")).is_err());
        assert!(r.program(Some("missing")).is_err());
    }

    #[test]
    fn tripped_solves_fall_back_to_insens_and_tag_partial() {
        let r = Resident::build(
            &sources("luindex:0.2"),
            &["2obj+H".into()],
            &SolveConfig {
                budget: Budget::unlimited().with_max_steps(50),
                ..SolveConfig::default()
            },
        )
        .unwrap();
        let e = &r.programs[0].entries[0];
        assert!(e.partial);
        assert_eq!(e.status(), "partial");
        assert_eq!(e.termination, Termination::StepLimit);
        // The fallback is a complete insens result, so answers exist.
        assert!(e.result.termination().is_complete());
        assert!(e.result.reachable_method_count() > 0);
    }

    #[test]
    fn updates_bump_the_version_and_stay_incremental() {
        let mut r = Resident::build(
            &sources("luindex:0.1"),
            &["insens".into(), "2obj+H".into()],
            &SolveConfig::default(),
        )
        .unwrap();
        assert_eq!(r.programs[0].version, 1);
        let base = Arc::clone(&r.programs[0].program);
        let entry = base.entry_points()[0];
        let edits = vec![EditSpec::Alloc {
            method: base.method_qualified_name(entry),
            to: "fresh_upd".into(),
            class: base.type_name(base.method_declaring(entry)).to_owned(),
            label: "upd_h0".into(),
        }];
        let out = r.update(None, &edits, &SolveConfig::default()).unwrap();
        assert_eq!(out.version, 2);
        assert_eq!(r.programs[0].version, 2);
        // luindex:0.1 has no reachable exception traffic, so an additive
        // edit is absorbed incrementally by every resident policy.
        assert!(out
            .entries
            .iter()
            .all(|&(_, incremental, _, fallback)| incremental && fallback.is_none()));
        // The fresh allocation is visible to queries against the entry.
        let np = Arc::clone(&r.programs[0].program);
        let var = np
            .vars()
            .find(|&v| np.var_name(v) == "fresh_upd")
            .expect("delta-created variable");
        let p = r.program(None).unwrap();
        let e = r.entry(p, None).unwrap();
        assert!(e.result.termination().is_complete());
        assert_eq!(e.result.points_to(var).len(), 1);
    }

    #[test]
    fn bad_edit_scripts_fail_atomically() {
        let mut r = Resident::build(
            &sources("luindex:0.1"),
            &["insens".into()],
            &SolveConfig::default(),
        )
        .unwrap();
        for edits in [
            vec![EditSpec::Clear {
                method: "No.such".into(),
            }],
            vec![EditSpec::Move {
                method: r.programs[0]
                    .program
                    .method_qualified_name(r.programs[0].program.entry_points()[0]),
                to: "x".into(),
                from: "no_such_var".into(),
            }],
        ] {
            assert!(r.update(None, &edits, &SolveConfig::default()).is_err());
            assert_eq!(r.programs[0].version, 1, "failed update must not bump");
        }
        // `program` is required only when several programs are resident.
        assert!(r
            .update(Some("missing"), &[], &SolveConfig::default())
            .is_err());
    }

    #[test]
    fn rejects_bad_sources() {
        assert!(ProgramSource::parse_workload("luindex").is_err());
        assert!(ProgramSource::parse_workload("nosuch:0.1").is_err());
        assert!(ProgramSource::parse_workload("luindex:-1").is_err());
        assert!(ProgramSource::parse_workload("luindex:nan").is_err());
        let missing = vec![ProgramSource::File("/nonexistent/x.jir".into())];
        assert!(Resident::build(&missing, &[], &SolveConfig::default()).is_err());
        assert!(Resident::build(&[], &[], &SolveConfig::default()).is_err());
    }
}
