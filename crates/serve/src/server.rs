//! The resident daemon: readers, a bounded admission queue, workers,
//! and a drain-deadline shutdown path.
//!
//! # Request lifecycle
//!
//! 1. A **reader** (stdin, or one thread per TCP connection) pulls one
//!    line. Lines that fail to parse — garbage, truncated JSON,
//!    oversized — are answered inline with a structured error and never
//!    touch the queue, so malformed traffic cannot occupy a slot.
//! 2. Control ops (`health`, `stats`, `shutdown`) are answered inline
//!    too: they must keep working while the queue is saturated or
//!    draining, which is exactly when they are most needed.
//! 3. Query ops go through **admission**: if the daemon is draining the
//!    reader answers `shutting_down`; if the bounded queue is full it
//!    answers `overloaded` immediately (load shedding — the daemon
//!    never buffers without bound). Otherwise the request is queued
//!    with its admission timestamp and any injected fault decision.
//! 4. A **worker** pops the job, arms per-request governance (cancel
//!    token, deadline from admission time, step budget), applies any
//!    injected fault, evaluates via [`crate::answer`], and writes the
//!    response line to the connection the request came from.
//! 5. **Shutdown** (SIGTERM, stdin EOF, or the `shutdown` op) stops
//!    admission, wakes the workers, and waits for in-flight work up to
//!    the drain deadline. If the deadline passes, every in-flight
//!    request's token is cancelled — the bounded-latency guarantee from
//!    the solver and the answer loops means workers come back promptly,
//!    their requests answered with `cancelled` errors. Exit code 0 for
//!    a clean drain, 3 when the drain was forced.

use std::collections::VecDeque;
use std::io::{BufRead, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::time::{Duration, Instant};

use pta_govern::{memtrack, CancelToken};
use pta_obs::{events_to_chrome_json, Event, EventLog, Field, Metrics, Trace, LATENCY_BUCKETS_US};

use crate::answer::{answer, ReqCtx};
use crate::fault::{garble_line, FaultInjector, FaultKind};
use crate::protocol::{error_line, parse_request, ErrorCode, Op, Request};
use crate::resident::{ProgramSource, Resident, SolveConfig};

/// Everything `pta serve` can be configured with.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    pub sources: Vec<ProgramSource>,
    /// Policy names to solve at startup (`["insens"]` when empty).
    pub policies: Vec<String>,
    pub solve: SolveConfig,
    /// Worker pool size.
    pub workers: usize,
    /// Bounded admission queue capacity; beyond it, requests are shed.
    pub queue_capacity: usize,
    /// Default per-request deadline (ms from admission); a request's
    /// own `deadline_ms` overrides it.
    pub default_deadline_ms: Option<u64>,
    /// How long shutdown waits for in-flight requests before forcing
    /// cancellation.
    pub drain_ms: u64,
    /// TCP listener port (`Some(0)` = OS-assigned).
    pub port: Option<u16>,
    /// Where to write the bound TCP port (for test orchestration).
    pub port_file: Option<String>,
    pub faults: Option<FaultInjector>,
    /// Chrome-trace output path; enables per-request spans.
    pub trace_path: Option<String>,
    /// Prometheus exposition address (`host:port`, port 0 =
    /// OS-assigned); `None` disables the HTTP endpoint (the `metrics`
    /// op still answers over the regular protocol).
    pub metrics_addr: Option<String>,
    /// Where to write the bound metrics port (for test orchestration).
    pub metrics_port_file: Option<String>,
    /// Structured event-log path; enables request-lifecycle events.
    pub events_path: Option<String>,
    /// Serve the stdin/stdout channel (EOF initiates shutdown). TCP-only
    /// deployments turn this off so a closed stdin doesn't stop them.
    pub use_stdin: bool,
    /// Requests longer than this are rejected with an `oversized` error.
    pub max_line_bytes: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            sources: Vec::new(),
            policies: Vec::new(),
            solve: SolveConfig::default(),
            workers: 2,
            queue_capacity: 64,
            default_deadline_ms: None,
            drain_ms: 2_000,
            port: None,
            port_file: None,
            faults: None,
            trace_path: None,
            metrics_addr: None,
            metrics_port_file: None,
            events_path: None,
            use_stdin: true,
            max_line_bytes: 1 << 20,
        }
    }
}

/// A connection's write half; one response line per lock acquisition,
/// so lines from concurrent workers never interleave mid-line.
type Reply = Arc<Mutex<Box<dyn Write + Send>>>;

struct Job {
    req: Request,
    reply: Reply,
    admitted: Instant,
    fault: Option<FaultKind>,
}

struct QueueState {
    jobs: VecDeque<Job>,
    draining: bool,
}

/// State shared by readers, workers, and the drain loop.
struct Shared {
    /// Queries take the read lock; `update` requests take the write
    /// lock for the duration of the re-solve.
    resident: RwLock<Resident>,
    cfg: ServeConfig,
    queue: Mutex<QueueState>,
    available: Condvar,
    /// Jobs popped but not yet answered (bumped under the queue lock so
    /// the drain loop can't observe an empty queue + zero in-flight
    /// while a job is in hand).
    in_flight: AtomicUsize,
    /// One slot per worker: the cancel token of its current request,
    /// for forced drain.
    active: Mutex<Vec<Option<CancelToken>>>,
    shutdown: AtomicBool,
    served: AtomicU64,
    shed: AtomicU64,
    errors: AtomicU64,
    faulted: AtomicU64,
    last_request_peak: AtomicU64,
    max_request_peak: AtomicU64,
    trace: Trace,
    /// Drained trace events, capped — the daemon's trace memory bound.
    trace_events: Mutex<Vec<Event>>,
    /// The daemon's metrics registry — always enabled: the `metrics`
    /// op and the exposition endpoint must answer whether or not any
    /// flag was passed. Resident sessions share this handle, so solver
    /// and apply counters land beside the request counters.
    metrics: Metrics,
    /// Structured lifecycle event log (disabled unless `--events`).
    events: EventLog,
}

/// Caps the daemon's retained trace events (oldest dropped first).
const TRACE_EVENT_CAP: usize = 100_000;
/// How often workers move trace buffers into the capped aggregate.
const TRACE_DRAIN_STRIDE: u64 = 64;

impl Shared {
    fn write_line(reply: &Reply, line: &str) {
        let mut w = reply.lock().unwrap();
        // A vanished client is its own problem; the daemon stays up.
        let _ = w.write_all(line.as_bytes());
        let _ = w.write_all(b"\n");
        let _ = w.flush();
    }

    fn status(&self) -> &'static str {
        if self.shutdown.load(Ordering::SeqCst) || self.queue.lock().unwrap().draining {
            "draining"
        } else {
            "ok"
        }
    }

    fn health_line(&self, id: u64) -> String {
        let q = self.queue.lock().unwrap();
        let depth = q.jobs.len();
        drop(q);
        format!(
            "{{\"id\":{},\"ok\":true,\"op\":\"health\",\"status\":\"{}\",\"queue_depth\":{},\"queue_capacity\":{},\"in_flight\":{}}}",
            id,
            self.status(),
            depth,
            self.cfg.queue_capacity,
            self.in_flight.load(Ordering::SeqCst)
        )
    }

    fn stats_line(&self, id: u64) -> String {
        let mut policies = String::new();
        for p in &self.resident.read().unwrap().programs {
            for e in &p.entries {
                if !policies.is_empty() {
                    policies.push(',');
                }
                policies.push_str(&format!(
                    "{{\"program\":\"{}\",\"version\":{},\"policy\":\"{}\",\"status\":\"{}\",\"termination\":\"{}\",\"steps\":{},\"solve_ms\":{},\"incremental\":{},\"last_fallback\":{}}}",
                    crate::json::escape(&p.name),
                    p.version,
                    e.policy.name(),
                    e.status(),
                    e.termination.as_str(),
                    e.steps,
                    e.solve_ms,
                    e.incremental,
                    match e.last_fallback {
                        Some(reason) => format!("\"{}\"", crate::json::escape(reason)),
                        None => "null".to_string(),
                    }
                ));
            }
        }
        let depth = self.queue.lock().unwrap().jobs.len();
        format!(
            "{{\"id\":{},\"ok\":true,\"op\":\"stats\",\"status\":\"{}\",\"queue_depth\":{},\"queue_capacity\":{},\"workers\":{},\"in_flight\":{},\"served\":{},\"shed\":{},\"errors\":{},\"faulted\":{},\"resident_bytes\":{},\"request_peak_bytes\":{{\"last\":{},\"max\":{}}},\"policies\":[{}]}}",
            id,
            self.status(),
            depth,
            self.cfg.queue_capacity,
            self.cfg.workers,
            self.in_flight.load(Ordering::SeqCst),
            self.served.load(Ordering::SeqCst),
            self.shed.load(Ordering::SeqCst),
            self.errors.load(Ordering::SeqCst),
            self.faulted.load(Ordering::SeqCst),
            memtrack::current_bytes(),
            self.last_request_peak.load(Ordering::SeqCst),
            self.max_request_peak.load(Ordering::SeqCst),
            policies
        )
    }

    /// The `metrics` op's response: the registry as JSON alongside the
    /// same registry rendered in Prometheus text format (escaped into
    /// one string field), so clients pick whichever they parse.
    fn metrics_line(&self, id: u64) -> String {
        format!(
            "{{\"id\":{},\"ok\":true,\"op\":\"metrics\",\"metrics\":{},\"prometheus\":\"{}\"}}",
            id,
            self.metrics.to_json(),
            crate::json::escape(&self.metrics.to_prometheus())
        )
    }

    /// Handles one raw request line from a reader thread. Parse errors
    /// and control ops are answered inline; queries go through
    /// admission. Returns `true` when the line asked for shutdown.
    fn handle_line(self: &Arc<Shared>, line: &str, reply: &Reply) -> bool {
        let line = line.trim();
        if line.is_empty() {
            return false;
        }
        let req = match parse_request(line) {
            Ok(req) => req,
            Err((id, code, msg)) => {
                self.errors.fetch_add(1, Ordering::SeqCst);
                self.metrics
                    .counter("pta_request_errors_total", &[("code", code.as_str())])
                    .inc();
                Shared::write_line(reply, &error_line(id, code, &msg));
                return false;
            }
        };
        self.metrics
            .counter("pta_requests_total", &[("op", req.op.name())])
            .inc();
        match req.op {
            Op::Health => {
                Shared::write_line(reply, &self.health_line(req.id));
                false
            }
            Op::Stats => {
                Shared::write_line(reply, &self.stats_line(req.id));
                false
            }
            Op::Metrics => {
                Shared::write_line(reply, &self.metrics_line(req.id));
                false
            }
            Op::Shutdown => {
                Shared::write_line(
                    reply,
                    &format!(
                        "{{\"id\":{},\"ok\":true,\"op\":\"shutdown\",\"stopping\":true}}",
                        req.id
                    ),
                );
                self.shutdown.store(true, Ordering::SeqCst);
                true
            }
            _ => {
                self.admit(req, reply);
                false
            }
        }
    }

    /// Bounded admission: shed (`overloaded`) when full, refuse
    /// (`shutting_down`) when draining, else enqueue.
    fn admit(self: &Arc<Shared>, req: Request, reply: &Reply) {
        let fault = self.cfg.faults.as_ref().and_then(|f| f.decide(req.id));
        let id = req.id;
        let verdict = {
            let mut q = self.queue.lock().unwrap();
            if q.draining || self.shutdown.load(Ordering::SeqCst) {
                Some(ErrorCode::ShuttingDown)
            } else if q.jobs.len() >= self.cfg.queue_capacity {
                Some(ErrorCode::Overloaded)
            } else {
                q.jobs.push_back(Job {
                    req,
                    reply: Arc::clone(reply),
                    admitted: Instant::now(),
                    fault,
                });
                self.metrics
                    .gauge("pta_queue_depth", &[])
                    .set(q.jobs.len() as u64);
                None
            }
        };
        match verdict {
            Some(code) => {
                self.metrics
                    .counter("pta_request_errors_total", &[("code", code.as_str())])
                    .inc();
                let message = if code == ErrorCode::Overloaded {
                    self.shed.fetch_add(1, Ordering::SeqCst);
                    self.metrics.counter("pta_requests_shed_total", &[]).inc();
                    self.events.emit("shed", &[("id", Field::U64(id))]);
                    "admission queue full; retry later"
                } else {
                    "daemon is draining"
                };
                Shared::write_line(reply, &error_line(id, code, message));
            }
            None => self.available.notify_one(),
        }
    }

    /// One worker: pop, govern, evaluate, reply — until drained.
    fn worker_loop(self: &Arc<Shared>, slot: usize) {
        loop {
            let job = {
                let mut q = self.queue.lock().unwrap();
                loop {
                    if let Some(job) = q.jobs.pop_front() {
                        // Under the lock: drain can never see "queue
                        // empty and nothing in flight" while this job is
                        // in hand.
                        let now = self.in_flight.fetch_add(1, Ordering::SeqCst) + 1;
                        self.metrics
                            .gauge("pta_queue_depth", &[])
                            .set(q.jobs.len() as u64);
                        self.metrics.gauge("pta_in_flight", &[]).set(now as u64);
                        break job;
                    }
                    if q.draining {
                        return;
                    }
                    q = self.available.wait(q).unwrap();
                }
            };
            self.serve_job(slot, job);
            let now = self.in_flight.fetch_sub(1, Ordering::SeqCst) - 1;
            self.metrics.gauge("pta_in_flight", &[]).set(now as u64);
        }
    }

    fn serve_job(self: &Arc<Shared>, slot: usize, job: Job) {
        let id = job.req.id;
        let cancel = CancelToken::new();
        self.active.lock().unwrap()[slot] = Some(cancel.clone());
        let deadline_ms = job.req.deadline_ms.or(self.cfg.default_deadline_ms);
        let deadline = deadline_ms.map(|ms| job.admitted + Duration::from_millis(ms));
        let mut max_steps = None;
        if let Some(kind) = job.fault {
            self.faulted.fetch_add(1, Ordering::SeqCst);
            self.metrics
                .counter("pta_requests_faulted_total", &[("kind", kind.as_str())])
                .inc();
            match kind {
                FaultKind::Delay => {
                    let ms = self.cfg.faults.as_ref().unwrap().delay_ms(id);
                    std::thread::sleep(Duration::from_millis(ms));
                }
                FaultKind::Cancel => cancel.cancel(),
                FaultKind::Exhaust => max_steps = Some(0),
                FaultKind::Garble => {}
            }
        }
        let peak = memtrack::ScopedPeak::begin();
        let mut ts = self.trace.scope_named(id as u32, &format!("request {id}"));
        let t0 = ts.now_ns();
        let mut ctx = ReqCtx::new(cancel, deadline, max_steps);
        let line = if let Op::Update { edits } = &job.req.op {
            let mut resident = self.resident.write().unwrap();
            match resident.update(job.req.program.as_deref(), edits, &self.cfg.solve) {
                Ok(outcome) => {
                    resident.export_gauges(&self.metrics);
                    let incremental = outcome
                        .entries
                        .iter()
                        .filter(|&&(_, inc, _, _)| inc)
                        .count() as u64;
                    self.events.emit(
                        "policy_update",
                        &[
                            ("program", Field::Str(&outcome.program)),
                            ("version", Field::U64(outcome.version)),
                            ("policies", Field::U64(outcome.entries.len() as u64)),
                            ("incremental", Field::U64(incremental)),
                        ],
                    );
                    let mut out = format!(
                        "{{\"id\":{},\"ok\":true,\"op\":\"update\",\"program\":\"{}\",\"version\":{},\"policies\":[",
                        id,
                        crate::json::escape(&outcome.program),
                        outcome.version
                    );
                    for (i, (policy, incremental, solve_ms, fallback)) in
                        outcome.entries.iter().enumerate()
                    {
                        if i > 0 {
                            out.push(',');
                        }
                        out.push_str(&format!(
                            "{{\"policy\":\"{}\",\"incremental\":{},\"solve_ms\":{}",
                            policy.name(),
                            incremental,
                            solve_ms
                        ));
                        if let Some(reason) = fallback {
                            out.push_str(&format!(
                                ",\"fallback\":\"{}\"",
                                crate::json::escape(reason)
                            ));
                        }
                        out.push('}');
                    }
                    out.push_str("]}");
                    out
                }
                Err(m) => {
                    let code = if m.starts_with("no resident program") {
                        ErrorCode::UnknownProgram
                    } else {
                        ErrorCode::BadRequest
                    };
                    error_line(id, code, &m)
                }
            }
        } else {
            answer(&job.req, &self.resident.read().unwrap(), &mut ctx)
        };
        ts.complete(
            job.req.op.name(),
            "serve",
            t0,
            ts.now_ns() - t0,
            &[("id", id)],
        );
        drop(ts); // flush the request's span before the reply goes out
        let peak_bytes = peak.peak_bytes();
        self.last_request_peak.store(peak_bytes, Ordering::SeqCst);
        self.max_request_peak
            .fetch_max(peak_bytes, Ordering::SeqCst);
        self.active.lock().unwrap()[slot] = None;
        let code = error_code_of(&line);
        if line.contains("\"ok\":false") {
            self.errors.fetch_add(1, Ordering::SeqCst);
            self.metrics
                .counter(
                    "pta_request_errors_total",
                    &[("code", code.unwrap_or("unknown"))],
                )
                .inc();
        }
        if code == Some(ErrorCode::DeadlineExceeded.as_str()) {
            self.metrics
                .counter("pta_deadline_miss_total", &[("op", job.req.op.name())])
                .inc();
        }
        let latency_us = job.admitted.elapsed().as_micros() as u64;
        self.metrics
            .histogram(
                "pta_request_latency_us",
                &[("op", job.req.op.name())],
                LATENCY_BUCKETS_US,
            )
            .observe(latency_us);
        self.events.emit(
            "request",
            &[
                ("id", Field::U64(id)),
                ("op", Field::Str(job.req.op.name())),
                ("status", Field::Str(code.unwrap_or("ok"))),
                ("latency_us", Field::U64(latency_us)),
            ],
        );
        let out = if job.fault == Some(FaultKind::Garble) {
            garble_line(id)
        } else {
            line
        };
        Shared::write_line(&job.reply, &out);
        let served = self.served.fetch_add(1, Ordering::SeqCst) + 1;
        if self.trace.is_enabled() && served.is_multiple_of(TRACE_DRAIN_STRIDE) {
            self.cap_trace();
        }
    }

    /// Moves flushed trace buffers into the capped daemon-side
    /// aggregate — the memory bound that lets `--trace` run for the
    /// daemon's whole (unbounded) lifetime.
    fn cap_trace(&self) {
        let drained = self.trace.drain();
        let mut held = self.trace_events.lock().unwrap();
        held.extend(drained);
        if held.len() > TRACE_EVENT_CAP {
            let excess = held.len() - TRACE_EVENT_CAP;
            held.drain(..excess);
        }
    }
}

/// A launched daemon: bound port (when TCP was requested) plus the
/// blocking [`ServerHandle::wait`] that runs the shutdown protocol.
pub struct ServerHandle {
    /// The TCP port actually bound, when `cfg.port` was set.
    pub port: Option<u16>,
    /// The Prometheus exposition port, when `cfg.metrics_addr` was set.
    pub metrics_port: Option<u16>,
    shared: Arc<Shared>,
    workers: Vec<std::thread::JoinHandle<()>>,
    sigterm: CancelToken,
}

impl ServerHandle {
    /// The daemon's metrics registry (for in-process embedding/tests).
    #[must_use]
    pub fn metrics(&self) -> Metrics {
        self.shared.metrics.clone()
    }
}

/// Builds the resident state and starts readers + workers. Returns
/// `Err` for configuration problems (bad program, unbindable port).
pub fn launch(mut cfg: ServeConfig) -> Result<ServerHandle, String> {
    let metrics = Metrics::enabled();
    cfg.solve.metrics = metrics.clone();
    let events = match &cfg.events_path {
        Some(path) => {
            EventLog::to_file(path).map_err(|e| format!("cannot open event log {path}: {e}"))?
        }
        None => EventLog::disabled(),
    };
    let resident = Resident::build(&cfg.sources, &cfg.policies, &cfg.solve)?;
    resident.export_gauges(&metrics);
    events.emit(
        "daemon_start",
        &[
            ("programs", Field::U64(resident.programs.len() as u64)),
            ("policies", Field::U64(resident.policies.len() as u64)),
            ("workers", Field::U64(cfg.workers.max(1) as u64)),
        ],
    );
    for p in &resident.programs {
        for e in &p.entries {
            events.emit(
                "policy_solved",
                &[
                    ("program", Field::Str(&p.name)),
                    ("policy", Field::Str(e.policy.name())),
                    ("status", Field::Str(e.status())),
                    ("steps", Field::U64(e.steps)),
                    ("solve_ms", Field::U64(e.solve_ms)),
                ],
            );
        }
    }
    let trace = if cfg.trace_path.is_some() {
        Trace::enabled()
    } else {
        Trace::disabled()
    };
    let workers = cfg.workers.max(1);
    let shared = Arc::new(Shared {
        resident: RwLock::new(resident),
        queue: Mutex::new(QueueState {
            jobs: VecDeque::new(),
            draining: false,
        }),
        available: Condvar::new(),
        in_flight: AtomicUsize::new(0),
        active: Mutex::new(vec![None; workers]),
        shutdown: AtomicBool::new(false),
        served: AtomicU64::new(0),
        shed: AtomicU64::new(0),
        errors: AtomicU64::new(0),
        faulted: AtomicU64::new(0),
        last_request_peak: AtomicU64::new(0),
        max_request_peak: AtomicU64::new(0),
        trace,
        trace_events: Mutex::new(Vec::new()),
        metrics,
        events,
        cfg,
    });

    let mut worker_handles = Vec::new();
    for slot in 0..workers {
        let s = Arc::clone(&shared);
        worker_handles.push(
            std::thread::Builder::new()
                .name(format!("serve-worker-{slot}"))
                .spawn(move || s.worker_loop(slot))
                .map_err(|e| format!("cannot spawn worker: {e}"))?,
        );
    }

    let mut port = None;
    if let Some(want) = shared.cfg.port {
        let listener = TcpListener::bind(("127.0.0.1", want))
            .map_err(|e| format!("cannot bind 127.0.0.1:{want}: {e}"))?;
        let bound = listener
            .local_addr()
            .map_err(|e| format!("cannot read bound address: {e}"))?
            .port();
        port = Some(bound);
        if let Some(path) = &shared.cfg.port_file {
            std::fs::write(path, format!("{bound}\n"))
                .map_err(|e| format!("cannot write port file {path}: {e}"))?;
        }
        listener
            .set_nonblocking(true)
            .map_err(|e| format!("cannot configure listener: {e}"))?;
        let s = Arc::clone(&shared);
        std::thread::Builder::new()
            .name("serve-accept".into())
            .spawn(move || accept_loop(&s, &listener))
            .map_err(|e| format!("cannot spawn acceptor: {e}"))?;
    }

    let mut metrics_port = None;
    if let Some(addr) = &shared.cfg.metrics_addr {
        let listener = TcpListener::bind(addr.as_str())
            .map_err(|e| format!("cannot bind metrics endpoint {addr}: {e}"))?;
        let bound = listener
            .local_addr()
            .map_err(|e| format!("cannot read bound metrics address: {e}"))?
            .port();
        metrics_port = Some(bound);
        if let Some(path) = &shared.cfg.metrics_port_file {
            std::fs::write(path, format!("{bound}\n"))
                .map_err(|e| format!("cannot write metrics port file {path}: {e}"))?;
        }
        listener
            .set_nonblocking(true)
            .map_err(|e| format!("cannot configure metrics listener: {e}"))?;
        let s = Arc::clone(&shared);
        std::thread::Builder::new()
            .name("serve-metrics".into())
            .spawn(move || metrics_loop(&s, &listener))
            .map_err(|e| format!("cannot spawn metrics endpoint: {e}"))?;
    }

    if shared.cfg.use_stdin {
        let s = Arc::clone(&shared);
        std::thread::Builder::new()
            .name("serve-stdin".into())
            .spawn(move || {
                let stdout: Reply = Arc::new(Mutex::new(Box::new(std::io::stdout())));
                read_loop(&s, std::io::stdin().lock(), &stdout);
                // EOF on the control channel means the operator is done:
                // initiate a graceful drain.
                s.shutdown.store(true, Ordering::SeqCst);
            })
            .map_err(|e| format!("cannot spawn stdin reader: {e}"))?;
    }

    Ok(ServerHandle {
        port,
        metrics_port,
        shared,
        workers: worker_handles,
        sigterm: CancelToken::linked_to_sigterm(),
    })
}

impl ServerHandle {
    /// Blocks until shutdown is requested (SIGTERM, stdin EOF, or the
    /// `shutdown` op), runs the drain protocol, writes the trace file,
    /// and returns the process exit code: 0 for a clean drain, 3 when
    /// in-flight requests had to be force-cancelled.
    #[must_use]
    pub fn wait(self) -> i32 {
        while !self.shared.shutdown.load(Ordering::SeqCst) && !self.sigterm.is_cancelled() {
            std::thread::sleep(Duration::from_millis(10));
        }
        self.shared.shutdown.store(true, Ordering::SeqCst);

        // Stop admission and wake every parked worker.
        {
            let mut q = self.shared.queue.lock().unwrap();
            q.draining = true;
        }
        self.shared.available.notify_all();

        // Drain under the deadline.
        let drain_deadline = Instant::now() + Duration::from_millis(self.shared.cfg.drain_ms);
        let mut forced = false;
        loop {
            let idle = {
                let q = self.shared.queue.lock().unwrap();
                q.jobs.is_empty() && self.shared.in_flight.load(Ordering::SeqCst) == 0
            };
            if idle {
                break;
            }
            if Instant::now() >= drain_deadline {
                // Deadline passed: force-cancel whatever is in flight.
                // Cancellation latency is bounded (per-pop checks in the
                // solver, per-tick checks in the evaluator), so workers
                // come back promptly with `cancelled` answers.
                forced = true;
                for token in self.shared.active.lock().unwrap().iter().flatten() {
                    token.cancel();
                }
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        for w in self.workers {
            let _ = w.join();
        }
        if let Some(path) = &self.shared.cfg.trace_path {
            self.shared.cap_trace();
            let events = self.shared.trace_events.lock().unwrap();
            let _ = std::fs::write(path, events_to_chrome_json(&events));
        }
        self.shared.events.emit(
            "shutdown",
            &[
                ("forced", Field::Bool(forced)),
                (
                    "served",
                    Field::U64(self.shared.served.load(Ordering::SeqCst)),
                ),
                ("shed", Field::U64(self.shared.shed.load(Ordering::SeqCst))),
            ],
        );
        if forced {
            3
        } else {
            0
        }
    }

    /// Asks the daemon to shut down (what the `shutdown` op does).
    pub fn request_shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
    }
}

/// Runs a daemon to completion: launch, serve, drain. The CLI entry.
pub fn run(cfg: ServeConfig) -> Result<i32, String> {
    let handle = launch(cfg)?;
    if let Some(port) = handle.port {
        eprintln!("pta serve: listening on 127.0.0.1:{port}");
    }
    if let Some(port) = handle.metrics_port {
        eprintln!("pta serve: metrics on http://127.0.0.1:{port}/metrics");
    }
    eprintln!(
        "{}",
        handle.shared.resident.read().unwrap().summary().trim_end()
    );
    Ok(handle.wait())
}

/// Extracts the wire error code from a rendered response line, if any
/// (`{"id":N,"ok":false,"error":"CODE",...}` → `Some("CODE")`).
fn error_code_of(line: &str) -> Option<&str> {
    let rest = &line[line.find("\"error\":\"")? + 9..];
    rest.split('"').next()
}

/// Accepts Prometheus scrapes on the metrics endpoint until shutdown.
fn metrics_loop(shared: &Arc<Shared>, listener: &TcpListener) {
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        match listener.accept() {
            Ok((stream, _addr)) => {
                let s = Arc::clone(shared);
                let _ = std::thread::Builder::new()
                    .name("serve-scrape".into())
                    .spawn(move || serve_scrape(&s, stream));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => return,
        }
    }
}

/// Answers one scrape connection. Just enough HTTP/1.1 for a
/// Prometheus scraper or `curl`: the request head is read up to a
/// small cap, only the request line is inspected, `GET /metrics` gets
/// the exposition text, anything else a 404, and the connection
/// closes after one response.
fn serve_scrape(shared: &Arc<Shared>, mut stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(2_000)));
    let mut head = [0u8; 4096];
    let mut len = 0;
    while len < head.len() {
        match stream.read(&mut head[len..]) {
            Ok(0) => break,
            Ok(n) => {
                len += n;
                if head[..len].windows(4).any(|w| w == b"\r\n\r\n")
                    || head[..len].windows(2).any(|w| w == b"\n\n")
                {
                    break;
                }
            }
            Err(_) => return,
        }
    }
    let request = String::from_utf8_lossy(&head[..len]);
    let first = request.lines().next().unwrap_or("");
    let path_matches = first
        .strip_prefix("GET ")
        .is_some_and(|rest| rest == "/metrics" || rest.starts_with("/metrics "));
    let (status, body) = if path_matches {
        ("200 OK", shared.metrics.to_prometheus())
    } else {
        ("404 Not Found", "not found\n".to_string())
    };
    let _ = stream.write_all(
        format!(
            "HTTP/1.1 {status}\r\nContent-Type: text/plain; version=0.0.4\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
            body.len()
        )
        .as_bytes(),
    );
    let _ = stream.flush();
}

fn accept_loop(shared: &Arc<Shared>, listener: &TcpListener) {
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        match listener.accept() {
            Ok((stream, _addr)) => {
                let s = Arc::clone(shared);
                let _ = std::thread::Builder::new()
                    .name("serve-conn".into())
                    .spawn(move || serve_connection(&s, stream));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => return,
        }
    }
}

fn serve_connection(shared: &Arc<Shared>, stream: TcpStream) {
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let reply: Reply = Arc::new(Mutex::new(Box::new(write_half)));
    let reader = std::io::BufReader::new(stream);
    read_loop(shared, reader, &reply);
}

/// What one bounded line read produced.
enum LineRead {
    Line(String),
    /// The line exceeded the cap; the remainder was discarded up to the
    /// next newline.
    Oversized,
    Eof,
}

/// Reads one `\n`-terminated line of at most `cap` bytes. Longer lines
/// are consumed (so the stream stays line-synchronized) but reported as
/// [`LineRead::Oversized`] without ever buffering more than `cap` bytes
/// — a hostile client cannot balloon the daemon's memory.
fn read_line_bounded<R: BufRead>(reader: &mut R, cap: usize) -> std::io::Result<LineRead> {
    let mut buf: Vec<u8> = Vec::new();
    let mut oversized = false;
    loop {
        let available = match reader.fill_buf() {
            Ok(a) => a,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        };
        if available.is_empty() {
            return Ok(if oversized {
                LineRead::Oversized
            } else if buf.is_empty() {
                LineRead::Eof
            } else {
                LineRead::Line(String::from_utf8_lossy(&buf).into_owned())
            });
        }
        let (chunk, found_newline) = match available.iter().position(|&b| b == b'\n') {
            Some(pos) => (&available[..pos], true),
            None => (available, false),
        };
        if !oversized {
            if buf.len() + chunk.len() > cap {
                oversized = true;
                buf.clear();
            } else {
                buf.extend_from_slice(chunk);
            }
        }
        let consumed = chunk.len() + usize::from(found_newline);
        reader.consume(consumed);
        if found_newline {
            return Ok(if oversized {
                LineRead::Oversized
            } else {
                LineRead::Line(String::from_utf8_lossy(&buf).into_owned())
            });
        }
    }
}

/// Drives one input channel until EOF, error, or daemon shutdown.
fn read_loop<R: BufRead>(shared: &Arc<Shared>, mut reader: R, reply: &Reply) {
    loop {
        match read_line_bounded(&mut reader, shared.cfg.max_line_bytes) {
            Ok(LineRead::Line(line)) => {
                if shared.handle_line(&line, reply) {
                    return; // shutdown requested on this channel
                }
            }
            Ok(LineRead::Oversized) => {
                shared.errors.fetch_add(1, Ordering::SeqCst);
                Shared::write_line(
                    reply,
                    &error_line(
                        0,
                        ErrorCode::Oversized,
                        &format!("request line exceeds {} bytes", shared.cfg.max_line_bytes),
                    ),
                );
            }
            Ok(LineRead::Eof) | Err(_) => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_codes_are_extracted_from_response_lines() {
        assert_eq!(
            error_code_of("{\"id\":1,\"ok\":false,\"error\":\"overloaded\",\"message\":\"m\"}"),
            Some("overloaded")
        );
        assert_eq!(
            error_code_of("{\"id\":1,\"ok\":true,\"op\":\"health\"}"),
            None
        );
    }

    #[test]
    fn bounded_reads_preserve_line_sync() {
        let input = b"short\n0123456789abcdef\nafter\nlast-no-newline".to_vec();
        let mut r = std::io::BufReader::with_capacity(4, std::io::Cursor::new(input));
        let mut next = || read_line_bounded(&mut r, 8).unwrap();
        assert!(matches!(next(), LineRead::Line(l) if l == "short"));
        assert!(matches!(next(), LineRead::Oversized));
        assert!(matches!(next(), LineRead::Line(l) if l == "after"));
        // The unterminated tail is over the cap too: reported oversized
        // at EOF, not silently returned as a line.
        assert!(matches!(next(), LineRead::Oversized));
        assert!(matches!(next(), LineRead::Eof));
    }
}
