//! Request-level fault injection for soak testing the daemon.
//!
//! `--inject-faults RATE,KINDS` arms an injector that decides, **per
//! request id**, whether to disturb the request and how. The decision is
//! a pure function of `(seed, request id)` — admission order, worker
//! scheduling, and connection multiplexing cannot change it — so the
//! soak driver in `crates/bench` runs the same function and knows in
//! advance exactly which of its requests will be delayed, cancelled,
//! starved, or garbled, and therefore exactly what bytes every response
//! must carry. Fault injection never makes an answer *wrong*: a faulted
//! request either still answers correctly (delay), answers with a
//! deterministic structured error (cancel, exhaust), or is replaced by
//! the sentinel garble line that carries its id.

use pta_ir::rng::Rng;

/// The ways a request can be disturbed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Sleep a deterministic 1–50 ms before evaluation; the answer is
    /// still correct. Exercises queueing and deadline pressure.
    Delay,
    /// Trip the request's `CancelToken` before evaluation: the worker
    /// must come back immediately with a `cancelled` error.
    Cancel,
    /// Zero the request's evaluation step budget: the first cooperative
    /// check trips with a `budget_exhausted` error.
    Exhaust,
    /// Replace the response with the malformed sentinel line
    /// `!garble <id>` — simulates a daemon bug corrupting a response so
    /// clients (and the soak driver) prove they survive one.
    Garble,
}

impl FaultKind {
    /// Stable flag/wire name.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            FaultKind::Delay => "delay",
            FaultKind::Cancel => "cancel",
            FaultKind::Exhaust => "exhaust",
            FaultKind::Garble => "garble",
        }
    }

    fn parse(text: &str) -> Option<FaultKind> {
        match text {
            "delay" => Some(FaultKind::Delay),
            "cancel" => Some(FaultKind::Cancel),
            "exhaust" => Some(FaultKind::Exhaust),
            "garble" => Some(FaultKind::Garble),
            _ => None,
        }
    }
}

/// A seeded per-request fault plan; `None` rate means injection is off.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultInjector {
    /// Probability in `[0, 1]` that a given request id faults.
    pub rate: f64,
    /// The kinds eligible for injection, in flag order.
    pub kinds: Vec<FaultKind>,
    /// Decision seed, mixed with the request id.
    pub seed: u64,
}

impl FaultInjector {
    /// Parses the `--inject-faults` flag value: `RATE,KIND[+KIND...]`,
    /// e.g. `0.05,delay+cancel+exhaust+garble`.
    pub fn parse(spec: &str, seed: u64) -> Result<FaultInjector, String> {
        let (rate_text, kinds_text) = spec
            .split_once(',')
            .ok_or_else(|| format!("expected RATE,KINDS, got \"{spec}\""))?;
        let rate: f64 = rate_text
            .parse()
            .map_err(|_| format!("bad fault rate \"{rate_text}\""))?;
        if !(0.0..=1.0).contains(&rate) {
            return Err(format!("fault rate {rate} outside [0, 1]"));
        }
        let mut kinds = Vec::new();
        for k in kinds_text.split('+') {
            let kind = FaultKind::parse(k).ok_or_else(|| {
                format!("unknown fault kind \"{k}\" (want delay|cancel|exhaust|garble)")
            })?;
            if !kinds.contains(&kind) {
                kinds.push(kind);
            }
        }
        if kinds.is_empty() {
            return Err("at least one fault kind is required".into());
        }
        Ok(FaultInjector { rate, kinds, seed })
    }

    /// The fault (if any) for request `id`. Pure in `(self, id)`.
    #[must_use]
    pub fn decide(&self, id: u64) -> Option<FaultKind> {
        let mut rng = Rng::seed_from_u64(self.seed ^ id.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        if !rng.gen_bool(self.rate) {
            return None;
        }
        Some(self.kinds[rng.gen_range(0..self.kinds.len())])
    }

    /// Deterministic delay duration for a [`FaultKind::Delay`] fault on
    /// request `id`: 1–50 ms.
    #[must_use]
    pub fn delay_ms(&self, id: u64) -> u64 {
        let mut rng = Rng::seed_from_u64(self.seed.rotate_left(17) ^ id);
        rng.gen_range(1..51u64)
    }
}

/// The sentinel line emitted in place of a response for a garble fault.
/// It is intentionally not JSON; it still carries the request id so a
/// client can correlate (the soak driver matches on this exact shape).
#[must_use]
pub fn garble_line(id: u64) -> String {
    format!("!garble {id}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_the_documented_shape() {
        let f = FaultInjector::parse("0.25,delay+garble", 7).unwrap();
        assert_eq!(f.rate, 0.25);
        assert_eq!(f.kinds, vec![FaultKind::Delay, FaultKind::Garble]);
        assert!(FaultInjector::parse("delay", 0).is_err());
        assert!(FaultInjector::parse("2.0,delay", 0).is_err());
        assert!(FaultInjector::parse("0.1,sparkle", 0).is_err());
        assert!(FaultInjector::parse("0.1,", 0).is_err());
    }

    #[test]
    fn decisions_are_pure_and_rate_shaped() {
        let f = FaultInjector::parse("0.1,delay+cancel+exhaust+garble", 42).unwrap();
        let hits: Vec<_> = (0..10_000).filter_map(|id| f.decide(id)).collect();
        // ~10% of 10k ids fault, with generous slack for the tiny Rng.
        assert!((500..2000).contains(&hits.len()), "{} faults", hits.len());
        // Every kind shows up, and re-deciding gives identical answers.
        for kind in [
            FaultKind::Delay,
            FaultKind::Cancel,
            FaultKind::Exhaust,
            FaultKind::Garble,
        ] {
            assert!(hits.contains(&kind), "{kind:?} never injected");
        }
        for id in 0..10_000 {
            assert_eq!(f.decide(id), f.decide(id));
        }
    }

    #[test]
    fn rate_zero_and_one_are_exact() {
        let off = FaultInjector::parse("0,delay", 1).unwrap();
        let on = FaultInjector::parse("1,cancel", 1).unwrap();
        for id in 0..256 {
            assert_eq!(off.decide(id), None);
            assert_eq!(on.decide(id), Some(FaultKind::Cancel));
        }
    }
}
