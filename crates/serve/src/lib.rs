//! `pta-serve` — the resident analysis daemon behind `pta serve`.
//!
//! The batch CLI answers one question per process; this crate keeps the
//! expensive state — interned programs and solved `PointsToResult`s —
//! resident and answers many cheap questions over a line-delimited JSON
//! protocol (stdin/stdout and an optional TCP listener). The design
//! brief is *robustness of the request lifecycle*, built from the
//! governance primitives the batch mode already has:
//!
//! - **Admission control**: a bounded queue; a full queue sheds with an
//!   explicit `overloaded` error instead of buffering without bound.
//! - **Deadlines + cancellation**: every request carries a
//!   `CancelToken` and optional deadline, checked cooperatively at
//!   every evaluation step, so a cancelled request frees its worker
//!   within one loop iteration.
//! - **Graceful degradation**: a policy whose startup solve tripped its
//!   budget answers from the context-insensitive fallback, tagged
//!   `"partial": true` — the resident analog of batch exit code 3.
//! - **Graceful shutdown**: SIGTERM, stdin EOF, or the `shutdown` op
//!   stop admission and drain in-flight work under a drain deadline
//!   (exit 0), force-cancelling only if the deadline passes (exit 3).
//! - **Fault injection**: `--inject-faults` disturbs a seeded,
//!   per-request-id-deterministic subset of requests (delay / cancel /
//!   exhaust / garble) so the soak driver in `crates/bench` can predict
//!   every byte the daemon should emit — see [`fault`].
//!
//! Module map: [`protocol`] defines the wire grammar, [`resident`] the
//! solved-once cache, [`answer`] the pure evaluator shared with the
//! soak oracle, [`fault`] the injector, and [`server`] the
//! queue/worker/drain machinery.

pub mod answer;
pub mod fault;
pub mod json;
pub mod protocol;
pub mod resident;
pub mod server;

pub use answer::{answer, ReqCtx};
pub use fault::{garble_line, FaultInjector, FaultKind};
pub use protocol::{error_line, parse_request, ErrorCode, Op, Request};
pub use resident::{PolicyEntry, ProgramSource, Resident, ResidentProgram, SolveConfig};
pub use server::{launch, run, ServeConfig, ServerHandle};
