//! A minimal JSON reader/escaper for the serve wire protocol.
//!
//! The workspace is dependency-free by design (no serde), so the daemon
//! parses request lines with this hand-rolled recursive-descent parser
//! and emits responses by direct string construction (field order fixed
//! by the emitting code, which is what makes responses byte-stable for
//! the soak oracle). The grammar is full JSON minus `\u` surrogate
//! pairs; numbers parse as `f64`, exact for every id the protocol
//! accepts (< 2^53).
//!
//! `crates/bench` carries a sibling parser for validating harness
//! output; the two cannot be shared because bench depends on serve (the
//! soak driver), so the dependency arrow points the wrong way.

use std::collections::BTreeMap;

/// A parsed JSON value. Objects use a `BTreeMap` so iteration and error
/// messages are deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<Value>),
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// Object field lookup; `None` for non-objects and missing keys.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is a number that is
    /// one (rejects fractions, negatives, and values above 2^53).
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) if n.fract() == 0.0 && *n >= 0.0 && *n <= 9_007_199_254_740_992.0 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Parses one complete JSON value; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing bytes at offset {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at offset {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at offset {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected byte at offset {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            map.insert(key, self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(format!("expected ',' or '}}' at offset {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at offset {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err("truncated \\u escape".into());
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| "bad \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| "bad \\u escape".to_string())?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code).ok_or("surrogate \\u escape unsupported")?,
                            );
                        }
                        _ => return Err(format!("bad escape at offset {}", self.pos)),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input is a &str, so
                    // boundaries are valid).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && (self.bytes[self.pos] & 0xC0) == 0x80 {
                        self.pos += 1;
                    }
                    out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).unwrap());
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        let n: f64 = text
            .parse()
            .map_err(|_| format!("bad number at offset {start}"))?;
        if !n.is_finite() {
            return Err(format!("non-finite number at offset {start}"));
        }
        Ok(Value::Number(n))
    }
}

/// Escapes `s` for embedding inside a JSON string literal (quotes not
/// included). The emitting side of the protocol uses this everywhere a
/// program-derived name reaches the wire.
#[must_use]
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_requests_and_rejects_garbage() {
        let v = parse(r#"{"id":3,"op":"points_to","var":"x","deadline_ms":250}"#).unwrap();
        assert_eq!(v.get("id").and_then(Value::as_u64), Some(3));
        assert_eq!(v.get("op").and_then(Value::as_str), Some("points_to"));
        assert!(parse("{\"id\":").is_err());
        assert!(parse("not json").is_err());
        assert!(parse("{} trailing").is_err());
        assert!(parse("{\"id\":1e999}").is_err());
    }

    #[test]
    fn escape_round_trips_through_parse() {
        let hairy = "a\"b\\c\nd\te\u{1}f√";
        let line = format!("{{\"s\":\"{}\"}}", escape(hairy));
        let v = parse(&line).unwrap();
        assert_eq!(v.get("s").and_then(Value::as_str), Some(hairy));
    }
}
