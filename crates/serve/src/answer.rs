//! Pure query evaluation: one request in, one response line out.
//!
//! This module is the daemon's single source of answer bytes — and the
//! soak oracle's too. The driver in `crates/bench` builds its own
//! [`Resident`](crate::resident::Resident) from the same config and
//! calls [`answer`] directly; any daemon response that differs by one
//! byte from the oracle's is a wire-format or caching bug, which is the
//! whole point of the comparison. So: nothing here may read a clock it
//! doesn't check cooperatively, touch global state, or emit fields in
//! nondeterministic order.
//!
//! Evaluation is governed per request through [`ReqCtx`]: every scan
//! loop ticks it, each tick consults the cancel token (cheap relaxed
//! load, keeps cancellation latency to one loop iteration), a step
//! budget (so an injected exhaustion fault trips at the very first
//! tick), and — every 256 ticks — the wall-clock deadline.

use std::collections::BTreeSet;
use std::fmt::Write as _;
use std::time::Instant;

use pta_govern::CancelToken;
use pta_ir::{HeapId, Instr, InvoId, VarId};

use crate::json::escape;
use crate::protocol::{error_line, ErrorCode, Op, Request};
use crate::resident::Resident;

/// Per-request governance handed to the evaluator by the worker.
#[derive(Debug)]
pub struct ReqCtx {
    /// Cooperative cancellation: injected faults, forced drain.
    pub cancel: CancelToken,
    /// Absolute deadline; `None` when the request set no deadline and
    /// the daemon has no default.
    pub deadline: Option<Instant>,
    /// Evaluation step budget; an injected exhaustion fault sets 0.
    pub max_steps: Option<u64>,
    steps: u64,
}

impl ReqCtx {
    /// An ungoverned context (the oracle's, and the default request's).
    #[must_use]
    pub fn unlimited() -> ReqCtx {
        ReqCtx {
            cancel: CancelToken::new(),
            deadline: None,
            max_steps: None,
            steps: 0,
        }
    }

    /// Builds a governed context.
    #[must_use]
    pub fn new(cancel: CancelToken, deadline: Option<Instant>, max_steps: Option<u64>) -> ReqCtx {
        ReqCtx {
            cancel,
            deadline,
            max_steps,
            steps: 0,
        }
    }

    /// One cooperative governance check; call once per scan iteration.
    fn tick(&mut self) -> Result<(), ErrorCode> {
        if self.cancel.is_cancelled() {
            return Err(ErrorCode::Cancelled);
        }
        self.steps += 1;
        if self.max_steps.is_some_and(|max| self.steps > max) {
            return Err(ErrorCode::BudgetExhausted);
        }
        if self.steps.is_multiple_of(256) {
            self.check_deadline()?;
        }
        Ok(())
    }

    /// Direct deadline check (also run once before evaluation starts).
    pub fn check_deadline(&self) -> Result<(), ErrorCode> {
        match self.deadline {
            Some(d) if Instant::now() >= d => Err(ErrorCode::DeadlineExceeded),
            _ => Ok(()),
        }
    }
}

/// Evaluates one *query* request against the resident state and renders
/// the response line (no trailing newline). `health`/`stats`/`shutdown`
/// are daemon-side ops and must not reach this function.
///
/// # Panics
///
/// Panics if `req.op` is not a query op.
#[must_use]
pub fn answer(req: &Request, resident: &Resident, ctx: &mut ReqCtx) -> String {
    assert!(req.op.is_query(), "non-query op {:?}", req.op.name());
    match evaluate(req, resident, ctx) {
        Ok(line) => line,
        Err((code, message)) => error_line(req.id, code, &message),
    }
}

type Fail = (ErrorCode, String);

fn evaluate(req: &Request, resident: &Resident, ctx: &mut ReqCtx) -> Result<String, Fail> {
    ctx.check_deadline()
        .map_err(|c| (c, "deadline passed before evaluation".into()))?;
    let rp = resident
        .program(req.program.as_deref())
        .map_err(|m| (ErrorCode::UnknownProgram, m))?;
    let entry = resident
        .entry(rp, req.policy.as_deref())
        .map_err(|m| (ErrorCode::UnknownPolicy, m))?;
    let program = &rp.program;
    let result = &entry.result;
    let head = |op: &str| {
        format!(
            "{{\"id\":{},\"ok\":true,\"op\":\"{}\",\"partial\":{}",
            req.id, op, entry.partial
        )
    };
    let gov = |c: ErrorCode| (c, "request budget tripped during evaluation".to_string());

    match &req.op {
        Op::PointsTo { var } => {
            let bindings = vars_named(program, var, ctx)?;
            let mut out = head("points_to");
            let _ = write!(out, ",\"var\":\"{}\",\"bindings\":[", escape(var));
            for (i, &v) in bindings.iter().enumerate() {
                ctx.tick().map_err(gov)?;
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(
                    out,
                    "{{\"method\":\"{}\",\"heaps\":[",
                    escape(&program.method_qualified_name(program.var_method(v)))
                );
                for (j, &h) in result.points_to(v).iter().enumerate() {
                    if j > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "\"{}\"", escape(program.heap_label(h)));
                }
                out.push_str("]}");
            }
            out.push_str("]}");
            Ok(out)
        }
        Op::Devirt { invo } => {
            if *invo >= program.invo_count() as u64 {
                return Err((
                    ErrorCode::UnknownInvo,
                    format!(
                        "invo {} out of range (program has {})",
                        invo,
                        program.invo_count()
                    ),
                ));
            }
            ctx.tick().map_err(gov)?;
            let site = InvoId::from_raw(*invo as u32);
            let mut out = head("devirt");
            let _ = write!(
                out,
                ",\"invo\":{},\"label\":\"{}\",\"in\":\"{}\",\"targets\":[",
                invo,
                escape(program.invo_label(site)),
                escape(&program.method_qualified_name(program.invo_method(site)))
            );
            for (i, &m) in result.call_targets(site).iter().enumerate() {
                ctx.tick().map_err(gov)?;
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "\"{}\"", escape(&program.method_qualified_name(m)));
            }
            out.push_str("]}");
            Ok(out)
        }
        Op::CastCheck { method, instr } => {
            let mut meth = None;
            for m in program.methods() {
                ctx.tick().map_err(gov)?;
                if program.method_qualified_name(m) == *method {
                    meth = Some(m);
                    break;
                }
            }
            let meth = meth.ok_or_else(|| {
                (
                    ErrorCode::UnknownCast,
                    format!("no method \"{method}\" in program"),
                )
            })?;
            let instrs = program.instrs(meth);
            let Some(Instr::Cast { from, ty, .. }) = instrs.get(*instr as usize) else {
                return Err((
                    ErrorCode::UnknownCast,
                    format!("\"{}\" instr {} is not a cast", method, instr),
                ));
            };
            let mut incompatible = 0usize;
            let pts = result.points_to(*from);
            for &h in pts {
                ctx.tick().map_err(gov)?;
                if !program.is_subtype(program.heap_type(h), *ty) {
                    incompatible += 1;
                }
            }
            let mut out = head("cast_check");
            let _ = write!(
                out,
                ",\"method\":\"{}\",\"instr\":{},\"target_type\":\"{}\",\"points_to\":{},\"incompatible\":{},\"may_fail\":{}}}",
                escape(method),
                instr,
                escape(program.type_name(*ty)),
                pts.len(),
                incompatible,
                incompatible > 0
            );
            Ok(out)
        }
        Op::Findings { var } => {
            let bindings = vars_named(program, var, ctx)?;
            let vars: BTreeSet<VarId> = bindings.iter().copied().collect();
            let mut heaps: BTreeSet<HeapId> = BTreeSet::new();
            for &v in &bindings {
                for &h in result.points_to(v) {
                    ctx.tick().map_err(gov)?;
                    heaps.insert(h);
                }
            }
            let report = &entry.report;
            let mut out = head("findings");
            let _ = write!(out, ",\"var\":\"{}\",\"taint\":[", escape(var));
            let mut first = true;
            for f in &report.taint {
                ctx.tick().map_err(gov)?;
                if !heaps.contains(&f.heap) {
                    continue;
                }
                if !first {
                    out.push(',');
                }
                first = false;
                let _ = write!(
                    out,
                    "{{\"invo\":\"{}\",\"heap\":\"{}\"}}",
                    escape(program.invo_label(f.invo)),
                    escape(program.heap_label(f.heap))
                );
            }
            out.push_str("],\"escape\":[");
            let mut first = true;
            for f in &report.escape {
                ctx.tick().map_err(gov)?;
                if !heaps.contains(&f.heap) {
                    continue;
                }
                if !first {
                    out.push(',');
                }
                first = false;
                let _ = write!(out, "\"{}\"", escape(program.heap_label(f.heap)));
            }
            out.push_str("],\"nullness\":[");
            let mut first = true;
            for f in &report.nullness {
                ctx.tick().map_err(gov)?;
                if !vars.contains(&f.var) {
                    continue;
                }
                if !first {
                    out.push(',');
                }
                first = false;
                let _ = write!(
                    out,
                    "{{\"method\":\"{}\",\"instr\":{}}}",
                    escape(&program.method_qualified_name(f.method)),
                    f.instr
                );
            }
            out.push_str("]}");
            Ok(out)
        }
        Op::Update { .. } | Op::Health | Op::Stats | Op::Metrics | Op::Shutdown => {
            unreachable!("daemon-side op")
        }
    }
}

/// Every variable named `name`, in arena order.
fn vars_named(program: &pta_ir::Program, name: &str, ctx: &mut ReqCtx) -> Result<Vec<VarId>, Fail> {
    let mut found = Vec::new();
    for v in program.vars() {
        ctx.tick()
            .map_err(|c| (c, "request budget tripped during evaluation".to_string()))?;
        if program.var_name(v) == name {
            found.push(v);
        }
    }
    if found.is_empty() {
        return Err((
            ErrorCode::UnknownVar,
            format!("no variable named \"{name}\" in program"),
        ));
    }
    Ok(found)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resident::{ProgramSource, Resident, SolveConfig};

    fn resident() -> Resident {
        Resident::build(
            &[ProgramSource::parse_workload("luindex:0.1").unwrap()],
            &["insens".into()],
            &SolveConfig::default(),
        )
        .unwrap()
    }

    fn req(id: u64, op: Op) -> Request {
        Request {
            id,
            op,
            program: None,
            policy: None,
            deadline_ms: None,
        }
    }

    #[test]
    fn answers_are_deterministic_and_well_formed() {
        let r = resident();
        // Pick a var that exists: scan the program for one with a
        // non-empty points-to set.
        let p = &r.programs[0];
        let var = p
            .program
            .vars()
            .find(|&v| !p.entries[0].result.points_to(v).is_empty())
            .map(|v| p.program.var_name(v).to_owned())
            .expect("some var points somewhere");
        let q = req(7, Op::PointsTo { var: var.clone() });
        let a = answer(&q, &r, &mut ReqCtx::unlimited());
        let b = answer(&q, &r, &mut ReqCtx::unlimited());
        assert_eq!(a, b);
        assert!(
            a.starts_with("{\"id\":7,\"ok\":true,\"op\":\"points_to\""),
            "{a}"
        );
        // The response parses back with our own parser.
        let v = crate::json::parse(&a).unwrap();
        assert_eq!(
            v.get("partial").and_then(crate::json::Value::as_bool),
            Some(false)
        );

        let d = answer(
            &req(8, Op::Devirt { invo: 0 }),
            &r,
            &mut ReqCtx::unlimited(),
        );
        assert!(
            d.starts_with("{\"id\":8,\"ok\":true,\"op\":\"devirt\""),
            "{d}"
        );
        crate::json::parse(&d).unwrap();

        let f = answer(&req(9, Op::Findings { var }), &r, &mut ReqCtx::unlimited());
        assert!(f.contains("\"taint\":["), "{f}");
        crate::json::parse(&f).unwrap();
    }

    #[test]
    fn unknown_references_answer_structured_errors() {
        let r = resident();
        let cases = [
            (
                req(
                    1,
                    Op::PointsTo {
                        var: "no_such_var".into(),
                    },
                ),
                "unknown_var",
            ),
            (req(2, Op::Devirt { invo: u64::MAX }), "unknown_invo"),
            (
                req(
                    3,
                    Op::CastCheck {
                        method: "No.method".into(),
                        instr: 0,
                    },
                ),
                "unknown_cast",
            ),
        ];
        for (q, want) in &cases {
            let a = answer(q, &r, &mut ReqCtx::unlimited());
            assert!(a.contains(&format!("\"error\":\"{want}\"")), "{a}");
            crate::json::parse(&a).unwrap();
        }
        // Unknown policy on a query op.
        let q = Request {
            policy: Some("3obj+2H".into()),
            ..req(5, Op::Devirt { invo: 0 })
        };
        let a = answer(&q, &r, &mut ReqCtx::unlimited());
        assert!(a.contains("\"error\":\"unknown_policy\""), "{a}");
    }

    #[test]
    fn governance_trips_deterministically() {
        let r = resident();
        let q = req(11, Op::PointsTo { var: "x".into() });
        // Zero step budget: the very first tick trips.
        let mut ctx = ReqCtx::new(CancelToken::new(), None, Some(0));
        let a = answer(&q, &r, &mut ctx);
        assert!(a.contains("\"error\":\"budget_exhausted\""), "{a}");
        // Pre-cancelled token: the very first tick trips.
        let cancel = CancelToken::new();
        cancel.cancel();
        let mut ctx = ReqCtx::new(cancel, None, None);
        let a = answer(&q, &r, &mut ctx);
        assert!(a.contains("\"error\":\"cancelled\""), "{a}");
        // Expired deadline: refused before evaluation.
        let mut ctx = ReqCtx::new(CancelToken::new(), Some(Instant::now()), None);
        let a = answer(&q, &r, &mut ctx);
        assert!(a.contains("\"error\":\"deadline_exceeded\""), "{a}");
    }
}
