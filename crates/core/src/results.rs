//! Analysis results: the `VarPointsTo` and `CallGraph` output relations of
//! the paper's Figure 1, plus the counters its evaluation reports.
//!
//! Results store the *context-insensitive projections* (variable → heap
//! abstractions, invocation site → callees, reachable methods) that the
//! paper's precision metrics are defined over, together with the
//! context-sensitive cardinalities that are its performance metrics — most
//! importantly the total size of context-sensitive var-points-to, "the
//! foremost internal complexity metric of a points-to analysis" (§4.2).
//! The full context-sensitive tuple set can optionally be retained
//! (see `SolverConfig::keep_tuples`) for clients that inspect per-context
//! facts, such as the `quickstart` example.

use pta_govern::Termination;
use pta_ir::hash::{FxHashMap, FxHashSet};
use pta_ir::{FieldId, HeapId, InvoId, MethodId, Program, VarId};

use crate::context::{Ctx, CtxId, CtxInterner, HCtxId, HCtxInterner, HeapCtx};

/// One method demoted to its policy's context-insensitive fallback by
/// graceful degradation (`SolverConfig::degrade`): its context fan-out
/// crossed the budget watermark, so every later call edge into it reuses
/// the demoted context instead of minting fresh ones.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DemotedSite {
    /// The demoted method.
    pub method: MethodId,
    /// The context fan-out the method had reached when it was demoted.
    pub fanout: u32,
}

/// One retained context-sensitive points-to tuple.
#[derive(Debug, Copy, Clone, PartialEq, Eq, Hash)]
pub struct CtxVarPointsTo {
    /// The variable.
    pub var: VarId,
    /// The variable's qualifying context.
    pub ctx: CtxId,
    /// The heap abstraction pointed to.
    pub heap: HeapId,
    /// The heap abstraction's qualifying heap context.
    pub hctx: HCtxId,
}

/// How a context-sensitive points-to tuple was first derived, for
/// [`PointsToResult::explain`]. Recorded only under
/// `SolverConfig::track_provenance`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Derivation {
    /// The allocation rule: the variable is directly assigned the `new`.
    Alloc,
    /// Copied by a `move`/`cast` from another tuple.
    Assign {
        /// The source tuple.
        from: CtxVarPointsTo,
    },
    /// Propagated across a call boundary (parameter or return passing).
    InterProc {
        /// The source tuple.
        from: CtxVarPointsTo,
    },
    /// Loaded from a field of a base object.
    Load {
        /// The tuple through which the base object was reached.
        base: CtxVarPointsTo,
        /// The field read.
        field: FieldId,
    },
    /// The receiver (`this`) binding performed by the virtual-call rule.
    ThisBinding {
        /// The invocation site that bound the receiver.
        invo: InvoId,
    },
    /// Loaded from a static field (a global, context-insensitive cell).
    StaticLoad {
        /// The static field read.
        field: FieldId,
    },
    /// Bound by a catch clause (the object arrived as a thrown exception).
    Caught,
}

/// Key of an instance-field provenance entry:
/// `(baseHeap, baseHeapCtx, field, valueHeap, valueHeapCtx)`.
type FldProvKey = (HeapId, HCtxId, FieldId, HeapId, HCtxId);

/// Cheap, always-on solver counters: rule firings per Figure 2 rule,
/// insertion/deduplication traffic, worklist shape, and interner sizes.
///
/// Every counter is a plain `u64` increment on the solver hot path (no
/// branching on a "stats enabled" flag), so the numbers are available for
/// every run: `pta analyze --stats` prints them and `pta-bench --json`
/// writes them into each experiment row. Firing counters count *attempted*
/// derivations (the tuple may already exist); `vpt_inserted` /
/// `vpt_dup` split those attempts into new tuples and dedup hits.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// `VarPointsTo` tuples actually inserted (equals the final
    /// context-sensitive tuple count).
    pub vpt_inserted: u64,
    /// `VarPointsTo` derivation attempts that hit an existing tuple.
    pub vpt_dup: u64,
    /// Alloc-rule firings (`VarPointsTo <- Reachable, Alloc`).
    pub fire_alloc: u64,
    /// Move/Cast firings (`VarPointsTo <- Move, VarPointsTo`).
    pub fire_assign: u64,
    /// Inter-procedural firings (`VarPointsTo <- InterProcAssign, VarPointsTo`).
    pub fire_interproc: u64,
    /// Load firings (`VarPointsTo <- Load, VarPointsTo, FldPointsTo`).
    pub fire_load: u64,
    /// Store firings (`FldPointsTo <- Store, VarPointsTo, VarPointsTo`).
    pub fire_store: u64,
    /// Static-load firings (`VarPointsTo <- Reachable, SLoad, StaticFld`).
    pub fire_static_load: u64,
    /// Static-store firings (`StaticFldPointsTo <- SStore, VarPointsTo`).
    pub fire_static_store: u64,
    /// Receiver (`this`) bindings at virtual call sites.
    pub fire_this_binding: u64,
    /// Virtual-dispatch attempts (one per new receiver object per site).
    pub fire_vcall_dispatch: u64,
    /// Exception tuples bound by catch clauses.
    pub fire_caught: u64,
    /// `ThrowPointsTo` tuples (exceptions escaping a method+context).
    pub throw_tuples: u64,
    /// `FldPointsTo` tuples actually inserted.
    pub fld_inserted: u64,
    /// Context-sensitive call-graph edges added.
    pub call_edges: u64,
    /// `InterProcAssign` edges installed.
    pub ipa_edges: u64,
    /// `(key, delta)` batches drained from the worklist.
    pub batches: u64,
    /// Maximum depth the key worklist reached.
    pub peak_worklist: u64,
    /// Distinct calling contexts interned.
    pub contexts: u64,
    /// Distinct heap contexts interned.
    pub heap_contexts: u64,
    /// Distinct `(heap, heap-context)` objects interned.
    pub objects: u64,
    /// Fixpoint steps executed (worklist pops; the unit `--max-steps`
    /// budgets are measured in).
    pub steps: u64,
    /// Methods demoted to the context-insensitive fallback by graceful
    /// degradation.
    pub demoted_methods: u64,
    /// Bulk-synchronous rounds executed by the parallel solver (0 for
    /// sequential runs).
    pub par_rounds: u64,
    /// Cross-shard messages sent by the parallel solver (0 for
    /// sequential runs).
    pub par_msgs: u64,
    /// Distinct large-set representations interned by the hash-consing
    /// store (0 under `--no-share`).
    pub sets_interned: u64,
    /// Intern probes that unified with an existing representation — each
    /// one is a set now sharing storage instead of duplicating it.
    pub sets_shared: u64,
    /// Bytes of duplicate set representations avoided by unification.
    pub bytes_saved: u64,
    /// Superseded shared representations evicted from the hash-consing
    /// store after an overlay flush replaced them (0 under `--no-share`).
    pub sets_evicted: u64,
    /// Fixpoint rounds executed by the Datalog engine (0 for dense runs).
    pub engine_rounds: u64,
    /// Strata executed by the Datalog engine (0 for dense runs).
    pub engine_strata: u64,
    /// Total rows derived by the Datalog engine, including input facts
    /// (0 for dense runs).
    pub engine_rows: u64,
}

impl SolverStats {
    /// Fraction of `VarPointsTo` derivation attempts that hit an existing
    /// tuple (0.0 when nothing was attempted).
    #[must_use]
    pub fn dedup_hit_rate(&self) -> f64 {
        let attempts = self.vpt_inserted + self.vpt_dup;
        if attempts == 0 {
            0.0
        } else {
            self.vpt_dup as f64 / attempts as f64
        }
    }

    /// `(name, value)` view over every counter, in a stable order — the
    /// single source of truth for both the text and JSON renderings.
    #[must_use]
    pub fn fields(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("vpt_inserted", self.vpt_inserted),
            ("vpt_dup", self.vpt_dup),
            ("fire_alloc", self.fire_alloc),
            ("fire_assign", self.fire_assign),
            ("fire_interproc", self.fire_interproc),
            ("fire_load", self.fire_load),
            ("fire_store", self.fire_store),
            ("fire_static_load", self.fire_static_load),
            ("fire_static_store", self.fire_static_store),
            ("fire_this_binding", self.fire_this_binding),
            ("fire_vcall_dispatch", self.fire_vcall_dispatch),
            ("fire_caught", self.fire_caught),
            ("throw_tuples", self.throw_tuples),
            ("fld_inserted", self.fld_inserted),
            ("call_edges", self.call_edges),
            ("ipa_edges", self.ipa_edges),
            ("batches", self.batches),
            ("peak_worklist", self.peak_worklist),
            ("contexts", self.contexts),
            ("heap_contexts", self.heap_contexts),
            ("objects", self.objects),
            ("steps", self.steps),
            ("demoted_methods", self.demoted_methods),
            ("par_rounds", self.par_rounds),
            ("par_msgs", self.par_msgs),
            ("sets_interned", self.sets_interned),
            ("sets_shared", self.sets_shared),
            ("bytes_saved", self.bytes_saved),
            ("sets_evicted", self.sets_evicted),
            ("engine_rounds", self.engine_rounds),
            ("engine_strata", self.engine_strata),
            ("engine_rows", self.engine_rows),
        ]
    }

    /// Accumulates another shard's counters into `self`: sums everywhere
    /// except `peak_worklist`, which takes the maximum (queue depths on
    /// different shards overlap in time and cannot be added).
    pub(crate) fn absorb(&mut self, other: &SolverStats) {
        let peak = self.peak_worklist.max(other.peak_worklist);
        for (mine, theirs) in [
            (&mut self.vpt_inserted, other.vpt_inserted),
            (&mut self.vpt_dup, other.vpt_dup),
            (&mut self.fire_alloc, other.fire_alloc),
            (&mut self.fire_assign, other.fire_assign),
            (&mut self.fire_interproc, other.fire_interproc),
            (&mut self.fire_load, other.fire_load),
            (&mut self.fire_store, other.fire_store),
            (&mut self.fire_static_load, other.fire_static_load),
            (&mut self.fire_static_store, other.fire_static_store),
            (&mut self.fire_this_binding, other.fire_this_binding),
            (&mut self.fire_vcall_dispatch, other.fire_vcall_dispatch),
            (&mut self.fire_caught, other.fire_caught),
            (&mut self.throw_tuples, other.throw_tuples),
            (&mut self.fld_inserted, other.fld_inserted),
            (&mut self.call_edges, other.call_edges),
            (&mut self.ipa_edges, other.ipa_edges),
            (&mut self.batches, other.batches),
            (&mut self.steps, other.steps),
            (&mut self.demoted_methods, other.demoted_methods),
            (&mut self.par_msgs, other.par_msgs),
            (&mut self.sets_interned, other.sets_interned),
            (&mut self.sets_shared, other.sets_shared),
            (&mut self.bytes_saved, other.bytes_saved),
            (&mut self.sets_evicted, other.sets_evicted),
            (&mut self.engine_rounds, other.engine_rounds),
            (&mut self.engine_strata, other.engine_strata),
            (&mut self.engine_rows, other.engine_rows),
        ] {
            *mine += theirs;
        }
        self.peak_worklist = peak;
    }

    /// Serializes the counters as a single-line JSON object (the repo is
    /// offline; hand-rolled rather than serde-derived). The dedup hit rate
    /// is included as a derived field.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        for (name, value) in self.fields() {
            out.push_str(&format!("\"{name}\":{value},"));
        }
        out.push_str(&format!(
            "\"dedup_hit_rate\":{:.6}}}",
            self.dedup_hit_rate()
        ));
        out
    }
}

impl std::fmt::Display for SolverStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (name, value) in self.fields() {
            writeln!(f, "  {name:<20} {value}")?;
        }
        write!(f, "  {:<20} {:.3}", "dedup_hit_rate", self.dedup_hit_rate())
    }
}

/// The result of running a points-to analysis over a program.
#[derive(Debug)]
pub struct PointsToResult {
    pub(crate) var_points_to: FxHashMap<VarId, Vec<HeapId>>,
    pub(crate) call_targets: FxHashMap<InvoId, Vec<MethodId>>,
    pub(crate) call_graph_edges: usize,
    pub(crate) reachable: FxHashSet<MethodId>,
    pub(crate) ctx_vpt_count: u64,
    pub(crate) ctx_call_graph_edges: u64,
    pub(crate) ctx_reachable_count: u64,
    pub(crate) ctx_count: usize,
    pub(crate) hctx_count: usize,
    pub(crate) tuples: Option<Vec<CtxVarPointsTo>>,
    pub(crate) provenance: Option<FxHashMap<CtxVarPointsTo, Derivation>>,
    pub(crate) fld_provenance: Option<FxHashMap<FldProvKey, CtxVarPointsTo>>,
    pub(crate) static_fld_provenance: Option<FxHashMap<(FieldId, HeapId, HCtxId), CtxVarPointsTo>>,
    pub(crate) uncaught: Vec<HeapId>,
    /// Context-insensitive instance-field view: `(base heap, field)` →
    /// sorted heap abstractions stored there under some context.
    pub(crate) field_points_to: FxHashMap<(HeapId, FieldId), Vec<HeapId>>,
    /// Context-insensitive static-field view: field → sorted heap
    /// abstractions stored there.
    pub(crate) static_points_to: FxHashMap<FieldId, Vec<HeapId>>,
    pub(crate) ctx_interner: CtxInterner,
    pub(crate) hctx_interner: HCtxInterner,
    pub(crate) stats: SolverStats,
    /// Per-shard counters when the parallel solver ran (empty for
    /// sequential and Datalog runs); `stats` holds their aggregate.
    pub(crate) shard_stats: Vec<SolverStats>,
    pub(crate) termination: Termination,
    pub(crate) demoted: Vec<DemotedSite>,
    /// Per-rule evaluation profile, populated when the run was traced or
    /// profiled (`SolverConfig::profile` / an enabled `SolverConfig::trace`);
    /// boxed so the common unprofiled result stays lean.
    pub(crate) profile: Option<Box<pta_obs::Profile>>,
}

impl PointsToResult {
    /// The (context-insensitive) points-to set of `var`, sorted by heap ID.
    ///
    /// Empty for variables the analysis never reached.
    pub fn points_to(&self, var: VarId) -> &[HeapId] {
        self.var_points_to
            .get(&var)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// The possible callees of invocation site `invo`, sorted.
    ///
    /// For static call sites this is the single static target (if reached).
    pub fn call_targets(&self, invo: InvoId) -> &[MethodId] {
        self.call_targets
            .get(&invo)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Number of edges in the context-insensitive call graph — the paper's
    /// "edges" precision metric.
    pub fn call_graph_edge_count(&self) -> usize {
        self.call_graph_edges
    }

    /// `true` if the analysis found `meth` reachable in some context.
    pub fn is_reachable(&self, meth: MethodId) -> bool {
        self.reachable.contains(&meth)
    }

    /// The set of reachable methods.
    pub fn reachable_methods(&self) -> impl Iterator<Item = MethodId> + '_ {
        self.reachable.iter().copied()
    }

    /// Number of reachable methods.
    pub fn reachable_method_count(&self) -> usize {
        self.reachable.len()
    }

    /// Total number of context-sensitive `VarPointsTo` tuples — the paper's
    /// platform-independent performance metric ("sensitive var-points-to").
    pub fn ctx_var_points_to_count(&self) -> u64 {
        self.ctx_vpt_count
    }

    /// Number of context-sensitive call-graph edges.
    pub fn ctx_call_graph_edge_count(&self) -> u64 {
        self.ctx_call_graph_edges
    }

    /// Number of (method, context) reachability pairs.
    pub fn ctx_reachable_count(&self) -> u64 {
        self.ctx_reachable_count
    }

    /// Number of distinct calling contexts created.
    pub fn context_count(&self) -> usize {
        self.ctx_count
    }

    /// Number of distinct heap contexts created.
    pub fn heap_context_count(&self) -> usize {
        self.hctx_count
    }

    /// The solver's always-on performance counters (rule firings, dedup
    /// traffic, worklist shape). All-zero for the Datalog back end, which
    /// reports its own evaluation statistics instead.
    pub fn solver_stats(&self) -> &SolverStats {
        &self.stats
    }

    /// Per-shard solver counters from a parallel run
    /// (`AnalysisSession::threads` > 1), in shard order. Empty for
    /// sequential and Datalog runs; [`PointsToResult::solver_stats`] is
    /// always the aggregate view.
    pub fn shard_stats(&self) -> &[SolverStats] {
        &self.shard_stats
    }

    /// How the run ended. [`Termination::Complete`] means the result is
    /// the full fixpoint (possibly coarsened by graceful degradation —
    /// see [`PointsToResult::demoted_sites`]); any other variant tags a
    /// *partial* result, a sound prefix of the fixpoint whose facts are
    /// all valid derivations but whose sets may still be missing members.
    pub fn termination(&self) -> Termination {
        self.termination
    }

    /// The per-rule evaluation profile (fire counts, derived-tuple counts,
    /// cumulative nanoseconds) plus hottest variables by final set size.
    /// `None` unless the run was profiled or traced.
    pub fn profile(&self) -> Option<&pta_obs::Profile> {
        self.profile.as_deref()
    }

    /// The methods graceful degradation demoted to the
    /// context-insensitive fallback, sorted by method ID. Empty when the
    /// run never degraded (or for the Datalog back end, which does not
    /// degrade).
    pub fn demoted_sites(&self) -> &[DemotedSite] {
        &self.demoted
    }

    /// The retained context-sensitive tuples, if the solver was configured
    /// with `keep_tuples` (otherwise `None`).
    pub fn context_sensitive_tuples(&self) -> Option<&[CtxVarPointsTo]> {
        self.tuples.as_deref()
    }

    /// Resolves an interned context to its element tuple.
    pub fn resolve_ctx(&self, ctx: CtxId) -> Ctx {
        self.ctx_interner.resolve(ctx)
    }

    /// Resolves an interned heap context to its elements.
    pub fn resolve_hctx(&self, hctx: HCtxId) -> HeapCtx {
        self.hctx_interner.resolve(hctx)
    }

    /// Renders a context with names resolved against `program`.
    pub fn display_ctx(&self, ctx: CtxId, program: &Program) -> String {
        let elems = self.resolve_ctx(ctx);
        let parts: Vec<String> = elems.iter().map(|e| e.display(program)).collect();
        format!("({})", parts.join(", "))
    }

    /// Explains why `var` may point to `heap`: a human-readable derivation
    /// chain from the tuple back to the allocation that introduced the
    /// object, following assignments, call boundaries, and field loads
    /// (continuing through the store that populated each loaded field).
    ///
    /// Returns `None` when the fact does not hold, or when the solver ran
    /// without `SolverConfig::track_provenance`.
    ///
    /// Intended for interactive debugging of analysis precision (the `pta`
    /// CLI exposes it as `--explain VAR`); lookup scans the tuple set for a
    /// matching starting tuple, so this is not a hot-path API.
    pub fn explain(&self, program: &Program, var: VarId, heap: HeapId) -> Option<Vec<String>> {
        let provenance = self.provenance.as_ref()?;
        // Any tuple for (var, heap) serves as a starting point.
        let start = *provenance.keys().find(|t| t.var == var && t.heap == heap)?;
        let mut lines = Vec::new();
        let mut cur = start;
        let mut guard = 0usize;
        loop {
            guard += 1;
            if guard > 256 {
                lines.push("... (chain truncated)".to_owned());
                break;
            }
            let describe_var = |t: &CtxVarPointsTo| {
                format!(
                    "{}::{} @ {}",
                    program.method_qualified_name(program.var_method(t.var)),
                    program.var_name(t.var),
                    self.display_ctx(t.ctx, program),
                )
            };
            match provenance.get(&cur) {
                None => {
                    lines.push(format!("{} (derivation not recorded)", describe_var(&cur)));
                    break;
                }
                Some(Derivation::Alloc) => {
                    lines.push(format!(
                        "{} = new {} [allocation site {}]",
                        describe_var(&cur),
                        program.type_name(program.heap_type(cur.heap)),
                        program.heap_label(cur.heap),
                    ));
                    break;
                }
                Some(Derivation::Assign { from }) => {
                    lines.push(format!(
                        "{} copied from {}",
                        describe_var(&cur),
                        program.var_name(from.var)
                    ));
                    cur = *from;
                }
                Some(Derivation::InterProc { from }) => {
                    lines.push(format!(
                        "{} received across a call boundary from {}",
                        describe_var(&cur),
                        describe_var(from),
                    ));
                    cur = *from;
                }
                Some(Derivation::Load { base, field }) => {
                    lines.push(format!(
                        "{} loaded from field {} of {} [{}]",
                        describe_var(&cur),
                        program.field_name(*field),
                        program.heap_label(base.heap),
                        describe_var(base),
                    ));
                    // Continue with the value that was stored into that
                    // field, if recorded.
                    let key = (base.heap, base.hctx, *field, cur.heap, cur.hctx);
                    match self.fld_provenance.as_ref().and_then(|m| m.get(&key)) {
                        Some(&value) => cur = value,
                        None => {
                            lines.push("... (store origin not recorded)".to_owned());
                            break;
                        }
                    }
                }
                Some(Derivation::ThisBinding { invo }) => {
                    lines.push(format!(
                        "{} bound as receiver at call site {}",
                        describe_var(&cur),
                        program.invo_label(*invo),
                    ));
                    break;
                }
                Some(Derivation::Caught) => {
                    lines.push(format!(
                        "{} bound by a catch clause (thrown object {})",
                        describe_var(&cur),
                        program.heap_label(cur.heap),
                    ));
                    break;
                }
                Some(Derivation::StaticLoad { field }) => {
                    lines.push(format!(
                        "{} loaded from static field {}.{}",
                        describe_var(&cur),
                        program.type_name(program.field_owner(*field)),
                        program.field_name(*field),
                    ));
                    let key = (*field, cur.heap, cur.hctx);
                    match self
                        .static_fld_provenance
                        .as_ref()
                        .and_then(|m| m.get(&key))
                    {
                        Some(&value) => cur = value,
                        None => {
                            lines.push("... (store origin not recorded)".to_owned());
                            break;
                        }
                    }
                }
            }
        }
        Some(lines)
    }

    /// Allocation sites of exception objects that may escape the entry
    /// points uncaught (sorted).
    pub fn uncaught_exceptions(&self) -> &[HeapId] {
        &self.uncaught
    }

    /// The (context-insensitive) points-to set of instance field `field`
    /// on objects allocated at `base`, sorted by heap ID. Empty if the
    /// analysis never stored into that cell.
    ///
    /// This is the `FldPointsTo` relation of the paper's Figure 1
    /// projected down to allocation sites — the heap-graph view client
    /// analyses (taint reachability, escape) traverse.
    pub fn field_points_to(&self, base: HeapId, field: FieldId) -> &[HeapId] {
        self.field_points_to
            .get(&(base, field))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Iterates every populated `(base heap, field)` cell with its sorted
    /// points-to set, in unspecified order.
    pub fn field_points_to_iter(
        &self,
    ) -> impl Iterator<Item = ((HeapId, FieldId), &[HeapId])> + '_ {
        self.field_points_to.iter().map(|(&k, v)| (k, v.as_slice()))
    }

    /// The (context-insensitive) points-to set of static field `field`,
    /// sorted by heap ID. Empty if nothing was ever stored there.
    pub fn static_points_to(&self, field: FieldId) -> &[HeapId] {
        self.static_points_to
            .get(&field)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Iterates every populated static field with its sorted points-to
    /// set, in unspecified order.
    pub fn static_points_to_iter(&self) -> impl Iterator<Item = (FieldId, &[HeapId])> + '_ {
        self.static_points_to
            .iter()
            .map(|(&k, v)| (k, v.as_slice()))
    }

    /// `true` if `a` and `b` may point to a common heap object — the
    /// classic may-alias query derived from points-to sets, the paper's
    /// "close relative" of points-to analysis (§1).
    ///
    /// Sound but conservative: a `true` answer may be a false positive; a
    /// `false` answer guarantees the variables never alias (under the
    /// analyzed entry points).
    pub fn may_alias(&self, a: VarId, b: VarId) -> bool {
        let (sa, sb) = (self.points_to(a), self.points_to(b));
        // Both sets are sorted; merge-step intersection test.
        let (mut i, mut j) = (0, 0);
        while i < sa.len() && j < sb.len() {
            match sa[i].cmp(&sb[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => return true,
            }
        }
        false
    }

    /// The average points-to set size over variables of reachable methods
    /// with non-empty sets — the paper's "avg objs per var" metric.
    pub fn average_points_to_size(&self) -> f64 {
        if self.var_points_to.is_empty() {
            return 0.0;
        }
        let total: u64 = self.var_points_to.values().map(|v| v.len() as u64).sum();
        total as f64 / self.var_points_to.len() as f64
    }

    /// The median points-to set size over variables with non-empty sets.
    /// (The paper notes this is 1 for all analyses and benchmarks.)
    pub fn median_points_to_size(&self) -> usize {
        if self.var_points_to.is_empty() {
            return 0;
        }
        let mut sizes: Vec<usize> = self.var_points_to.values().map(Vec::len).collect();
        sizes.sort_unstable();
        sizes[sizes.len() / 2]
    }
}
