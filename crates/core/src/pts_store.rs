//! Hash-consed storage for large points-to sets (the `Shared` stage of
//! [`crate::pts::PtsSet`]).
//!
//! Under the paper's object-sensitive analyses the same large points-to
//! set is materialized for thousands of `(var, ctx)` keys — every key on a
//! copy chain (`Move`, `InterProcAssign`) replays its source's insert
//! sequence and therefore passes through the *same* growth states. The
//! always-on `vpt_dup` / `dedup_hit_rate` counters quantify this
//! duplication on every run; this module removes its memory cost.
//!
//! A [`PtsStore`] interns immutable bitmap representations
//! ([`SharedRep`]) by content: when a set crosses [`SHARE_MIN`] elements
//! (or flushes a full copy-on-write overlay), its word array is trimmed to
//! canonical form, content-hashed, and either unified with an existing
//! identical representation (an intern *hit* — the freshly built words are
//! dropped and both sets point at one `Arc`) or registered as a new one.
//! Reads never touch the store: a `Shared` set carries its base `Arc`
//! inline, so `contains`/`iter`/`extend_into` stay store-free and only
//! inserts need `&mut PtsStore`.
//!
//! ## Determinism
//!
//! Interning is invisible to analysis semantics: a set's *content* is
//! independent of whether its representation is private or shared, every
//! representation iterates in ascending object-ID order, and promotion /
//! flush points are functions of the (deterministic) insert sequence
//! alone. The sequential solver owns one store; each parallel shard owns
//! a private store (no locks, no cross-shard rendezvous) and the shards'
//! counters are absorbed in shard-ID order, so `--threads N` reports the
//! same byte-identical results it always did. DESIGN.md §13 spells out
//! the full argument.
//!
//! ## Memory model
//!
//! The store also maintains `heap_bytes`, a deterministic model of the
//! bytes held by bitmap-stage set representations (private bitmaps count
//! their word arrays; interned representations count once, at first
//! intern). The solvers add it to their `mem_estimate`, which makes
//! `--max-memory` budgets representation-aware: a sharing run fits where
//! the same analysis with `--no-share` trips the cap. `bytes_saved`
//! accumulates the words dropped on every intern hit — exactly the gap
//! between the two models. Superseded representations are evicted at
//! overlay flush ([`PtsStore::release`]): when a growing set re-interns
//! base ∪ overlay and it was the last holder of its old base, the old
//! representation leaves the index and `heap_bytes`, so the store only
//! ever accounts for *live* representations.

use std::sync::Arc;

use pta_ir::hash::FxHashMap;

/// Element count at which a private bitmap is promoted into the store.
/// Below this, sharing bookkeeping costs more than the duplication; above
/// it, one representation spans `words ≥ SHARE_MIN / 64` heap words per
/// holder and the dedup wins compound.
pub const SHARE_MIN: usize = 128;

/// Maximum copy-on-write overlay size. Inserts into a shared set land in
/// a small sorted overlay (keeping the hot delta-batching path
/// allocation-light); once the overlay fills, base ∪ overlay is re-interned
/// and the overlay resets.
pub const OVERLAY_MAX: usize = 32;

/// One immutable, canonical (trailing zero words trimmed) bitmap
/// representation, shared by every set whose content matched at intern
/// time. Bit `v` of `words[v / 64]` is set iff `v` is a member.
#[derive(Debug)]
pub struct SharedRep {
    pub(crate) words: Box<[u64]>,
    pub(crate) len: u32,
}

impl SharedRep {
    /// Membership bit test.
    #[inline]
    pub(crate) fn contains(&self, v: u32) -> bool {
        let w = (v >> 6) as usize;
        w < self.words.len() && self.words[w] & (1u64 << (v & 63)) != 0
    }

    /// Heap bytes held by the word array.
    #[inline]
    fn byte_size(&self) -> u64 {
        self.words.len() as u64 * 8
    }
}

/// FNV-1a over the word array (length folded in so a prefix never
/// collides with its extension by pure accident; full content equality is
/// still verified on every probe).
fn content_hash(words: &[u64], len: u32) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64 ^ u64::from(len);
    for &w in words {
        h = (h ^ w).wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// The solver-owned intern store. See the module docs.
#[derive(Debug, Default)]
pub struct PtsStore {
    /// `false` (`--no-share`) keeps every call site uniform but makes
    /// [`PtsStore::intern`] unreachable: sets then stop at the private
    /// bitmap stage exactly as before the `Shared` stage existed.
    enabled: bool,
    /// Content hash → representations with that hash (collision chains
    /// are resolved by full word-array comparison).
    index: FxHashMap<u64, Vec<Arc<SharedRep>>>,
    /// Representations interned over the run (`sets_interned`) — a
    /// cumulative event count; evicted representations stay counted.
    interned: u64,
    /// Intern probes that unified with an existing representation
    /// (`sets_shared`).
    hits: u64,
    /// Bytes of would-be-duplicate word arrays dropped on intern hits
    /// (`bytes_saved`).
    bytes_saved: u64,
    /// Superseded representations evicted by [`PtsStore::release`]
    /// (`sets_evicted`) — a cumulative event count.
    evicted: u64,
    /// Deterministic model of bytes held by bitmap-stage representations
    /// (private bitmaps each; interned representations once).
    heap_bytes: u64,
}

impl PtsStore {
    /// An enabled store (the default configuration).
    #[must_use]
    pub fn new() -> PtsStore {
        PtsStore {
            enabled: true,
            ..PtsStore::default()
        }
    }

    /// A disabled store (`--no-share`): insert paths still thread it —
    /// and it still tracks `heap_bytes` for the memory model — but no set
    /// is ever promoted to the `Shared` stage.
    #[must_use]
    pub fn disabled() -> PtsStore {
        PtsStore::default()
    }

    /// Whether sets may be promoted into this store.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Representations interned over the run (cumulative; includes
    /// representations since evicted by [`PtsStore::release`]).
    #[must_use]
    pub fn sets_interned(&self) -> u64 {
        self.interned
    }

    /// Intern probes unified with an existing representation.
    #[must_use]
    pub fn sets_shared(&self) -> u64 {
        self.hits
    }

    /// Bytes of duplicate representations avoided by unification.
    #[must_use]
    pub fn bytes_saved(&self) -> u64 {
        self.bytes_saved
    }

    /// Superseded representations evicted by [`PtsStore::release`]
    /// (cumulative).
    #[must_use]
    pub fn sets_evicted(&self) -> u64 {
        self.evicted
    }

    /// Modeled bytes currently held by bitmap-stage representations.
    #[must_use]
    pub fn heap_bytes(&self) -> u64 {
        self.heap_bytes
    }

    /// Interns `words` (with `len` member bits set), returning the
    /// canonical shared representation. Consumes the caller's array; on a
    /// hit it is dropped in favour of the existing `Arc`.
    pub(crate) fn intern(&mut self, mut words: Vec<u64>, len: u32) -> Arc<SharedRep> {
        debug_assert!(self.enabled, "intern on a disabled store");
        // Canonical form: no trailing zero words, so equal contents hash
        // and compare equal regardless of how the arrays were grown.
        while words.last() == Some(&0) {
            words.pop();
        }
        let hash = content_hash(&words, len);
        let bucket = self.index.entry(hash).or_default();
        for rep in bucket.iter() {
            if rep.len == len && *rep.words == words[..] {
                self.hits += 1;
                self.bytes_saved += rep.byte_size();
                return Arc::clone(rep);
            }
        }
        let rep = Arc::new(SharedRep {
            words: words.into_boxed_slice(),
            len,
        });
        self.interned += 1;
        self.heap_bytes += rep.byte_size();
        bucket.push(Arc::clone(&rep));
        rep
    }

    /// Drops the store's own reference to `rep` when no live set still
    /// shares it. Called after an overlay flush replaces a set's base:
    /// without eviction every superseded growth state would sit in the
    /// index forever (the index's `Arc` keeps it alive), and a long solve
    /// would retain *more* than the unshared representation ever
    /// allocates. Two strong references — the index's and the caller's
    /// in-hand one — mean the representation is dead.
    pub(crate) fn release(&mut self, rep: &Arc<SharedRep>) {
        if Arc::strong_count(rep) != 2 {
            return;
        }
        let hash = content_hash(&rep.words, rep.len);
        if let Some(bucket) = self.index.get_mut(&hash) {
            // `swap_remove` reorders the bucket, which is fine: contents
            // are unique within a bucket (checked before every push), so
            // a probe matches at most one entry regardless of order.
            if let Some(pos) = bucket.iter().position(|r| Arc::ptr_eq(r, rep)) {
                let dead = bucket.swap_remove(pos);
                self.evicted += 1;
                self.heap_bytes = self.heap_bytes.saturating_sub(dead.byte_size());
                if bucket.is_empty() {
                    self.index.remove(&hash);
                }
            }
        }
    }

    /// Records `bytes` of newly allocated private bitmap words.
    #[inline]
    pub(crate) fn track_bitmap_bytes(&mut self, bytes: u64) {
        self.heap_bytes += bytes;
    }

    /// Records `bytes` of private bitmap words released (promoted into
    /// the store or dropped).
    #[inline]
    pub(crate) fn untrack_bitmap_bytes(&mut self, bytes: u64) {
        self.heap_bytes = self.heap_bytes.saturating_sub(bytes);
    }
}
