//! Context representation and interning.
//!
//! The paper's analyses qualify every method (and local variable) with a
//! *context* drawn from `C` and every heap object with a *heap context*
//! drawn from `HC`. Across all analyses studied, a context is a tuple of at
//! most three *elements*, each of which is an allocation site (`H`), an
//! invocation site (`I`), a class type (`T`), or the distinguished `*`
//! element. The paper constructs these with `pair`/`triple` and observes
//! that the statically bounded depth is what keeps the analysis finite
//! ("the possible number of distinct contexts is cubic in the size of the
//! input program").
//!
//! A [`CtxElem`] is a tagged `u32` (2 tag bits, 30 payload bits); a [`Ctx`]
//! is a fixed `[CtxElem; 3]` padded with `*`; heap contexts are a single
//! element. Contexts are interned to dense [`CtxId`] / [`HCtxId`] values so
//! the solver's tuples stay four `u32`s wide regardless of context depth.

use std::fmt;

use pta_ir::hash::FxHashMap;
use pta_ir::{HeapId, InvoId, Program, TypeId};

const TAG_SHIFT: u32 = 30;
const PAYLOAD_MASK: u32 = (1 << TAG_SHIFT) - 1;
const TAG_STAR: u32 = 0;
const TAG_HEAP: u32 = 1;
const TAG_INVO: u32 = 2;
const TAG_TYPE: u32 = 3;

/// One element of a context tuple: `H ∪ I ∪ T ∪ {*}`.
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CtxElem(u32);

/// The unpacked view of a [`CtxElem`], for matching and display.
#[derive(Debug, Copy, Clone, PartialEq, Eq)]
pub enum CtxElemKind {
    /// The distinguished "no information" element.
    Star,
    /// An allocation site (object-sensitivity).
    Heap(HeapId),
    /// An invocation site (call-site-sensitivity).
    Invo(InvoId),
    /// A class type (type-sensitivity).
    Type(TypeId),
}

impl CtxElem {
    /// The distinguished `*` element.
    pub const STAR: CtxElem = CtxElem(0);

    /// An allocation-site element.
    #[inline]
    pub fn heap(h: HeapId) -> CtxElem {
        debug_assert!(h.raw() <= PAYLOAD_MASK);
        CtxElem((TAG_HEAP << TAG_SHIFT) | h.raw())
    }

    /// An invocation-site element.
    #[inline]
    pub fn invo(i: InvoId) -> CtxElem {
        debug_assert!(i.raw() <= PAYLOAD_MASK);
        CtxElem((TAG_INVO << TAG_SHIFT) | i.raw())
    }

    /// A class-type element.
    #[inline]
    pub fn ty(t: TypeId) -> CtxElem {
        debug_assert!(t.raw() <= PAYLOAD_MASK);
        CtxElem((TAG_TYPE << TAG_SHIFT) | t.raw())
    }

    /// Unpacks the element.
    #[inline]
    pub fn kind(self) -> CtxElemKind {
        let payload = self.0 & PAYLOAD_MASK;
        match self.0 >> TAG_SHIFT {
            TAG_STAR => CtxElemKind::Star,
            TAG_HEAP => CtxElemKind::Heap(HeapId::from_raw(payload)),
            TAG_INVO => CtxElemKind::Invo(InvoId::from_raw(payload)),
            _ => CtxElemKind::Type(TypeId::from_raw(payload)),
        }
    }

    /// `true` if this is the `*` element.
    #[inline]
    pub fn is_star(self) -> bool {
        self.0 == 0
    }

    /// Renders the element with names resolved against `program`.
    pub fn display(self, program: &Program) -> String {
        match self.kind() {
            CtxElemKind::Star => "*".to_owned(),
            CtxElemKind::Heap(h) => format!("[{}]", program.heap_label(h)),
            CtxElemKind::Invo(i) => format!("<{}>", program.invo_label(i)),
            CtxElemKind::Type(t) => format!("{{{}}}", program.type_name(t)),
        }
    }
}

impl fmt::Debug for CtxElem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind() {
            CtxElemKind::Star => write!(f, "*"),
            CtxElemKind::Heap(h) => write!(f, "{h}"),
            CtxElemKind::Invo(i) => write!(f, "{i}"),
            CtxElemKind::Type(t) => write!(f, "{t}"),
        }
    }
}

impl Default for CtxElem {
    fn default() -> CtxElem {
        CtxElem::STAR
    }
}

/// A calling context: up to three elements, padded with `*`.
pub type Ctx = [CtxElem; 3];

/// A heap context: up to two elements, padded with `*`.
///
/// Every analysis in the paper's evaluation uses at most one heap-context
/// element; the second slot supports the deeper-context analyses of the
/// paper's §6 future work (`2obj+2H`, `3obj+2H`).
pub type HeapCtx = [CtxElem; 2];

/// The initial (empty) context: `(*, *, *)`.
pub const CTX_EMPTY: Ctx = [CtxElem::STAR; 3];

/// The empty heap context: `(*, *)`.
pub const HCTX_EMPTY: HeapCtx = [CtxElem::STAR; 2];

/// Convenience constructor for a one-element heap context.
#[inline]
pub fn hctx1(a: CtxElem) -> HeapCtx {
    [a, CtxElem::STAR]
}

/// Convenience constructor for a two-element heap context.
#[inline]
pub fn hctx2(a: CtxElem, b: CtxElem) -> HeapCtx {
    [a, b]
}

/// Convenience constructor for a one-element context.
#[inline]
pub fn ctx1(a: CtxElem) -> Ctx {
    [a, CtxElem::STAR, CtxElem::STAR]
}

/// Convenience constructor for a two-element context (the paper's `pair`).
#[inline]
pub fn ctx2(a: CtxElem, b: CtxElem) -> Ctx {
    [a, b, CtxElem::STAR]
}

/// Convenience constructor for a three-element context (the paper's
/// `triple`).
#[inline]
pub fn ctx3(a: CtxElem, b: CtxElem, c: CtxElem) -> Ctx {
    [a, b, c]
}

/// An interned calling context.
#[derive(Debug, Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct CtxId(u32);

impl CtxId {
    /// The initial context `(*, *, *)`, always interned first.
    pub const INITIAL: CtxId = CtxId(0);

    /// The raw interned index.
    #[inline]
    pub fn raw(self) -> u32 {
        self.0
    }

    /// Wraps a raw interned index (for engine interop).
    #[inline]
    pub fn from_raw(raw: u32) -> CtxId {
        CtxId(raw)
    }
}

/// An interned heap context (a single element in every analysis studied).
#[derive(Debug, Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct HCtxId(u32);

impl HCtxId {
    /// The empty heap context `*`, always interned first.
    pub const EMPTY: HCtxId = HCtxId(0);

    /// The raw interned index.
    #[inline]
    pub fn raw(self) -> u32 {
        self.0
    }

    /// Wraps a raw interned index (for engine interop).
    #[inline]
    pub fn from_raw(raw: u32) -> HCtxId {
        HCtxId(raw)
    }
}

/// Interner for calling contexts.
#[derive(Debug, Default)]
pub struct CtxInterner {
    vals: Vec<Ctx>,
    map: FxHashMap<Ctx, CtxId>,
}

impl CtxInterner {
    /// Creates an interner with [`CtxId::INITIAL`] pre-interned.
    pub fn new() -> CtxInterner {
        let mut i = CtxInterner::default();
        let id = i.intern(CTX_EMPTY);
        debug_assert_eq!(id, CtxId::INITIAL);
        i
    }

    /// Interns `ctx`, returning its dense ID.
    pub fn intern(&mut self, ctx: Ctx) -> CtxId {
        if let Some(&id) = self.map.get(&ctx) {
            return id;
        }
        let id = CtxId(self.vals.len() as u32);
        self.vals.push(ctx);
        self.map.insert(ctx, id);
        id
    }

    /// The context tuple behind an ID.
    #[inline]
    pub fn resolve(&self, id: CtxId) -> Ctx {
        self.vals[id.0 as usize]
    }

    /// Number of distinct contexts created.
    pub fn len(&self) -> usize {
        self.vals.len()
    }

    /// `true` if only the initial context exists... never, after `new`.
    pub fn is_empty(&self) -> bool {
        self.vals.is_empty()
    }
}

/// Interner for heap contexts.
#[derive(Debug, Default)]
pub struct HCtxInterner {
    vals: Vec<HeapCtx>,
    map: FxHashMap<HeapCtx, HCtxId>,
}

impl HCtxInterner {
    /// Creates an interner with [`HCtxId::EMPTY`] pre-interned.
    pub fn new() -> HCtxInterner {
        let mut i = HCtxInterner::default();
        let id = i.intern(HCTX_EMPTY);
        debug_assert_eq!(id, HCtxId::EMPTY);
        i
    }

    /// Interns a heap context, returning its dense ID.
    pub fn intern(&mut self, hctx: HeapCtx) -> HCtxId {
        if let Some(&id) = self.map.get(&hctx) {
            return id;
        }
        let id = HCtxId(self.vals.len() as u32);
        self.vals.push(hctx);
        self.map.insert(hctx, id);
        id
    }

    /// The heap context behind an ID.
    #[inline]
    pub fn resolve(&self, id: HCtxId) -> HeapCtx {
        self.vals[id.0 as usize]
    }

    /// Number of distinct heap contexts created.
    pub fn len(&self) -> usize {
        self.vals.len()
    }

    /// `true` if nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.vals.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elem_roundtrip() {
        let h = CtxElem::heap(HeapId::from_raw(123));
        let i = CtxElem::invo(InvoId::from_raw(456));
        let t = CtxElem::ty(TypeId::from_raw(789));
        assert_eq!(h.kind(), CtxElemKind::Heap(HeapId::from_raw(123)));
        assert_eq!(i.kind(), CtxElemKind::Invo(InvoId::from_raw(456)));
        assert_eq!(t.kind(), CtxElemKind::Type(TypeId::from_raw(789)));
        assert_eq!(CtxElem::STAR.kind(), CtxElemKind::Star);
        assert!(CtxElem::STAR.is_star());
        assert!(!h.is_star());
    }

    #[test]
    fn elems_with_same_payload_different_tag_differ() {
        let h = CtxElem::heap(HeapId::from_raw(5));
        let i = CtxElem::invo(InvoId::from_raw(5));
        let t = CtxElem::ty(TypeId::from_raw(5));
        assert_ne!(h, i);
        assert_ne!(i, t);
        assert_ne!(h, t);
    }

    #[test]
    fn interner_is_injective_and_stable() {
        let mut ctxs = CtxInterner::new();
        let a = ctxs.intern(ctx1(CtxElem::heap(HeapId::from_raw(1))));
        let b = ctxs.intern(ctx1(CtxElem::heap(HeapId::from_raw(2))));
        let a2 = ctxs.intern(ctx1(CtxElem::heap(HeapId::from_raw(1))));
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(ctxs.resolve(a), ctx1(CtxElem::heap(HeapId::from_raw(1))));
        assert_eq!(ctxs.len(), 3); // initial + 2
        assert_eq!(ctxs.intern(CTX_EMPTY), CtxId::INITIAL);
    }

    #[test]
    fn hctx_interner_starts_with_empty() {
        let mut h = HCtxInterner::new();
        assert_eq!(h.intern(HCTX_EMPTY), HCtxId::EMPTY);
        let x = h.intern(hctx1(CtxElem::heap(HeapId::from_raw(9))));
        assert_ne!(x, HCtxId::EMPTY);
        assert_eq!(h.resolve(x), hctx1(CtxElem::heap(HeapId::from_raw(9))));
        let y = h.intern(hctx2(
            CtxElem::heap(HeapId::from_raw(9)),
            CtxElem::heap(HeapId::from_raw(1)),
        ));
        assert_ne!(y, x);
        assert_eq!(h.len(), 3);
    }

    #[test]
    fn ctx_constructors_pad_with_star() {
        let e = CtxElem::heap(HeapId::from_raw(3));
        assert_eq!(ctx1(e), [e, CtxElem::STAR, CtxElem::STAR]);
        assert_eq!(ctx2(e, e), [e, e, CtxElem::STAR]);
        assert_eq!(ctx3(e, e, e), [e, e, e]);
        assert_eq!(CTX_EMPTY, [CtxElem::STAR; 3]);
    }

    #[test]
    fn debug_format_shows_kind() {
        assert_eq!(format!("{:?}", CtxElem::STAR), "*");
        assert_eq!(format!("{:?}", CtxElem::heap(HeapId::from_raw(4))), "h4");
        assert_eq!(format!("{:?}", CtxElem::invo(InvoId::from_raw(4))), "i4");
        assert_eq!(format!("{:?}", CtxElem::ty(TypeId::from_raw(4))), "t4");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use pta_ir::rng::Rng;

    fn random_elem(rng: &mut Rng) -> CtxElem {
        match rng.gen_range(0..4u32) {
            0 => CtxElem::STAR,
            1 => CtxElem::heap(HeapId::from_raw(rng.gen_range(0..1_000_000u32))),
            2 => CtxElem::invo(InvoId::from_raw(rng.gen_range(0..1_000_000u32))),
            _ => CtxElem::ty(TypeId::from_raw(rng.gen_range(0..1_000_000u32))),
        }
    }

    /// The packed representation round-trips through `kind()`.
    #[test]
    fn elem_pack_unpack_roundtrip() {
        let mut rng = Rng::seed_from_u64(0xe1e);
        for _ in 0..512 {
            let e = random_elem(&mut rng);
            let rebuilt = match e.kind() {
                CtxElemKind::Star => CtxElem::STAR,
                CtxElemKind::Heap(h) => CtxElem::heap(h),
                CtxElemKind::Invo(i) => CtxElem::invo(i),
                CtxElemKind::Type(t) => CtxElem::ty(t),
            };
            assert_eq!(e, rebuilt);
        }
    }

    /// Interning is injective: distinct tuples get distinct IDs, equal
    /// tuples the same ID, and `resolve` inverts `intern`.
    #[test]
    fn interner_injective() {
        let mut rng = Rng::seed_from_u64(0x171);
        for _ in 0..16 {
            let n = rng.gen_range(1..50usize);
            let tuples: Vec<(CtxElem, CtxElem, CtxElem)> = (0..n)
                .map(|_| {
                    (
                        random_elem(&mut rng),
                        random_elem(&mut rng),
                        random_elem(&mut rng),
                    )
                })
                .collect();
            let mut interner = CtxInterner::new();
            let ids: Vec<CtxId> = tuples
                .iter()
                .map(|&(a, b, c)| interner.intern([a, b, c]))
                .collect();
            for (i, &(a, b, c)) in tuples.iter().enumerate() {
                assert_eq!(interner.resolve(ids[i]), [a, b, c]);
                for (j, &(x, y, z)) in tuples.iter().enumerate() {
                    assert_eq!(ids[i] == ids[j], [a, b, c] == [x, y, z]);
                }
            }
        }
    }

    /// Heap-context interning behaves identically.
    #[test]
    fn hctx_interner_injective() {
        let mut rng = Rng::seed_from_u64(0x4c7);
        for _ in 0..16 {
            let n = rng.gen_range(1..50usize);
            let tuples: Vec<(CtxElem, CtxElem)> = (0..n)
                .map(|_| (random_elem(&mut rng), random_elem(&mut rng)))
                .collect();
            let mut interner = HCtxInterner::new();
            let ids: Vec<HCtxId> = tuples
                .iter()
                .map(|&(a, b)| interner.intern([a, b]))
                .collect();
            for (i, &(a, b)) in tuples.iter().enumerate() {
                assert_eq!(interner.resolve(ids[i]), [a, b]);
            }
        }
    }
}
