//! Context representation and interning.
//!
//! The paper's analyses qualify every method (and local variable) with a
//! *context* drawn from `C` and every heap object with a *heap context*
//! drawn from `HC`. Across all analyses studied, a context is a tuple of at
//! most three *elements*, each of which is an allocation site (`H`), an
//! invocation site (`I`), a class type (`T`), or the distinguished `*`
//! element. The paper constructs these with `pair`/`triple` and observes
//! that the statically bounded depth is what keeps the analysis finite
//! ("the possible number of distinct contexts is cubic in the size of the
//! input program").
//!
//! A [`CtxElem`] is a tagged `u32` (2 tag bits, 30 payload bits); a [`Ctx`]
//! is a fixed `[CtxElem; 3]` padded with `*`; heap contexts are a single
//! element. Contexts are interned to dense [`CtxId`] / [`HCtxId`] values so
//! the solver's tuples stay four `u32`s wide regardless of context depth.

use std::fmt;

use pta_ir::{HeapId, InvoId, Program, TypeId};

const TAG_SHIFT: u32 = 30;
const PAYLOAD_MASK: u32 = (1 << TAG_SHIFT) - 1;
const TAG_STAR: u32 = 0;
const TAG_HEAP: u32 = 1;
const TAG_INVO: u32 = 2;
const TAG_TYPE: u32 = 3;

/// One element of a context tuple: `H ∪ I ∪ T ∪ {*}`.
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CtxElem(u32);

/// The unpacked view of a [`CtxElem`], for matching and display.
#[derive(Debug, Copy, Clone, PartialEq, Eq)]
pub enum CtxElemKind {
    /// The distinguished "no information" element.
    Star,
    /// An allocation site (object-sensitivity).
    Heap(HeapId),
    /// An invocation site (call-site-sensitivity).
    Invo(InvoId),
    /// A class type (type-sensitivity).
    Type(TypeId),
}

impl CtxElem {
    /// The distinguished `*` element.
    pub const STAR: CtxElem = CtxElem(0);

    /// An allocation-site element.
    #[inline]
    pub fn heap(h: HeapId) -> CtxElem {
        debug_assert!(h.raw() <= PAYLOAD_MASK);
        CtxElem((TAG_HEAP << TAG_SHIFT) | h.raw())
    }

    /// An invocation-site element.
    #[inline]
    pub fn invo(i: InvoId) -> CtxElem {
        debug_assert!(i.raw() <= PAYLOAD_MASK);
        CtxElem((TAG_INVO << TAG_SHIFT) | i.raw())
    }

    /// A class-type element.
    #[inline]
    pub fn ty(t: TypeId) -> CtxElem {
        debug_assert!(t.raw() <= PAYLOAD_MASK);
        CtxElem((TAG_TYPE << TAG_SHIFT) | t.raw())
    }

    /// Unpacks the element.
    #[inline]
    pub fn kind(self) -> CtxElemKind {
        let payload = self.0 & PAYLOAD_MASK;
        match self.0 >> TAG_SHIFT {
            TAG_STAR => CtxElemKind::Star,
            TAG_HEAP => CtxElemKind::Heap(HeapId::from_raw(payload)),
            TAG_INVO => CtxElemKind::Invo(InvoId::from_raw(payload)),
            _ => CtxElemKind::Type(TypeId::from_raw(payload)),
        }
    }

    /// `true` if this is the `*` element.
    #[inline]
    pub fn is_star(self) -> bool {
        self.0 == 0
    }

    /// Renders the element with names resolved against `program`.
    pub fn display(self, program: &Program) -> String {
        match self.kind() {
            CtxElemKind::Star => "*".to_owned(),
            CtxElemKind::Heap(h) => format!("[{}]", program.heap_label(h)),
            CtxElemKind::Invo(i) => format!("<{}>", program.invo_label(i)),
            CtxElemKind::Type(t) => format!("{{{}}}", program.type_name(t)),
        }
    }
}

impl fmt::Debug for CtxElem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind() {
            CtxElemKind::Star => write!(f, "*"),
            CtxElemKind::Heap(h) => write!(f, "{h}"),
            CtxElemKind::Invo(i) => write!(f, "{i}"),
            CtxElemKind::Type(t) => write!(f, "{t}"),
        }
    }
}

impl Default for CtxElem {
    fn default() -> CtxElem {
        CtxElem::STAR
    }
}

/// A calling context: up to three elements, padded with `*`.
pub type Ctx = [CtxElem; 3];

/// A heap context: up to two elements, padded with `*`.
///
/// Every analysis in the paper's evaluation uses at most one heap-context
/// element; the second slot supports the deeper-context analyses of the
/// paper's §6 future work (`2obj+2H`, `3obj+2H`).
pub type HeapCtx = [CtxElem; 2];

/// The initial (empty) context: `(*, *, *)`.
pub const CTX_EMPTY: Ctx = [CtxElem::STAR; 3];

/// The empty heap context: `(*, *)`.
pub const HCTX_EMPTY: HeapCtx = [CtxElem::STAR; 2];

/// Convenience constructor for a one-element heap context.
#[inline]
pub fn hctx1(a: CtxElem) -> HeapCtx {
    [a, CtxElem::STAR]
}

/// Convenience constructor for a two-element heap context.
#[inline]
pub fn hctx2(a: CtxElem, b: CtxElem) -> HeapCtx {
    [a, b]
}

/// Convenience constructor for a one-element context.
#[inline]
pub fn ctx1(a: CtxElem) -> Ctx {
    [a, CtxElem::STAR, CtxElem::STAR]
}

/// Convenience constructor for a two-element context (the paper's `pair`).
#[inline]
pub fn ctx2(a: CtxElem, b: CtxElem) -> Ctx {
    [a, b, CtxElem::STAR]
}

/// Convenience constructor for a three-element context (the paper's
/// `triple`).
#[inline]
pub fn ctx3(a: CtxElem, b: CtxElem, c: CtxElem) -> Ctx {
    [a, b, c]
}

/// An interned calling context.
#[derive(Debug, Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct CtxId(u32);

impl CtxId {
    /// The initial context `(*, *, *)`, always interned first.
    pub const INITIAL: CtxId = CtxId(0);

    /// The raw interned index.
    #[inline]
    pub fn raw(self) -> u32 {
        self.0
    }

    /// Wraps a raw interned index (for engine interop).
    #[inline]
    pub fn from_raw(raw: u32) -> CtxId {
        CtxId(raw)
    }
}

/// An interned heap context (a single element in every analysis studied).
#[derive(Debug, Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct HCtxId(u32);

impl HCtxId {
    /// The empty heap context `*`, always interned first.
    pub const EMPTY: HCtxId = HCtxId(0);

    /// The raw interned index.
    #[inline]
    pub fn raw(self) -> u32 {
        self.0
    }

    /// Wraps a raw interned index (for engine interop).
    #[inline]
    pub fn from_raw(raw: u32) -> HCtxId {
        HCtxId(raw)
    }
}

/// A key that can live in a [`DenseMap`]: hashable to a pre-mixed 64-bit
/// value. The hash must be fully mixed (high entropy in the low bits)
/// because the table uses it directly for linear probing.
pub(crate) trait InternKey: Copy + Eq {
    /// A well-mixed 64-bit hash of the key.
    fn ikey_hash(self) -> u64;
}

#[inline]
fn mix64(x: u64) -> u64 {
    // splitmix64 finalizer — the same mixer the repo's seeded RNG uses.
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl InternKey for (u32, u32) {
    #[inline]
    fn ikey_hash(self) -> u64 {
        mix64(u64::from(self.0) << 32 | u64::from(self.1))
    }
}

impl InternKey for Ctx {
    #[inline]
    fn ikey_hash(self) -> u64 {
        mix64(mix64(u64::from(self[0].0) << 32 | u64::from(self[1].0)) ^ u64::from(self[2].0))
    }
}

impl InternKey for HeapCtx {
    #[inline]
    fn ikey_hash(self) -> u64 {
        mix64(u64::from(self[0].0) << 32 | u64::from(self[1].0))
    }
}

/// An open-addressing interner: maps keys to dense `u32` IDs in insertion
/// order. Replaces the previous `FxHashMap<K, Id>` + `Vec<K>` pair — one
/// flat probe array, no per-entry overhead, and capacity pre-sizing from
/// program statistics so the hot interning path almost never rehashes.
#[derive(Debug, Clone)]
pub(crate) struct DenseMap<K: InternKey> {
    /// Keys in insertion (= ID) order.
    keys: Vec<K>,
    /// Probe table: `id + 1`, or 0 for an empty slot. Power-of-two sized.
    slots: Vec<u32>,
}

impl<K: InternKey> Default for DenseMap<K> {
    fn default() -> DenseMap<K> {
        DenseMap::with_capacity(0)
    }
}

impl<K: InternKey> DenseMap<K> {
    /// Creates a map pre-sized for about `cap` keys.
    pub(crate) fn with_capacity(cap: usize) -> DenseMap<K> {
        let slots = (cap.max(8) * 2).next_power_of_two();
        DenseMap {
            keys: Vec::with_capacity(cap),
            slots: vec![0; slots],
        }
    }

    /// Number of interned keys.
    #[inline]
    pub(crate) fn len(&self) -> usize {
        self.keys.len()
    }

    /// The key behind an ID.
    #[inline]
    pub(crate) fn resolve(&self, id: u32) -> K {
        self.keys[id as usize]
    }

    /// All interned keys, in ID order.
    #[inline]
    pub(crate) fn keys(&self) -> &[K] {
        &self.keys
    }

    /// Bytes held by the key store and probe table (capacity, not
    /// length: what the allocator actually handed out). This is the
    /// interned-key component of the solver's budget memory estimate.
    #[inline]
    pub(crate) fn mem_bytes(&self) -> u64 {
        (self.keys.capacity() * std::mem::size_of::<K>() + self.slots.capacity() * 4) as u64
    }

    /// Looks up `key` without inserting.
    #[inline]
    pub(crate) fn get(&self, key: K) -> Option<u32> {
        let mask = self.slots.len() - 1;
        let mut i = key.ikey_hash() as usize & mask;
        loop {
            let slot = self.slots[i];
            if slot == 0 {
                return None;
            }
            let id = slot - 1;
            if self.keys[id as usize] == key {
                return Some(id);
            }
            i = (i + 1) & mask;
        }
    }

    /// Interns `key`, returning its dense ID (existing or freshly
    /// assigned).
    pub(crate) fn intern(&mut self, key: K) -> u32 {
        // Keep the load factor under 3/4.
        if (self.keys.len() + 1) * 4 >= self.slots.len() * 3 {
            self.grow();
        }
        let mask = self.slots.len() - 1;
        let mut i = key.ikey_hash() as usize & mask;
        loop {
            let slot = self.slots[i];
            if slot == 0 {
                let id = self.keys.len() as u32;
                self.keys.push(key);
                self.slots[i] = id + 1;
                return id;
            }
            let id = slot - 1;
            if self.keys[id as usize] == key {
                return id;
            }
            i = (i + 1) & mask;
        }
    }

    #[cold]
    fn grow(&mut self) {
        let new_len = (self.slots.len() * 2).max(16);
        let mut slots = vec![0u32; new_len];
        let mask = new_len - 1;
        for (id, key) in self.keys.iter().enumerate() {
            let mut i = key.ikey_hash() as usize & mask;
            while slots[i] != 0 {
                i = (i + 1) & mask;
            }
            slots[i] = id as u32 + 1;
        }
        self.slots = slots;
    }
}

/// Interner for calling contexts.
#[derive(Debug, Clone)]
pub struct CtxInterner {
    map: DenseMap<Ctx>,
}

impl Default for CtxInterner {
    fn default() -> CtxInterner {
        CtxInterner::new()
    }
}

impl CtxInterner {
    /// Creates an interner with [`CtxId::INITIAL`] pre-interned.
    pub fn new() -> CtxInterner {
        CtxInterner::with_capacity(0)
    }

    /// Creates an interner pre-sized for about `cap` contexts, with
    /// [`CtxId::INITIAL`] pre-interned.
    pub fn with_capacity(cap: usize) -> CtxInterner {
        let mut i = CtxInterner {
            map: DenseMap::with_capacity(cap),
        };
        let id = i.intern(CTX_EMPTY);
        debug_assert_eq!(id, CtxId::INITIAL);
        i
    }

    /// Interns `ctx`, returning its dense ID.
    #[inline]
    pub fn intern(&mut self, ctx: Ctx) -> CtxId {
        CtxId(self.map.intern(ctx))
    }

    /// The context tuple behind an ID.
    #[inline]
    pub fn resolve(&self, id: CtxId) -> Ctx {
        self.map.resolve(id.0)
    }

    /// Number of distinct contexts created.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Bytes held by the interner's tables (budget memory accounting).
    pub fn mem_bytes(&self) -> u64 {
        self.map.mem_bytes()
    }

    /// All interned contexts, in ID order (the parallel solver's merge
    /// unions shard-private interners by value).
    pub(crate) fn keys(&self) -> &[Ctx] {
        self.map.keys()
    }

    /// `true` if only the initial context exists... never, after `new`.
    pub fn is_empty(&self) -> bool {
        self.map.len() == 0
    }
}

/// Interner for heap contexts.
#[derive(Debug, Clone)]
pub struct HCtxInterner {
    map: DenseMap<HeapCtx>,
}

impl Default for HCtxInterner {
    fn default() -> HCtxInterner {
        HCtxInterner::new()
    }
}

impl HCtxInterner {
    /// Creates an interner with [`HCtxId::EMPTY`] pre-interned.
    pub fn new() -> HCtxInterner {
        HCtxInterner::with_capacity(0)
    }

    /// Creates an interner pre-sized for about `cap` heap contexts, with
    /// [`HCtxId::EMPTY`] pre-interned.
    pub fn with_capacity(cap: usize) -> HCtxInterner {
        let mut i = HCtxInterner {
            map: DenseMap::with_capacity(cap),
        };
        let id = i.intern(HCTX_EMPTY);
        debug_assert_eq!(id, HCtxId::EMPTY);
        i
    }

    /// Interns a heap context, returning its dense ID.
    #[inline]
    pub fn intern(&mut self, hctx: HeapCtx) -> HCtxId {
        HCtxId(self.map.intern(hctx))
    }

    /// The heap context behind an ID.
    #[inline]
    pub fn resolve(&self, id: HCtxId) -> HeapCtx {
        self.map.resolve(id.0)
    }

    /// Number of distinct heap contexts created.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Bytes held by the interner's tables (budget memory accounting).
    pub fn mem_bytes(&self) -> u64 {
        self.map.mem_bytes()
    }

    /// All interned heap contexts, in ID order (for the parallel merge).
    pub(crate) fn keys(&self) -> &[HeapCtx] {
        self.map.keys()
    }

    /// `true` if nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.map.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elem_roundtrip() {
        let h = CtxElem::heap(HeapId::from_raw(123));
        let i = CtxElem::invo(InvoId::from_raw(456));
        let t = CtxElem::ty(TypeId::from_raw(789));
        assert_eq!(h.kind(), CtxElemKind::Heap(HeapId::from_raw(123)));
        assert_eq!(i.kind(), CtxElemKind::Invo(InvoId::from_raw(456)));
        assert_eq!(t.kind(), CtxElemKind::Type(TypeId::from_raw(789)));
        assert_eq!(CtxElem::STAR.kind(), CtxElemKind::Star);
        assert!(CtxElem::STAR.is_star());
        assert!(!h.is_star());
    }

    #[test]
    fn elems_with_same_payload_different_tag_differ() {
        let h = CtxElem::heap(HeapId::from_raw(5));
        let i = CtxElem::invo(InvoId::from_raw(5));
        let t = CtxElem::ty(TypeId::from_raw(5));
        assert_ne!(h, i);
        assert_ne!(i, t);
        assert_ne!(h, t);
    }

    #[test]
    fn interner_is_injective_and_stable() {
        let mut ctxs = CtxInterner::new();
        let a = ctxs.intern(ctx1(CtxElem::heap(HeapId::from_raw(1))));
        let b = ctxs.intern(ctx1(CtxElem::heap(HeapId::from_raw(2))));
        let a2 = ctxs.intern(ctx1(CtxElem::heap(HeapId::from_raw(1))));
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(ctxs.resolve(a), ctx1(CtxElem::heap(HeapId::from_raw(1))));
        assert_eq!(ctxs.len(), 3); // initial + 2
        assert_eq!(ctxs.intern(CTX_EMPTY), CtxId::INITIAL);
    }

    #[test]
    fn hctx_interner_starts_with_empty() {
        let mut h = HCtxInterner::new();
        assert_eq!(h.intern(HCTX_EMPTY), HCtxId::EMPTY);
        let x = h.intern(hctx1(CtxElem::heap(HeapId::from_raw(9))));
        assert_ne!(x, HCtxId::EMPTY);
        assert_eq!(h.resolve(x), hctx1(CtxElem::heap(HeapId::from_raw(9))));
        let y = h.intern(hctx2(
            CtxElem::heap(HeapId::from_raw(9)),
            CtxElem::heap(HeapId::from_raw(1)),
        ));
        assert_ne!(y, x);
        assert_eq!(h.len(), 3);
    }

    #[test]
    fn ctx_constructors_pad_with_star() {
        let e = CtxElem::heap(HeapId::from_raw(3));
        assert_eq!(ctx1(e), [e, CtxElem::STAR, CtxElem::STAR]);
        assert_eq!(ctx2(e, e), [e, e, CtxElem::STAR]);
        assert_eq!(ctx3(e, e, e), [e, e, e]);
        assert_eq!(CTX_EMPTY, [CtxElem::STAR; 3]);
    }

    #[test]
    fn debug_format_shows_kind() {
        assert_eq!(format!("{:?}", CtxElem::STAR), "*");
        assert_eq!(format!("{:?}", CtxElem::heap(HeapId::from_raw(4))), "h4");
        assert_eq!(format!("{:?}", CtxElem::invo(InvoId::from_raw(4))), "i4");
        assert_eq!(format!("{:?}", CtxElem::ty(TypeId::from_raw(4))), "t4");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use pta_ir::rng::Rng;

    fn random_elem(rng: &mut Rng) -> CtxElem {
        match rng.gen_range(0..4u32) {
            0 => CtxElem::STAR,
            1 => CtxElem::heap(HeapId::from_raw(rng.gen_range(0..1_000_000u32))),
            2 => CtxElem::invo(InvoId::from_raw(rng.gen_range(0..1_000_000u32))),
            _ => CtxElem::ty(TypeId::from_raw(rng.gen_range(0..1_000_000u32))),
        }
    }

    /// The packed representation round-trips through `kind()`.
    #[test]
    fn elem_pack_unpack_roundtrip() {
        let mut rng = Rng::seed_from_u64(0xe1e);
        for _ in 0..512 {
            let e = random_elem(&mut rng);
            let rebuilt = match e.kind() {
                CtxElemKind::Star => CtxElem::STAR,
                CtxElemKind::Heap(h) => CtxElem::heap(h),
                CtxElemKind::Invo(i) => CtxElem::invo(i),
                CtxElemKind::Type(t) => CtxElem::ty(t),
            };
            assert_eq!(e, rebuilt);
        }
    }

    /// Interning is injective: distinct tuples get distinct IDs, equal
    /// tuples the same ID, and `resolve` inverts `intern`.
    #[test]
    fn interner_injective() {
        let mut rng = Rng::seed_from_u64(0x171);
        for _ in 0..16 {
            let n = rng.gen_range(1..50usize);
            let tuples: Vec<(CtxElem, CtxElem, CtxElem)> = (0..n)
                .map(|_| {
                    (
                        random_elem(&mut rng),
                        random_elem(&mut rng),
                        random_elem(&mut rng),
                    )
                })
                .collect();
            let mut interner = CtxInterner::new();
            let ids: Vec<CtxId> = tuples
                .iter()
                .map(|&(a, b, c)| interner.intern([a, b, c]))
                .collect();
            for (i, &(a, b, c)) in tuples.iter().enumerate() {
                assert_eq!(interner.resolve(ids[i]), [a, b, c]);
                for (j, &(x, y, z)) in tuples.iter().enumerate() {
                    assert_eq!(ids[i] == ids[j], [a, b, c] == [x, y, z]);
                }
            }
        }
    }

    /// Heap-context interning behaves identically.
    #[test]
    fn hctx_interner_injective() {
        let mut rng = Rng::seed_from_u64(0x4c7);
        for _ in 0..16 {
            let n = rng.gen_range(1..50usize);
            let tuples: Vec<(CtxElem, CtxElem)> = (0..n)
                .map(|_| (random_elem(&mut rng), random_elem(&mut rng)))
                .collect();
            let mut interner = HCtxInterner::new();
            let ids: Vec<HCtxId> = tuples
                .iter()
                .map(|&(a, b)| interner.intern([a, b]))
                .collect();
            for (i, &(a, b)) in tuples.iter().enumerate() {
                assert_eq!(interner.resolve(ids[i]), [a, b]);
            }
        }
    }
}
