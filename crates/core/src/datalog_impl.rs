//! The paper's Figure 2 rule set, encoded literally on the generic
//! [`pta_datalog`] engine.
//!
//! This back end exists for fidelity and cross-validation: the paper *is* a
//! Datalog specification, and this module is a one-to-one transcription of
//! it. Each input relation of Figure 1 is materialized from the program,
//! the three context constructors are registered as engine *functors*
//! (closures that intern context tuples and return dense IDs), and the nine
//! rules are built with the engine's rule DSL. The module-level constants
//! in the source show each rule next to the paper's text.
//!
//! Differences from the specialized solver ([`crate::solver`]): none in
//! results — the test suites assert identical context-insensitive
//! projections *and* identical context-sensitive tuple counts on every
//! workload. The Datalog back end is typically 10-50x slower, which is
//! exactly the gap between an interpreted join engine and Doop's
//! compiled/indexed rules; the benchmarks in `pta-bench` measure the
//! specialized solver.
//!
//! One extension mirrors the solver: `cast` instructions (absent from the
//! paper's model, but needed for the may-fail-casts client) propagate
//! through a `CompatibleHeap(type, heap)` input relation, matching Doop's
//! `AssignCast` semantics.

use std::cell::RefCell;
use std::rc::Rc;

use pta_datalog::{Engine, RelId, Term, VerifyReport};
use pta_govern::{Budget, CancelToken};
use pta_ir::hash::{FxHashMap, FxHashSet};
use pta_ir::{FieldId, HeapId, Instr, InvoId, MethodId, Program, TypeId, VarId};

use crate::context::{CtxId, CtxInterner, HCtxId, HCtxInterner};
use crate::policy::ContextPolicy;
use crate::results::PointsToResult;

fn v(name: &str) -> Term {
    Term::var(name)
}

/// The Datalog back end behind [`crate::AnalysisSession`]: evaluates
/// Figure 2 under a [`Budget`] checked once per engine round, with
/// optional cooperative cancellation.
///
/// On exhaustion the result is tagged with the tripped
/// [`pta_govern::Termination`] and holds the sound fixpoint prefix the
/// engine had derived (every projection is a subset of the complete
/// run's). This back end does not degrade — graceful degradation is a
/// solver-side strategy — so `PointsToResult::demoted_sites` is always
/// empty here.
///
/// `profile` opts into a per-rule evaluation profile: when set the
/// engine runs through
/// [`pta_datalog::Engine::run_profiled`] and the result carries a
/// [`pta_obs::Profile`] whose rule rows are the Figure 2 rule labels
/// (`alloc`, `move`, `vcall`, …) rather than the dense solver's fixed
/// rule slots.
pub(crate) fn run_datalog_opt<P>(
    program: &Program,
    policy: &P,
    budget: &Budget,
    cancel: Option<&CancelToken>,
    profile: bool,
) -> PointsToResult
where
    P: ContextPolicy + Clone + 'static,
{
    let Fig2Engine {
        mut e,
        vpt,
        call_graph,
        reachable,
        throw_pts,
        fld_pts,
        static_fld_pts,
        ctxs,
        hctxs,
    } = build_figure2(program, policy);

    // ----- verify, run, extract ------------------------------------------
    // The rule-program verifier is the engine's pre-flight check: safety
    // or schema errors mean the encoding above is broken, and evaluating
    // it would silently produce garbage. Warnings (dead rules, unused
    // relations) are tolerated — small programs legitimately leave parts
    // of Figure 2 inert (e.g. no static calls anywhere).
    let report = e.verify();
    assert!(
        !report.has_errors(),
        "datalog rule program failed verification:\n{report}"
    );
    let (stats, rule_prof) = if profile {
        let (stats, prof) = e.run_profiled(budget, cancel);
        (stats, Some(prof))
    } else {
        (e.run_governed(budget, cancel), None)
    };

    let mut var_points_to: FxHashMap<VarId, Vec<HeapId>> = FxHashMap::default();
    {
        let mut seen: FxHashSet<(u32, u32)> = FxHashSet::default();
        for row in e.rows(vpt) {
            let (var, heap) = (row.get(0), row.get(2));
            if seen.insert((var, heap)) {
                var_points_to
                    .entry(VarId::from_raw(var))
                    .or_default()
                    .push(HeapId::from_raw(heap));
            }
        }
    }
    for vals in var_points_to.values_mut() {
        vals.sort_unstable();
    }

    let mut call_targets: FxHashMap<InvoId, Vec<MethodId>> = FxHashMap::default();
    let mut cg_insens: FxHashSet<(InvoId, MethodId)> = FxHashSet::default();
    for row in e.rows(call_graph) {
        let (invo, meth) = (InvoId::from_raw(row.get(0)), MethodId::from_raw(row.get(2)));
        if cg_insens.insert((invo, meth)) {
            call_targets.entry(invo).or_default().push(meth);
        }
    }
    for vals in call_targets.values_mut() {
        vals.sort_unstable();
    }

    let mut reachable_set: FxHashSet<MethodId> = FxHashSet::default();
    for row in e.rows(reachable) {
        reachable_set.insert(MethodId::from_raw(row.get(0)));
    }

    let ctx_interner = Rc::try_unwrap(ctxs)
        .map(RefCell::into_inner)
        .unwrap_or_else(|rc| {
            // Functors still hold clones of the Rc (they live in the
            // engine, dropped above — but `e` is still alive here), so fall
            // back to reconstructing by cloning the contents.
            clone_ctx_interner(&rc.borrow())
        });
    let hctx_interner = Rc::try_unwrap(hctxs)
        .map(RefCell::into_inner)
        .unwrap_or_else(|rc| clone_hctx_interner(&rc.borrow()));

    let mut uncaught: Vec<HeapId> = {
        let entries: FxHashSet<u32> = program.entry_points().iter().map(|m| m.raw()).collect();
        let mut set: FxHashSet<HeapId> = FxHashSet::default();
        for row in e.rows(throw_pts) {
            if entries.contains(&row.get(0)) {
                set.insert(HeapId::from_raw(row.get(2)));
            }
        }
        set.into_iter().collect()
    };
    uncaught.sort_unstable();

    // Context-insensitive heap-graph projections, matching the dense
    // solver's field/static views byte for byte.
    let mut field_points_to: FxHashMap<(HeapId, FieldId), Vec<HeapId>> = FxHashMap::default();
    {
        let mut seen: FxHashSet<(u32, u32, u32)> = FxHashSet::default();
        for row in e.rows(fld_pts) {
            let (base, fld, heap) = (row.get(0), row.get(2), row.get(3));
            if seen.insert((base, fld, heap)) {
                field_points_to
                    .entry((HeapId::from_raw(base), FieldId::from_raw(fld)))
                    .or_default()
                    .push(HeapId::from_raw(heap));
            }
        }
    }
    for vals in field_points_to.values_mut() {
        vals.sort_unstable();
    }
    let mut static_points_to: FxHashMap<FieldId, Vec<HeapId>> = FxHashMap::default();
    {
        let mut seen: FxHashSet<(u32, u32)> = FxHashSet::default();
        for row in e.rows(static_fld_pts) {
            let (fld, heap) = (row.get(0), row.get(1));
            if seen.insert((fld, heap)) {
                static_points_to
                    .entry(FieldId::from_raw(fld))
                    .or_default()
                    .push(HeapId::from_raw(heap));
            }
        }
    }
    for vals in static_points_to.values_mut() {
        vals.sort_unstable();
    }

    let profile_box = rule_prof.map(|prof| {
        let rules = prof
            .into_iter()
            .map(|r| pta_obs::RuleStat {
                name: r.label,
                fires: r.fires,
                derived: r.derived,
                ns: r.ns,
            })
            .collect();
        let mut sizes: Vec<(usize, VarId)> = var_points_to
            .iter()
            .map(|(&v, heaps)| (heaps.len(), v))
            .collect();
        sizes.sort_unstable_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        let hot_vars = sizes
            .into_iter()
            .take(10)
            .map(|(len, v)| pta_obs::HotVar {
                name: format!(
                    "{}::{}",
                    program.method_qualified_name(program.var_method(v)),
                    program.var_name(v)
                ),
                size: len as u64,
            })
            .collect();
        Box::new(pta_obs::Profile {
            rules,
            hot_vars,
            // `PtsSet` stage promotions are a dense-solver concept; the
            // generic engine's relations have no staged representation.
            set_promotions: 0,
        })
    });

    // The generic engine's evaluation shape (fixpoint rounds, strata,
    // total rows) folds into the uniform counter block; the dense
    // solver's own counters stay zero for this back end.
    let solver_stats = crate::results::SolverStats {
        engine_rounds: stats.rounds as u64,
        engine_strata: stats.strata as u64,
        engine_rows: stats.total_rows as u64,
        ..crate::results::SolverStats::default()
    };

    PointsToResult {
        var_points_to,
        call_graph_edges: cg_insens.len(),
        call_targets,
        reachable: reachable_set,
        ctx_vpt_count: e.len(vpt) as u64,
        ctx_call_graph_edges: e.len(call_graph) as u64,
        ctx_reachable_count: e.len(reachable) as u64,
        ctx_count: ctx_interner.len(),
        hctx_count: hctx_interner.len(),
        tuples: None,
        provenance: None,
        fld_provenance: None,
        static_fld_provenance: None,
        uncaught,
        field_points_to,
        static_points_to,
        ctx_interner,
        hctx_interner,
        stats: solver_stats,
        shard_stats: Vec::new(),
        termination: stats.termination,
        // This back end never degrades contexts mid-run.
        demoted: Vec::new(),
        profile: profile_box,
    }
}

/// Runs only the pre-flight verifier over the literal Figure 2 rule set as
/// assembled for `program` — no evaluation. Exposed so tests (and curious
/// operators) can inspect the safety/strata report for the exact rule
/// program the Datalog back end would execute.
pub fn verify_figure2<P>(program: &Program, policy: &P) -> VerifyReport
where
    P: ContextPolicy + Clone + 'static,
{
    build_figure2(program, policy).e.verify()
}

/// The assembled Figure 2 engine plus the handles result extraction needs.
struct Fig2Engine {
    e: Engine,
    vpt: RelId,
    call_graph: RelId,
    reachable: RelId,
    throw_pts: RelId,
    fld_pts: RelId,
    static_fld_pts: RelId,
    ctxs: Rc<RefCell<CtxInterner>>,
    hctxs: Rc<RefCell<HCtxInterner>>,
}

/// Registers the Figure 1 relations and context functors, materializes the
/// input facts from `program`, and builds the nine rules of Figure 2 —
/// everything short of evaluating.
fn build_figure2<P>(program: &Program, policy: &P) -> Fig2Engine
where
    P: ContextPolicy + Clone + 'static,
{
    let mut e = Engine::new();

    // ----- input relations (Figure 1) -----------------------------------
    let alloc = e.relation("Alloc", 3); // (var, heap, inMeth)
    let mov = e.relation("Move", 2); // (to, from)
    let cast_move = e.relation("CastMove", 3); // (to, from, ty)
    let compatible = e.relation("CompatibleHeap", 2); // (ty, heap)
    let load = e.relation("Load", 3); // (to, base, fld)
    let store = e.relation("Store", 3); // (base, fld, from)
    let throw_stmt = e.relation("ThrowStmt", 2); // (meth, var)
    let catches_into = e.relation("CatchesInto", 3); // (meth, heap, binder)
    let uncaught_by = e.relation("UncaughtBy", 2); // (meth, heap) for meths WITH clauses
    let no_catches = e.relation("NoCatches", 1); // (meth)
    let invo_meth = e.relation("InvoMeth", 2); // (invo, meth)
    let sload = e.relation("SLoad", 3); // (to, fld, inMeth)
    let sstore = e.relation("SStore", 2); // (fld, from)
    let vcall = e.relation("VCall", 4); // (base, sig, invo, inMeth)
    let scall = e.relation("SCall", 3); // (meth, invo, inMeth)
    let formal_arg = e.relation("FormalArg", 3); // (meth, i, arg)
    let actual_arg = e.relation("ActualArg", 3); // (invo, i, arg)
    let formal_ret = e.relation("FormalReturn", 2); // (meth, ret)
    let actual_ret = e.relation("ActualReturn", 2); // (invo, var)
    let this_var = e.relation("ThisVar", 2); // (meth, this)
    let heap_type = e.relation("HeapType", 2); // (heap, type)
    let lookup = e.relation("Lookup", 3); // (type, sig, meth)

    // ----- output / intermediate relations (Figure 1) --------------------
    let vpt = e.relation("VarPointsTo", 4); // (var, ctx, heap, hctx)
    let call_graph = e.relation("CallGraph", 4); // (invo, callerCtx, meth, calleeCtx)
    let fld_pts = e.relation("FldPointsTo", 5); // (baseH, baseHCtx, fld, heap, hctx)
    let static_fld_pts = e.relation("StaticFldPointsTo", 3); // (fld, heap, hctx)
    let incoming_exc = e.relation("IncomingException", 4); // (meth, ctx, heap, hctx)
    let throw_pts = e.relation("ThrowPointsTo", 4); // (meth, ctx, heap, hctx)
    let ipa = e.relation("InterProcAssign", 4); // (to, toCtx, from, fromCtx)
    let reachable = e.relation("Reachable", 2); // (meth, ctx)

    // ----- context constructor functors ----------------------------------
    let ctxs = Rc::new(RefCell::new(CtxInterner::new()));
    let hctxs = Rc::new(RefCell::new(HCtxInterner::new()));
    let shared_program = Rc::new(program.clone());

    let record = {
        let ctxs = Rc::clone(&ctxs);
        let hctxs = Rc::clone(&hctxs);
        let program = Rc::clone(&shared_program);
        let policy = policy.clone();
        e.functor(
            "Record",
            Box::new(move |args: &[u32]| {
                let heap = HeapId::from_raw(args[0]);
                let ctx = ctxs.borrow().resolve(CtxId::from_raw(args[1]));
                let elem = policy.record(heap, ctx, &program);
                hctxs.borrow_mut().intern(elem).raw()
            }),
        )
    };
    let merge = {
        let ctxs = Rc::clone(&ctxs);
        let hctxs = Rc::clone(&hctxs);
        let program = Rc::clone(&shared_program);
        let policy = policy.clone();
        e.functor(
            "Merge",
            Box::new(move |args: &[u32]| {
                let heap = HeapId::from_raw(args[0]);
                let hctx = hctxs.borrow().resolve(HCtxId::from_raw(args[1]));
                let invo = InvoId::from_raw(args[2]);
                let ctx = ctxs.borrow().resolve(CtxId::from_raw(args[3]));
                let out = policy.merge(heap, hctx, invo, ctx, &program);
                ctxs.borrow_mut().intern(out).raw()
            }),
        )
    };
    let merge_static = {
        let ctxs = Rc::clone(&ctxs);
        let program = Rc::clone(&shared_program);
        let policy = policy.clone();
        e.functor(
            "MergeStatic",
            Box::new(move |args: &[u32]| {
                let invo = InvoId::from_raw(args[0]);
                let ctx = ctxs.borrow().resolve(CtxId::from_raw(args[1]));
                let out = policy.merge_static(invo, ctx, &program);
                ctxs.borrow_mut().intern(out).raw()
            }),
        )
    };

    // ----- materialize input facts ---------------------------------------
    let mut cast_types: FxHashSet<TypeId> = FxHashSet::default();
    for m in program.methods() {
        let mid = m.raw();
        for (i, &formal) in program.formals(m).iter().enumerate() {
            e.fact(formal_arg, &[mid, i as u32, formal.raw()]);
        }
        if let Some(t) = program.this_var(m) {
            e.fact(this_var, &[mid, t.raw()]);
        }
        if let Some(r) = program.formal_return(m) {
            e.fact(formal_ret, &[mid, r.raw()]);
        }
        for instr in program.instrs(m) {
            match *instr {
                Instr::Alloc { var, heap } => {
                    e.fact(alloc, &[var.raw(), heap.raw(), mid]);
                }
                Instr::Move { to, from } => {
                    e.fact(mov, &[to.raw(), from.raw()]);
                }
                Instr::Cast { to, from, ty } => {
                    e.fact(cast_move, &[to.raw(), from.raw(), ty.raw()]);
                    cast_types.insert(ty);
                }
                Instr::Load { to, base, field } => {
                    e.fact(load, &[to.raw(), base.raw(), field.raw()]);
                }
                Instr::Store { base, field, from } => {
                    e.fact(store, &[base.raw(), field.raw(), from.raw()]);
                }
                Instr::SLoad { to, field } => {
                    e.fact(sload, &[to.raw(), field.raw(), mid]);
                }
                Instr::SStore { field, from } => {
                    e.fact(sstore, &[field.raw(), from.raw()]);
                }
                Instr::VCall { base, sig, invo } => {
                    e.fact(vcall, &[base.raw(), sig.raw(), invo.raw(), mid]);
                }
                Instr::SCall { target, invo } => {
                    e.fact(scall, &[target.raw(), invo.raw(), mid]);
                }
                Instr::Throw { var } => {
                    e.fact(throw_stmt, &[mid, var.raw()]);
                }
            }
        }
        // Exception catchability tables (precomputed, standing in for
        // negation: `UncaughtBy` is the complement of the clause matches
        // for methods that have clauses; `NoCatches` covers the rest).
        if program.catches(m).is_empty() {
            e.fact(no_catches, &[mid]);
        } else {
            for h in program.heaps() {
                let ht = program.heap_type(h);
                let mut any = false;
                for &(ty, binder) in program.catches(m) {
                    if program.is_subtype(ht, ty) {
                        e.fact(catches_into, &[mid, h.raw(), binder.raw()]);
                        any = true;
                    }
                }
                if !any {
                    e.fact(uncaught_by, &[mid, h.raw()]);
                }
            }
        }
    }
    for i in program.invos() {
        e.fact(invo_meth, &[i.raw(), program.invo_method(i).raw()]);
        for (k, &arg) in program.actual_args(i).iter().enumerate() {
            e.fact(actual_arg, &[i.raw(), k as u32, arg.raw()]);
        }
        if let Some(r) = program.actual_return(i) {
            e.fact(actual_ret, &[i.raw(), r.raw()]);
        }
    }
    for h in program.heaps() {
        e.fact(heap_type, &[h.raw(), program.heap_type(h).raw()]);
        for &ty in &cast_types {
            if program.is_subtype(program.heap_type(h), ty) {
                e.fact(compatible, &[ty.raw(), h.raw()]);
            }
        }
    }
    for t in program.types() {
        for (sig, meth) in program.hierarchy().dispatch_entries(t) {
            e.fact(lookup, &[t.raw(), sig.raw(), meth.raw()]);
        }
    }
    for &entry in program.entry_points() {
        e.fact(reachable, &[entry.raw(), CtxId::INITIAL.raw()]);
    }

    // ----- the nine rules of Figure 2 ------------------------------------

    // InterProcAssign(to, calleeCtx, from, callerCtx) <-
    //     CallGraph(invo, callerCtx, meth, calleeCtx),
    //     FormalArg(meth, i, to), ActualArg(invo, i, from).
    e.rule()
        .label("ipa-args")
        .head(ipa, &[v("to"), v("calleeCtx"), v("from"), v("callerCtx")])
        .atom(
            call_graph,
            &[v("invo"), v("callerCtx"), v("meth"), v("calleeCtx")],
        )
        .atom(formal_arg, &[v("meth"), v("i"), v("to")])
        .atom(actual_arg, &[v("invo"), v("i"), v("from")])
        .build()
        .expect("ipa-args rule");

    // InterProcAssign(to, callerCtx, from, calleeCtx) <-
    //     CallGraph(invo, callerCtx, meth, calleeCtx),
    //     FormalReturn(meth, from), ActualReturn(invo, to).
    e.rule()
        .label("ipa-return")
        .head(ipa, &[v("to"), v("callerCtx"), v("from"), v("calleeCtx")])
        .atom(
            call_graph,
            &[v("invo"), v("callerCtx"), v("meth"), v("calleeCtx")],
        )
        .atom(formal_ret, &[v("meth"), v("from")])
        .atom(actual_ret, &[v("invo"), v("to")])
        .build()
        .expect("ipa-return rule");

    // Record(heap, ctx) = hctx,
    // VarPointsTo(var, ctx, heap, hctx) <-
    //     Reachable(meth, ctx), Alloc(var, heap, meth).
    e.rule()
        .label("alloc")
        .head(vpt, &[v("var"), v("ctx"), v("heap"), v("hctx")])
        .atom(reachable, &[v("meth"), v("ctx")])
        .atom(alloc, &[v("var"), v("heap"), v("meth")])
        .bind(record, &[v("heap"), v("ctx")], "hctx")
        .build()
        .expect("alloc rule");

    // VarPointsTo(to, ctx, heap, hctx) <-
    //     Move(to, from), VarPointsTo(from, ctx, heap, hctx).
    e.rule()
        .label("move")
        .head(vpt, &[v("to"), v("ctx"), v("heap"), v("hctx")])
        .atom(mov, &[v("to"), v("from")])
        .atom(vpt, &[v("from"), v("ctx"), v("heap"), v("hctx")])
        .build()
        .expect("move rule");

    // Cast extension (Doop's AssignCast): propagate only compatible heaps.
    e.rule()
        .label("cast")
        .head(vpt, &[v("to"), v("ctx"), v("heap"), v("hctx")])
        .atom(cast_move, &[v("to"), v("from"), v("ty")])
        .atom(vpt, &[v("from"), v("ctx"), v("heap"), v("hctx")])
        .atom(compatible, &[v("ty"), v("heap")])
        .build()
        .expect("cast rule");

    // VarPointsTo(to, toCtx, heap, hctx) <-
    //     InterProcAssign(to, toCtx, from, fromCtx),
    //     VarPointsTo(from, fromCtx, heap, hctx).
    e.rule()
        .label("interproc")
        .head(vpt, &[v("to"), v("toCtx"), v("heap"), v("hctx")])
        .atom(ipa, &[v("to"), v("toCtx"), v("from"), v("fromCtx")])
        .atom(vpt, &[v("from"), v("fromCtx"), v("heap"), v("hctx")])
        .build()
        .expect("interproc rule");

    // VarPointsTo(to, ctx, heap, hctx) <-
    //     Load(to, base, fld), VarPointsTo(base, ctx, baseH, baseHCtx),
    //     FldPointsTo(baseH, baseHCtx, fld, heap, hctx).
    e.rule()
        .label("load")
        .head(vpt, &[v("to"), v("ctx"), v("heap"), v("hctx")])
        .atom(load, &[v("to"), v("base"), v("fld")])
        .atom(vpt, &[v("base"), v("ctx"), v("baseH"), v("baseHCtx")])
        .atom(
            fld_pts,
            &[v("baseH"), v("baseHCtx"), v("fld"), v("heap"), v("hctx")],
        )
        .build()
        .expect("load rule");

    // FldPointsTo(baseH, baseHCtx, fld, heap, hctx) <-
    //     Store(base, fld, from), VarPointsTo(from, ctx, heap, hctx),
    //     VarPointsTo(base, ctx, baseH, baseHCtx).
    e.rule()
        .label("store")
        .head(
            fld_pts,
            &[v("baseH"), v("baseHCtx"), v("fld"), v("heap"), v("hctx")],
        )
        .atom(store, &[v("base"), v("fld"), v("from")])
        .atom(vpt, &[v("from"), v("ctx"), v("heap"), v("hctx")])
        .atom(vpt, &[v("base"), v("ctx"), v("baseH"), v("baseHCtx")])
        .build()
        .expect("store rule");

    // Static fields (full-Doop extension; global cells):
    // StaticFldPointsTo(fld, heap, hctx) <-
    //     SStore(fld, from), VarPointsTo(from, ctx, heap, hctx).
    e.rule()
        .label("sstore")
        .head(static_fld_pts, &[v("fld"), v("heap"), v("hctx")])
        .atom(sstore, &[v("fld"), v("from")])
        .atom(vpt, &[v("from"), v("ctx"), v("heap"), v("hctx")])
        .build()
        .expect("sstore rule");

    // VarPointsTo(to, ctx, heap, hctx) <-
    //     SLoad(to, fld, inMeth), Reachable(inMeth, ctx),
    //     StaticFldPointsTo(fld, heap, hctx).
    e.rule()
        .label("sload")
        .head(vpt, &[v("to"), v("ctx"), v("heap"), v("hctx")])
        .atom(sload, &[v("to"), v("fld"), v("inMeth")])
        .atom(reachable, &[v("inMeth"), v("ctx")])
        .atom(static_fld_pts, &[v("fld"), v("heap"), v("hctx")])
        .build()
        .expect("sload rule");

    // Merge(heap, hctx, invo, callerCtx) = calleeCtx,
    // Reachable(toMeth, calleeCtx),
    // VarPointsTo(this, calleeCtx, heap, hctx),
    // CallGraph(invo, callerCtx, toMeth, calleeCtx) <-
    //     VCall(base, sig, invo, inMeth), Reachable(inMeth, callerCtx),
    //     VarPointsTo(base, callerCtx, heap, hctx),
    //     HeapType(heap, heapT), Lookup(heapT, sig, toMeth),
    //     ThisVar(toMeth, this).
    e.rule()
        .label("vcall")
        .head(reachable, &[v("toMeth"), v("calleeCtx")])
        .head(vpt, &[v("this"), v("calleeCtx"), v("heap"), v("hctx")])
        .head(
            call_graph,
            &[v("invo"), v("callerCtx"), v("toMeth"), v("calleeCtx")],
        )
        .atom(vcall, &[v("base"), v("sig"), v("invo"), v("inMeth")])
        .atom(reachable, &[v("inMeth"), v("callerCtx")])
        .atom(vpt, &[v("base"), v("callerCtx"), v("heap"), v("hctx")])
        .atom(heap_type, &[v("heap"), v("heapT")])
        .atom(lookup, &[v("heapT"), v("sig"), v("toMeth")])
        .atom(this_var, &[v("toMeth"), v("this")])
        .bind(
            merge,
            &[v("heap"), v("hctx"), v("invo"), v("callerCtx")],
            "calleeCtx",
        )
        .build()
        .expect("vcall rule");

    // MergeStatic(invo, callerCtx) = calleeCtx,
    // Reachable(toMeth, calleeCtx),
    // CallGraph(invo, callerCtx, toMeth, calleeCtx) <-
    //     SCall(toMeth, invo, inMeth), Reachable(inMeth, callerCtx).
    e.rule()
        .label("scall")
        .head(reachable, &[v("toMeth"), v("calleeCtx")])
        .head(
            call_graph,
            &[v("invo"), v("callerCtx"), v("toMeth"), v("calleeCtx")],
        )
        .atom(scall, &[v("toMeth"), v("invo"), v("inMeth")])
        .atom(reachable, &[v("inMeth"), v("callerCtx")])
        .bind(merge_static, &[v("invo"), v("callerCtx")], "calleeCtx")
        .build()
        .expect("scall rule");

    // Exceptions (full-Doop extension):
    // IncomingException(m, ctx, h, hc) <-
    //     ThrowStmt(m, var), VarPointsTo(var, ctx, h, hc).
    e.rule()
        .label("throw-own")
        .head(incoming_exc, &[v("m"), v("ctx"), v("h"), v("hc")])
        .atom(throw_stmt, &[v("m"), v("var")])
        .atom(vpt, &[v("var"), v("ctx"), v("h"), v("hc")])
        .build()
        .expect("throw-own rule");
    // IncomingException(caller, callerCtx, h, hc) <-
    //     CallGraph(invo, callerCtx, callee, calleeCtx), InvoMeth(invo, caller),
    //     ThrowPointsTo(callee, calleeCtx, h, hc).
    e.rule()
        .label("throw-propagate")
        .head(
            incoming_exc,
            &[v("caller"), v("callerCtx"), v("h"), v("hc")],
        )
        .atom(
            call_graph,
            &[v("invo"), v("callerCtx"), v("callee"), v("calleeCtx")],
        )
        .atom(invo_meth, &[v("invo"), v("caller")])
        .atom(throw_pts, &[v("callee"), v("calleeCtx"), v("h"), v("hc")])
        .build()
        .expect("throw-propagate rule");
    // VarPointsTo(binder, ctx, h, hc) <-
    //     IncomingException(m, ctx, h, hc), CatchesInto(m, h, binder).
    e.rule()
        .label("catch")
        .head(vpt, &[v("binder"), v("ctx"), v("h"), v("hc")])
        .atom(incoming_exc, &[v("m"), v("ctx"), v("h"), v("hc")])
        .atom(catches_into, &[v("m"), v("h"), v("binder")])
        .build()
        .expect("catch rule");
    // ThrowPointsTo(m, ctx, h, hc) <-
    //     IncomingException(m, ctx, h, hc), UncaughtBy(m, h).
    e.rule()
        .label("escape-with-clauses")
        .head(throw_pts, &[v("m"), v("ctx"), v("h"), v("hc")])
        .atom(incoming_exc, &[v("m"), v("ctx"), v("h"), v("hc")])
        .atom(uncaught_by, &[v("m"), v("h")])
        .build()
        .expect("escape rule");
    // ThrowPointsTo(m, ctx, h, hc) <-
    //     IncomingException(m, ctx, h, hc), NoCatches(m).
    e.rule()
        .label("escape-no-clauses")
        .head(throw_pts, &[v("m"), v("ctx"), v("h"), v("hc")])
        .atom(incoming_exc, &[v("m"), v("ctx"), v("h"), v("hc")])
        .atom(no_catches, &[v("m")])
        .build()
        .expect("escape-no-clauses rule");

    Fig2Engine {
        e,
        vpt,
        call_graph,
        reachable,
        throw_pts,
        fld_pts,
        static_fld_pts,
        ctxs,
        hctxs,
    }
}

fn clone_ctx_interner(src: &CtxInterner) -> CtxInterner {
    let mut out = CtxInterner::new();
    for i in 0..src.len() {
        out.intern(src.resolve(CtxId::from_raw(i as u32)));
    }
    out
}

fn clone_hctx_interner(src: &HCtxInterner) -> HCtxInterner {
    let mut out = HCtxInterner::new();
    for i in 0..src.len() {
        out.intern(src.resolve(HCtxId::from_raw(i as u32)));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::Analysis;
    use crate::session::{AnalysisSession, Backend};
    use pta_ir::ProgramBuilder;

    /// Box container program: two boxes, two payloads, store/load.
    fn box_program() -> (Program, [VarId; 2]) {
        let mut b = ProgramBuilder::new();
        let object = b.class("Object", None);
        let boxc = b.class("Box", Some(object));
        let f = b.field(boxc, "value");
        let set = b.method(boxc, "set", &["v"], false);
        let set_this = b.this(set).unwrap();
        let set_v = b.formals(set)[0];
        b.store(set, set_this, f, set_v);
        let get = b.method(boxc, "get", &[], false);
        let get_this = b.this(get).unwrap();
        let get_r = b.var(get, "r");
        b.load(get, get_r, get_this, f);
        b.set_return(get, get_r);
        let main = b.method(boxc, "main", &[], true);
        let (b1, b2) = (b.var(main, "b1"), b.var(main, "b2"));
        let (p1, p2) = (b.var(main, "p1"), b.var(main, "p2"));
        let (r1, r2) = (b.var(main, "r1"), b.var(main, "r2"));
        b.alloc(main, b1, boxc, "box1");
        b.alloc(main, b2, boxc, "box2");
        b.alloc(main, p1, object, "payload1");
        b.alloc(main, p2, object, "payload2");
        b.vcall(main, b1, "set", &[p1], None, "b1.set");
        b.vcall(main, b2, "set", &[p2], None, "b2.set");
        b.vcall(main, b1, "get", &[], Some(r1), "b1.get");
        b.vcall(main, b2, "get", &[], Some(r2), "b2.get");
        b.entry_point(main);
        (b.finish().unwrap(), [r1, r2])
    }

    #[test]
    fn datalog_matches_solver_on_box_program() {
        let (p, [r1, r2]) = box_program();
        for analysis in [Analysis::Insens, Analysis::OneObj, Analysis::STwoObjH] {
            let fast = AnalysisSession::open(p.clone()).policy(analysis).solve();
            let slow = AnalysisSession::open(p.clone())
                .policy(analysis)
                .backend(Backend::Datalog)
                .solve();
            for var in p.vars() {
                assert_eq!(
                    fast.points_to(var),
                    slow.points_to(var),
                    "{analysis}: mismatch at {var:?}"
                );
            }
            assert_eq!(fast.call_graph_edge_count(), slow.call_graph_edge_count());
            assert_eq!(
                fast.ctx_var_points_to_count(),
                slow.ctx_var_points_to_count()
            );
            assert_eq!(fast.reachable_method_count(), slow.reachable_method_count());
        }
        // And the object-sensitive analysis is actually precise here.
        let obj = AnalysisSession::open(p.clone())
            .policy(Analysis::OneObj)
            .backend(Backend::Datalog)
            .solve();
        assert_eq!(obj.points_to(r1).len(), 1);
        assert_eq!(obj.points_to(r2).len(), 1);
        let insens = AnalysisSession::open(p).backend(Backend::Datalog).solve();
        assert_eq!(insens.points_to(r1).len(), 2);
    }
}
