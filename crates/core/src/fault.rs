//! Deterministic fault injection for the resource-governance paths.
//!
//! Budget exhaustion is rare by construction — a healthy run never trips
//! its deadline, step limit or memory cap — so the recovery code
//! (partial-result construction, graceful degradation, termination
//! tagging) would normally go untested. A [`FaultPlan`] plants
//! deterministic trigger points in the solver loop so the test suite can
//! drive every exhaustion path on purpose:
//!
//! * **forced trips** — at a planned step count, the solver behaves
//!   exactly as if the corresponding budget limit had tripped
//!   ([`Termination::DeadlineExceeded`] / [`Termination::StepLimit`] /
//!   [`Termination::MemoryCap`]), exercising the same return-partial /
//!   degrade decision as a real trip;
//! * **injected stalls** — a planned per-step sleep that makes a small
//!   wall-clock deadline trip *for real*, exercising the
//!   [`BudgetMeter`](pta_govern::BudgetMeter)'s strided clock path.
//!
//! Plans are either spelled out explicitly ([`FaultPlan::trip_at`],
//! [`FaultPlan::stall`]) or derived from a seed ([`FaultPlan::from_seed`])
//! via the repo's deterministic [`pta_ir::rng::Rng`], so a failing seed
//! reproduces bit-identically.
//!
//! The hooks are compiled unconditionally but are **runtime-gated**: the
//! solver consults them only when `SolverConfig::fault` is `Some`, so
//! production runs pay one `Option` test per step and nothing else. (A
//! `cfg(test)` gate would hide the hooks from integration tests, which
//! link the library built *without* `cfg(test)`; a cargo feature would be
//! invisible to plain `cargo test`.)

use pta_govern::Termination;
use pta_ir::rng::Rng;

/// A deterministic schedule of injected faults for one solver run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Step at which to force a trip, and the termination to force.
    pub trip: Option<(u64, Termination)>,
    /// `(period, micros)`: sleep `micros` every `period` steps.
    pub stall: Option<(u64, u64)>,
}

impl FaultPlan {
    /// A plan that forces `termination` once the solver reaches `step`.
    ///
    /// `Termination::Complete` is not a fault; forcing it yields an empty
    /// plan.
    #[must_use]
    pub fn trip_at(step: u64, termination: Termination) -> FaultPlan {
        FaultPlan {
            trip: (!termination.is_complete()).then_some((step, termination)),
            stall: None,
        }
    }

    /// A plan that sleeps `micros` microseconds every `period` steps
    /// (used to make small real deadlines trip reliably).
    #[must_use]
    pub fn stall(period: u64, micros: u64) -> FaultPlan {
        FaultPlan {
            trip: None,
            stall: Some((period.max(1), micros)),
        }
    }

    /// Derives a plan from a seed: a forced trip of a seed-chosen kind at
    /// a seed-chosen early step, plus a mild stall. Equal seeds yield
    /// equal plans on every platform.
    #[must_use]
    pub fn from_seed(seed: u64) -> FaultPlan {
        let mut rng = Rng::seed_from_u64(seed);
        let termination = match rng.gen_range(0u32..3) {
            0 => Termination::DeadlineExceeded,
            1 => Termination::StepLimit,
            _ => Termination::MemoryCap,
        };
        let step = rng.gen_range(1u64..512);
        FaultPlan {
            trip: Some((step, termination)),
            stall: rng.gen_bool(0.5).then(|| (rng.gen_range(1u64..64), 50)),
        }
    }

    /// The termination to force at `step`, if the plan says so. Forced
    /// trips fire at every step ≥ the planned one so the solver's
    /// degrade-then-continue path keeps being re-tripped, exactly like a
    /// real exhausted limit.
    #[must_use]
    pub fn forced_trip(&self, step: u64) -> Option<Termination> {
        match self.trip {
            Some((at, t)) if step >= at => Some(t),
            _ => None,
        }
    }

    /// Applies the planned stall (if any) for `step`.
    pub fn apply_stall(&self, step: u64) {
        if let Some((period, micros)) = self.stall {
            if step.is_multiple_of(period) {
                std::thread::sleep(std::time::Duration::from_micros(micros));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forced_trips_fire_at_and_after_the_planned_step() {
        let plan = FaultPlan::trip_at(10, Termination::MemoryCap);
        assert_eq!(plan.forced_trip(9), None);
        assert_eq!(plan.forced_trip(10), Some(Termination::MemoryCap));
        assert_eq!(plan.forced_trip(11), Some(Termination::MemoryCap));
    }

    #[test]
    fn complete_is_not_a_fault() {
        assert_eq!(
            FaultPlan::trip_at(1, Termination::Complete),
            FaultPlan::default()
        );
        assert_eq!(FaultPlan::default().forced_trip(u64::MAX), None);
    }

    #[test]
    fn seeded_plans_are_deterministic_and_always_trip() {
        for seed in 0..64 {
            let a = FaultPlan::from_seed(seed);
            let b = FaultPlan::from_seed(seed);
            assert_eq!(a, b);
            let (step, t) = a.trip.expect("seeded plans always plant a trip");
            assert!(step >= 1 && !t.is_complete());
        }
    }
}
