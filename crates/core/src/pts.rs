//! Dense points-to sets: the solver's per-(variable, context) tuple store.
//!
//! The specialized solver keys every `VarPointsTo` fact by its
//! `(var, ctx)` pair and stores the pointed-to objects — dense
//! `(heap, heap-context)` pair IDs — in a [`PtsSet`]. The representation is
//! a three-stage hybrid chosen for the workload's distribution (the paper
//! observes the *median* points-to set size is 1 across every analysis and
//! benchmark, while a few hot sets grow to thousands of elements):
//!
//! - **inline**: up to [`INLINE_MAX`] sorted elements stored inside the set
//!   itself — the typical singleton set costs no heap allocation at all;
//! - **small**: a sorted `Vec<u32>`; membership is a binary search and
//!   iteration is a linear scan over one cache line or two;
//! - **bitmap**: once a set outgrows [`SMALL_MAX`] elements it is promoted
//!   to a bit vector indexed by object ID; membership becomes a single bit
//!   test and iteration a word-wise scan (object IDs are dense, so the
//!   universe — and therefore the scan — stays proportional to the number
//!   of distinct objects the analysis ever created).
//!
//! Both representations iterate in ascending object-ID order, which the
//! solver relies on when deduplicating projections.

/// Number of elements a set may hold before being promoted to a bitmap.
///
/// 32 sorted `u32`s are two cache lines; binary search over them is
/// consistently cheaper than the bitmap's memory footprint for the long
/// tail of tiny sets.
pub const SMALL_MAX: usize = 32;

/// Number of elements stored inline — inside the `PtsSet` itself, with no
/// heap allocation — before spilling to the heap-allocated small vector.
/// Since the median points-to set size is 1, this keeps the majority of
/// sets allocation-free.
pub const INLINE_MAX: usize = 6;

/// A set of dense `u32` object IDs with a small-vector/bitmap hybrid
/// representation. See the module docs for the design rationale.
#[derive(Debug, Clone, Default)]
pub struct PtsSet {
    repr: Repr,
}

#[derive(Debug, Clone)]
enum Repr {
    /// Sorted, deduplicated, stored inline (no allocation).
    Inline { len: u8, elems: [u32; INLINE_MAX] },
    /// Sorted, deduplicated, heap-allocated.
    Small(Vec<u32>),
    /// Bit `v` of `words[v / 64]` set iff `v` is a member.
    Bitmap { words: Vec<u64>, len: u32 },
}

impl Default for Repr {
    fn default() -> Repr {
        Repr::Inline {
            len: 0,
            elems: [0; INLINE_MAX],
        }
    }
}

impl PtsSet {
    /// Creates an empty set (small representation, no allocation).
    #[must_use]
    pub fn new() -> PtsSet {
        PtsSet::default()
    }

    /// Number of elements.
    #[must_use]
    pub fn len(&self) -> usize {
        match &self.repr {
            Repr::Inline { len, .. } => *len as usize,
            Repr::Small(v) => v.len(),
            Repr::Bitmap { len, .. } => *len as usize,
        }
    }

    /// `true` if the set has no elements.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `true` once the set has been promoted to the bitmap representation.
    #[must_use]
    pub fn is_bitmap(&self) -> bool {
        matches!(self.repr, Repr::Bitmap { .. })
    }

    /// Membership test: binary search (small) or bit test (bitmap).
    #[must_use]
    pub fn contains(&self, v: u32) -> bool {
        match &self.repr {
            Repr::Inline { len, elems } => elems[..*len as usize].contains(&v),
            Repr::Small(vec) => vec.binary_search(&v).is_ok(),
            Repr::Bitmap { words, .. } => {
                let w = (v >> 6) as usize;
                w < words.len() && words[w] & (1u64 << (v & 63)) != 0
            }
        }
    }

    /// Inserts `v`; returns `true` if it was not already present.
    /// Idempotent. Promotes small → bitmap at the [`SMALL_MAX`] boundary.
    pub fn insert(&mut self, v: u32) -> bool {
        match &mut self.repr {
            Repr::Inline { len, elems } => {
                let n = *len as usize;
                // Sorted-insert by linear scan: at most six comparisons.
                let mut pos = n;
                for (i, &e) in elems[..n].iter().enumerate() {
                    if e == v {
                        return false;
                    }
                    if e > v {
                        pos = i;
                        break;
                    }
                }
                if n < INLINE_MAX {
                    elems.copy_within(pos..n, pos + 1);
                    elems[pos] = v;
                    *len += 1;
                    return true;
                }
                // Spill inline -> small, then insert normally.
                let mut vec = Vec::with_capacity(INLINE_MAX * 2);
                vec.extend_from_slice(&elems[..n]);
                self.repr = Repr::Small(vec);
                self.insert(v)
            }
            Repr::Small(vec) => match vec.binary_search(&v) {
                Ok(_) => false,
                Err(pos) => {
                    if vec.len() < SMALL_MAX {
                        vec.insert(pos, v);
                        return true;
                    }
                    // Promote, then insert into the bitmap.
                    let max = vec.last().copied().unwrap_or(0).max(v);
                    let mut words = vec![0u64; (max as usize >> 6) + 1];
                    for &e in vec.iter() {
                        words[(e >> 6) as usize] |= 1u64 << (e & 63);
                    }
                    let len = vec.len() as u32;
                    self.repr = Repr::Bitmap { words, len };
                    self.insert(v)
                }
            },
            Repr::Bitmap { words, len } => {
                let w = (v >> 6) as usize;
                if w >= words.len() {
                    words.resize(w + 1, 0);
                }
                let bit = 1u64 << (v & 63);
                if words[w] & bit != 0 {
                    false
                } else {
                    words[w] |= bit;
                    *len += 1;
                    true
                }
            }
        }
    }

    /// Iterates the elements in ascending order.
    pub fn iter(&self) -> Iter<'_> {
        match &self.repr {
            Repr::Inline { len, elems } => Iter::Small(elems[..*len as usize].iter()),
            Repr::Small(vec) => Iter::Small(vec.iter()),
            Repr::Bitmap { words, .. } => Iter::Bitmap {
                words,
                word_idx: 0,
                cur: words.first().copied().unwrap_or(0),
            },
        }
    }

    /// Appends every element (ascending) to `out` without clearing it.
    pub fn extend_into(&self, out: &mut Vec<u32>) {
        match &self.repr {
            Repr::Inline { len, elems } => out.extend_from_slice(&elems[..*len as usize]),
            Repr::Small(vec) => out.extend_from_slice(vec),
            Repr::Bitmap { words, len } => {
                out.reserve(*len as usize);
                for (wi, &w) in words.iter().enumerate() {
                    let mut w = w;
                    while w != 0 {
                        let bit = w.trailing_zeros();
                        out.push((wi as u32) << 6 | bit);
                        w &= w - 1;
                    }
                }
            }
        }
    }
}

/// Ascending iterator over a [`PtsSet`].
pub enum Iter<'a> {
    /// Small representation: slice iterator.
    Small(std::slice::Iter<'a, u32>),
    /// Bitmap representation: word-wise scan.
    Bitmap {
        /// The bitmap words.
        words: &'a [u64],
        /// Index of the word `cur` was loaded from.
        word_idx: usize,
        /// Remaining bits of the current word.
        cur: u64,
    },
}

impl Iterator for Iter<'_> {
    type Item = u32;

    fn next(&mut self) -> Option<u32> {
        match self {
            Iter::Small(it) => it.next().copied(),
            Iter::Bitmap {
                words,
                word_idx,
                cur,
            } => loop {
                if *cur != 0 {
                    let bit = cur.trailing_zeros();
                    *cur &= *cur - 1;
                    return Some((*word_idx as u32) << 6 | bit);
                }
                *word_idx += 1;
                if *word_idx >= words.len() {
                    return None;
                }
                *cur = words[*word_idx];
            },
        }
    }
}

impl<'a> IntoIterator for &'a PtsSet {
    type Item = u32;
    type IntoIter = Iter<'a>;

    fn into_iter(self) -> Iter<'a> {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn empty_set() {
        let s = PtsSet::new();
        assert_eq!(s.len(), 0);
        assert!(s.is_empty());
        assert!(!s.is_bitmap());
        assert!(!s.contains(0));
        assert_eq!(s.iter().count(), 0);
    }

    #[test]
    fn insert_is_idempotent() {
        let mut s = PtsSet::new();
        assert!(s.insert(7));
        assert!(!s.insert(7));
        assert_eq!(s.len(), 1);
        // Idempotence must also hold across the promotion boundary.
        for v in 0..(2 * SMALL_MAX as u32) {
            s.insert(v);
        }
        let len = s.len();
        for v in 0..(2 * SMALL_MAX as u32) {
            assert!(!s.insert(v), "duplicate insert of {v} reported new");
        }
        assert_eq!(s.len(), len);
    }

    #[test]
    fn promotion_happens_exactly_at_the_boundary() {
        let mut s = PtsSet::new();
        // Insert SMALL_MAX distinct elements: still small.
        for v in 0..SMALL_MAX as u32 {
            assert!(s.insert(v * 3));
        }
        assert_eq!(s.len(), SMALL_MAX);
        assert!(!s.is_bitmap(), "promoted too early");
        // Re-inserting an existing element must not promote.
        assert!(!s.insert(0));
        assert!(!s.is_bitmap());
        // The (SMALL_MAX + 1)-th distinct element promotes.
        assert!(s.insert(1));
        assert!(s.is_bitmap(), "not promoted at the boundary");
        assert_eq!(s.len(), SMALL_MAX + 1);
        // Everything inserted before the promotion is still a member.
        for v in 0..SMALL_MAX as u32 {
            assert!(s.contains(v * 3));
        }
        assert!(s.contains(1));
    }

    #[test]
    fn inline_spill_preserves_order_and_membership() {
        let mut s = PtsSet::new();
        // Fill the inline tier in reverse order.
        for v in (0..INLINE_MAX as u32).rev() {
            assert!(s.insert(v * 10));
        }
        assert_eq!(s.len(), INLINE_MAX);
        assert!(!s.is_bitmap());
        let got: Vec<u32> = s.iter().collect();
        assert_eq!(
            got,
            (0..INLINE_MAX as u32).map(|v| v * 10).collect::<Vec<_>>()
        );
        // One more spills to the heap vector; everything survives, sorted.
        assert!(s.insert(5));
        assert_eq!(s.len(), INLINE_MAX + 1);
        assert!(!s.is_bitmap());
        assert!(s.contains(5));
        let got: Vec<u32> = s.iter().collect();
        let mut want: Vec<u32> = (0..INLINE_MAX as u32).map(|v| v * 10).collect();
        want.push(5);
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn iteration_is_sorted_in_both_representations() {
        // Small: inserted in reverse.
        let mut s = PtsSet::new();
        for v in (0..10u32).rev() {
            s.insert(v * 5);
        }
        let got: Vec<u32> = s.iter().collect();
        assert_eq!(got, (0..10u32).map(|v| v * 5).collect::<Vec<_>>());
        assert!(!s.is_bitmap());

        // Bitmap: push past the boundary, still sorted.
        for v in (0..100u32).rev() {
            s.insert(v * 7 + 1);
        }
        assert!(s.is_bitmap());
        let got: Vec<u32> = s.iter().collect();
        let mut sorted = got.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(got, sorted, "bitmap iteration not sorted/deduped");
        let mut out = Vec::new();
        s.extend_into(&mut out);
        assert_eq!(out, got, "extend_into disagrees with iter");
    }

    /// Seeded splitmix64 fuzz loop against a `BTreeSet` reference model.
    #[test]
    fn fuzz_against_btreeset_model() {
        use pta_ir::rng::Rng;
        for seed in 0..8u64 {
            let mut rng = Rng::seed_from_u64(0x9175_0000 + seed);
            let mut set = PtsSet::new();
            let mut model: BTreeSet<u32> = BTreeSet::new();
            // Mix of dense and sparse values to exercise both reprs and
            // bitmap growth.
            let universe = match seed % 3 {
                0 => 64u32,
                1 => 1 << 12,
                _ => 1 << 20,
            };
            for _ in 0..2_000 {
                let v = rng.gen_range(0..universe);
                assert_eq!(set.insert(v), model.insert(v), "insert({v}) verdict");
                if model.len() == SMALL_MAX + 1 {
                    assert!(set.is_bitmap(), "should be promoted past SMALL_MAX");
                }
            }
            assert_eq!(set.len(), model.len());
            // Membership agrees on hits and misses.
            for _ in 0..500 {
                let v = rng.gen_range(0..universe);
                assert_eq!(set.contains(v), model.contains(&v), "contains({v})");
            }
            // Iteration is exactly the sorted model.
            let got: Vec<u32> = set.iter().collect();
            let want: Vec<u32> = model.iter().copied().collect();
            assert_eq!(got, want);
        }
    }
}
