//! Dense points-to sets: the solver's per-(variable, context) tuple store.
//!
//! The specialized solver keys every `VarPointsTo` fact by its
//! `(var, ctx)` pair and stores the pointed-to objects — dense
//! `(heap, heap-context)` pair IDs — in a [`PtsSet`]. The representation is
//! a three-stage hybrid chosen for the workload's distribution (the paper
//! observes the *median* points-to set size is 1 across every analysis and
//! benchmark, while a few hot sets grow to thousands of elements):
//!
//! - **inline**: up to [`INLINE_MAX`] sorted elements stored inside the set
//!   itself — the typical singleton set costs no heap allocation at all;
//! - **small**: a sorted `Vec<u32>`; membership is a binary search and
//!   iteration is a linear scan over one cache line or two;
//! - **bitmap**: once a set outgrows [`SMALL_MAX`] elements it is promoted
//!   to a bit vector indexed by object ID; membership becomes a single bit
//!   test and iteration a word-wise scan (object IDs are dense, so the
//!   universe — and therefore the scan — stays proportional to the number
//!   of distinct objects the analysis ever created);
//! - **shared**: at [`crate::pts_store::SHARE_MIN`] elements a bitmap is
//!   hash-consed into the solver's [`crate::pts_store::PtsStore`]: the set
//!   holds an `Arc` to one immutable canonical word array (shared with
//!   every other set of identical content) plus a small sorted
//!   copy-on-write overlay of elements inserted since. Overlay inserts
//!   keep the hot path allocation-free; a full overlay re-interns
//!   base ∪ overlay. Reads never consult the store — only
//!   [`PtsSet::insert_in`] needs it.
//!
//! All representations iterate in ascending object-ID order, which the
//! solver relies on when deduplicating projections.

/// Number of elements a set may hold before being promoted to a bitmap.
///
/// 32 sorted `u32`s are two cache lines; binary search over them is
/// consistently cheaper than the bitmap's memory footprint for the long
/// tail of tiny sets.
pub const SMALL_MAX: usize = 32;

/// Number of elements stored inline — inside the `PtsSet` itself, with no
/// heap allocation — before spilling to the heap-allocated small vector.
/// Since the median points-to set size is 1, this keeps the majority of
/// sets allocation-free.
pub const INLINE_MAX: usize = 6;

use std::sync::Arc;

use crate::pts_store::{PtsStore, SharedRep, OVERLAY_MAX, SHARE_MIN};

/// A set of dense `u32` object IDs with a small-vector/bitmap/shared
/// hybrid representation. See the module docs for the design rationale.
#[derive(Debug, Clone, Default)]
pub struct PtsSet {
    repr: Repr,
}

#[derive(Debug, Clone)]
enum Repr {
    /// Sorted, deduplicated, stored inline (no allocation).
    Inline { len: u8, elems: [u32; INLINE_MAX] },
    /// Sorted, deduplicated, heap-allocated.
    Small(Vec<u32>),
    /// Bit `v` of `words[v / 64]` set iff `v` is a member.
    Bitmap { words: Vec<u64>, len: u32 },
    /// A hash-consed immutable base (owned by a [`PtsStore`], shared with
    /// every set of identical content) plus a sorted copy-on-write
    /// overlay of elements not in the base. Cloning is O(1) on the base;
    /// mutation never affects other holders.
    Shared {
        base: Arc<SharedRep>,
        overlay: Vec<u32>,
    },
}

impl Default for Repr {
    fn default() -> Repr {
        Repr::Inline {
            len: 0,
            elems: [0; INLINE_MAX],
        }
    }
}

impl PtsSet {
    /// Creates an empty set (small representation, no allocation).
    #[must_use]
    pub fn new() -> PtsSet {
        PtsSet::default()
    }

    /// Number of elements.
    #[must_use]
    pub fn len(&self) -> usize {
        match &self.repr {
            Repr::Inline { len, .. } => *len as usize,
            Repr::Small(v) => v.len(),
            Repr::Bitmap { len, .. } => *len as usize,
            Repr::Shared { base, overlay } => base.len as usize + overlay.len(),
        }
    }

    /// `true` if the set has no elements.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `true` while the set uses the (private) bitmap representation.
    #[must_use]
    pub fn is_bitmap(&self) -> bool {
        matches!(self.repr, Repr::Bitmap { .. })
    }

    /// `true` once the set holds a hash-consed shared base.
    #[must_use]
    pub fn is_shared(&self) -> bool {
        matches!(self.repr, Repr::Shared { .. })
    }

    /// `true` once the set has left the sorted small stages (bitmap or
    /// shared) — the transition the solver's `set_promotions` profile
    /// counter records.
    #[must_use]
    pub fn is_promoted(&self) -> bool {
        matches!(self.repr, Repr::Bitmap { .. } | Repr::Shared { .. })
    }

    /// Membership test: binary search (small), bit test (bitmap), or
    /// base bit test plus overlay binary search (shared).
    #[must_use]
    pub fn contains(&self, v: u32) -> bool {
        match &self.repr {
            Repr::Inline { len, elems } => elems[..*len as usize].contains(&v),
            Repr::Small(vec) => vec.binary_search(&v).is_ok(),
            Repr::Bitmap { words, .. } => {
                let w = (v >> 6) as usize;
                w < words.len() && words[w] & (1u64 << (v & 63)) != 0
            }
            Repr::Shared { base, overlay } => base.contains(v) || overlay.binary_search(&v).is_ok(),
        }
    }

    /// Inserts `v`; returns `true` if it was not already present.
    /// Idempotent. Promotes small → bitmap at the [`SMALL_MAX`] boundary.
    pub fn insert(&mut self, v: u32) -> bool {
        match &mut self.repr {
            Repr::Inline { len, elems } => {
                let n = *len as usize;
                // Sorted-insert by linear scan: at most six comparisons.
                let mut pos = n;
                for (i, &e) in elems[..n].iter().enumerate() {
                    if e == v {
                        return false;
                    }
                    if e > v {
                        pos = i;
                        break;
                    }
                }
                if n < INLINE_MAX {
                    elems.copy_within(pos..n, pos + 1);
                    elems[pos] = v;
                    *len += 1;
                    return true;
                }
                // Spill inline -> small, then insert normally.
                let mut vec = Vec::with_capacity(INLINE_MAX * 2);
                vec.extend_from_slice(&elems[..n]);
                self.repr = Repr::Small(vec);
                self.insert(v)
            }
            Repr::Small(vec) => match vec.binary_search(&v) {
                Ok(_) => false,
                Err(pos) => {
                    if vec.len() < SMALL_MAX {
                        vec.insert(pos, v);
                        return true;
                    }
                    // Promote, then insert into the bitmap.
                    let max = vec.last().copied().unwrap_or(0).max(v);
                    let mut words = vec![0u64; (max as usize >> 6) + 1];
                    for &e in vec.iter() {
                        words[(e >> 6) as usize] |= 1u64 << (e & 63);
                    }
                    let len = vec.len() as u32;
                    self.repr = Repr::Bitmap { words, len };
                    self.insert(v)
                }
            },
            Repr::Bitmap { words, len } => {
                let w = (v >> 6) as usize;
                if w >= words.len() {
                    words.resize(w + 1, 0);
                }
                let bit = 1u64 << (v & 63);
                if words[w] & bit != 0 {
                    false
                } else {
                    words[w] |= bit;
                    *len += 1;
                    true
                }
            }
            Repr::Shared { base, overlay } => {
                if base.contains(v) {
                    return false;
                }
                match overlay.binary_search(&v) {
                    Ok(_) => false,
                    Err(pos) => {
                        overlay.insert(pos, v);
                        if overlay.len() >= OVERLAY_MAX {
                            // No store at hand to re-intern: materialize a
                            // private bitmap. Content (the only thing the
                            // solver observes) is unaffected.
                            let len = base.len + overlay.len() as u32;
                            let words = merge_words(base, overlay);
                            self.repr = Repr::Bitmap { words, len };
                        }
                        true
                    }
                }
            }
        }
    }

    /// Inserts `v` with access to the solver's intern store; returns
    /// `true` if it was not already present. Behaves exactly like
    /// [`PtsSet::insert`] on content, and additionally promotes the set
    /// into the `Shared` stage at the [`SHARE_MIN`] boundary (when the
    /// store is enabled), flushes full copy-on-write overlays back
    /// through the store, and maintains the store's deterministic
    /// bitmap-byte model for `--max-memory` budgets.
    pub fn insert_in(&mut self, store: &mut PtsStore, v: u32) -> bool {
        match &mut self.repr {
            Repr::Inline { .. } | Repr::Small(_) => {
                let added = self.insert(v);
                // A successful insert may just have promoted small →
                // bitmap; account for the fresh word array.
                if added {
                    if let Repr::Bitmap { words, .. } = &self.repr {
                        if self.len() == SMALL_MAX + 1 {
                            store.track_bitmap_bytes(words.len() as u64 * 8);
                        }
                    }
                }
                added
            }
            Repr::Bitmap { words, len } => {
                let w = (v >> 6) as usize;
                if w >= words.len() {
                    store.track_bitmap_bytes((w + 1 - words.len()) as u64 * 8);
                    words.resize(w + 1, 0);
                }
                let bit = 1u64 << (v & 63);
                if words[w] & bit != 0 {
                    return false;
                }
                words[w] |= bit;
                *len += 1;
                if store.is_enabled() && *len as usize >= SHARE_MIN {
                    let taken = std::mem::take(words);
                    store.untrack_bitmap_bytes(taken.len() as u64 * 8);
                    let base = store.intern(taken, *len);
                    self.repr = Repr::Shared {
                        base,
                        overlay: Vec::new(),
                    };
                }
                true
            }
            Repr::Shared { base, overlay } => {
                if base.contains(v) {
                    return false;
                }
                match overlay.binary_search(&v) {
                    Ok(_) => false,
                    Err(pos) => {
                        overlay.insert(pos, v);
                        if overlay.len() >= OVERLAY_MAX {
                            let len = base.len + overlay.len() as u32;
                            let words = merge_words(base, overlay);
                            let old = std::mem::replace(base, store.intern(words, len));
                            // Evict the superseded base if this set was
                            // its last holder.
                            store.release(&old);
                            overlay.clear();
                        }
                        true
                    }
                }
            }
        }
    }

    /// Empties the set, returning any store-owned resources: a `Shared`
    /// base is released back to `store` (evicting it if this set was the
    /// last holder) and bitmap bytes leave the store's deterministic
    /// memory model. The retraction path of the incremental solver clears
    /// whole keys through this — element-wise removal is never needed
    /// because invalidation is key-granular.
    pub fn clear_in(&mut self, store: &mut PtsStore) {
        match std::mem::take(&mut self.repr) {
            Repr::Bitmap { words, .. } => store.untrack_bitmap_bytes(words.len() as u64 * 8),
            Repr::Shared { base, .. } => store.release(&base),
            Repr::Inline { .. } | Repr::Small(_) => {}
        }
    }

    /// Iterates the elements in ascending order.
    pub fn iter(&self) -> Iter<'_> {
        match &self.repr {
            Repr::Inline { len, elems } => Iter::Small(elems[..*len as usize].iter()),
            Repr::Small(vec) => Iter::Small(vec.iter()),
            Repr::Bitmap { words, .. } => Iter::Bitmap {
                words,
                word_idx: 0,
                cur: words.first().copied().unwrap_or(0),
            },
            Repr::Shared { base, overlay } => Iter::Shared {
                words: &base.words,
                word_idx: 0,
                cur: base.words.first().copied().unwrap_or(0),
                overlay: overlay.iter(),
                bit_peek: None,
                ov_peek: None,
            },
        }
    }

    /// Appends every element (ascending) to `out` without clearing it.
    pub fn extend_into(&self, out: &mut Vec<u32>) {
        match &self.repr {
            Repr::Inline { len, elems } => out.extend_from_slice(&elems[..*len as usize]),
            Repr::Small(vec) => out.extend_from_slice(vec),
            Repr::Bitmap { words, len } => {
                out.reserve(*len as usize);
                extend_from_words(words, out);
            }
            Repr::Shared { base, overlay } => {
                out.reserve(base.len as usize + overlay.len());
                // Merge the base's word scan with the sorted overlay
                // (disjoint by construction, so no equality case).
                let mut oi = 0;
                for (wi, &w) in base.words.iter().enumerate() {
                    let mut w = w;
                    while w != 0 {
                        let bit = w.trailing_zeros();
                        let v = (wi as u32) << 6 | bit;
                        while oi < overlay.len() && overlay[oi] < v {
                            out.push(overlay[oi]);
                            oi += 1;
                        }
                        out.push(v);
                        w &= w - 1;
                    }
                }
                out.extend_from_slice(&overlay[oi..]);
            }
        }
    }
}

/// Pushes every set bit of `words` (ascending) onto `out`.
fn extend_from_words(words: &[u64], out: &mut Vec<u32>) {
    for (wi, &w) in words.iter().enumerate() {
        let mut w = w;
        while w != 0 {
            let bit = w.trailing_zeros();
            out.push((wi as u32) << 6 | bit);
            w &= w - 1;
        }
    }
}

/// Base words ∪ overlay bits, sized for the larger of the two.
fn merge_words(base: &SharedRep, overlay: &[u32]) -> Vec<u64> {
    let need = overlay.last().map_or(base.words.len(), |&m| {
        ((m >> 6) as usize + 1).max(base.words.len())
    });
    let mut words = vec![0u64; need];
    words[..base.words.len()].copy_from_slice(&base.words);
    for &e in overlay {
        words[(e >> 6) as usize] |= 1u64 << (e & 63);
    }
    words
}

/// Ascending iterator over a [`PtsSet`].
pub enum Iter<'a> {
    /// Small representation: slice iterator.
    Small(std::slice::Iter<'a, u32>),
    /// Bitmap representation: word-wise scan.
    Bitmap {
        /// The bitmap words.
        words: &'a [u64],
        /// Index of the word `cur` was loaded from.
        word_idx: usize,
        /// Remaining bits of the current word.
        cur: u64,
    },
    /// Shared representation: merge of the base's word scan with the
    /// sorted overlay (disjoint, so the min is always unambiguous).
    Shared {
        /// The interned base's bitmap words.
        words: &'a [u64],
        /// Index of the word `cur` was loaded from.
        word_idx: usize,
        /// Remaining bits of the current word.
        cur: u64,
        /// Remaining overlay elements.
        overlay: std::slice::Iter<'a, u32>,
        /// Next base element, if already pulled.
        bit_peek: Option<u32>,
        /// Next overlay element, if already pulled.
        ov_peek: Option<u32>,
    },
}

impl Iterator for Iter<'_> {
    type Item = u32;

    fn next(&mut self) -> Option<u32> {
        match self {
            Iter::Small(it) => it.next().copied(),
            Iter::Bitmap {
                words,
                word_idx,
                cur,
            } => loop {
                if *cur != 0 {
                    let bit = cur.trailing_zeros();
                    *cur &= *cur - 1;
                    return Some((*word_idx as u32) << 6 | bit);
                }
                *word_idx += 1;
                if *word_idx >= words.len() {
                    return None;
                }
                *cur = words[*word_idx];
            },
            Iter::Shared {
                words,
                word_idx,
                cur,
                overlay,
                bit_peek,
                ov_peek,
            } => {
                if bit_peek.is_none() {
                    *bit_peek = loop {
                        if *cur != 0 {
                            let bit = cur.trailing_zeros();
                            *cur &= *cur - 1;
                            break Some((*word_idx as u32) << 6 | bit);
                        }
                        *word_idx += 1;
                        if *word_idx >= words.len() {
                            break None;
                        }
                        *cur = words[*word_idx];
                    };
                }
                if ov_peek.is_none() {
                    *ov_peek = overlay.next().copied();
                }
                match (*bit_peek, *ov_peek) {
                    (Some(b), Some(o)) => {
                        if b < o {
                            *bit_peek = None;
                            Some(b)
                        } else {
                            *ov_peek = None;
                            Some(o)
                        }
                    }
                    (Some(b), None) => {
                        *bit_peek = None;
                        Some(b)
                    }
                    (None, Some(o)) => {
                        *ov_peek = None;
                        Some(o)
                    }
                    (None, None) => None,
                }
            }
        }
    }
}

impl<'a> IntoIterator for &'a PtsSet {
    type Item = u32;
    type IntoIter = Iter<'a>;

    fn into_iter(self) -> Iter<'a> {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn empty_set() {
        let s = PtsSet::new();
        assert_eq!(s.len(), 0);
        assert!(s.is_empty());
        assert!(!s.is_bitmap());
        assert!(!s.contains(0));
        assert_eq!(s.iter().count(), 0);
    }

    #[test]
    fn insert_is_idempotent() {
        let mut s = PtsSet::new();
        assert!(s.insert(7));
        assert!(!s.insert(7));
        assert_eq!(s.len(), 1);
        // Idempotence must also hold across the promotion boundary.
        for v in 0..(2 * SMALL_MAX as u32) {
            s.insert(v);
        }
        let len = s.len();
        for v in 0..(2 * SMALL_MAX as u32) {
            assert!(!s.insert(v), "duplicate insert of {v} reported new");
        }
        assert_eq!(s.len(), len);
    }

    #[test]
    fn promotion_happens_exactly_at_the_boundary() {
        let mut s = PtsSet::new();
        // Insert SMALL_MAX distinct elements: still small.
        for v in 0..SMALL_MAX as u32 {
            assert!(s.insert(v * 3));
        }
        assert_eq!(s.len(), SMALL_MAX);
        assert!(!s.is_bitmap(), "promoted too early");
        // Re-inserting an existing element must not promote.
        assert!(!s.insert(0));
        assert!(!s.is_bitmap());
        // The (SMALL_MAX + 1)-th distinct element promotes.
        assert!(s.insert(1));
        assert!(s.is_bitmap(), "not promoted at the boundary");
        assert_eq!(s.len(), SMALL_MAX + 1);
        // Everything inserted before the promotion is still a member.
        for v in 0..SMALL_MAX as u32 {
            assert!(s.contains(v * 3));
        }
        assert!(s.contains(1));
    }

    #[test]
    fn inline_spill_preserves_order_and_membership() {
        let mut s = PtsSet::new();
        // Fill the inline tier in reverse order.
        for v in (0..INLINE_MAX as u32).rev() {
            assert!(s.insert(v * 10));
        }
        assert_eq!(s.len(), INLINE_MAX);
        assert!(!s.is_bitmap());
        let got: Vec<u32> = s.iter().collect();
        assert_eq!(
            got,
            (0..INLINE_MAX as u32).map(|v| v * 10).collect::<Vec<_>>()
        );
        // One more spills to the heap vector; everything survives, sorted.
        assert!(s.insert(5));
        assert_eq!(s.len(), INLINE_MAX + 1);
        assert!(!s.is_bitmap());
        assert!(s.contains(5));
        let got: Vec<u32> = s.iter().collect();
        let mut want: Vec<u32> = (0..INLINE_MAX as u32).map(|v| v * 10).collect();
        want.push(5);
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn iteration_is_sorted_in_both_representations() {
        // Small: inserted in reverse.
        let mut s = PtsSet::new();
        for v in (0..10u32).rev() {
            s.insert(v * 5);
        }
        let got: Vec<u32> = s.iter().collect();
        assert_eq!(got, (0..10u32).map(|v| v * 5).collect::<Vec<_>>());
        assert!(!s.is_bitmap());

        // Bitmap: push past the boundary, still sorted.
        for v in (0..100u32).rev() {
            s.insert(v * 7 + 1);
        }
        assert!(s.is_bitmap());
        let got: Vec<u32> = s.iter().collect();
        let mut sorted = got.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(got, sorted, "bitmap iteration not sorted/deduped");
        let mut out = Vec::new();
        s.extend_into(&mut out);
        assert_eq!(out, got, "extend_into disagrees with iter");
    }

    /// Seeded splitmix64 fuzz loop against a `BTreeSet` reference model.
    #[test]
    fn fuzz_against_btreeset_model() {
        use pta_ir::rng::Rng;
        for seed in 0..8u64 {
            let mut rng = Rng::seed_from_u64(0x9175_0000 + seed);
            let mut set = PtsSet::new();
            let mut model: BTreeSet<u32> = BTreeSet::new();
            // Mix of dense and sparse values to exercise both reprs and
            // bitmap growth.
            let universe = match seed % 3 {
                0 => 64u32,
                1 => 1 << 12,
                _ => 1 << 20,
            };
            for _ in 0..2_000 {
                let v = rng.gen_range(0..universe);
                assert_eq!(set.insert(v), model.insert(v), "insert({v}) verdict");
                if model.len() == SMALL_MAX + 1 {
                    assert!(set.is_bitmap(), "should be promoted past SMALL_MAX");
                }
            }
            assert_eq!(set.len(), model.len());
            // Membership agrees on hits and misses.
            for _ in 0..500 {
                let v = rng.gen_range(0..universe);
                assert_eq!(set.contains(v), model.contains(&v), "contains({v})");
            }
            // Iteration is exactly the sorted model.
            let got: Vec<u32> = set.iter().collect();
            let want: Vec<u32> = model.iter().copied().collect();
            assert_eq!(got, want);
        }
    }

    #[test]
    fn shared_promotion_exactly_at_share_min() {
        let mut store = PtsStore::new();
        let mut s = PtsSet::new();
        for v in 0..SHARE_MIN as u32 - 1 {
            assert!(s.insert_in(&mut store, v * 3));
        }
        assert!(s.is_bitmap(), "should be a private bitmap below SHARE_MIN");
        assert!(!s.is_shared(), "promoted to Shared too early");
        // Duplicate insert must not promote.
        assert!(!s.insert_in(&mut store, 0));
        assert!(!s.is_shared());
        // The SHARE_MIN-th distinct element interns the set.
        assert!(s.insert_in(&mut store, 1));
        assert!(s.is_shared(), "not interned at the SHARE_MIN boundary");
        assert!(s.is_promoted());
        assert_eq!(s.len(), SHARE_MIN);
        assert_eq!(store.sets_interned(), 1);
        assert_eq!(store.sets_shared(), 0);
        for v in 0..SHARE_MIN as u32 - 1 {
            assert!(s.contains(v * 3));
        }
        assert!(s.contains(1));
        // A disabled store never promotes past the bitmap stage.
        let mut off = PtsStore::disabled();
        let mut u = PtsSet::new();
        for v in 0..2 * SHARE_MIN as u32 {
            u.insert_in(&mut off, v);
        }
        assert!(u.is_bitmap() && !u.is_shared());
        assert_eq!(off.sets_interned(), 0);
    }

    #[test]
    fn identical_contents_share_one_representation() {
        let mut store = PtsStore::new();
        let mut a = PtsSet::new();
        let mut b = PtsSet::new();
        // Same insert sequence — the copy-chain pattern the store exists
        // for. The second promotion must hit the first's representation.
        for v in 0..SHARE_MIN as u32 {
            a.insert_in(&mut store, v * 5);
        }
        for v in 0..SHARE_MIN as u32 {
            b.insert_in(&mut store, v * 5);
        }
        assert!(a.is_shared() && b.is_shared());
        assert_eq!(store.sets_interned(), 1, "second set re-interned");
        assert_eq!(store.sets_shared(), 1);
        assert!(store.bytes_saved() > 0);
        assert_eq!(a.iter().collect::<Vec<_>>(), b.iter().collect::<Vec<_>>());
    }

    #[test]
    fn overlay_flush_reinterns_at_overlay_max() {
        let mut store = PtsStore::new();
        let mut s = PtsSet::new();
        for v in 0..SHARE_MIN as u32 {
            s.insert_in(&mut store, v);
        }
        assert!(s.is_shared());
        let interned_before = store.sets_interned();
        // OVERLAY_MAX - 1 overlay inserts stay buffered...
        for i in 0..OVERLAY_MAX as u32 - 1 {
            assert!(s.insert_in(&mut store, 1000 + i));
        }
        assert_eq!(store.sets_interned(), interned_before);
        // ...and the OVERLAY_MAX-th flushes base ∪ overlay back into the
        // store as a fresh representation.
        assert!(s.insert_in(&mut store, 2000));
        assert_eq!(store.sets_interned(), interned_before + 1);
        assert!(s.is_shared(), "flush must stay in the Shared stage");
        assert_eq!(s.len(), SHARE_MIN + OVERLAY_MAX);
        for v in 0..SHARE_MIN as u32 {
            assert!(s.contains(v));
        }
        for i in 0..OVERLAY_MAX as u32 - 1 {
            assert!(s.contains(1000 + i));
        }
        assert!(s.contains(2000));
    }

    #[test]
    fn cow_clone_mutation_is_isolated() {
        let mut store = PtsStore::new();
        let mut a = PtsSet::new();
        for v in 0..SHARE_MIN as u32 + 3 {
            a.insert_in(&mut store, v * 2);
        }
        assert!(a.is_shared());
        let snapshot: Vec<u32> = a.iter().collect();
        // O(1) clone: both sets point at the same interned base.
        let mut b = a.clone();
        // Mutating the clone (through both insert paths, past a flush)
        // must never leak into the original.
        for i in 0..2 * OVERLAY_MAX as u32 {
            b.insert_in(&mut store, 100_001 + 2 * i);
        }
        b.insert(999_999);
        assert_eq!(a.iter().collect::<Vec<_>>(), snapshot, "COW leaked");
        assert!(!a.contains(999_999));
        assert!(b.contains(999_999) && b.contains(100_001));
    }

    #[test]
    fn plain_insert_demotes_shared_to_private_bitmap() {
        let mut store = PtsStore::new();
        let mut s = PtsSet::new();
        for v in 0..SHARE_MIN as u32 {
            s.insert_in(&mut store, v);
        }
        assert!(s.is_shared());
        let mut want: BTreeSet<u32> = (0..SHARE_MIN as u32).collect();
        // Plain inserts (no store at hand) buffer in the overlay, then
        // demote to a private bitmap on overflow — never a re-intern.
        let interned_before = store.sets_interned();
        for i in 0..OVERLAY_MAX as u32 {
            assert!(s.insert(500 + i));
            want.insert(500 + i);
        }
        assert!(s.is_bitmap(), "overflowed overlay should demote");
        assert!(!s.is_shared());
        assert!(s.is_promoted());
        assert_eq!(store.sets_interned(), interned_before);
        let got: Vec<u32> = s.iter().collect();
        assert_eq!(got, want.iter().copied().collect::<Vec<_>>());
    }

    /// The `BTreeSet` fuzz loop again, driven through `insert_in` far
    /// past `SHARE_MIN` so every stage transition (inline → small →
    /// bitmap → shared, overlay flushes, clone-COW) is exercised.
    #[test]
    fn fuzz_shared_stage_against_btreeset_model() {
        use pta_ir::rng::Rng;
        for seed in 0..6u64 {
            let mut rng = Rng::seed_from_u64(0x544A_0000 + seed);
            let mut store = PtsStore::new();
            let mut set = PtsSet::new();
            let mut model: BTreeSet<u32> = BTreeSet::new();
            let universe = match seed % 3 {
                0 => 512u32,
                1 => 1 << 13,
                _ => 1 << 22,
            };
            for step in 0..4_000 {
                let v = rng.gen_range(0..universe);
                assert_eq!(
                    set.insert_in(&mut store, v),
                    model.insert(v),
                    "insert_in({v}) verdict"
                );
                if model.len() >= SHARE_MIN {
                    assert!(set.is_shared(), "should be shared past SHARE_MIN");
                }
                // Periodically COW-clone and check the clone reads back
                // the same contents through the merged iterator.
                if step % 1_000 == 999 {
                    let c = set.clone();
                    assert_eq!(c.len(), model.len());
                    let got: Vec<u32> = c.iter().collect();
                    let want: Vec<u32> = model.iter().copied().collect();
                    assert_eq!(got, want);
                }
            }
            assert_eq!(set.len(), model.len());
            for _ in 0..500 {
                let v = rng.gen_range(0..universe);
                assert_eq!(set.contains(v), model.contains(&v), "contains({v})");
            }
            let got: Vec<u32> = set.iter().collect();
            let want: Vec<u32> = model.iter().copied().collect();
            assert_eq!(got, want);
            let mut out = Vec::new();
            set.extend_into(&mut out);
            assert_eq!(out, want, "extend_into disagrees with the model");
        }
    }

    /// The retraction path of the incremental solver empties whole keys
    /// through `clear_in`; shared representations must leave the store
    /// when their last holder is cleared, or every `apply()` with
    /// retractions would leak superseded representations into the index
    /// forever.
    #[test]
    fn retraction_clear_evicts_last_holder_shared_representations() {
        let mut store = PtsStore::new();
        let mut a = PtsSet::new();
        let mut b = PtsSet::new();
        for v in 0..SHARE_MIN as u32 {
            a.insert_in(&mut store, v * 2);
        }
        for v in 0..SHARE_MIN as u32 {
            b.insert_in(&mut store, v * 2);
        }
        assert!(a.is_shared() && b.is_shared());
        let saved = store.bytes_saved();
        assert!(saved > 0, "copy chain should have produced an intern hit");
        let live = store.heap_bytes();
        assert!(live > 0);

        // First clear: the sibling still holds the representation, so it
        // stays in the store.
        a.clear_in(&mut store);
        assert!(a.is_empty());
        assert_eq!(store.heap_bytes(), live, "rep still live through b");

        // Last clear: the representation leaves the index and the
        // deterministic memory model.
        b.clear_in(&mut store);
        assert!(b.is_empty());
        assert_eq!(store.heap_bytes(), 0, "last holder cleared: rep leaked");

        // `bytes_saved` is a cumulative event counter — eviction must
        // never wind it back (monotonicity guard).
        assert_eq!(store.bytes_saved(), saved);

        // Same contents again: no stale index entry to hit, so this is a
        // fresh intern, not a share.
        let hits = store.sets_shared();
        let mut c = PtsSet::new();
        for v in 0..SHARE_MIN as u32 {
            c.insert_in(&mut store, v * 2);
        }
        assert!(c.is_shared());
        assert_eq!(
            store.sets_shared(),
            hits,
            "hit against an evicted representation"
        );
        assert!(store.heap_bytes() > 0);
    }
}
